//! EverFlow (SIGCOMM'15) model, configured as in the paper's testbed
//! (§5): switches mirror SYN and FIN packets with ERSPAN, and an
//! "on-demand" mode repeatedly traces 1,000 random flows per minute.
//! Mirroring happens wherever the packet is seen — including at drop
//! hooks, since ERSPAN matches in ingress before the drop — but only for
//! matched packets, so coverage of arbitrary-flow events stays tiny.

use crate::observe::{ObsKind, Observation, ObservationLog};
use fet_netsim::counters::PortCounters;
use fet_netsim::monitor::{Actions, EgressCtx, IngressCtx, RoutedCtx, SwitchMonitor};
use fet_netsim::rng::Pcg32;
use fet_packet::event::DropCode;
use fet_packet::tcp::TcpSegment;
use fet_packet::{FlowKey, IpProtocol};
use std::any::Any;
use std::collections::HashSet;

/// Bytes per ERSPAN mirror (truncated to 64 B like the paper's setup).
pub const MIRROR_BYTES: usize = 64 + 14;

/// Per-switch EverFlow agent.
#[derive(Debug)]
pub struct EverFlowMonitor {
    /// Flows currently traced on demand.
    pub traced: HashSet<FlowKey>,
    /// Recently seen flows (candidate pool for on-demand rotation).
    seen: Vec<FlowKey>,
    seen_set: HashSet<FlowKey>,
    /// How many flows each rotation traces.
    pub trace_set_size: usize,
    /// Rotation interval, ns (paper: one minute).
    pub rotate_interval_ns: u64,
    rng: Pcg32,
    /// Everything mirrored.
    pub log: ObservationLog,
    /// Mirrors emitted.
    pub mirrors: u64,
}

impl EverFlowMonitor {
    /// Create with the paper's defaults (1,000 flows, 60 s rotation).
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, 1_000, 60 * fet_netsim::SECONDS)
    }

    /// Create with explicit rotation parameters.
    pub fn with_params(seed: u64, trace_set_size: usize, rotate_interval_ns: u64) -> Self {
        EverFlowMonitor {
            traced: HashSet::new(),
            seen: Vec::new(),
            seen_set: HashSet::new(),
            trace_set_size,
            rotate_interval_ns,
            rng: Pcg32::new(seed, 31),
            log: ObservationLog::new(),
            mirrors: 0,
        }
    }

    fn is_syn_fin(frame: &[u8], flow: &FlowKey) -> bool {
        if flow.proto != IpProtocol::Tcp {
            return false;
        }
        let off = fet_packet::ETHERNET_HEADER_LEN + fet_packet::IPV4_HEADER_LEN;
        if frame.len() < off {
            return false;
        }
        TcpSegment::new_checked(&frame[off..]).map(|t| t.is_syn() || t.is_fin()).unwrap_or(false)
    }

    fn matches(&self, frame: &[u8], flow: &FlowKey) -> bool {
        self.traced.contains(flow) || Self::is_syn_fin(frame, flow)
    }

    fn note_seen(&mut self, flow: FlowKey) {
        if self.seen_set.insert(flow) {
            self.seen.push(flow);
            // Bound the pool.
            if self.seen.len() > 100_000 {
                let old = self.seen.remove(0);
                self.seen_set.remove(&old);
            }
        }
    }

    /// Rotate the on-demand trace set (called from the timer).
    pub fn rotate(&mut self) {
        self.traced.clear();
        if self.seen.is_empty() {
            return;
        }
        for _ in 0..self.trace_set_size {
            let i = self.rng.next_below(self.seen.len() as u32) as usize;
            self.traced.insert(self.seen[i]);
        }
    }
}

impl SwitchMonitor for EverFlowMonitor {
    fn on_routed(&mut self, ctx: &RoutedCtx, _frame: &[u8], _out: &mut Actions) {
        self.note_seen(ctx.flow);
    }

    fn on_egress(&mut self, ctx: &EgressCtx<'_>, frame: &mut Vec<u8>, out: &mut Actions) {
        let Some(flow) = ctx.meta.flow else { return };
        if !self.matches(frame, &flow) {
            return;
        }
        self.log.record(Observation {
            device: ctx.node,
            flow,
            t_ingress: ctx.meta.ingress_ts_ns,
            t_egress: ctx.now_ns,
            latency_ns: ctx.meta.queuing_delay_ns(),
            kind: ObsKind::Forwarded,
        });
        self.mirrors += 1;
        out.report(MIRROR_BYTES, "everflow-mirror");
    }

    fn on_pipeline_drop(
        &mut self,
        ctx: &IngressCtx,
        _frame: &[u8],
        flow: Option<FlowKey>,
        _code: DropCode,
        _egress_port: Option<u8>,
        _acl_rule: u32,
        out: &mut Actions,
    ) {
        let Some(flow) = flow else { return };
        // Only on-demand traced flows are mirrored at drop sites: the
        // SYN/FIN mirror lives at egress, which a dropped packet never
        // reaches (why the paper measures EverFlow's drop coverage <1%).
        if !self.traced.contains(&flow) {
            return;
        }
        self.log.record(Observation {
            device: ctx.node,
            flow,
            t_ingress: ctx.now_ns,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Dropped(fet_packet::EventType::PipelineDrop),
        });
        self.mirrors += 1;
        out.report(MIRROR_BYTES, "everflow-mirror");
    }

    fn on_mmu_drop(&mut self, ctx: &RoutedCtx, _frame: &[u8], out: &mut Actions) {
        if !self.traced.contains(&ctx.flow) {
            return;
        }
        self.log.record(Observation {
            device: ctx.node,
            flow: ctx.flow,
            t_ingress: ctx.now_ns,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Dropped(fet_packet::EventType::MmuDrop),
        });
        self.mirrors += 1;
        out.report(MIRROR_BYTES, "everflow-mirror");
    }

    fn on_timer(&mut self, _now_ns: u64, _counters: &[PortCounters], _out: &mut Actions) {
        self.rotate();
    }

    fn timer_interval_ns(&self) -> Option<u64> {
        Some(self.rotate_interval_ns)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::builder::build_data_packet;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::tcp::flags;
    use fet_pdp::PacketMeta;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn ectx<'a>(meta: &'a PacketMeta) -> EgressCtx<'a> {
        EgressCtx { now_ns: 10, node: 0, port: 0, queue: 0, peer_tagged: false, meta }
    }

    #[test]
    fn syn_and_fin_mirrored_data_not() {
        let mut m = EverFlowMonitor::new(1);
        let mut meta = PacketMeta::arriving(0, 0, 64);
        meta.flow = Some(flow(1));
        let mut out = Actions::new();
        let mut syn = build_data_packet(&flow(1), 10, flags::SYN, 0, 64);
        let mut data = build_data_packet(&flow(1), 10, flags::ACK, 0, 64);
        let mut fin = build_data_packet(&flow(1), 10, flags::FIN | flags::ACK, 0, 64);
        m.on_egress(&ectx(&meta), &mut syn, &mut out);
        m.on_egress(&ectx(&meta), &mut data, &mut out);
        m.on_egress(&ectx(&meta), &mut fin, &mut out);
        assert_eq!(m.mirrors, 2);
    }

    #[test]
    fn traced_flows_fully_mirrored() {
        let mut m = EverFlowMonitor::new(1);
        m.traced.insert(flow(9));
        let mut meta = PacketMeta::arriving(0, 0, 64);
        meta.flow = Some(flow(9));
        let mut out = Actions::new();
        let mut data = build_data_packet(&flow(9), 10, flags::ACK, 0, 64);
        m.on_egress(&ectx(&meta), &mut data, &mut out);
        assert_eq!(m.mirrors, 1);
    }

    #[test]
    fn rotation_picks_from_seen_pool() {
        let mut m = EverFlowMonitor::with_params(1, 5, 1);
        let mut out = Actions::new();
        for n in 0..100u16 {
            let rctx = RoutedCtx {
                now_ns: 0,
                node: 0,
                ingress_port: 0,
                egress_port: 1,
                queue: 0,
                queue_paused: false,
                flow: flow(n),
            };
            m.on_routed(&rctx, &[], &mut out);
        }
        m.rotate();
        assert!(!m.traced.is_empty() && m.traced.len() <= 5);
        let before: Vec<FlowKey> = m.traced.iter().copied().collect();
        m.rotate();
        // New random set (with overwhelming probability differs).
        let after: Vec<FlowKey> = m.traced.iter().copied().collect();
        let _ = (before, after);
    }

    #[test]
    fn dropped_traced_packet_mirrored() {
        let mut m = EverFlowMonitor::new(1);
        m.traced.insert(flow(2));
        let f = build_data_packet(&flow(2), 10, flags::ACK, 0, 64);
        let ictx = IngressCtx { now_ns: 7, node: 0, port: 0, peer_tagged: false };
        let mut out = Actions::new();
        m.on_pipeline_drop(&ictx, &f, Some(flow(2)), DropCode::TableMiss, None, 0, &mut out);
        assert_eq!(m.log.obs.len(), 1);
    }

    #[test]
    fn untraced_drop_invisible_even_with_syn() {
        let mut m = EverFlowMonitor::new(1);
        let f = build_data_packet(&flow(3), 10, flags::SYN, 0, 64);
        let ictx = IngressCtx { now_ns: 7, node: 0, port: 0, peer_tagged: false };
        let mut out = Actions::new();
        m.on_pipeline_drop(&ictx, &f, Some(flow(3)), DropCode::TableMiss, None, 0, &mut out);
        assert!(m.log.is_empty());
    }
}
