//! SNMP-style counter polling: per-interface counters collected on a
//! period. Knows *that* a device dropped packets, never *whose* — the
//! coarse granularity that sent the paper's Case-2 operators on an
//! hour-long reproduction hunt.

use fet_netsim::counters::PortCounters;
use fet_netsim::monitor::{Actions, SwitchMonitor};
use std::any::Any;

/// Bytes per counter poll response (a handful of OIDs per port).
pub const POLL_BYTES_PER_PORT: usize = 48;

/// One counter snapshot.
#[derive(Debug, Clone)]
pub struct CounterPoll {
    /// Poll time, ns.
    pub time_ns: u64,
    /// Counters per port at that time.
    pub counters: Vec<PortCounters>,
}

/// The per-switch SNMP agent.
#[derive(Debug)]
pub struct SnmpMonitor {
    /// Poll interval, ns.
    pub interval_ns: u64,
    /// Collected polls.
    pub polls: Vec<CounterPoll>,
}

impl SnmpMonitor {
    /// Create with a poll interval (production: 30–60 s; scale down for
    /// short simulations).
    pub fn new(interval_ns: u64) -> Self {
        SnmpMonitor { interval_ns: interval_ns.max(1), polls: Vec::new() }
    }

    /// Device-level drop deltas between consecutive polls:
    /// (poll time, total drops since previous poll).
    pub fn drop_deltas(&self) -> Vec<(u64, u64)> {
        let totals: Vec<(u64, u64)> = self
            .polls
            .iter()
            .map(|p| (p.time_ns, p.counters.iter().map(|c| c.total_drops()).sum::<u64>()))
            .collect();
        totals.windows(2).map(|w| (w[1].0, w[1].1 - w[0].1)).collect()
    }

    /// True if any poll interval showed drops — "the ToR indeed dropped
    /// packets during that period" is all SNMP can ever say.
    pub fn saw_drops(&self) -> bool {
        self.drop_deltas().iter().any(|&(_, d)| d > 0)
    }
}

impl SwitchMonitor for SnmpMonitor {
    fn on_timer(&mut self, now_ns: u64, counters: &[PortCounters], out: &mut Actions) {
        self.polls.push(CounterPoll { time_ns: now_ns, counters: counters.to_vec() });
        out.report(POLL_BYTES_PER_PORT * counters.len(), "snmp-poll");
    }

    fn timer_interval_ns(&self) -> Option<u64> {
        Some(self.interval_ns)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polls_capture_counters_and_meter_bytes() {
        let mut m = SnmpMonitor::new(1_000_000);
        let counters = vec![PortCounters::default(); 4];
        let mut out = Actions::new();
        m.on_timer(0, &counters, &mut out);
        assert_eq!(m.polls.len(), 1);
        assert_eq!(out.reports[0].bytes, 4 * POLL_BYTES_PER_PORT);
    }

    #[test]
    fn drop_deltas_between_polls() {
        let mut m = SnmpMonitor::new(1);
        let mut out = Actions::new();
        let zero = vec![PortCounters::default(); 2];
        m.on_timer(0, &zero, &mut out);
        let mut later = zero.clone();
        later[1].mmu_drops = 7;
        m.on_timer(100, &later, &mut out);
        assert_eq!(m.drop_deltas(), vec![(100, 7)]);
        assert!(m.saw_drops());
    }

    #[test]
    fn quiet_network_no_drops() {
        let mut m = SnmpMonitor::new(1);
        let mut out = Actions::new();
        let zero = vec![PortCounters::default(); 2];
        m.on_timer(0, &zero, &mut out);
        m.on_timer(100, &zero, &mut out);
        assert!(!m.saw_drops());
    }
}
