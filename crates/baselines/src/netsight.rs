//! NetSight (NSDI'14) model: every switch mirrors **every packet** it
//! processes, truncated to 64 bytes, plus metadata (forwarding latency and
//! ports) — "very similar to INT postcard mode" (paper §5). Full event
//! coverage, crushing overhead.

use crate::observe::{ObsKind, Observation, ObservationLog};
use fet_netsim::monitor::{Actions, EgressCtx, IngressCtx, RoutedCtx, SwitchMonitor};
use fet_packet::event::DropCode;
use fet_packet::FlowKey;
use std::any::Any;

/// Truncated mirror + metadata size per postcard.
pub const POSTCARD_BYTES: usize = 64 + 16;

/// The per-switch NetSight agent.
#[derive(Debug, Default)]
pub struct NetSightMonitor {
    /// Everything this switch mirrored.
    pub log: ObservationLog,
    /// Postcards emitted.
    pub postcards: u64,
}

impl NetSightMonitor {
    /// Fresh agent.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SwitchMonitor for NetSightMonitor {
    fn on_egress(&mut self, ctx: &EgressCtx<'_>, _frame: &mut Vec<u8>, out: &mut Actions) {
        let Some(flow) = ctx.meta.flow else { return };
        self.log.record(Observation {
            device: ctx.node,
            flow,
            t_ingress: ctx.meta.ingress_ts_ns,
            t_egress: ctx.now_ns,
            latency_ns: ctx.meta.queuing_delay_ns(),
            kind: ObsKind::Forwarded,
        });
        self.postcards += 1;
        out.report(POSTCARD_BYTES, "netsight-postcard");
    }

    fn on_pipeline_drop(
        &mut self,
        ctx: &IngressCtx,
        _frame: &[u8],
        flow: Option<FlowKey>,
        _code: DropCode,
        _egress_port: Option<u8>,
        _acl_rule: u32,
        out: &mut Actions,
    ) {
        let Some(flow) = flow else { return };
        self.log.record(Observation {
            device: ctx.node,
            flow,
            t_ingress: ctx.now_ns,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Dropped(fet_packet::EventType::PipelineDrop),
        });
        self.postcards += 1;
        out.report(POSTCARD_BYTES, "netsight-postcard");
    }

    fn on_mmu_drop(&mut self, ctx: &RoutedCtx, _frame: &[u8], out: &mut Actions) {
        self.log.record(Observation {
            device: ctx.node,
            flow: ctx.flow,
            t_ingress: ctx.now_ns,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Dropped(fet_packet::EventType::MmuDrop),
        });
        self.postcards += 1;
        out.report(POSTCARD_BYTES, "netsight-postcard");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_pdp::PacketMeta;

    fn flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            1,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            2,
        )
    }

    #[test]
    fn mirrors_every_forwarded_packet() {
        let mut m = NetSightMonitor::new();
        let mut meta = PacketMeta::arriving(0, 100, 64);
        meta.flow = Some(flow());
        meta.egress_ts_ns = 150;
        let ctx =
            EgressCtx { now_ns: 150, node: 1, port: 2, queue: 0, peer_tagged: false, meta: &meta };
        let mut out = Actions::new();
        let mut f = vec![0u8; 64];
        m.on_egress(&ctx, &mut f, &mut out);
        m.on_egress(&ctx, &mut f, &mut out);
        assert_eq!(m.postcards, 2);
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.reports[0].bytes, POSTCARD_BYTES);
        assert_eq!(m.log.obs[0].t_ingress, 100);
        assert_eq!(m.log.obs[0].t_egress, 150);
    }

    #[test]
    fn mirrors_drops_too() {
        let mut m = NetSightMonitor::new();
        let ictx = IngressCtx { now_ns: 5, node: 1, port: 0, peer_tagged: false };
        let mut out = Actions::new();
        m.on_pipeline_drop(&ictx, &[0u8; 64], Some(flow()), DropCode::TableMiss, None, 0, &mut out);
        assert_eq!(m.log.obs.len(), 1);
        assert_eq!(m.log.obs[0].kind, ObsKind::Dropped(fet_packet::EventType::PipelineDrop));
    }

    #[test]
    fn non_ip_frames_not_mirrored() {
        let mut m = NetSightMonitor::new();
        let meta = PacketMeta::arriving(0, 100, 64);
        let ctx =
            EgressCtx { now_ns: 150, node: 1, port: 2, queue: 0, peer_tagged: false, meta: &meta };
        let mut out = Actions::new();
        let mut f = vec![0u8; 64];
        m.on_egress(&ctx, &mut f, &mut out);
        assert_eq!(m.postcards, 0);
    }
}
