//! 1:k packet sampling (sFlow-style with egress metadata). Samples
//! forwarded packets only — dropped packets are never sampled, which is
//! why the paper finds "sampling cannot capture packet drops".

use crate::observe::{ObsKind, Observation, ObservationLog};
use fet_netsim::monitor::{Actions, EgressCtx, SwitchMonitor};
use std::any::Any;

/// Bytes mirrored per sample (truncated header + metadata).
pub const SAMPLE_BYTES: usize = 128;

/// Per-switch 1:k sampler.
#[derive(Debug)]
pub struct SamplingMonitor {
    /// Sampling ratio denominator (1:k).
    pub k: u64,
    counter: u64,
    /// What was sampled.
    pub log: ObservationLog,
    /// Samples emitted.
    pub samples: u64,
}

impl SamplingMonitor {
    /// Create a 1:k sampler.
    pub fn new(k: u64) -> Self {
        SamplingMonitor { k: k.max(1), counter: 0, log: ObservationLog::new(), samples: 0 }
    }
}

impl SwitchMonitor for SamplingMonitor {
    fn on_egress(&mut self, ctx: &EgressCtx<'_>, _frame: &mut Vec<u8>, out: &mut Actions) {
        let Some(flow) = ctx.meta.flow else { return };
        self.counter += 1;
        if !self.counter.is_multiple_of(self.k) {
            return;
        }
        self.log.record(Observation {
            device: ctx.node,
            flow,
            t_ingress: ctx.meta.ingress_ts_ns,
            t_egress: ctx.now_ns,
            latency_ns: ctx.meta.queuing_delay_ns(),
            kind: ObsKind::Forwarded,
        });
        self.samples += 1;
        out.report(SAMPLE_BYTES, "sample");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;
    use fet_pdp::PacketMeta;

    #[test]
    fn samples_every_kth_packet() {
        let mut m = SamplingMonitor::new(10);
        let mut meta = PacketMeta::arriving(0, 0, 64);
        meta.flow = Some(FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            1,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            2,
        ));
        let ctx =
            EgressCtx { now_ns: 1, node: 0, port: 0, queue: 0, peer_tagged: false, meta: &meta };
        let mut out = Actions::new();
        let mut f = vec![0u8; 64];
        for _ in 0..100 {
            m.on_egress(&ctx, &mut f, &mut out);
        }
        assert_eq!(m.samples, 10);
        assert_eq!(out.reports.len(), 10);
    }

    #[test]
    fn k_one_samples_everything() {
        let mut m = SamplingMonitor::new(1);
        let mut meta = PacketMeta::arriving(0, 0, 64);
        meta.flow = Some(FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            1,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            2,
        ));
        let ctx =
            EgressCtx { now_ns: 1, node: 0, port: 0, queue: 0, peer_tagged: false, meta: &meta };
        let mut out = Actions::new();
        let mut f = vec![0u8; 64];
        for _ in 0..5 {
            m.on_egress(&ctx, &mut f, &mut out);
        }
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn zero_k_clamped() {
        let m = SamplingMonitor::new(0);
        assert_eq!(m.k, 1);
    }
}
