//! Pingmesh-style scoring. The probing itself is a host behavior (see
//! [`fet_netsim::Simulator::schedule_probing`]); this module scores what
//! probes can and cannot tell an operator.
//!
//! Probes are their own flows: when the fabric congests, the probe flow
//! gets delayed too, so Pingmesh can detect that *something* is slow — but
//! it cannot name the victim application flows. Its flow-event coverage is
//! therefore the ground-truth congestion events whose victim happens to be
//! a probe flow (the paper measures 0.02%).

use fet_netsim::tracer::GroundTruth;
use fet_netsim::{NodeId, Simulator};
use fet_packet::event::EventType;
use fet_packet::IpProtocol;

/// Is this flow Pingmesh probe traffic (UDP echo to/from port 7)?
fn is_probe_flow(flow: &fet_packet::FlowKey) -> bool {
    flow.proto == IpProtocol::Udp
        && (flow.dport == fet_netsim::host::PROBE_ECHO_PORT
            || flow.sport == fet_netsim::host::PROBE_ECHO_PORT)
}

/// Congestion coverage: (covered, total) ground-truth congestion flow
/// events, where Pingmesh only ever covers probe-flow victims.
pub fn pingmesh_congestion_coverage(gt: &GroundTruth) -> (usize, usize) {
    let events = gt.flow_events(EventType::Congestion);
    let covered = events.iter().filter(|(_, f)| is_probe_flow(f)).count();
    (covered, events.len())
}

/// Existence detection: did any probe RTT exceed `threshold_ns` in
/// `[from, to)`? This is the *device-agnostic* alarm Pingmesh raises.
pub fn pingmesh_saw_slowness(
    sim: &Simulator,
    hosts: &[NodeId],
    threshold_ns: u64,
    from_ns: u64,
    to_ns: u64,
) -> bool {
    hosts.iter().any(|&h| {
        sim.host(h).probe_samples.iter().any(|s| {
            let t = s.sent_ns + s.rtt_ns;
            s.rtt_ns > threshold_ns && t >= from_ns && t < to_ns
        })
    })
}

/// Probe loss detection: probes that timed out anywhere in the mesh.
pub fn pingmesh_saw_loss(sim: &Simulator, hosts: &[NodeId]) -> bool {
    hosts.iter().any(|&h| sim.host(h).probes_lost > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_netsim::tracer::GtEvent;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn data_flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            100,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn probe_flow() -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            20_001,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            7,
        )
    }

    #[test]
    fn covers_only_probe_flow_events() {
        let mut gt = GroundTruth::new();
        for (i, f) in [data_flow(), probe_flow()].into_iter().enumerate() {
            gt.record(GtEvent {
                time_ns: i as u64,
                device: 1,
                ty: EventType::Congestion,
                flow: Some(f),
                drop_code: None,
                acl_rule: None,
            });
        }
        assert_eq!(pingmesh_congestion_coverage(&gt), (1, 2));
    }

    #[test]
    fn empty_gt_is_zero_over_zero() {
        let gt = GroundTruth::new();
        assert_eq!(pingmesh_congestion_coverage(&gt), (0, 0));
    }

    #[test]
    fn probe_reply_direction_also_counts() {
        let mut gt = GroundTruth::new();
        gt.record(GtEvent {
            time_ns: 0,
            device: 1,
            ty: EventType::Congestion,
            flow: Some(probe_flow().reversed()),
            drop_code: None,
            acl_rule: None,
        });
        assert_eq!(pingmesh_congestion_coverage(&gt), (1, 1));
    }
}
