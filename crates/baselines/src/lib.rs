//! Baseline monitors the paper compares NetSeer against (§5):
//!
//! * [`snmp`] — periodic interface counters (no flow information);
//! * [`sampling`] — 1:k packet sampling (sFlow/ERSPAN-style);
//! * [`pingmesh`] — full-mesh probing, scored from host probe RTTs;
//! * [`everflow`] — SYN/FIN mirroring + on-demand telemetry of a rotating
//!   set of traced flows;
//! * [`netsight`] — per-packet postcards, truncated to 64 B: full
//!   coverage at massive overhead.
//!
//! All monitors share the "did you capture the event packet?" coverage
//! semantics of [`observe`]: an observation covers a ground-truth flow
//! event only when the monitor actually recorded the packet that
//! experienced the event, matched by (device, flow, timestamp).

#![warn(missing_docs)]

pub mod everflow;
pub mod netsight;
pub mod observe;
pub mod pingmesh;
pub mod sampling;
pub mod snmp;

pub use everflow::EverFlowMonitor;
pub use netsight::NetSightMonitor;
pub use observe::{coverage, ObsKind, Observation, ObservationLog};
pub use pingmesh::{pingmesh_congestion_coverage, pingmesh_saw_loss, pingmesh_saw_slowness};
pub use sampling::SamplingMonitor;
pub use snmp::SnmpMonitor;
