//! Shared observation log + event-packet coverage scoring.
//!
//! Coverage semantics (matching the paper's §5.2 methodology): a monitor
//! covers a ground-truth flow event iff it captured *the packet that
//! experienced the event* — matched here by (device, flow) plus the
//! event's exact timestamp (ingress time for path-change/pause, egress
//! time for congestion and inter-switch loss, hook time for drops).

use fet_netsim::tracer::GroundTruth;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use std::collections::{BTreeSet, HashMap};

/// What kind of packet observation this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// A forwarded packet mirrored at egress.
    Forwarded,
    /// A packet mirrored at a drop hook.
    Dropped(EventType),
}

/// One mirrored-packet observation.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Device that mirrored it.
    pub device: u32,
    /// The packet's flow.
    pub flow: FlowKey,
    /// The packet's arrival time at the device, ns.
    pub t_ingress: u64,
    /// Its dequeue (egress) time, ns; 0 when not applicable.
    pub t_egress: u64,
    /// Queuing latency carried in the mirror metadata, ns.
    pub latency_ns: u64,
    /// Forwarded or dropped.
    pub kind: ObsKind,
}

/// A monitor's accumulated observations.
#[derive(Debug, Default)]
pub struct ObservationLog {
    /// All observations in arrival order.
    pub obs: Vec<Observation>,
}

impl ObservationLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, o: Observation) {
        self.obs.push(o);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }
}

/// Score a monitor's coverage of `ty` against ground truth:
/// returns (covered flow events, total flow events).
pub fn coverage(gt: &GroundTruth, log: &ObservationLog, ty: EventType) -> (usize, usize) {
    // Ground-truth event-packet times per (device, flow).
    let mut times: HashMap<(u32, FlowKey), BTreeSet<u64>> = HashMap::new();
    for e in gt.events().iter().filter(|e| e.ty == ty) {
        if let Some(f) = e.flow {
            times.entry((e.device, f)).or_default().insert(e.time_ns);
        }
    }
    let total = times.len();
    if total == 0 {
        return (0, 0);
    }
    let mut covered: BTreeSet<(u32, FlowKey)> = BTreeSet::new();
    for o in &log.obs {
        let key = (o.device, o.flow);
        let Some(ts) = times.get(&key) else { continue };
        let hit = match (ty, o.kind) {
            // Drop classes need the drop-hook (or last-egress) observation.
            (EventType::PipelineDrop, ObsKind::Dropped(EventType::PipelineDrop))
            | (EventType::MmuDrop, ObsKind::Dropped(EventType::MmuDrop)) => {
                ts.contains(&o.t_ingress) || ts.contains(&o.t_egress)
            }
            // Inter-switch loss: the upstream egress mirror of the very
            // packet that then died on the wire.
            (EventType::InterSwitchDrop, ObsKind::Forwarded) => ts.contains(&o.t_egress),
            // Congestion: egress mirror of a packet whose recorded latency
            // marked it (the timestamp match implies the threshold).
            (EventType::Congestion, ObsKind::Forwarded) => ts.contains(&o.t_egress),
            // Path change / pause: events stamped at ingress processing.
            (EventType::PathChange, ObsKind::Forwarded)
            | (EventType::Pause, ObsKind::Forwarded) => ts.contains(&o.t_ingress),
            _ => false,
        };
        if hit {
            covered.insert(key);
        }
    }
    (covered.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_netsim::tracer::GtEvent;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn gt_with(ty: EventType, dev: u32, n: u16, t: u64) -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.record(GtEvent {
            time_ns: t,
            device: dev,
            ty,
            flow: Some(flow(n)),
            drop_code: None,
            acl_rule: None,
        });
        gt
    }

    #[test]
    fn congestion_covered_only_by_matching_egress_time() {
        let gt = gt_with(EventType::Congestion, 1, 5, 1_000);
        let mut log = ObservationLog::new();
        // Wrong time: not the event packet.
        log.record(Observation {
            device: 1,
            flow: flow(5),
            t_ingress: 0,
            t_egress: 999,
            latency_ns: 50_000,
            kind: ObsKind::Forwarded,
        });
        assert_eq!(coverage(&gt, &log, EventType::Congestion), (0, 1));
        // The event packet itself.
        log.record(Observation {
            device: 1,
            flow: flow(5),
            t_ingress: 0,
            t_egress: 1_000,
            latency_ns: 50_000,
            kind: ObsKind::Forwarded,
        });
        assert_eq!(coverage(&gt, &log, EventType::Congestion), (1, 1));
    }

    #[test]
    fn path_change_matches_ingress_time() {
        let gt = gt_with(EventType::PathChange, 2, 7, 5_000);
        let mut log = ObservationLog::new();
        log.record(Observation {
            device: 2,
            flow: flow(7),
            t_ingress: 5_000,
            t_egress: 9_999,
            latency_ns: 0,
            kind: ObsKind::Forwarded,
        });
        assert_eq!(coverage(&gt, &log, EventType::PathChange), (1, 1));
    }

    #[test]
    fn drops_need_drop_observations() {
        let gt = gt_with(EventType::PipelineDrop, 3, 1, 100);
        let mut log = ObservationLog::new();
        log.record(Observation {
            device: 3,
            flow: flow(1),
            t_ingress: 100,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Forwarded,
        });
        assert_eq!(coverage(&gt, &log, EventType::PipelineDrop), (0, 1));
        log.record(Observation {
            device: 3,
            flow: flow(1),
            t_ingress: 100,
            t_egress: 0,
            latency_ns: 0,
            kind: ObsKind::Dropped(EventType::PipelineDrop),
        });
        assert_eq!(coverage(&gt, &log, EventType::PipelineDrop), (1, 1));
    }

    #[test]
    fn wrong_device_never_covers() {
        let gt = gt_with(EventType::Congestion, 1, 5, 1_000);
        let mut log = ObservationLog::new();
        log.record(Observation {
            device: 2,
            flow: flow(5),
            t_ingress: 0,
            t_egress: 1_000,
            latency_ns: 0,
            kind: ObsKind::Forwarded,
        });
        assert_eq!(coverage(&gt, &log, EventType::Congestion), (0, 1));
    }

    #[test]
    fn empty_ground_truth_scores_zero_total() {
        let gt = GroundTruth::new();
        let log = ObservationLog::new();
        assert_eq!(coverage(&gt, &log, EventType::Pause), (0, 0));
    }
}
