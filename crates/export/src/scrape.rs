//! Scrape adapters: read the system's existing stat surfaces into the
//! registry under the `fet_*` naming scheme.
//!
//! Adapters are *pull*-shaped and stateless: each snapshot rebuilds its
//! families from the authoritative counters (collector ledger and spill
//! store, analytics SLA/top-k, wire reject taxonomy, watchdog incidents,
//! fleet monitor counters), so the registry can never drift from the
//! system of record and re-scraping is idempotent. Every label value is
//! derived from bounded sets (ledger terms, reject reasons, device ids,
//! capped top-k/stream maps), and the registry's hard cardinality caps
//! backstop anything a hostile workload could mint.

use crate::registry::MetricRegistry;
use fet_analytics::{AnalyticsEngine, BreachWindow};
use fet_netsim::engine::Simulator;
use fet_wire::{ALL_CLOCK_LIES, ALL_REASONS};
use netseer::deploy::{fleet_ledger, fleet_stats};
use netseer::recovery::Collector;
use netseer::watchdog::WatchdogLog;
use netseer::{DeliveryLedger, WireIngest};

/// SLA breach-window duration buckets, ns (windows are ~1 ms wide and
/// merge while contiguous).
pub const BREACH_DURATION_BOUNDS_NS: [f64; 4] = [1e6, 2e6, 4e6, 8e6];

/// Publish one [`DeliveryLedger`]'s terms under a `scope` label
/// (`fleet`, `wire`, `merged`, ...). Occupancy-style terms (`pending`,
/// `buffered`) are gauges; terminal dispositions are counters.
pub fn scrape_ledger(reg: &mut MetricRegistry, scope: &str, l: &DeliveryLedger) {
    let s = [("scope", scope)];
    reg.counter_add(
        "fet_events_generated_total",
        "Event records handed to the reporting path (post-dedup).",
        &s,
        l.generated,
    );
    reg.counter_add(
        "fet_events_delivered_total",
        "Events that reached the backend store.",
        &s,
        l.delivered,
    );
    for (reason, v) in [
        ("stack", l.shed_stack),
        ("pcie", l.shed_pcie),
        ("cpu_overload", l.shed_cpu_overload),
        ("false_positive", l.shed_false_positive),
        ("transport", l.shed_transport),
    ] {
        reg.counter_add(
            "fet_events_shed_total",
            "Events shed at a named, counted choke point.",
            &[("scope", scope), ("reason", reason)],
            v,
        );
    }
    reg.gauge_set(
        "fet_events_pending",
        "Events still in flight (batcher stack + open CEBP).",
        &s,
        l.pending as f64,
    );
    reg.gauge_set(
        "fet_events_buffered",
        "Events parked in the collector's durable spill buffer.",
        &s,
        l.buffered as f64,
    );
    reg.counter_add(
        "fet_events_lost_to_crash_total",
        "Events lost to hard kills (bounded by the fsync window).",
        &s,
        l.lost_to_crash,
    );
    reg.counter_add(
        "fet_events_corrupted_total",
        "Events whose report failed CRC on every transmission attempt.",
        &s,
        l.corrupted,
    );
    reg.counter_add(
        "fet_events_malformed_total",
        "Wire-claimed records the collector could not decode.",
        &s,
        l.malformed,
    );
}

/// Publish the collector's admission, spill, quarantine, and
/// exactly-once gate counters.
pub fn scrape_collector(reg: &mut MetricRegistry, c: &Collector) {
    reg.gauge_set(
        "fet_collector_backlog",
        "Events admitted to memory, not yet drained by a subscriber.",
        &[],
        c.backlog() as f64,
    );
    reg.gauge_set(
        "fet_collector_backpressure_level",
        "Load over watermark; monitors widen flush strides to 2^level.",
        &[],
        f64::from(c.backpressure_level()),
    );
    reg.counter_add(
        "fet_collector_duplicates_rejected_total",
        "Redeliveries dropped by the per-device epoch/seq gates.",
        &[],
        c.duplicates_rejected(),
    );
    reg.counter_add(
        "fet_collector_stale_epoch_rejected_total",
        "Deliveries from superseded epochs dropped at the gate.",
        &[],
        c.stale_epoch_rejected(),
    );
    reg.counter_add(
        "fet_collector_poison_quarantined_total",
        "Poison frames offered to the quarantine (CRC failures, wire rejects).",
        &[],
        c.poison_seen,
    );
    reg.gauge_set(
        "fet_collector_quarantine_held",
        "Poison frames currently retained (retention-bounded).",
        &[],
        c.quarantine().len() as f64,
    );
    reg.counter_add(
        "fet_collector_restarts_total",
        "Collector crash/restart cycles.",
        &[],
        c.restarts,
    );
    let sp = c.spill();
    for (name, help, v) in [
        ("fet_spill_records_appended_total", "Records written to the spill store.", sp.appended),
        ("fet_spill_records_drained_total", "Records applied out of the spill.", sp.drained),
        ("fet_spill_records_replayed_total", "Records re-read after a crash rewind.", sp.replayed),
        ("fet_spill_records_refused_total", "Appends refused by the byte budget.", sp.refused),
        ("fet_spill_records_torn_total", "Records destroyed by torn tails.", sp.torn_records),
        ("fet_spill_fsyncs_total", "Spill fsync calls.", sp.fsyncs),
        ("fet_spill_commits_total", "Durable-cursor commits.", sp.commits),
        ("fet_spill_rotations_total", "Segment rotations.", sp.rotations),
        ("fet_spill_segments_acked_total", "Fully-acked segments deleted.", sp.acked_segments),
        ("fet_spill_crashes_total", "Crash/tear cycles applied to the store.", sp.crashes),
    ] {
        reg.counter_add(name, help, &[], v);
    }
    reg.gauge_set(
        "fet_spill_records_pending",
        "Records currently parked on disk.",
        &[],
        sp.pending() as f64,
    );
}

/// Publish the analytics engine's ledger, top-k, and upstream-loss
/// scrapes. `top_n` bounds the per-flow series (cardinality <= n).
pub fn scrape_analytics(reg: &mut MetricRegistry, e: &AnalyticsEngine, top_n: usize) {
    let l = e.ledger();
    reg.counter_add(
        "fet_analytics_ingested_total",
        "Events handed to the analytics shards.",
        &[],
        l.ingested,
    );
    reg.counter_add(
        "fet_analytics_aggregated_total",
        "Events accepted by the window aggregators.",
        &[],
        l.aggregated,
    );
    reg.counter_add(
        "fet_analytics_sketch_absorbed_total",
        "Events absorbed by the top-k sketches past the aggregator caps.",
        &[],
        l.sketch_absorbed,
    );
    reg.counter_add(
        "fet_analytics_shed_total",
        "Events refused by both aggregator and sketch (counted shed).",
        &[],
        l.shed_analytics,
    );
    reg.counter_add(
        "fet_time_late_admitted_total",
        "Late events admitted within the lateness bound (also disposed normally).",
        &[],
        l.late_admitted,
    );
    reg.counter_add(
        "fet_time_late_shed_total",
        "Events older than the watermark's lateness bound, shed with account.",
        &[],
        l.late_shed,
    );
    reg.gauge_set(
        "fet_time_pending_reorder",
        "Events held in the event-time reorder buffers, awaiting the watermark.",
        &[],
        l.pending_reorder as f64,
    );
    reg.counter_add(
        "fet_analytics_processed_total",
        "Events processed since engine construction.",
        &[],
        e.processed,
    );
    reg.counter_add(
        "fet_analytics_restarts_total",
        "Engine crash/restart cycles.",
        &[],
        e.restarts,
    );
    for entry in e.top_flows(top_n) {
        let flow = entry.flow.to_string();
        reg.gauge_set(
            "fet_analytics_top_flow_events",
            "Estimated event weight of a top-k victim flow (overestimate).",
            &[("flow", &flow)],
            entry.count as f64,
        );
        reg.gauge_set(
            "fet_analytics_top_flow_error",
            "Maximum overestimation of the flow's weight.",
            &[("flow", &flow)],
            entry.error as f64,
        );
    }
    for r in e.upstream_losses() {
        let proto = r.protocol.version().to_string();
        let domain = r.domain.to_string();
        let lbls = [("domain", domain.as_str()), ("protocol", proto.as_str())];
        reg.counter_add(
            "fet_wire_upstream_lost_total",
            "Records lost before the collector's doorstep (sequence gaps).",
            &lbls,
            r.lost,
        );
        reg.counter_add(
            "fet_wire_upstream_gaps_total",
            "Distinct sequence gaps per exporter stream.",
            &lbls,
            r.gaps,
        );
    }
}

/// Publish finished SLA breach windows: per-device counts/drop weight
/// plus a duration histogram.
pub fn scrape_breaches(reg: &mut MetricRegistry, breaches: &[BreachWindow]) {
    for b in breaches {
        let device = b.device.to_string();
        let lbls = [("device", device.as_str())];
        reg.counter_add(
            "fet_sla_breach_windows_total",
            "Contiguous SLA violation spans per device.",
            &lbls,
            1,
        );
        reg.counter_add(
            "fet_sla_breach_drops_total",
            "Dropped-packet weight inside breach spans.",
            &lbls,
            b.drops,
        );
        reg.histogram_observe(
            "fet_sla_breach_duration_ns",
            "Distribution of breach-span durations.",
            &BREACH_DURATION_BOUNDS_NS,
            &[],
            (b.to_ns - b.from_ns) as f64,
        );
    }
}

/// Publish the wire-ingest session: datagram dispositions, the
/// per-reason reject taxonomy (fatal and soft), and template-cache
/// pressure.
pub fn scrape_wire(reg: &mut MetricRegistry, w: &WireIngest) {
    let stats = w.session().stats();
    reg.counter_add(
        "fet_wire_datagrams_total",
        "Datagrams offered to the wire session.",
        &[],
        stats.datagrams,
    );
    reg.counter_add(
        "fet_wire_datagrams_accepted_total",
        "Datagrams that decoded (possibly with soft defects).",
        &[],
        stats.accepted,
    );
    reg.counter_add(
        "fet_wire_datagrams_rejected_total",
        "Datagrams rejected outright and quarantined.",
        &[],
        stats.rejected,
    );
    reg.counter_add(
        "fet_wire_records_decoded_total",
        "Flow records decoded into FET events.",
        &[],
        stats.decoded,
    );
    for reason in ALL_REASONS {
        let lbls = [("reason", reason.as_str())];
        reg.counter_add(
            "fet_wire_rejects_total",
            "Datagram-fatal rejects by reason.",
            &lbls,
            stats.rejects[reason.index()],
        );
        reg.counter_add(
            "fet_wire_soft_rejects_total",
            "Per-record soft damage by reason (booked as malformed).",
            &lbls,
            stats.soft[reason.index()],
        );
    }
    for lie in ALL_CLOCK_LIES {
        reg.counter_add(
            "fet_time_clock_lies_total",
            "Exporter clock lies vetted at ingest, by kind (always soft).",
            &[("kind", lie.as_str())],
            stats.clock_lies[lie.index()],
        );
    }
    reg.counter_add(
        "fet_time_clamped_stamps_total",
        "Datagram event times clamped to the collector's receive clock.",
        &[],
        stats.clamped_stamps,
    );
    let cache = w.session().cache();
    reg.gauge_set(
        "fet_wire_template_domains",
        "Observation domains currently cached (hard-capped).",
        &[],
        cache.domain_count() as f64,
    );
    reg.gauge_set(
        "fet_wire_template_max_domain",
        "Templates in the busiest cached domain (hard-capped).",
        &[],
        cache.max_domain_len() as f64,
    );
    let ts = cache.stats();
    for (name, help, v) in [
        ("fet_wire_templates_installed_total", "Templates accepted.", ts.installed),
        ("fet_wire_templates_refreshed_total", "Template re-announcements.", ts.refreshed),
        ("fet_wire_templates_evicted_total", "Templates LRU-evicted.", ts.evicted_lru),
        ("fet_wire_template_domains_evicted_total", "Whole domains evicted.", ts.evicted_domains),
        ("fet_wire_templates_expired_total", "Templates dropped as stale.", ts.expired),
        ("fet_wire_templates_rejected_total", "Announcements refused by bounds.", ts.rejected),
    ] {
        reg.counter_add(name, help, &[], v);
    }
}

/// Publish watchdog supervision outcomes.
pub fn scrape_watchdog(reg: &mut MetricRegistry, log: &WatchdogLog) {
    reg.counter_add(
        "fet_watchdog_incidents_total",
        "Monitors declared suspect and hard-killed by the watchdog.",
        &[],
        log.incidents().len() as u64,
    );
    reg.counter_add(
        "fet_watchdog_restarts_total",
        "Supervised restarts completed.",
        &[],
        log.restarts().len() as u64,
    );
    reg.gauge_set(
        "fet_time_watchdog_max_skew_ns",
        "Largest absolute monitor-clock skew observed at a liveness check.",
        &[],
        log.max_abs_skew_ns() as f64,
    );
    reg.counter_add(
        "fet_time_watchdog_drift_flagged_total",
        "Liveness checks whose observed skew exceeded the drift tolerance (observational; never kills).",
        &[],
        log.drift_flagged(),
    );
}

/// Publish the fleet-wide monitor surfaces: the summed delivery ledger
/// (scope `fleet`) and the reliability counters.
pub fn scrape_fleet(reg: &mut MetricRegistry, sim: &Simulator) {
    scrape_ledger(reg, "fleet", &fleet_ledger(sim));
    let fs = fleet_stats(sim);
    for (name, help, v) in [
        (
            "fet_fleet_crc_failures_total",
            "CEBP batches failing CRC-32C (implicit NACKs).",
            fs.crc_failures,
        ),
        (
            "fet_fleet_wal_records_rejected_total",
            "WAL records rejected by torn-tail replay.",
            fs.wal_records_rejected,
        ),
        (
            "fet_fleet_flushes_skipped_total",
            "Partial flushes held back by widened strides.",
            fs.flushes_skipped,
        ),
        ("fet_fleet_retransmissions_total", "Transport retransmissions.", fs.retransmissions),
        (
            "fet_fleet_notification_drops_total",
            "Loss-notification copies dropped.",
            fs.notification_copies_dropped,
        ),
        ("fet_fleet_monitor_restarts_total", "Monitor restarts completed.", fs.restarts),
    ] {
        reg.counter_add(name, help, &[], v);
    }
    reg.counter_add(
        "fet_fleet_mgmt_bytes_total",
        "Bytes carried on the management network.",
        &[],
        sim.mgmt.total_bytes(),
    );
}

/// Publish the parallel executor's cross-shard synchronization counters.
///
/// All-zero under serial execution; under sharded execution the values are
/// a deterministic function of (scenario, shard count, ring capacity) —
/// they belong in same-configuration determinism fingerprints but NOT in
/// serial-vs-parallel comparisons.
pub fn scrape_sim_sync(reg: &mut MetricRegistry, sim: &Simulator) {
    let s = sim.sync_stats();
    for (name, help, v) in [
        (
            "fet_sim_segments_total",
            "Conservative-parallel segments executed between management barriers.",
            s.segments,
        ),
        (
            "fet_sim_epochs_executed_total",
            "Synchronization rounds (barrier crossings) summed over workers.",
            s.epochs_executed,
        ),
        (
            "fet_sim_epochs_batched_total",
            "Extra lookahead epochs folded into a single synchronization round.",
            s.epochs_batched,
        ),
        (
            "fet_sim_ring_messages_total",
            "Cross-shard events carried over the SPSC rings.",
            s.ring_messages,
        ),
        (
            "fet_sim_ring_stalls_total",
            "Ring-full occurrences diverted to the overflow spill path.",
            s.ring_stalls,
        ),
    ] {
        reg.counter_add(name, help, &[], v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::{parse_exposition, render_prometheus};
    use fet_analytics::{AnalyticsConfig, LinkMap};

    #[test]
    fn ledger_terms_scrape_exactly() {
        let l = DeliveryLedger {
            generated: 100,
            delivered: 60,
            shed_cpu_overload: 10,
            pending: 5,
            buffered: 15,
            lost_to_crash: 4,
            corrupted: 3,
            malformed: 3,
            ..Default::default()
        };
        assert!(l.balanced());
        let mut reg = MetricRegistry::default();
        scrape_ledger(&mut reg, "fleet", &l);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        let get = |n: &str| doc.value(n, &[("scope", "fleet")]).unwrap();
        let shed: f64 = doc.sum("fet_events_shed_total");
        assert_eq!(get("fet_events_generated_total"), 100.0);
        assert_eq!(
            get("fet_events_generated_total"),
            get("fet_events_delivered_total")
                + shed
                + get("fet_events_pending")
                + get("fet_events_buffered")
                + get("fet_events_lost_to_crash_total")
                + get("fet_events_corrupted_total")
                + get("fet_events_malformed_total"),
            "the scraped identity must balance"
        );
    }

    #[test]
    fn collector_and_wire_scrapes_cover_their_counters() {
        let mut c = Collector::new();
        let _sub = c.subscribe();
        let mut w = WireIngest::default();
        // One good datagram and one fatal reject.
        let dg = fet_wire::builder::v5_datagram(
            0,
            0,
            1,
            &[fet_wire::FlowSample {
                flow: fet_packet::FlowKey::tcp(
                    fet_packet::Ipv4Addr::from_octets([10, 0, 0, 1]),
                    1,
                    fet_packet::Ipv4Addr::from_octets([10, 0, 0, 2]),
                    80,
                ),
                in_port: 0,
                out_port: 1,
                packets: 1,
                bytes: 100,
                tcp_flags: 0,
                forwarding_status: None,
                first_ms: 0,
                last_ms: 0,
            }],
        );
        w.ingest_datagram(&mut c, &dg, 0);
        w.ingest_datagram(&mut c, &[0, 99, 0, 0], 0);
        let mut reg = MetricRegistry::default();
        scrape_collector(&mut reg, &c);
        scrape_wire(&mut reg, &w);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        assert_eq!(doc.value("fet_wire_datagrams_total", &[]), Some(2.0));
        assert_eq!(doc.value("fet_wire_datagrams_rejected_total", &[]), Some(1.0));
        assert_eq!(doc.value("fet_wire_rejects_total", &[("reason", "bad-version")]), Some(1.0));
        assert_eq!(doc.value("fet_collector_poison_quarantined_total", &[]), Some(1.0));
        assert_eq!(doc.value("fet_collector_backlog", &[]), Some(1.0));
    }

    #[test]
    fn sim_sync_scrape_covers_serial_and_parallel() {
        // Serial execution: every sync family exists and reads zero.
        let sim = Simulator::new();
        let mut reg = MetricRegistry::default();
        scrape_sim_sync(&mut reg, &sim);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        for name in [
            "fet_sim_segments_total",
            "fet_sim_epochs_executed_total",
            "fet_sim_epochs_batched_total",
            "fet_sim_ring_messages_total",
            "fet_sim_ring_stalls_total",
        ] {
            assert_eq!(doc.value(name, &[]), Some(0.0), "{name} missing or nonzero");
        }

        // Sharded execution: barrier rounds must show up in the scrape.
        let mut sim = Simulator::new();
        let ft = fet_netsim::topology::build_fat_tree(
            &mut sim,
            &fet_netsim::topology::FatTreeParams::default(),
        );
        fet_netsim::routing::install_ecmp_routes(&mut sim);
        let key = fet_packet::FlowKey::tcp(ft.host_ips[0], 3000, ft.host_ips[7], 80);
        let idx = sim.host_mut(ft.hosts[0]).add_flow(fet_netsim::host::FlowSpec {
            key,
            total_bytes: 100_000,
            pkt_payload: 1000,
            rate_gbps: 5.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(ft.hosts[0], idx);
        sim.run_until_parallel(1_000_000, 2);
        let mut reg = MetricRegistry::default();
        scrape_sim_sync(&mut reg, &sim);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        assert!(doc.value("fet_sim_segments_total", &[]).unwrap() >= 1.0);
        assert!(doc.value("fet_sim_epochs_executed_total", &[]).unwrap() >= 1.0);
    }

    #[test]
    fn time_fault_families_scrape() {
        let mut c = Collector::new();
        let mut w = WireIngest::default();
        // A datagram claiming a far-future export time: accepted, lie
        // booked, stamp clamped — all three must surface as fet_time_*.
        let dg = fet_wire::builder::v5_datagram_with_times(
            0,
            0,
            1,
            &[fet_wire::FlowSample::default()],
            1,
            1_000,
            2_000_000_000,
        );
        w.ingest_datagram(&mut c, &dg, 1_000_000_000);
        let mut reg = MetricRegistry::default();
        scrape_wire(&mut reg, &w);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        assert_eq!(doc.value("fet_time_clock_lies_total", &[("kind", "future-export")]), Some(1.0));
        assert_eq!(
            doc.value("fet_time_clock_lies_total", &[("kind", "frozen-sysuptime")]),
            Some(0.0)
        );
        assert_eq!(doc.value("fet_time_clamped_stamps_total", &[]), Some(1.0));

        let eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        let mut reg = MetricRegistry::default();
        scrape_analytics(&mut reg, &eng, 8);
        let doc = parse_exposition(&render_prometheus(&reg)).unwrap();
        for name in
            ["fet_time_late_admitted_total", "fet_time_late_shed_total", "fet_time_pending_reorder"]
        {
            assert_eq!(doc.value(name, &[]), Some(0.0), "{name} missing");
        }
    }

    #[test]
    fn analytics_scrape_is_idempotent() {
        let eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        let mut a = MetricRegistry::default();
        scrape_analytics(&mut a, &eng, 8);
        let text_a = render_prometheus(&a);
        let mut b = MetricRegistry::default();
        scrape_analytics(&mut b, &eng, 8);
        assert_eq!(text_a, render_prometheus(&b), "same source state, same snapshot");
    }
}
