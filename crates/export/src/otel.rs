//! OTel-shaped JSON: one OTLP-style `resourceMetrics` document, written
//! by hand (no serde — the workspace builds fully offline).
//!
//! The field names follow OTLP/JSON conventions so a real OpenTelemetry
//! collector's shape expectations hold: counters become monotonic
//! cumulative `sum`s, gauges become `gauge`s, histograms become
//! cumulative `histogram`s with `explicitBounds` + `bucketCounts`
//! (`aggregationTemporality: 2` throughout). All 64-bit integers render
//! as JSON strings, matching protojson.
//!
//! Timestamps are **sim time**, never wall clock: callers pass the run's
//! start and snapshot nanos, so the document is bit-identical across
//! runs, shard counts, and machines — the same determinism contract the
//! rest of the repo holds (`startTimeUnixNano`/`timeUnixNano`).

use crate::prom::fmt_f64;
use crate::registry::{Family, LabelSet, MetricRegistry, SeriesValue};
use std::fmt::Write;

/// Render the registry as one OTLP/JSON resource-metrics document with
/// the given sim-time span.
pub fn render_otel(reg: &MetricRegistry, start_ns: u64, now_ns: u64) -> String {
    let mut out = String::new();
    out.push_str("{\"resourceMetrics\":[{\"resource\":{\"attributes\":[");
    out.push_str("{\"key\":\"service.name\",\"value\":{\"stringValue\":\"netseer\"}}");
    out.push_str("]},\"scopeMetrics\":[{\"scope\":{\"name\":\"fet-export\",");
    out.push_str("\"version\":\"0.1.0\"},\"metrics\":[");
    let mut first = true;
    for fam in reg.families() {
        render_metric(&mut out, fam, start_ns, now_ns, &mut first);
    }
    for fam in reg.meta_families() {
        render_metric(&mut out, &fam, start_ns, now_ns, &mut first);
    }
    out.push_str("]}]}]}");
    out
}

fn render_metric(out: &mut String, fam: &Family, start_ns: u64, now_ns: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"description\":\"{}\",",
        json_escape(&fam.name),
        json_escape(&fam.help)
    );
    match fam.series.values().next() {
        Some(SeriesValue::Counter(_)) | None => {
            out.push_str("\"sum\":{\"dataPoints\":[");
            render_points(out, fam, start_ns, now_ns);
            out.push_str("],\"aggregationTemporality\":2,\"isMonotonic\":true}}");
        }
        Some(SeriesValue::Gauge(_)) => {
            out.push_str("\"gauge\":{\"dataPoints\":[");
            render_points(out, fam, start_ns, now_ns);
            out.push_str("]}}");
        }
        Some(SeriesValue::Histogram { .. }) => {
            out.push_str("\"histogram\":{\"dataPoints\":[");
            render_points(out, fam, start_ns, now_ns);
            out.push_str("],\"aggregationTemporality\":2}}");
        }
    }
}

fn render_points(out: &mut String, fam: &Family, start_ns: u64, now_ns: u64) {
    let mut first = true;
    for (ls, value) in &fam.series {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        render_attributes(out, ls);
        let _ = write!(out, "\"startTimeUnixNano\":\"{start_ns}\",\"timeUnixNano\":\"{now_ns}\",");
        match value {
            SeriesValue::Counter(v) => {
                let _ = write!(out, "\"asInt\":\"{v}\"");
            }
            SeriesValue::Gauge(v) => {
                let _ = write!(out, "\"asDouble\":{}", json_number(*v));
            }
            SeriesValue::Histogram { buckets, sum, count } => {
                let _ = write!(out, "\"count\":\"{count}\",\"sum\":{},", json_number(*sum));
                out.push_str("\"bucketCounts\":[");
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{b}\"");
                }
                out.push_str("],\"explicitBounds\":[");
                for (i, b) in fam.bounds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_number(*b));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
}

fn render_attributes(out: &mut String, ls: &LabelSet) {
    out.push_str("\"attributes\":[");
    for (i, (k, v)) in ls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"key\":\"{}\",\"value\":{{\"stringValue\":\"{}\"}}}}",
            json_escape(k),
            json_escape(v)
        );
    }
    out.push_str("],");
}

/// JSON string escaping (the control-character subset our label values
/// can contain, plus the mandatory quote/backslash).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON numbers must be finite; infinities clamp to protojson's string
/// forms are not valid for asDouble, so we saturate like collectors do.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else if v > 0.0 {
        "1.7976931348623157e308".to_string()
    } else {
        "-1.7976931348623157e308".to_string()
    }
}

/// Minimal structural JSON validator (objects, arrays, strings, numbers,
/// literals). The golden tests run every rendered document through this,
/// so "OTel-shaped" at least always means "valid JSON".
pub fn validate_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !skip_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn skip_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => skip_composite(b, pos, b'}', true),
        Some(b'[') => skip_composite(b, pos, b']', false),
        Some(b'"') => skip_string(b, pos),
        Some(b't') => skip_lit(b, pos, b"true"),
        Some(b'f') => skip_lit(b, pos, b"false"),
        Some(b'n') => skip_lit(b, pos, b"null"),
        Some(_) => skip_number(b, pos),
        None => false,
    }
}

fn skip_composite(b: &[u8], pos: &mut usize, close: u8, keyed: bool) -> bool {
    *pos += 1; // opener
    skip_ws(b, pos);
    if b.get(*pos) == Some(&close) {
        *pos += 1;
        return true;
    }
    loop {
        if keyed {
            skip_ws(b, pos);
            if !skip_string(b, pos) {
                return false;
            }
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return false;
            }
            *pos += 1;
        }
        if !skip_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(&c) if c == close => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn skip_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'\\' => *pos += 1,
            b'"' => return true,
            _ => {}
        }
    }
    false
}

fn skip_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn skip_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    *pos > start && std::str::from_utf8(&b[start..*pos]).is_ok_and(|s| s.parse::<f64>().is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn demo() -> MetricRegistry {
        let mut r = MetricRegistry::default();
        r.counter_add("fet_events_total", "Events.", &[("scope", "fleet")], 7);
        r.gauge_set("fet_backlog", "Backlog.", &[("dev", "1")], 1.5);
        r.histogram_observe("fet_lat", "Latency.", &[1.0, 10.0], &[], 4.0);
        r
    }

    #[test]
    fn renders_valid_json_with_otlp_fields() {
        let doc = render_otel(&demo(), 0, 12_000_000);
        assert!(validate_json(&doc), "must be structurally valid JSON: {doc}");
        for needle in [
            "\"resourceMetrics\"",
            "\"scopeMetrics\"",
            "\"isMonotonic\":true",
            "\"aggregationTemporality\":2",
            "\"asInt\":\"7\"",
            "\"asDouble\":1.5",
            "\"bucketCounts\":[\"0\",\"1\",\"0\"]",
            "\"explicitBounds\":[1,10]",
            "\"startTimeUnixNano\":\"0\"",
            "\"timeUnixNano\":\"12000000\"",
            "{\"key\":\"scope\",\"value\":{\"stringValue\":\"fleet\"}}",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn deterministic_across_insertion_orders() {
        let a = render_otel(&demo(), 0, 5);
        let mut r = MetricRegistry::default();
        r.histogram_observe("fet_lat", "Latency.", &[1.0, 10.0], &[], 4.0);
        r.gauge_set("fet_backlog", "Backlog.", &[("dev", "1")], 1.5);
        r.counter_add("fet_events_total", "Events.", &[("scope", "fleet")], 7);
        assert_eq!(a, render_otel(&r, 0, 5));
    }

    #[test]
    fn hostile_strings_stay_valid_json() {
        let mut r = MetricRegistry::default();
        r.counter_add("fet_x_total", "he\"lp\\\n", &[("k", "v\"\\\n\t\u{1}")], 1);
        let doc = render_otel(&r, 3, 9);
        assert!(validate_json(&doc), "escaping must keep the document valid: {doc}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(!validate_json("{\"a\":}"));
        assert!(!validate_json("[1,2"));
        assert!(!validate_json("{\"a\":1}trailing"));
        assert!(validate_json("{\"a\":[1,2,{\"b\":\"c\"}]}"));
    }
}
