//! Prometheus text exposition format (v0.0.4), written by hand — the
//! workspace builds fully offline, so no client library.
//!
//! Shape per family:
//!
//! ```text
//! # HELP fet_events_delivered_total Events that reached the backend.
//! # TYPE fet_events_delivered_total counter
//! fet_events_delivered_total{scope="fleet"} 1234
//! ```
//!
//! Histograms render the cumulative `_bucket{le="..."}` ladder (the
//! `+Inf` bucket always equals `_count`), then `_sum` and `_count`.
//! Escaping follows the spec exactly: `\\`, `\n` in HELP; `\\`, `\"`,
//! `\n` in label values. Families come out of the registry's `BTreeMap`s,
//! so the byte stream is deterministic.
//!
//! [`parse_exposition`] is the inverse used by the tests and the mixed
//! sim/real replay oracle: the conservation identity is asserted over the
//! *scraped* values, so the exporter itself is under test.

use crate::registry::{Family, LabelSet, MetricRegistry, SeriesValue};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render the whole registry (real families, then the registry's own
/// meta families) as one exposition document.
pub fn render_prometheus(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    for fam in reg.families() {
        render_family(&mut out, fam);
    }
    for fam in reg.meta_families() {
        render_family(&mut out, &fam);
    }
    out
}

fn render_family(out: &mut String, fam: &Family) {
    let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
    let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
    for (ls, value) in &fam.series {
        match value {
            SeriesValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", fam.name, render_labels(ls, None), v);
            }
            SeriesValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", fam.name, render_labels(ls, None), fmt_f64(*v));
            }
            SeriesValue::Histogram { buckets, sum, count } => {
                let mut cum = 0u64;
                for (i, b) in buckets.iter().enumerate() {
                    cum += b;
                    let le = match fam.bounds.get(i) {
                        Some(bound) => fmt_f64(*bound),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        render_labels(ls, Some(&le)),
                        cum
                    );
                }
                let _ =
                    writeln!(out, "{}_sum{} {}", fam.name, render_labels(ls, None), fmt_f64(*sum));
                let _ = writeln!(out, "{}_count{} {}", fam.name, render_labels(ls, None), count);
            }
        }
    }
}

/// `{k="v",...}` with spec escaping; empty label sets render as nothing.
/// `le` (when given) is appended last, matching common client output.
fn render_labels(ls: &LabelSet, le: Option<&str>) -> String {
    if ls.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in ls {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// HELP escaping: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Label-value escaping: backslash, double-quote, newline.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Deterministic float formatting: integral finite values print without
/// a fraction (`42`), everything else uses Rust's shortest-roundtrip
/// `Display` (deterministic across platforms).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.is_infinite() && v > 0.0 {
        "+Inf".to_string()
    } else if v.is_infinite() {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// One parsed sample: metric name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (histogram ladders appear as `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Sorted label set.
    pub labels: LabelSet,
    /// Sample value.
    pub value: f64,
}

/// A parsed exposition document: samples plus the `# TYPE` map.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample line in document order.
    pub samples: Vec<Sample>,
    /// `name -> type` from the `# TYPE` comments.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// The value of the unique sample with this name and exact label
    /// subset match on `want` (other labels ignored). Panics on dup.
    pub fn value(&self, name: &str, want: &[(&str, &str)]) -> Option<f64> {
        let mut hit = None;
        for s in self.samples.iter().filter(|s| s.name == name) {
            let matches =
                want.iter().all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v));
            if matches {
                assert!(hit.is_none(), "ambiguous sample {name} {want:?}");
                hit = Some(s.value);
            }
        }
        hit
    }

    /// Sum of every sample with this name (all label sets).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }
}

/// Strict parser for the v0.0.4 text format (the subset this crate
/// emits — which is the subset real scrapers require). Returns `None`
/// on any malformed line, so tests that pass it prove the encoder emits
/// valid exposition text.
pub fn parse_exposition(text: &str) -> Option<Exposition> {
    let mut doc = Exposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ')?;
            if !crate::registry::valid_metric_name(name)
                || !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped")
            {
                return None;
            }
            doc.types.insert(name.to_string(), ty.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        doc.samples.push(parse_sample(line)?);
    }
    Some(doc)
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (series, value) = line.rsplit_once(' ')?;
    let value = parse_value(value.trim())?;
    let (name, labels) = match series.find('{') {
        None => (series.to_string(), LabelSet::new()),
        Some(at) => {
            let name = &series[..at];
            let body = series[at + 1..].strip_suffix('}')?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if !crate::registry::valid_metric_name(&name) {
        return None;
    }
    let mut labels = labels;
    labels.sort();
    Some(Sample { name, labels, value })
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Parse `k="v",k2="v2"` with unescaping; rejects bad label names and
/// unterminated strings.
fn parse_labels(body: &str) -> Option<LabelSet> {
    let mut out = LabelSet::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = &rest[..eq];
        if !crate::registry::valid_label_name(key) {
            return None;
        }
        rest = rest[eq + 1..].strip_prefix('"')?;
        // Scan to the closing unescaped quote.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next()?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        out.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    fn demo_registry() -> MetricRegistry {
        let mut r = MetricRegistry::new(RegistryConfig::default());
        r.counter_add("fet_events_total", "Events.", &[("scope", "fleet")], 10);
        r.counter_add("fet_events_total", "Events.", &[("scope", "wire")], 3);
        r.gauge_set("fet_backlog", "Backlog now.", &[], 2.5);
        for v in [0.5, 3.0, 100.0] {
            r.histogram_observe("fet_lat", "Latency.", &[1.0, 10.0], &[("dev", "3")], v);
        }
        r
    }

    #[test]
    fn roundtrips_through_own_parser() {
        let text = render_prometheus(&demo_registry());
        let doc = parse_exposition(&text).expect("own output must parse");
        assert_eq!(doc.value("fet_events_total", &[("scope", "fleet")]), Some(10.0));
        assert_eq!(doc.value("fet_events_total", &[("scope", "wire")]), Some(3.0));
        assert_eq!(doc.value("fet_backlog", &[]), Some(2.5));
        assert_eq!(doc.types.get("fet_lat").map(String::as_str), Some("histogram"));
        // Cumulative ladder: le=1 -> 1, le=10 -> 2, +Inf -> 3 == count.
        assert_eq!(doc.value("fet_lat_bucket", &[("le", "1")]), Some(1.0));
        assert_eq!(doc.value("fet_lat_bucket", &[("le", "10")]), Some(2.0));
        assert_eq!(doc.value("fet_lat_bucket", &[("le", "+Inf")]), Some(3.0));
        assert_eq!(doc.value("fet_lat_count", &[("dev", "3")]), Some(3.0));
        assert_eq!(doc.value("fet_lat_sum", &[("dev", "3")]), Some(103.5));
        // Meta families ride along.
        assert_eq!(doc.value("fet_export_series_rejected_total", &[]), Some(0.0));
    }

    #[test]
    fn escaping_survives_roundtrip() {
        let mut r = MetricRegistry::default();
        let hostile = "a\\b\"c\nd";
        r.counter_add("fet_x_total", "help with \\ and\nnewline", &[("k", hostile)], 1);
        let text = render_prometheus(&r);
        assert!(text.contains("a\\\\b\\\"c\\nd"), "escaped value in {text}");
        let doc = parse_exposition(&text).unwrap();
        assert_eq!(doc.value("fet_x_total", &[("k", hostile)]), Some(1.0));
    }

    #[test]
    fn rendering_is_deterministic_and_insertion_order_free() {
        let a = render_prometheus(&demo_registry());
        let mut r = MetricRegistry::default();
        // Same content, different insertion order.
        for v in [0.5, 3.0, 100.0] {
            r.histogram_observe("fet_lat", "Latency.", &[1.0, 10.0], &[("dev", "3")], v);
        }
        r.gauge_set("fet_backlog", "Backlog now.", &[], 2.5);
        r.counter_add("fet_events_total", "Events.", &[("scope", "wire")], 3);
        r.counter_add("fet_events_total", "Events.", &[("scope", "fleet")], 10);
        assert_eq!(a, render_prometheus(&r), "snapshots must be bit-identical");
    }

    #[test]
    fn fmt_is_exact() {
        assert_eq!(fmt_f64(42.0), "42");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(-1.0), "-1");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("fet_x{k=\"unterminated} 1").is_none());
        assert!(parse_exposition("9bad_name 1").is_none());
        assert!(parse_exposition("fet_x{9k=\"v\"} 1").is_none());
        assert!(parse_exposition("fet_x notanumber").is_none());
        assert!(parse_exposition("# TYPE fet_x flavor").is_none());
    }
}
