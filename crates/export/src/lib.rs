//! `fet-export`: Prometheus- and OTel-shaped telemetry egress.
//!
//! The observability half the collector stack was missing: a
//! deterministic, allocation-bounded [`registry::MetricRegistry`] fed by
//! pull-shaped [`scrape`] adapters over every existing stat surface
//! (delivery ledgers, collector spill counters, analytics SLA/top-k,
//! wire reject taxonomy, watchdog incidents, fleet reliability
//! counters), rendered by two zero-dependency encoders — Prometheus text
//! exposition v0.0.4 ([`prom`]) and OTLP-shaped JSON ([`otel`]) — and
//! served by a thin `std::net` scrape endpoint ([`server`]).
//!
//! Design rules, enforced by tests:
//!
//! * **Deterministic**: families and series iterate in `BTreeMap` order
//!   and all timestamps are sim time, so the same system state renders
//!   byte-identical output on any machine, shard count, or run.
//! * **Bounded**: hard caps on family and per-family series counts;
//!   past the cap the registry *refuses and counts* (`fet_export_*`
//!   self-metrics) — a hostile workload can never grow the exporter.
//! * **Consistent**: scrapes serve immutable pre-rendered snapshots
//!   published at quiescent points ([`server::SnapshotHandle`]) — never
//!   a torn read mid-pump.
//! * **Closed-loop**: the mixed sim/real replay ([`replay`]) merges a
//!   simulated faulted fleet with captured hostile NetFlow bytes and
//!   asserts the conservation identity *from the Prometheus output
//!   itself* — the exporter is the test oracle.

#![warn(missing_docs)]

pub mod otel;
pub mod prom;
pub mod registry;
pub mod replay;
pub mod scrape;
pub mod server;

pub use otel::{render_otel, validate_json};
pub use prom::{parse_exposition, render_prometheus, Exposition, Sample};
pub use registry::{labels, MetricKind, MetricRegistry, RegistryConfig, SeriesValue};
pub use replay::{merge_ledgers, run_mixed_replay, Capture, MixedReplayConfig, MixedReplayReport};
pub use scrape::{
    scrape_analytics, scrape_breaches, scrape_collector, scrape_fleet, scrape_ledger,
    scrape_sim_sync, scrape_watchdog, scrape_wire,
};
pub use server::{http_get, ExportServer, RenderedSnapshot, SnapshotHandle};
