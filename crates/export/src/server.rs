//! Thin `std::net` scrape server plus the snapshot-consistency rule.
//!
//! The server never touches live system state: it serves an immutable
//! [`RenderedSnapshot`] published through a [`SnapshotHandle`]. Callers
//! render a fresh snapshot only at quiescent points (after a collector
//! pump / engine poll completes), then swap it in atomically — so a
//! scrape can never observe a torn read mid-pump, and two scrapes
//! between publishes are byte-identical. Rendering happens *outside*
//! the handle's lock; the lock only guards the `Arc` swap.

use crate::otel::render_otel;
use crate::prom::render_prometheus;
use crate::registry::MetricRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One immutable, fully-rendered scrape payload pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedSnapshot {
    /// Prometheus text exposition v0.0.4 body.
    pub prometheus: String,
    /// OTel-shaped (OTLP/JSON) body.
    pub otel: String,
    /// Sim-time nanos the snapshot was rendered at.
    pub rendered_at_ns: u64,
}

impl RenderedSnapshot {
    /// Render both encodings from a registry at one sim-time instant.
    pub fn render(reg: &MetricRegistry, start_ns: u64, now_ns: u64) -> Self {
        RenderedSnapshot {
            prometheus: render_prometheus(reg),
            otel: render_otel(reg, start_ns, now_ns),
            rendered_at_ns: now_ns,
        }
    }

    fn empty() -> Self {
        RenderedSnapshot {
            prometheus: String::new(),
            otel: "{\"resourceMetrics\":[]}".to_string(),
            rendered_at_ns: 0,
        }
    }
}

/// Shared handle the scrape thread reads from and the simulation
/// publishes into. Cloning shares the underlying slot.
#[derive(Clone)]
pub struct SnapshotHandle {
    slot: Arc<Mutex<Arc<RenderedSnapshot>>>,
}

impl Default for SnapshotHandle {
    fn default() -> Self {
        SnapshotHandle::new()
    }
}

impl SnapshotHandle {
    /// Create a handle holding an empty snapshot.
    pub fn new() -> Self {
        SnapshotHandle { slot: Arc::new(Mutex::new(Arc::new(RenderedSnapshot::empty()))) }
    }

    /// Atomically publish a new snapshot (render first, swap under the
    /// lock — the lock is held only for the pointer swap).
    pub fn publish(&self, snap: RenderedSnapshot) {
        let snap = Arc::new(snap);
        *self.slot.lock().expect("snapshot slot poisoned") = snap;
    }

    /// The currently published snapshot.
    pub fn current(&self) -> Arc<RenderedSnapshot> {
        Arc::clone(&self.slot.lock().expect("snapshot slot poisoned"))
    }
}

/// A minimal HTTP/1.0-ish scrape endpoint serving `/metrics` and
/// `/otel` from a [`SnapshotHandle`].
pub struct ExportServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    handle: SnapshotHandle,
}

impl ExportServer {
    /// Bind to `127.0.0.1:0` and start the accept loop on a thread.
    pub fn bind(handle: SnapshotHandle) -> std::io::Result<ExportServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_handle = handle.clone();
        let thread =
            std::thread::Builder::new().name("fet-export-scrape".to_string()).spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection; a scrape endpoint
                        // doesn't need keep-alive. Errors on a single
                        // connection never take the server down.
                        let _ = serve_one(stream, &thread_handle);
                    }
                }
            })?;
        Ok(ExportServer { addr, stop, thread: Some(thread), handle })
    }

    /// The bound address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The handle this server serves from.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// Stop the accept loop and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ExportServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

fn serve_one(mut stream: TcpStream, handle: &SnapshotHandle) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let req = String::from_utf8_lossy(&buf[..n]);
    let path = req
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("")
        .to_string();
    let snap = handle.current();
    let (status, ctype, body): (&str, &str, &str) = match path.as_str() {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", &snap.prometheus),
        "/otel" => ("200 OK", "application/json", &snap.otel),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Scrape `path` from a running [`ExportServer`] over a plain
/// `TcpStream`, returning the response body. Test/example helper — the
/// "curl ourselves" side of the loop.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    match resp.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_snapshot(tag: u64) -> RenderedSnapshot {
        let mut reg = MetricRegistry::default();
        reg.counter_add("fet_demo_total", "Demo counter.", &[], tag);
        RenderedSnapshot::render(&reg, 0, tag)
    }

    #[test]
    fn serves_metrics_and_otel_and_404() {
        let handle = SnapshotHandle::new();
        handle.publish(demo_snapshot(7));
        let server = ExportServer::bind(handle).unwrap();
        let addr = server.addr();
        let metrics = http_get(addr, "/metrics").unwrap();
        assert!(metrics.contains("fet_demo_total 7"), "{metrics}");
        let otel = http_get(addr, "/otel").unwrap();
        assert!(otel.contains("\"asInt\":\"7\""), "{otel}");
        let missing = http_get(addr, "/nope").unwrap();
        assert!(missing.contains("not found"));
        server.stop();
    }

    #[test]
    fn scrapes_between_publishes_are_identical() {
        let handle = SnapshotHandle::new();
        handle.publish(demo_snapshot(1));
        let server = ExportServer::bind(handle.clone()).unwrap();
        let a = http_get(server.addr(), "/metrics").unwrap();
        let b = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(a, b, "no publish between scrapes => identical bodies");
        handle.publish(demo_snapshot(2));
        let c = http_get(server.addr(), "/metrics").unwrap();
        assert!(c.contains("fet_demo_total 2"));
        server.stop();
    }
}
