//! The deterministic, allocation-bounded metric registry.
//!
//! Three constraints shape this module, in priority order:
//!
//! 1. **Determinism.** Snapshots must be bit-identical across runs, shard
//!    counts, and platforms. Families and series live in `BTreeMap`s, so
//!    iteration order is the lexicographic order of names and label sets
//!    — never insertion or hash order. Values are `u64` counters, `f64`
//!    gauges, and fixed-bound histograms; nothing reads a clock.
//!
//! 2. **Hard cardinality caps.** A hostile workload (wire exporters
//!    minting observation domains, floods of distinct flows) must not be
//!    able to grow the registry without bound. Series beyond
//!    [`RegistryConfig::max_series_per_family`] and families beyond
//!    [`RegistryConfig::max_families`] are *refused and counted*, never
//!    admitted; the refusal counters are themselves exported (see
//!    [`MetricRegistry::meta_families`]), so silent truncation is
//!    impossible.
//!
//! 3. **Bounded allocation.** Memory is bounded by the caps times the
//!    label-set size; scrape adapters rebuild the registry per snapshot,
//!    so there is no unbounded retained state between scrapes.
//!
//! Metric naming follows the repo-wide `fet_*` scheme (DESIGN.md §15):
//! `fet_<subsystem>_<what>[_total]`, with `_total` reserved for
//! monotonic counters.

use std::collections::BTreeMap;

/// A sorted, owned label set. Keys are sorted at construction so two
/// call sites naming the same labels in different orders hit the same
/// series.
pub type LabelSet = Vec<(String, String)>;

/// Build a [`LabelSet`] from borrowed pairs (sorted by key).
pub fn labels(pairs: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = pairs.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution over fixed explicit bounds.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' value.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Cumulative count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Per-bucket (non-cumulative) counts aligned with the family's
    /// bounds, plus the implicit `+Inf` bucket at the end.
    Histogram {
        /// `bounds.len() + 1` non-cumulative bucket counts.
        buckets: Vec<u64>,
        /// Sum of observed values.
        sum: f64,
        /// Count of observations.
        count: u64,
    },
}

/// One metric family: a name, help text, kind, and its series.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Metric name (`fet_*`).
    pub name: String,
    /// Help text (escaped by the encoders).
    pub help: String,
    /// Family kind; every series in the family shares it.
    pub kind: MetricKind,
    /// Histogram bucket upper bounds (ascending, `+Inf` implicit).
    /// Empty for counters and gauges.
    pub bounds: Vec<f64>,
    /// Series by sorted label set — BTreeMap, so iteration (and thus
    /// every rendered snapshot) is deterministic.
    pub series: BTreeMap<LabelSet, SeriesValue>,
}

/// Hard bounds a hostile workload cannot grow past.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Maximum metric families.
    pub max_families: usize,
    /// Maximum series per family (label-set cardinality cap).
    pub max_series_per_family: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig { max_families: 256, max_series_per_family: 512 }
    }
}

/// The registry. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    cfg: RegistryConfig,
    families: BTreeMap<String, Family>,
    /// Series refused by the per-family cardinality cap.
    pub series_rejected: u64,
    /// Families refused by the family cap.
    pub families_rejected: u64,
    /// Updates refused because the family already exists with a
    /// different kind (a programming error, but counted, not ignored).
    pub kind_conflicts: u64,
}

impl MetricRegistry {
    /// A registry with the given caps.
    pub fn new(cfg: RegistryConfig) -> Self {
        MetricRegistry {
            cfg,
            families: BTreeMap::new(),
            series_rejected: 0,
            families_rejected: 0,
            kind_conflicts: 0,
        }
    }

    /// The configured caps.
    pub fn config(&self) -> RegistryConfig {
        self.cfg
    }

    /// All families in name order.
    pub fn families(&self) -> impl Iterator<Item = &Family> {
        self.families.values()
    }

    /// A family by name.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.get(name)
    }

    /// Number of families (meta families excluded).
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Total live series across all families (meta excluded).
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Look up or admit the family, enforcing the family cap and kind
    /// consistency. Returns `None` when refused (and counts why).
    fn admit_family(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        bounds: &[f64],
    ) -> Option<&mut Family> {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        if !self.families.contains_key(name) {
            if self.families.len() >= self.cfg.max_families {
                self.families_rejected += 1;
                return None;
            }
            self.families.insert(
                name.to_string(),
                Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    bounds: bounds.to_vec(),
                    series: BTreeMap::new(),
                },
            );
        }
        let fam = self.families.get_mut(name).expect("just admitted");
        if fam.kind != kind {
            self.kind_conflicts += 1;
            return None;
        }
        Some(fam)
    }

    /// Look up or admit a series slot, enforcing the per-family cap.
    fn admit_series<'a>(
        fam: &'a mut Family,
        ls: LabelSet,
        cap: usize,
        rejected: &mut u64,
        default: SeriesValue,
    ) -> Option<&'a mut SeriesValue> {
        if !fam.series.contains_key(&ls) {
            if fam.series.len() >= cap {
                *rejected += 1;
                return None;
            }
            fam.series.insert(ls.clone(), default);
        }
        fam.series.get_mut(&ls)
    }

    /// Add to a counter series (creating family/series as needed).
    pub fn counter_add(&mut self, name: &str, help: &str, lbls: &[(&str, &str)], v: u64) {
        let cap = self.cfg.max_series_per_family;
        let mut rejected = 0u64;
        if let Some(fam) = self.admit_family(name, help, MetricKind::Counter, &[]) {
            if let Some(SeriesValue::Counter(c)) =
                Self::admit_series(fam, labels(lbls), cap, &mut rejected, SeriesValue::Counter(0))
            {
                *c += v;
            }
        }
        self.series_rejected += rejected;
    }

    /// Set a gauge series (creating family/series as needed).
    pub fn gauge_set(&mut self, name: &str, help: &str, lbls: &[(&str, &str)], v: f64) {
        let cap = self.cfg.max_series_per_family;
        let mut rejected = 0u64;
        if let Some(fam) = self.admit_family(name, help, MetricKind::Gauge, &[]) {
            if let Some(SeriesValue::Gauge(g)) =
                Self::admit_series(fam, labels(lbls), cap, &mut rejected, SeriesValue::Gauge(0.0))
            {
                *g = v;
            }
        }
        self.series_rejected += rejected;
    }

    /// Observe a value into a histogram series. `bounds` fixes the
    /// family's explicit bucket upper bounds on first use; later calls
    /// must pass the same bounds (mismatches are a kind conflict).
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        lbls: &[(&str, &str)],
        v: f64,
    ) {
        let cap = self.cfg.max_series_per_family;
        let mut rejected = 0u64;
        let mut conflict = false;
        if let Some(fam) = self.admit_family(name, help, MetricKind::Histogram, bounds) {
            if fam.bounds != bounds {
                conflict = true;
            } else {
                let fresh = SeriesValue::Histogram {
                    buckets: vec![0; bounds.len() + 1],
                    sum: 0.0,
                    count: 0,
                };
                if let Some(SeriesValue::Histogram { buckets, sum, count }) =
                    Self::admit_series(fam, labels(lbls), cap, &mut rejected, fresh)
                {
                    // `bounds == fam.bounds` was checked above, so
                    // indexing off the argument avoids aliasing `fam`.
                    let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
                    buckets[idx] += 1;
                    *sum += v;
                    *count += 1;
                }
            }
        }
        self.series_rejected += rejected;
        if conflict {
            self.kind_conflicts += 1;
        }
    }

    /// Self-observability: synthetic families describing the registry's
    /// own refusal counters and live cardinality, appended after the real
    /// families by both encoders so capped output is never silent.
    pub fn meta_families(&self) -> Vec<Family> {
        let single = |name: &str, help: &str, kind: MetricKind, v: SeriesValue| Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            bounds: Vec::new(),
            series: BTreeMap::from([(LabelSet::new(), v)]),
        };
        vec![
            single(
                "fet_export_series",
                "Live series in the registry (cardinality-capped).",
                MetricKind::Gauge,
                SeriesValue::Gauge(self.series_count() as f64),
            ),
            single(
                "fet_export_series_rejected_total",
                "Series refused by the per-family cardinality cap.",
                MetricKind::Counter,
                SeriesValue::Counter(self.series_rejected),
            ),
            single(
                "fet_export_families_rejected_total",
                "Families refused by the family cap.",
                MetricKind::Counter,
                SeriesValue::Counter(self.families_rejected),
            ),
            single(
                "fet_export_kind_conflicts_total",
                "Updates refused because a family was re-declared with a different kind or bounds.",
                MetricKind::Counter,
                SeriesValue::Counter(self.kind_conflicts),
            ),
        ]
    }
}

impl Default for MetricRegistry {
    fn default() -> Self {
        MetricRegistry::new(RegistryConfig::default())
    }
}

/// Prometheus metric-name grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Prometheus label-name grammar: `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_replace() {
        let mut r = MetricRegistry::default();
        r.counter_add("fet_x_total", "x", &[("a", "1")], 2);
        r.counter_add("fet_x_total", "x", &[("a", "1")], 3);
        r.gauge_set("fet_g", "g", &[], 7.0);
        r.gauge_set("fet_g", "g", &[], 4.5);
        let fam = r.family("fet_x_total").unwrap();
        assert_eq!(fam.series.values().next(), Some(&SeriesValue::Counter(5)));
        let fam = r.family("fet_g").unwrap();
        assert_eq!(fam.series.values().next(), Some(&SeriesValue::Gauge(4.5)));
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = MetricRegistry::default();
        r.counter_add("fet_x_total", "x", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("fet_x_total", "x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.family("fet_x_total").unwrap().series.len(), 1, "same series either order");
    }

    #[test]
    fn series_cap_refuses_and_counts() {
        let mut r = MetricRegistry::new(RegistryConfig {
            max_series_per_family: 3,
            ..RegistryConfig::default()
        });
        for i in 0..10 {
            r.counter_add("fet_x_total", "x", &[("i", &i.to_string())], 1);
        }
        assert_eq!(r.family("fet_x_total").unwrap().series.len(), 3);
        assert_eq!(r.series_rejected, 7);
        // Existing series keep updating after the cap binds.
        r.counter_add("fet_x_total", "x", &[("i", "0")], 1);
        assert_eq!(r.series_rejected, 7);
    }

    #[test]
    fn family_cap_refuses_and_counts() {
        let mut r =
            MetricRegistry::new(RegistryConfig { max_families: 2, ..RegistryConfig::default() });
        r.counter_add("fet_a_total", "a", &[], 1);
        r.counter_add("fet_b_total", "b", &[], 1);
        r.counter_add("fet_c_total", "c", &[], 1);
        assert_eq!(r.family_count(), 2);
        assert_eq!(r.families_rejected, 1);
    }

    #[test]
    fn kind_conflicts_are_refused_not_merged() {
        let mut r = MetricRegistry::default();
        r.counter_add("fet_x_total", "x", &[], 1);
        r.gauge_set("fet_x_total", "x", &[], 9.0);
        assert_eq!(r.kind_conflicts, 1);
        assert_eq!(r.family("fet_x_total").unwrap().kind, MetricKind::Counter);
    }

    #[test]
    fn histogram_buckets_fill_in_order() {
        let mut r = MetricRegistry::default();
        let bounds = [1.0, 10.0];
        for v in [0.5, 5.0, 50.0, 0.2] {
            r.histogram_observe("fet_h", "h", &bounds, &[], v);
        }
        let fam = r.family("fet_h").unwrap();
        match fam.series.values().next().unwrap() {
            SeriesValue::Histogram { buckets, sum, count } => {
                assert_eq!(buckets, &vec![2, 1, 1]);
                assert_eq!(*count, 4);
                assert!((sum - 55.7).abs() < 1e-9);
            }
            other => panic!("not a histogram: {other:?}"),
        }
        // Bound mismatch is a conflict, not a silent re-bucket.
        r.histogram_observe("fet_h", "h", &[2.0], &[], 1.0);
        assert_eq!(r.kind_conflicts, 1);
    }

    #[test]
    fn name_grammars() {
        assert!(valid_metric_name("fet_events_total"));
        assert!(valid_metric_name(":ns:x"));
        assert!(!valid_metric_name("9fet"));
        assert!(!valid_metric_name("fet-x"));
        assert!(valid_label_name("le"));
        assert!(!valid_label_name("l-e"));
        assert!(!valid_label_name(":x"));
    }
}
