//! Mixed sim/real replay: captured hostile-exporter NetFlow bytes ride
//! the untrusted wire path **alongside** simulator traffic, and the
//! merged conservation identity is exported — and asserted — through the
//! Prometheus output itself (the exporter is the test oracle).
//!
//! The "real" half is a committed capture (`corpus/hostile_capture.fetc`)
//! of a seeded [`HostileExporter`] byte stream — NetFlow v5/v9/IPFIX
//! datagrams with template floods, count lies, truncation, bit flips,
//! and upstream drops. A provenance test regenerates the capture from
//! its recorded seed and asserts byte equality, so the corpus is both
//! reproducible and tamper-evident.

use crate::registry::MetricRegistry;
use crate::scrape::{
    scrape_analytics, scrape_breaches, scrape_collector, scrape_fleet, scrape_ledger,
    scrape_sim_sync, scrape_watchdog, scrape_wire,
};
use crate::server::RenderedSnapshot;
use fet_analytics::{AnalyticsConfig, AnalyticsEngine, LinkMap};
use fet_netsim::engine::Simulator;
use fet_netsim::exporter::{HostileExporter, HostileExporterConfig};
use fet_netsim::host::FlowSpec;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MICROS, MILLIS};
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_packet::FlowKey;
use netseer::deploy::{deploy, fleet_ledger, DeployOptions};
use netseer::faults::CorruptionSpec;
use netseer::watchdog::WatchdogLog;
use netseer::{Collector, CollectorConfig};
use netseer::{DeliveryLedger, FaultPlan, LossProcess, NetSeerConfig, WireConfig, WireIngest};

/// Magic prefixing a capture container.
pub const CAPTURE_MAGIC: [u8; 4] = *b"FETC";

/// The committed hostile capture: seed and emit-tick count baked next to
/// the bytes so provenance is checkable.
pub const CORPUS_SEED: u64 = 0x31BE_5EED;
/// Emit ticks used to record [`CORPUS_BYTES`].
pub const CORPUS_TICKS: usize = 600;
/// The captured byte stream, embedded at compile time.
pub const CORPUS_BYTES: &[u8] = include_bytes!("../corpus/hostile_capture.fetc");

/// A length-prefixed container of captured datagrams: `"FETC"`, a `u32`
/// LE datagram count, then each datagram as `u32` LE length + bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capture {
    /// The datagrams, in capture order.
    pub datagrams: Vec<Vec<u8>>,
}

impl Capture {
    /// Record a capture by running a seeded [`HostileExporter`] for
    /// `ticks` emit attempts (upstream drops emit nothing but still
    /// advance sequence numbers — the loss signal survives the capture).
    pub fn from_exporter(seed: u64, ticks: usize) -> Capture {
        let mut ex = HostileExporter::new(HostileExporterConfig {
            seed,
            hostility: 0.35,
            corruption: CorruptionSpec {
                flip_per_byte: 1e-3,
                truncate_prob: 0.05,
                duplicate_prob: 0.02,
            },
            ..HostileExporterConfig::default()
        });
        Capture { datagrams: ex.emit_batch(ticks) }
    }

    /// Serialize to the container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CAPTURE_MAGIC);
        out.extend_from_slice(&(self.datagrams.len() as u32).to_le_bytes());
        for dg in &self.datagrams {
            out.extend_from_slice(&(dg.len() as u32).to_le_bytes());
            out.extend_from_slice(dg);
        }
        out
    }

    /// Parse a container. Returns `None` on any structural defect
    /// (bad magic, truncation, count mismatch) — never panics.
    pub fn decode(bytes: &[u8]) -> Option<Capture> {
        let rest = bytes.strip_prefix(&CAPTURE_MAGIC[..])?;
        let (count, mut rest) = take_u32(rest)?;
        let mut datagrams = Vec::new();
        for _ in 0..count {
            let (len, tail) = take_u32(rest)?;
            let len = len as usize;
            if tail.len() < len {
                return None;
            }
            datagrams.push(tail[..len].to_vec());
            rest = &tail[len..];
        }
        if rest.is_empty() {
            Some(Capture { datagrams })
        } else {
            None
        }
    }

    /// Decode the committed corpus (panics only if the repo's own corpus
    /// file is corrupt — a build-time invariant, not an input).
    pub fn corpus() -> Capture {
        Capture::decode(CORPUS_BYTES).expect("committed corpus must decode")
    }
}

fn take_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    let v = u32::from_le_bytes(b.get(..4)?.try_into().ok()?);
    Some((v, &b[4..]))
}

/// Mixed-replay scenario knobs.
#[derive(Debug, Clone)]
pub struct MixedReplayConfig {
    /// Fault-plan seed for the simulated fleet.
    pub seed: u64,
    /// Sim horizon, ns.
    pub horizon_ns: u64,
    /// Datagrams to replay through the wire path (defaults to the
    /// committed corpus).
    pub capture: Capture,
    /// Top-k flows to export.
    pub top_n: usize,
}

impl Default for MixedReplayConfig {
    fn default() -> Self {
        MixedReplayConfig {
            seed: 0xFE7,
            horizon_ns: 8 * MILLIS,
            capture: Capture::corpus(),
            top_n: 8,
        }
    }
}

/// Everything the mixed replay produced: the merged ledger, its two
/// halves, and the rendered snapshot scrapes read.
#[derive(Debug)]
pub struct MixedReplayReport {
    /// Fleet + wire ledgers summed term-by-term, spill occupancy
    /// re-bucketed; balanced by construction.
    pub merged: DeliveryLedger,
    /// The simulated fleet's half.
    pub fleet: DeliveryLedger,
    /// The wire/collector half (raw, before spill refinement).
    pub wire: DeliveryLedger,
    /// Events the analytics engine processed (sim history + wire drain).
    pub processed: u64,
    /// The fully rendered scrape payloads.
    pub snapshot: RenderedSnapshot,
}

/// Sum two ledgers term-by-term.
pub fn merge_ledgers(a: &DeliveryLedger, b: &DeliveryLedger) -> DeliveryLedger {
    DeliveryLedger {
        generated: a.generated + b.generated,
        delivered: a.delivered + b.delivered,
        shed_stack: a.shed_stack + b.shed_stack,
        shed_pcie: a.shed_pcie + b.shed_pcie,
        shed_cpu_overload: a.shed_cpu_overload + b.shed_cpu_overload,
        shed_false_positive: a.shed_false_positive + b.shed_false_positive,
        shed_transport: a.shed_transport + b.shed_transport,
        pending: a.pending + b.pending,
        buffered: a.buffered + b.buffered,
        lost_to_crash: a.lost_to_crash + b.lost_to_crash,
        corrupted: a.corrupted + b.corrupted,
        malformed: a.malformed + b.malformed,
    }
}

/// Run the mixed sim/real replay and export everything.
///
/// The simulated fleet runs a faulted fat-tree to `horizon_ns`; the
/// capture replays through [`WireIngest`] into a pressured collector the
/// analytics engine drains. At quiescence the fleet and wire ledgers are
/// merged, spill occupancy is re-bucketed into `buffered`
/// ([`Collector::refine_fleet_ledger`]), and the whole surface is
/// scraped into one registry and rendered at sim time — so two runs with
/// the same config produce byte-identical snapshots.
pub fn run_mixed_replay(cfg: &MixedReplayConfig) -> MixedReplayReport {
    // --- simulated half: a faulted fleet on a fat-tree ---
    let faults = FaultPlan {
        seed: cfg.seed,
        mgmt_loss: LossProcess::Bernoulli { p: 0.05 },
        notification_loss: LossProcess::Bernoulli { p: 0.2 },
        cebp_corruption: CorruptionSpec::bit_flips(5e-4),
        ..FaultPlan::default()
    };
    let ns_cfg = NetSeerConfig {
        faults,
        cpu_max_backlog_ns: 500 * MICROS,
        enable_dedup: false,
        ..NetSeerConfig::default()
    };
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg: ns_cfg, on_nics: true });
    for s in 0..4usize {
        let key = FlowKey::tcp(ft.host_ips[s], 3000 + s as u16, ft.host_ips[7 - s], 80);
        let h = ft.hosts[s];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 1_000_000,
            pkt_payload: 1000,
            rate_gbps: 5.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    for port in 0..2 {
        let tor = ft.edges[0][0];
        sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.02;
    }
    sim.run_until(cfg.horizon_ns);

    // --- real half: the capture through the untrusted wire path ---
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 128,
        max_spill_bytes: 64 * 1024,
        spill_segment_bytes: 8 * 1024,
        ..CollectorConfig::default()
    });
    let mut wire = WireIngest::new(WireConfig::default());
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
    engine.attach(&mut collector);
    let tick_ns = 10 * MICROS;
    for (i, dg) in cfg.capture.datagrams.iter().enumerate() {
        let now = i as u64 * tick_ns;
        wire.ingest_datagram(&mut collector, dg, now);
        if i % 64 == 63 {
            engine.poll(&mut collector);
        }
    }
    // Drain to quiescence: everything parked in memory or spill flows to
    // the engine, so `buffered` and `pending` settle before the scrape.
    loop {
        let drained = engine.poll(&mut collector);
        if collector.pump_spill() == 0 && drained == 0 {
            break;
        }
    }
    // The sim fleet's delivered history joins the same analytics engine —
    // the "mixed" in mixed replay: one top-k/SLA surface over both halves.
    engine.ingest_slice(&netseer::deploy::delivered_history(&sim));
    engine.ingest_upstream_loss(wire.upstream_losses());
    let breaches = engine.finish_breaches();

    // --- merge and scrape ---
    let fleet = fleet_ledger(&sim);
    let wire_ledger = wire.ledger(&collector);
    let mut merged = merge_ledgers(&fleet, &wire_ledger);
    // Re-bucket current spill occupancy (delivered -> buffered), exactly
    // once, on the one collector both halves share.
    collector.refine_fleet_ledger(&mut merged);
    merged.assert_balanced();

    let mut reg = MetricRegistry::default();
    scrape_ledger(&mut reg, "merged", &merged);
    scrape_ledger(&mut reg, "wire", &wire_ledger);
    scrape_fleet(&mut reg, &sim);
    scrape_collector(&mut reg, &collector);
    scrape_analytics(&mut reg, &engine, cfg.top_n);
    scrape_breaches(&mut reg, &breaches);
    scrape_sim_sync(&mut reg, &sim);
    scrape_wire(&mut reg, &wire);
    scrape_watchdog(&mut reg, &WatchdogLog::default());

    let snapshot = RenderedSnapshot::render(&reg, 0, cfg.horizon_ns);
    MixedReplayReport { merged, fleet, wire: wire_ledger, processed: engine.processed, snapshot }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_container_roundtrips() {
        let cap = Capture::from_exporter(7, 64);
        assert!(!cap.datagrams.is_empty());
        let bytes = cap.encode();
        assert_eq!(Capture::decode(&bytes).unwrap(), cap);
        // Structural defects are refused, not panicked on.
        assert!(Capture::decode(b"NOPE").is_none());
        assert!(Capture::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut grown = bytes.clone();
        grown.push(0);
        assert!(Capture::decode(&grown).is_none());
    }

    #[test]
    fn corpus_provenance_is_reproducible() {
        // The committed capture is exactly what its recorded seed and
        // tick count regenerate — tamper-evident and reproducible.
        let regenerated = Capture::from_exporter(CORPUS_SEED, CORPUS_TICKS);
        assert_eq!(
            Capture::corpus(),
            regenerated,
            "corpus/hostile_capture.fetc must equal from_exporter(CORPUS_SEED, CORPUS_TICKS); \
             regenerate with `cargo test -p fet-export regenerate_corpus -- --ignored`"
        );
    }

    /// Regenerates the committed corpus in-place. Run manually after
    /// changing the exporter: `cargo test -p fet-export regenerate_corpus -- --ignored`.
    #[test]
    #[ignore = "writes into the source tree; run manually to refresh the corpus"]
    fn regenerate_corpus() {
        let cap = Capture::from_exporter(CORPUS_SEED, CORPUS_TICKS);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/hostile_capture.fetc");
        std::fs::write(path, cap.encode()).unwrap();
    }

    #[test]
    fn mixed_replay_identity_balances_and_is_deterministic() {
        let a = run_mixed_replay(&MixedReplayConfig::default());
        assert!(a.merged.balanced());
        assert!(a.merged.generated > 0, "both halves must contribute events");
        assert!(a.wire.generated > 0, "the capture must decode some records");
        assert!(a.fleet.generated > 0, "the sim must generate events");
        let b = run_mixed_replay(&MixedReplayConfig::default());
        assert_eq!(a.snapshot, b.snapshot, "same config, bit-identical snapshot");
    }
}
