// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the export encoders and the registry's caps:
//!
//! * label escaping is lossless: arbitrary (hostile) label values and
//!   help strings survive render → parse through the Prometheus text
//!   format, and every rendered document still parses;
//! * the OTel document is structurally valid JSON for arbitrary names,
//!   values, and label sets;
//! * the cardinality caps are airtight: for arbitrary insert streams the
//!   registry never stores more than `max_series_per_family` series per
//!   family or `max_families` families, and every refusal is counted —
//!   stored + rejected == attempted (distinct), nothing silent;
//! * rendering is deterministic under insertion order.

use fet_export::{
    parse_exposition, render_otel, render_prometheus, validate_json, MetricRegistry, RegistryConfig,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary-but-valid metric name.
fn name_strat() -> impl Strategy<Value = String> {
    "[a-zA-Z_:][a-zA-Z0-9_:]{0,24}"
}

/// Arbitrary label value, biased toward escaping hazards.
fn value_strat() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\\\\\"\n\t\u{e9}\u{4e16}]{0,16}").unwrap()
}

proptest! {
    #[test]
    fn escaping_roundtrips_losslessly(
        help in value_strat(),
        lv in value_strat(),
        v in 0u64..1_000_000,
    ) {
        let mut reg = MetricRegistry::default();
        reg.counter_add("fet_prop_total", &help, &[("k", lv.as_str())], v);
        let text = render_prometheus(&reg);
        let doc = parse_exposition(&text)
            .unwrap_or_else(|| panic!("rendered text must parse:\n{text}"));
        prop_assert_eq!(
            doc.value("fet_prop_total", &[("k", lv.as_str())]),
            Some(v as f64),
            "label value must survive render -> parse"
        );
    }

    #[test]
    fn otel_stays_valid_json(
        name in name_strat(),
        help in value_strat(),
        lv in value_strat(),
        g in proptest::num::f64::NORMAL | proptest::num::f64::ZERO,
    ) {
        let mut reg = MetricRegistry::default();
        reg.counter_add("fet_a_total", &help, &[("k", lv.as_str())], 3);
        reg.gauge_set(&name, &help, &[("k", lv.as_str())], g);
        let doc = render_otel(&reg, 0, 42);
        prop_assert!(validate_json(&doc), "must stay valid JSON: {}", doc);
    }

    #[test]
    fn cardinality_caps_are_airtight_and_counted(
        inserts in proptest::collection::vec((0u8..8, 0u16..32), 1..200),
        max_families in 1usize..4,
        max_series in 1usize..4,
    ) {
        let mut reg = MetricRegistry::new(RegistryConfig {
            max_families,
            max_series_per_family: max_series,
        });
        // Deduplicate: refusals are counted per attempt, so feed each
        // distinct series exactly once to state conservation exactly.
        let attempted_series: BTreeSet<(u8, u16)> = inserts.into_iter().collect();
        for &(f, s) in &attempted_series {
            let name = format!("fet_f{f}_total");
            let lv = s.to_string();
            reg.counter_add(&name, "Prop.", &[("s", lv.as_str())], 1);
        }
        prop_assert!(reg.family_count() <= max_families, "family cap violated");
        for fam in reg.families() {
            prop_assert!(fam.series.len() <= max_series, "series cap violated");
        }
        // Conservation of attempts: every distinct attempted series is
        // either stored or counted as a refusal (series- or family-level).
        let stored = reg.series_count() as u64;
        let refused = reg.series_rejected + reg.families_rejected;
        prop_assert_eq!(
            stored + refused,
            attempted_series.len() as u64,
            "stored + refused must equal distinct attempts"
        );
    }

    #[test]
    fn rendering_ignores_insertion_order(
        mut inserts in proptest::collection::vec((0u8..6, 0u16..6, 0u64..100), 2..40),
    ) {
        let build = |items: &[(u8, u16, u64)]| {
            let mut reg = MetricRegistry::default();
            for &(f, s, v) in items {
                let name = format!("fet_o{f}_total");
                let lv = s.to_string();
                reg.counter_add(&name, "Order.", &[("s", lv.as_str())], v);
            }
            (render_prometheus(&reg), render_otel(&reg, 0, 9))
        };
        let forward = build(&inserts);
        inserts.reverse();
        // Counters accumulate, so reversal preserves totals.
        let reverse = build(&inserts);
        prop_assert_eq!(forward, reverse, "output must not depend on insertion order");
    }
}
