//! Flow-size distributions from the literature the paper samples:
//! DCTCP (web search) [Alizadeh et al., SIGCOMM'10], VL2 [Greenberg et
//! al., SIGCOMM'09], and Facebook's CACHE / HADOOP / WEB clusters
//! [Roy et al., SIGCOMM'15]. Piecewise log-linear CDFs approximated from
//! the published figures — the relevant property for the reproduction is
//! their very different mean sizes and tail weights.

use fet_netsim::rng::Pcg32;

/// A named empirical flow-size CDF.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    /// Workload name as the paper labels it.
    pub name: &'static str,
    /// (size bytes, cumulative probability), strictly increasing in both.
    pub points: &'static [(f64, f64)],
}

/// DCTCP / web-search.
pub const DCTCP: FlowSizeDist = FlowSizeDist {
    name: "DCTCP",
    points: &[
        (1_000.0, 0.0),
        (10_000.0, 0.15),
        (20_000.0, 0.20),
        (50_000.0, 0.40),
        (100_000.0, 0.53),
        (500_000.0, 0.60),
        (1_000_000.0, 0.70),
        (2_000_000.0, 0.80),
        (5_000_000.0, 0.90),
        (10_000_000.0, 0.97),
        (30_000_000.0, 1.0),
    ],
};

/// VL2 measured DC traffic.
pub const VL2: FlowSizeDist = FlowSizeDist {
    name: "VL2",
    points: &[
        (100.0, 0.0),
        (1_000.0, 0.50),
        (10_000.0, 0.80),
        (100_000.0, 0.92),
        (1_000_000.0, 0.95),
        (10_000_000.0, 0.98),
        (100_000_000.0, 1.0),
    ],
};

/// Facebook cache cluster: overwhelmingly small request/response flows.
pub const CACHE: FlowSizeDist = FlowSizeDist {
    name: "CACHE",
    points: &[
        (100.0, 0.0),
        (700.0, 0.30),
        (1_000.0, 0.50),
        (10_000.0, 0.90),
        (100_000.0, 0.97),
        (1_000_000.0, 1.0),
    ],
};

/// Facebook Hadoop cluster.
pub const HADOOP: FlowSizeDist = FlowSizeDist {
    name: "HADOOP",
    points: &[
        (100.0, 0.0),
        (1_000.0, 0.30),
        (10_000.0, 0.70),
        (100_000.0, 0.90),
        (1_000_000.0, 0.95),
        (100_000_000.0, 1.0),
    ],
};

/// Facebook web cluster.
pub const WEB: FlowSizeDist = FlowSizeDist {
    name: "WEB",
    points: &[
        (100.0, 0.0),
        (1_000.0, 0.60),
        (10_000.0, 0.85),
        (100_000.0, 0.95),
        (1_000_000.0, 0.99),
        (10_000_000.0, 1.0),
    ],
};

/// All five workloads, in the order the paper's figures list them.
pub const ALL_WORKLOADS: [&FlowSizeDist; 5] = [&DCTCP, &VL2, &CACHE, &HADOOP, &WEB];

impl FlowSizeDist {
    /// Sample a flow size in bytes (inverse-CDF with log-size
    /// interpolation between the published points).
    pub fn sample(&self, rng: &mut Pcg32) -> u64 {
        let u = rng.next_f64();
        let pts = self.points;
        if u <= pts[0].1 {
            return pts[0].0 as u64;
        }
        for w in pts.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 1.0 };
                let ln = s0.ln() + frac * (s1.ln() - s0.ln());
                return ln.exp().max(1.0) as u64;
            }
        }
        pts[pts.len() - 1].0 as u64
    }

    /// Numeric mean of the distribution (for arrival-rate sizing).
    pub fn mean_bytes(&self) -> f64 {
        // Integrate the piecewise log-linear inverse CDF numerically.
        let n = 10_000;
        let mut acc = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            acc += self.quantile(u);
        }
        acc / n as f64
    }

    /// The u-th quantile in bytes.
    pub fn quantile(&self, u: f64) -> f64 {
        let pts = self.points;
        if u <= pts[0].1 {
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 1.0 };
                return (s0.ln() + frac * (s1.ln() - s0.ln())).exp();
            }
        }
        pts[pts.len() - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_within_support() {
        let mut rng = Pcg32::new(1, 1);
        for d in ALL_WORKLOADS {
            let lo = d.points[0].0 as u64;
            let hi = d.points[d.points.len() - 1].0 as u64;
            for _ in 0..1_000 {
                let s = d.sample(&mut rng);
                assert!(s >= lo.min(1) && s <= hi, "{}: {s} not in [{lo},{hi}]", d.name);
            }
        }
    }

    #[test]
    fn cdfs_are_monotone() {
        for d in ALL_WORKLOADS {
            for w in d.points.windows(2) {
                assert!(w[0].0 < w[1].0, "{} sizes not increasing", d.name);
                assert!(w[0].1 <= w[1].1, "{} probs not monotone", d.name);
            }
            assert_eq!(d.points.last().unwrap().1, 1.0);
        }
    }

    #[test]
    fn workload_means_are_ordered_sensibly() {
        // CACHE/WEB are small-flow workloads; DCTCP is the heavy one.
        let mean = |d: &FlowSizeDist| d.mean_bytes();
        assert!(mean(&CACHE) < mean(&DCTCP));
        assert!(mean(&WEB) < mean(&DCTCP));
        assert!(mean(&DCTCP) > 500_000.0, "DCTCP mean {}", mean(&DCTCP));
        assert!(mean(&CACHE) < 50_000.0, "CACHE mean {}", mean(&CACHE));
    }

    #[test]
    fn empirical_mean_tracks_analytic() {
        let mut rng = Pcg32::new(2, 2);
        let d = &WEB;
        let n = 50_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let ana = d.mean_bytes();
        assert!((emp - ana).abs() / ana < 0.15, "emp {emp} vs ana {ana}");
    }

    #[test]
    fn quantiles_bracket_medians() {
        // VL2 median is ~1KB per its 0.5 point.
        let m = VL2.quantile(0.5);
        assert!((900.0..=1_100.0).contains(&m), "VL2 median {m}");
    }
}
