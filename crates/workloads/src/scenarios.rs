//! The five real NPA case studies of §5.1, reproduced as scripted fault
//! scenarios on the testbed topology, plus the SLA-violation experiment of
//! Figure 8(b).
//!
//! Each case builds the fat-tree, starts background + victim traffic, and
//! injects the case's fault at a known time. The Figure 8(a) harness then
//! measures how long NetSeer needs before the backend can answer the
//! operator's query, and adds the paper's human-phase constants (e.g.
//! case #2's 11 minutes of client communication) which no monitor removes.

use crate::generator::{generate_incast, generate_traffic, TrafficParams};
use fet_netsim::host::FlowSpec;
use fet_netsim::routing::{install_ecmp_routes, override_route, remove_route};
use fet_netsim::time::MILLIS;
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use fet_pdp::table::{AclAction, AclRule};

/// Which §5.1 incident to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseId {
    /// #1 Routing error due to network updates (wrong entry in a core).
    RoutingError,
    /// #2 ACL configuration error (new VM cannot reach the network).
    AclError,
    /// #3 Silent drop due to parity error (memory bit flip kills a route).
    ParityError,
    /// #4 Congestion due to unexpected volume (elephant incast on a core path).
    UnexpectedVolume,
    /// #5 SSD firmware bug (MMU drops at the storage POD's ToR while the
    /// real culprit is the host — NetSeer's job is *exoneration*).
    SsdFirmwareBug,
}

/// All five cases in paper order.
pub const ALL_CASES: [CaseId; 5] = [
    CaseId::RoutingError,
    CaseId::AclError,
    CaseId::ParityError,
    CaseId::UnexpectedVolume,
    CaseId::SsdFirmwareBug,
];

/// Paper constants for Figure 8(a), per case.
#[derive(Debug, Clone, Copy)]
pub struct CasePaperData {
    /// Case label.
    pub label: &'static str,
    /// Location time without NetSeer, minutes (Fig. 8a, right bars).
    pub minutes_without: f64,
    /// Human phases NetSeer cannot remove (client communication etc.),
    /// minutes — the with-NetSeer bar is this plus detection+query time.
    pub human_minutes: f64,
    /// The event type whose report cracks the case.
    pub key_event: EventType,
}

impl CaseId {
    /// The paper's published numbers and diagnosis shape for this case.
    pub fn paper(self) -> CasePaperData {
        match self {
            CaseId::RoutingError => CasePaperData {
                label: "#1 routing error",
                minutes_without: 162.0,
                human_minutes: 0.0,
                key_event: EventType::PathChange,
            },
            CaseId::AclError => CasePaperData {
                label: "#2 ACL config error",
                minutes_without: 28.0,
                human_minutes: 10.9, // obtaining affected flows from the client
                key_event: EventType::PipelineDrop,
            },
            CaseId::ParityError => CasePaperData {
                label: "#3 parity error",
                minutes_without: 442.0,
                human_minutes: 0.0,
                key_event: EventType::PipelineDrop,
            },
            CaseId::UnexpectedVolume => CasePaperData {
                label: "#4 unexpected volume",
                minutes_without: 60.0,
                human_minutes: 0.0,
                key_event: EventType::MmuDrop,
            },
            CaseId::SsdFirmwareBug => CasePaperData {
                label: "#5 SSD firmware bug",
                minutes_without: 284.0,
                human_minutes: 27.0, // storage-side debugging after exoneration
                key_event: EventType::MmuDrop,
            },
        }
    }
}

/// A constructed scenario, ready to run.
pub struct BuiltCase {
    /// The simulator, traffic scheduled and fault scripted.
    pub sim: Simulator,
    /// Topology handles.
    pub ft: FatTree,
    /// The customer's affected flows (what the operator knows going in).
    pub victim_flows: Vec<FlowKey>,
    /// Ground-truth faulty device (what the diagnosis must find).
    pub fault_device: u32,
    /// When the fault activates, ns.
    pub fault_at_ns: u64,
    /// Suggested run horizon, ns.
    pub horizon_ns: u64,
}

/// Build one case. Monitors are NOT attached — the harness deploys
/// whichever monitor it evaluates before running.
pub fn build_case(case: CaseId, seed: u64) -> BuiltCase {
    let mut params = FatTreeParams::default();
    if case == CaseId::UnexpectedVolume || case == CaseId::SsdFirmwareBug {
        // Small buffers so volume translates into drops quickly.
        params.switch_config.mmu.total_bytes = 128 * 1024;
    }
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);

    // Background load.
    let t = TrafficParams {
        utilization: 0.2,
        duration_ns: 40 * MILLIS,
        seed,
        max_flows: 2_000,
        ..Default::default()
    };
    let _bg = generate_traffic(&mut sim, &ft, &crate::distributions::WEB, &t);

    let fault_at_ns = 10 * MILLIS;
    let horizon_ns = 60 * MILLIS;

    // The customer's flows: host 0 (pod 0) talking to host 7 (pod 1).
    let victim_key = FlowKey::tcp(ft.host_ips[0], 55_000, ft.host_ips[7], 443);
    let h0 = ft.hosts[0];
    let idx = sim.host_mut(h0).add_flow(FlowSpec {
        key: victim_key,
        total_bytes: 20_000_000,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h0, idx);
    let mut victim_flows = vec![victim_key];

    let fault_device;
    match case {
        CaseId::RoutingError => {
            // A bad update points core0's route for the victim back into
            // pod 0 — a forwarding loop that TTL-expires, with path-change
            // events at every switch involved.
            let core = ft.cores[0];
            let vip = ft.host_ips[7];
            fault_device = core;
            sim.schedule_control(fault_at_ns, move |s| {
                override_route(s, core, vip, vec![0]);
            });
        }
        CaseId::AclError => {
            // Misconfigured deny on the victim's ToR.
            let tor = ft.edges[0][0];
            fault_device = tor;
            sim.schedule_control(fault_at_ns, move |s| {
                s.switch_mut(tor).acl.install(AclRule {
                    rule_id: 7_001,
                    priority: 1,
                    src: None,
                    dst: None,
                    sport: None,
                    dport: Some(443),
                    proto: None,
                    action: AclAction::Deny,
                });
            });
        }
        CaseId::ParityError => {
            // A bit flip corrupts agg0_0's route for the victim: lookups
            // miss, packets silently blackhole (outside syslog's view).
            let agg = ft.aggs[0][0];
            let vip = ft.host_ips[7];
            fault_device = agg;
            sim.schedule_control(fault_at_ns, move |s| {
                remove_route(s, agg, vip);
            });
        }
        CaseId::UnexpectedVolume => {
            // Another customer's incast floods the victim's destination ToR.
            fault_device = ft.edges[1][1];
            let dst = 7;
            let sources: Vec<usize> = (1..7).collect();
            let keys = generate_incast(&mut sim, &ft, dst, &sources, 5_000_000, fault_at_ns);
            // The hogs, not the victim, are what the operator must find.
            victim_flows.extend(keys);
        }
        CaseId::SsdFirmwareBug => {
            // Storage servers burst at the POD ToR; MMU drops appear, but
            // the root cause is host-side. NetSeer's value: precisely
            // quantifying which storage packets the network did drop.
            fault_device = ft.edges[1][1];
            let keys = generate_incast(&mut sim, &ft, 7, &[4, 5, 6], 8_000_000, fault_at_ns);
            victim_flows.extend(keys);
        }
    }

    BuiltCase { sim, ft, victim_flows, fault_device, fault_at_ns, horizon_ns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_builds_and_faults() {
        for case in ALL_CASES {
            let mut built = build_case(case, 42);
            built.sim.run_until(built.horizon_ns);
            let paper = case.paper();
            // The fault must actually produce the case's key event type.
            let n = built.sim.gt.count(paper.key_event);
            assert!(n > 0, "{:?}: no {} events", case, paper.key_event);
        }
    }

    #[test]
    fn routing_error_loops_and_drops() {
        let mut built = build_case(CaseId::RoutingError, 1);
        built.sim.run_until(built.horizon_ns);
        // TTL-expiry pipeline drops from the loop.
        let drops = built
            .sim
            .gt
            .events()
            .iter()
            .filter(|e| e.drop_code == Some(fet_packet::event::DropCode::TtlExpired))
            .count();
        assert!(drops > 0, "expected TTL-expired drops from the loop");
    }

    #[test]
    fn acl_case_hits_victim_only_port() {
        let mut built = build_case(CaseId::AclError, 1);
        built.sim.run_until(built.horizon_ns);
        let fe = built.sim.gt.flow_events(EventType::PipelineDrop);
        assert!(fe.contains(&(built.fault_device, built.victim_flows[0])));
    }

    #[test]
    fn cases_are_deterministic() {
        let run = |seed| {
            let mut b = build_case(CaseId::ParityError, seed);
            b.sim.run_until(b.horizon_ns);
            b.sim.gt.events().len()
        };
        assert_eq!(run(9), run(9));
    }
}
