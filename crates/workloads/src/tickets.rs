//! Synthetic NPA ticket generation — regenerates the *shapes* of the
//! paper's production statistics (Figures 1 and 3) from the marginal
//! distributions stated in the text, since the real O(100) Alibaba service
//! tickets are proprietary (see DESIGN.md, substitution table).

use fet_netsim::rng::Pcg32;

/// NPA classes of Figure 1(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpaType {
    /// Long-tailed latency.
    LongTailLatency,
    /// Bandwidth loss.
    BandwidthLoss,
    /// Packet timeout.
    PacketTimeout,
}

/// Cause sources of Figure 1(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CauseSource {
    /// The network itself.
    Network,
    /// Server hardware/software.
    Server,
    /// Resource provisioning.
    ResourceProvisioning,
    /// Power problems.
    Power,
    /// Security attack.
    Attack,
}

/// Drop classes of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropClass {
    /// Pipeline drop (routing blackhole, ACL, TTL, MTU…).
    Pipeline,
    /// MMU congestion drop.
    MmuCongestion,
    /// Inter-switch (link) drop.
    InterSwitch,
    /// Inter-card (backplane) drop.
    InterCard,
    /// Switch ASIC failure.
    AsicFailure,
    /// MMU hardware failure.
    MmuFailure,
}

/// One synthetic trouble ticket.
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    /// The NPA type reported.
    pub npa: NpaType,
    /// Root-cause source.
    pub source: CauseSource,
    /// Minutes to locate the root cause.
    pub location_minutes: f64,
    /// Minutes of actual recovery operations after location.
    pub recovery_minutes: f64,
    /// For drop-caused network NPAs: the drop class.
    pub drop_class: Option<DropClass>,
}

impl Ticket {
    /// Total mitigation time.
    pub fn total_minutes(&self) -> f64 {
        self.location_minutes + self.recovery_minutes
    }
}

fn pick<T: Copy>(rng: &mut Pcg32, table: &[(T, f64)]) -> T {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut u = rng.next_f64() * total;
    for &(v, w) in table {
        if u < w {
            return v;
        }
        u -= w;
    }
    table[table.len() - 1].0
}

/// Log-normal-ish positive sample with the given median (minutes).
fn skewed_minutes(rng: &mut Pcg32, median: f64, sigma: f64) -> f64 {
    // Box–Muller from two uniforms.
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (median * (sigma * z).exp()).min(12.0 * 60.0) // paper max ≈ 12h
}

/// Generate `n` tickets matching the paper's published marginals:
/// 86% of network NPAs are drop-caused; pipeline drops >60% of those,
/// congestion ~10%, inter-switch+card ~18%, hardware ~10%; inter-switch
/// drops take the longest to locate (mean ≈161 min); ~half of all NPAs
/// take >10 minutes to recover; location is ~90% of mitigation time.
pub fn synthesize_tickets(n: usize, seed: u64) -> Vec<Ticket> {
    let mut rng = Pcg32::new(seed, 13);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let npa = pick(
            &mut rng,
            &[
                (NpaType::LongTailLatency, 0.4),
                (NpaType::BandwidthLoss, 0.35),
                (NpaType::PacketTimeout, 0.25),
            ],
        );
        // Fractions of cause sources differ per NPA type (Fig. 1b shape).
        let source = match npa {
            NpaType::LongTailLatency => pick(
                &mut rng,
                &[
                    (CauseSource::Network, 0.45),
                    (CauseSource::Server, 0.35),
                    (CauseSource::ResourceProvisioning, 0.12),
                    (CauseSource::Power, 0.05),
                    (CauseSource::Attack, 0.03),
                ],
            ),
            NpaType::BandwidthLoss => pick(
                &mut rng,
                &[
                    (CauseSource::Network, 0.55),
                    (CauseSource::Server, 0.20),
                    (CauseSource::ResourceProvisioning, 0.15),
                    (CauseSource::Power, 0.05),
                    (CauseSource::Attack, 0.05),
                ],
            ),
            NpaType::PacketTimeout => pick(
                &mut rng,
                &[
                    (CauseSource::Network, 0.60),
                    (CauseSource::Server, 0.25),
                    (CauseSource::ResourceProvisioning, 0.08),
                    (CauseSource::Power, 0.04),
                    (CauseSource::Attack, 0.03),
                ],
            ),
        };
        let drop_class = if source == CauseSource::Network && rng.chance(0.86) {
            Some(pick(
                &mut rng,
                &[
                    (DropClass::Pipeline, 0.62),
                    (DropClass::MmuCongestion, 0.10),
                    (DropClass::InterSwitch, 0.12),
                    (DropClass::InterCard, 0.06),
                    (DropClass::AsicFailure, 0.06),
                    (DropClass::MmuFailure, 0.04),
                ],
            ))
        } else {
            None
        };
        // Location time: inter-switch/card drops are the slow ones
        // (paper: average ≈161 min; 50% of >180-min cases).
        let location_minutes = match drop_class {
            Some(DropClass::InterSwitch) | Some(DropClass::InterCard) => {
                skewed_minutes(&mut rng, 120.0, 0.8)
            }
            Some(DropClass::AsicFailure) | Some(DropClass::MmuFailure) => {
                skewed_minutes(&mut rng, 60.0, 0.9)
            }
            Some(_) => skewed_minutes(&mut rng, 25.0, 1.1),
            None => skewed_minutes(&mut rng, 12.0, 1.2),
        };
        // Recovery is fast once located (location ≈ 90% of mitigation).
        let recovery_minutes = location_minutes * (0.05 + 0.1 * rng.next_f64());
        out.push(Ticket { npa, source, location_minutes, recovery_minutes, drop_class });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tickets() -> Vec<Ticket> {
        synthesize_tickets(20_000, 7)
    }

    #[test]
    fn drop_caused_fraction_near_86_percent() {
        let t = tickets();
        let net: Vec<_> = t.iter().filter(|t| t.source == CauseSource::Network).collect();
        let dropped = net.iter().filter(|t| t.drop_class.is_some()).count();
        let frac = dropped as f64 / net.len() as f64;
        assert!((0.82..=0.90).contains(&frac), "drop fraction {frac}");
    }

    #[test]
    fn pipeline_drops_dominate() {
        let t = tickets();
        let drops: Vec<DropClass> = t.iter().filter_map(|t| t.drop_class).collect();
        let pipeline =
            drops.iter().filter(|&&d| d == DropClass::Pipeline).count() as f64 / drops.len() as f64;
        assert!(pipeline > 0.55, "pipeline fraction {pipeline}");
    }

    #[test]
    fn interswitch_location_is_slowest() {
        let t = tickets();
        let mean = |class: DropClass| {
            let v: Vec<f64> = t
                .iter()
                .filter(|t| t.drop_class == Some(class))
                .map(|t| t.location_minutes)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let isw = mean(DropClass::InterSwitch);
        let pipe = mean(DropClass::Pipeline);
        assert!(isw > pipe * 2.0, "inter-switch {isw} vs pipeline {pipe}");
        assert!((100.0..=250.0).contains(&isw), "inter-switch mean {isw}");
    }

    #[test]
    fn location_dominates_mitigation() {
        let t = tickets();
        let loc: f64 = t.iter().map(|t| t.location_minutes).sum();
        let total: f64 = t.iter().map(|t| t.total_minutes()).sum();
        assert!(loc / total > 0.85, "location share {}", loc / total);
    }

    #[test]
    fn about_half_take_over_ten_minutes() {
        let t = tickets();
        let slow = t.iter().filter(|t| t.total_minutes() > 10.0).count() as f64 / t.len() as f64;
        assert!((0.35..=0.75).contains(&slow), "slow fraction {slow}");
    }

    #[test]
    fn capped_at_twelve_hours() {
        let t = tickets();
        assert!(t.iter().all(|t| t.location_minutes <= 720.0));
    }

    #[test]
    fn deterministic() {
        let a = synthesize_tickets(100, 1);
        let b = synthesize_tickets(100, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.location_minutes, y.location_minutes);
        }
    }
}
