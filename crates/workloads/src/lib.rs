//! Workloads: the five real-world traffic distributions of the paper's
//! §5.2 (DCTCP, VL2, CACHE, HADOOP, WEB), a Poisson flow generator that
//! targets a link utilization with a fan-in pattern, the five real-case
//! fault scenarios of §5.1, and the synthetic NPA ticket generator that
//! regenerates the motivation statistics (Figures 1 and 3).

#![warn(missing_docs)]

pub mod distributions;
pub mod generator;
pub mod scenarios;
pub mod tickets;

pub use distributions::{FlowSizeDist, ALL_WORKLOADS};
pub use generator::{generate_traffic, TrafficParams};
pub use tickets::{synthesize_tickets, Ticket};
