//! Poisson traffic generation targeting a link utilization with a fan-in
//! pattern, mirroring the paper's §5.2 setup ("8 clients communicate with
//! 32 servers. Each client has 100K flows and a fan-in ratio of 4 ...
//! average link utilization 70%").

use crate::distributions::FlowSizeDist;
use fet_netsim::host::FlowSpec;
use fet_netsim::rng::Pcg32;
use fet_netsim::topology::FatTree;
use fet_netsim::Simulator;
use fet_packet::FlowKey;

/// Traffic generation parameters.
#[derive(Debug, Clone)]
pub struct TrafficParams {
    /// Target average utilization of host uplinks (0..1).
    pub utilization: f64,
    /// Fan-in: each destination receives from this many sources.
    pub fan_in: usize,
    /// Traffic runs from 0 to this horizon, ns.
    pub duration_ns: u64,
    /// Per-flow pacing rate, Gbps.
    pub flow_rate_gbps: f64,
    /// Payload bytes per packet.
    pub pkt_payload: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on generated flows (keeps short experiments bounded).
    pub max_flows: usize,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            utilization: 0.7,
            fan_in: 4,
            duration_ns: 50 * fet_netsim::MILLIS,
            flow_rate_gbps: 5.0,
            pkt_payload: 1000,
            seed: 0x1337,
            max_flows: 50_000,
        }
    }
}

/// Generate flows into the simulator's hosts and schedule them.
/// Returns the flow keys created (for completion verification).
pub fn generate_traffic(
    sim: &mut Simulator,
    ft: &FatTree,
    dist: &FlowSizeDist,
    params: &TrafficParams,
) -> Vec<FlowKey> {
    let mut rng = Pcg32::new(params.seed, 9);
    let n_hosts = ft.hosts.len();
    assert!(n_hosts >= 2, "need at least two hosts");
    let mean = dist.mean_bytes();
    // Aggregate offered load across all uplinks.
    let host_gbps: f64 = ft.hosts.iter().map(|&h| sim.host(h).config.nic_gbps).sum();
    let target_bps = params.utilization * host_gbps * 1e9;
    let flows_per_sec = target_bps / (mean * 8.0);
    let mean_gap_ns = 1e9 / flows_per_sec;

    let mut keys = Vec::new();
    let mut t = 0.0_f64;
    let mut sport = 10_000u16;
    while (t as u64) < params.duration_ns && keys.len() < params.max_flows {
        t += rng.exponential(mean_gap_ns);
        let start_ns = t as u64;
        if start_ns >= params.duration_ns {
            break;
        }
        let src = rng.next_below(n_hosts as u32) as usize;
        // Fan-in pattern: each source sends to the next `fan_in` hosts, so
        // every destination receives from exactly `fan_in` sources.
        let fan = params.fan_in.clamp(1, n_hosts - 1);
        let offset = rng.next_below(fan as u32) as usize;
        let dst = (src + 1 + offset) % n_hosts;
        let size = dist.sample(&mut rng).max(1);
        sport = sport.wrapping_add(1).max(10_000);
        let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: size,
            pkt_payload: params.pkt_payload,
            rate_gbps: params.flow_rate_gbps,
            start_ns,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        keys.push(key);
    }
    keys
}

/// An incast: `sources` hosts blast one destination simultaneously
/// (the paper's congestion/MMU-drop producer).
pub fn generate_incast(
    sim: &mut Simulator,
    ft: &FatTree,
    dst: usize,
    sources: &[usize],
    bytes_per_source: u64,
    start_ns: u64,
) -> Vec<FlowKey> {
    let mut keys = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        if src == dst {
            continue;
        }
        let key = FlowKey::tcp(ft.host_ips[src], 40_000 + i as u16, ft.host_ips[dst], 9000);
        let h = ft.hosts[src];
        let rate = sim.host(h).config.nic_gbps;
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: bytes_per_source,
            pkt_payload: 1000,
            rate_gbps: rate,
            start_ns,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        keys.push(key);
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{CACHE, WEB};
    use fet_netsim::routing::install_ecmp_routes;
    use fet_netsim::topology::{build_fat_tree, FatTreeParams};

    fn setup() -> (Simulator, FatTree) {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        (sim, ft)
    }

    #[test]
    fn generates_flows_within_horizon() {
        let (mut sim, ft) = setup();
        let params = TrafficParams { duration_ns: 10 * fet_netsim::MILLIS, ..Default::default() };
        let keys = generate_traffic(&mut sim, &ft, &WEB, &params);
        assert!(!keys.is_empty());
        assert!(keys.len() <= params.max_flows);
        // All sources/destinations are real, distinct hosts.
        for k in &keys {
            assert!(ft.host_by_ip(k.src).is_some());
            assert!(ft.host_by_ip(k.dst).is_some());
            assert_ne!(k.src, k.dst);
        }
    }

    #[test]
    fn utilization_roughly_targets_load() {
        let (mut sim, ft) = setup();
        let params = TrafficParams {
            utilization: 0.5,
            duration_ns: 20 * fet_netsim::MILLIS,
            max_flows: 1_000_000,
            ..Default::default()
        };
        let _ = generate_traffic(&mut sim, &ft, &CACHE, &params);
        sim.run_until(40 * fet_netsim::MILLIS);
        // Offered bytes over the duration vs aggregate uplink capacity.
        let sent = sim.host_tx_bytes() as f64 * 8.0;
        let capacity = 8.0 * 25e9 * (params.duration_ns as f64 * 1e-9);
        let u = sent / capacity;
        assert!((0.2..=0.9).contains(&u), "achieved utilization {u}");
    }

    #[test]
    fn deterministic_for_seed() {
        let gen = |seed| {
            let (mut sim, ft) = setup();
            let params =
                TrafficParams { seed, duration_ns: 5 * fet_netsim::MILLIS, ..Default::default() };
            generate_traffic(&mut sim, &ft, &WEB, &params)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn incast_targets_one_destination() {
        let (mut sim, ft) = setup();
        let keys = generate_incast(&mut sim, &ft, 0, &[1, 2, 3, 4, 5, 6, 7], 100_000, 0);
        assert_eq!(keys.len(), 7);
        assert!(keys.iter().all(|k| k.dst == ft.host_ips[0]));
        sim.run_until(fet_netsim::SECONDS);
        let rx: u64 = sim.host(ft.hosts[0]).rx_flows.values().map(|s| s.pkts).sum();
        assert!(rx > 0);
    }
}
