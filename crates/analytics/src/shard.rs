//! One analytics shard: a windowed aggregator plus a Space-Saving sketch,
//! with a per-shard [`AnalyticsLedger`] that accounts for every ingested
//! event so nothing disappears silently — the analytics-side extension of
//! the transport's `generated == delivered + shed + pending +
//! lost_to_crash` discipline.

use crate::topk::SpaceSaving;
use crate::window::{AggKey, WindowAggregator};
use netseer::StoredEvent;
/// Parks between merges of the reorder buffer's incoming chunk into its
/// sorted run: small enough to bound the forced-release scan, large
/// enough to keep the merge amortized-cheap per event.
const REORDER_CHUNK: usize = 256;

/// Disposition accounting for one shard (or, summed, the whole engine).
///
/// Identity: `ingested == aggregated + sketch_absorbed + shed_analytics
/// + late_shed + pending_reorder`.
///
/// Every event gets exactly one disposition:
/// * `aggregated` — the window aggregator accepted it (the common case);
/// * `sketch_absorbed` — the aggregator's key table was full but the event
///   is a loss/congestion report, so the top-k sketch (which never
///   rejects) still captured its flow;
/// * `shed_analytics` — neither structure could hold it; counted, not lost;
/// * `late_shed` — arrived behind the event-time watermark by more than
///   the lateness bound; booked, never silently dropped;
/// * `pending_reorder` — parked in the event-time reorder buffer, waiting
///   for the watermark (occupancy, not cumulative; drains to zero on
///   [`ShardWorker::flush`]).
///
/// `late_admitted` is a memo, *outside* the identity: events behind the
/// watermark but within the lateness bound are admitted and take one of
/// the three ordinary dispositions; the memo records how many took that
/// late path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticsLedger {
    /// Events handed to the shard.
    pub ingested: u64,
    /// Accepted by the window aggregator.
    pub aggregated: u64,
    /// Refused by the aggregator, absorbed by the top-k sketch.
    pub sketch_absorbed: u64,
    /// Refused by both; accounted as analytics shed.
    pub shed_analytics: u64,
    /// Behind the watermark but within the lateness bound: admitted
    /// anyway (memo — these also count in one of the terms above).
    pub late_admitted: u64,
    /// Behind the watermark by more than the lateness bound: shed.
    pub late_shed: u64,
    /// Currently parked in the event-time reorder buffer.
    pub pending_reorder: u64,
}

impl AnalyticsLedger {
    fn accounted(&self) -> u64 {
        self.aggregated
            + self.sketch_absorbed
            + self.shed_analytics
            + self.late_shed
            + self.pending_reorder
    }

    /// True when the identity holds.
    pub fn balanced(&self) -> bool {
        self.ingested == self.accounted()
    }

    /// Events unaccounted for (0 when balanced).
    pub fn missing(&self) -> i64 {
        self.ingested as i64 - self.accounted() as i64
    }

    /// Panic with a full breakdown unless balanced.
    pub fn assert_balanced(&self) {
        assert!(
            self.balanced(),
            "analytics ledger unbalanced: ingested {} != aggregated {} + sketch_absorbed {} \
             + shed_analytics {} + late_shed {} + pending_reorder {} (missing {})",
            self.ingested,
            self.aggregated,
            self.sketch_absorbed,
            self.shed_analytics,
            self.late_shed,
            self.pending_reorder,
            self.missing()
        );
    }

    /// Sum another ledger into this one.
    pub fn absorb(&mut self, other: &AnalyticsLedger) {
        self.ingested += other.ingested;
        self.aggregated += other.aggregated;
        self.sketch_absorbed += other.sketch_absorbed;
        self.shed_analytics += other.shed_analytics;
        self.late_admitted += other.late_admitted;
        self.late_shed += other.late_shed;
        self.pending_reorder += other.pending_reorder;
    }
}

/// One flow-hash shard: windows + sketch + ledger, with an optional
/// event-time front end (watermark + bounded reorder buffer).
#[derive(Debug, Clone)]
pub struct ShardWorker {
    /// Tumbling/sliding aggregates for this shard's flows.
    pub windows: WindowAggregator,
    /// Heaviest loss/congestion flows in this shard.
    pub topk: SpaceSaving,
    /// Disposition accounting.
    pub ledger: AnalyticsLedger,
    /// Watermark lag behind the max stamp seen, ns. With `reorder_cap`
    /// both zero the event-time front end is disabled and [`absorb`]
    /// (Self::absorb) is the exact arrival-order path.
    lateness_bound_ns: u64,
    /// Max parked events; an overflow releases the oldest immediately.
    reorder_cap: usize,
    /// Parked events sorted *descending* by (stamp, arrival tiebreak):
    /// the buffer minimum pops O(1) off the tail.
    sorted: Vec<(u64, u64, StoredEvent)>,
    /// Recent parks, unsorted; merged into `sorted` every
    /// [`REORDER_CHUNK`] parks so the merge stays amortized-O(1)/event.
    incoming: Vec<(u64, u64, StoredEvent)>,
    /// Minimum (stamp, arrival) key across `incoming` (`None` = empty).
    incoming_min: Option<(u64, u64)>,
    /// Merge scratch, reused to avoid per-merge allocation.
    scratch: Vec<(u64, u64, StoredEvent)>,
    /// Arrival tiebreak so equal stamps release in arrival order.
    arrival_seq: u64,
    /// Largest event-time stamp seen; the watermark trails it by
    /// `lateness_bound_ns`.
    max_stamp_ns: u64,
}

impl ShardWorker {
    /// A shard with the given window geometry and sketch capacity, in
    /// arrival-order (processing-time) mode.
    pub fn new(window_ns: u64, sliding_buckets: usize, max_agg_keys: usize, topk_k: usize) -> Self {
        ShardWorker {
            windows: WindowAggregator::new(window_ns, sliding_buckets, max_agg_keys),
            topk: SpaceSaving::new(topk_k),
            ledger: AnalyticsLedger::default(),
            lateness_bound_ns: 0,
            reorder_cap: 0,
            sorted: Vec::new(),
            incoming: Vec::new(),
            incoming_min: None,
            scratch: Vec::new(),
            arrival_seq: 0,
            max_stamp_ns: 0,
        }
    }

    /// Switch on the event-time front end: events sort in a reorder
    /// buffer (≤ `reorder_cap` parked) until the watermark — max stamp
    /// seen minus `lateness_bound_ns` — passes them; events arriving
    /// behind the watermark are admitted if within the bound, shed (and
    /// booked) otherwise. `(0, 0)` keeps the arrival-order path.
    pub fn with_event_time(mut self, lateness_bound_ns: u64, reorder_cap: usize) -> Self {
        self.lateness_bound_ns = lateness_bound_ns;
        self.reorder_cap = reorder_cap;
        self
    }

    /// True when the event-time front end is active.
    pub fn event_time_enabled(&self) -> bool {
        self.lateness_bound_ns > 0 || self.reorder_cap > 0
    }

    /// The current watermark: stamps below this are late.
    pub fn watermark_ns(&self) -> u64 {
        self.max_stamp_ns.saturating_sub(self.lateness_bound_ns)
    }

    /// Absorb one delivered event, assigning it exactly one disposition
    /// (possibly deferred through the reorder buffer).
    pub fn absorb(&mut self, e: &StoredEvent) {
        self.ledger.ingested += 1;
        if !self.event_time_enabled() {
            self.dispose(e);
            return;
        }
        let t = e.time_ns;
        let watermark = self.watermark_ns();
        if self.max_stamp_ns > 0 && t < watermark {
            // Late: behind the watermark. Within the bound it still
            // counts (the aggregator books it `late`, totals stay
            // exact); beyond the bound it is shed — and booked.
            if watermark - t <= self.lateness_bound_ns {
                self.ledger.late_admitted += 1;
                self.dispose(e);
            } else {
                self.ledger.late_shed += 1;
            }
            return;
        }
        self.max_stamp_ns = self.max_stamp_ns.max(t);
        self.arrival_seq += 1;
        let key = (t, self.arrival_seq);
        self.incoming_min = Some(match self.incoming_min {
            Some(m) if m < key => m,
            _ => key,
        });
        self.incoming.push((key.0, key.1, *e));
        if self.incoming.len() >= REORDER_CHUNK {
            self.compact();
        }
        self.ledger.pending_reorder += 1;
        if self.sorted.len() + self.incoming.len() > self.reorder_cap {
            // Cap overflow: release the oldest parked event now rather
            // than dropping anything.
            self.release_one();
        }
        self.release_ripe();
    }

    /// Sort the incoming chunk and merge it into the descending run.
    /// Amortized O(1) comparisons and sequential moves per parked event.
    fn compact(&mut self) {
        if self.incoming.is_empty() {
            return;
        }
        self.incoming.sort_unstable_by_key(|p| std::cmp::Reverse((p.0, p.1)));
        self.scratch.clear();
        self.scratch.reserve(self.sorted.len() + self.incoming.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < self.incoming.len() {
            let (a, b) = (self.sorted[i], self.incoming[j]);
            if (a.0, a.1) > (b.0, b.1) {
                self.scratch.push(a);
                i += 1;
            } else {
                self.scratch.push(b);
                j += 1;
            }
        }
        self.scratch.extend_from_slice(&self.sorted[i..]);
        self.scratch.extend_from_slice(&self.incoming[j..]);
        std::mem::swap(&mut self.sorted, &mut self.scratch);
        self.incoming.clear();
        self.incoming_min = None;
    }

    /// The smallest parked (stamp, arrival) key, without releasing it.
    fn peek_min_key(&self) -> Option<(u64, u64)> {
        let run = self.sorted.last().map(|p| (p.0, p.1));
        match (run, self.incoming_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pop the oldest parked event and give it its final disposition.
    /// O(1) off the sorted run in the common case; a bounded
    /// O([`REORDER_CHUNK`]) scan when the minimum sits in the chunk.
    fn release_one(&mut self) {
        let from_incoming = match (self.sorted.last(), self.incoming_min) {
            (Some(s), Some(m)) => m < (s.0, s.1),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return,
        };
        let ev = if from_incoming {
            let mut k = 0;
            for (i, p) in self.incoming.iter().enumerate() {
                if (p.0, p.1) < (self.incoming[k].0, self.incoming[k].1) {
                    k = i;
                }
            }
            let p = self.incoming.swap_remove(k);
            self.incoming_min = self.incoming.iter().map(|p| (p.0, p.1)).min();
            p.2
        } else {
            self.sorted.pop().expect("sorted run nonempty on this branch").2
        };
        self.ledger.pending_reorder -= 1;
        self.dispose(&ev);
    }

    /// Release parked events the watermark has passed, in event-time
    /// order.
    fn release_ripe(&mut self) {
        let watermark = self.watermark_ns();
        while let Some((t, _)) = self.peek_min_key() {
            if t >= watermark {
                break;
            }
            self.release_one();
        }
    }

    /// Drain the reorder buffer unconditionally (end of stream): every
    /// parked event gets its final disposition and `pending_reorder`
    /// returns to zero.
    pub fn flush(&mut self) {
        self.compact();
        while let Some(p) = self.sorted.pop() {
            self.ledger.pending_reorder -= 1;
            self.dispose(&p.2);
        }
    }

    /// The final disposition: exactly the pre-event-time absorb logic.
    fn dispose(&mut self, e: &StoredEvent) {
        let weight = u64::from(e.record.counter.max(1));
        let interesting = e.record.ty.is_drop() || e.record.ty == fet_packet::EventType::Congestion;
        // Victim flows feed the sketch regardless of the aggregator's
        // verdict — the sketch ranks flows, the windows count keys, and
        // the two answer different questions.
        if interesting {
            self.topk.offer(e.record.flow, weight);
        }
        if self.windows.offer(e.time_ns, AggKey::of(e), weight) {
            self.ledger.aggregated += 1;
        } else if interesting {
            self.ledger.sketch_absorbed += 1;
        } else {
            self.ledger.shed_analytics += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn ev(device: u32, ty: EventType, time_ns: u64) -> StoredEvent {
        let detail = if ty.is_drop() {
            EventDetail::Drop { ingress_port: 1, egress_port: 2, code: DropCode::TableMiss }
        } else {
            EventDetail::Congestion { egress_port: 2, queue: 0, latency_us: 100 }
        };
        StoredEvent {
            time_ns,
            device,
            epoch: 0,
            seq: 0,
            record: EventRecord {
                ty,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_u32(0x0a00_0000 | device),
                    1,
                    Ipv4Addr::from_octets([10, 9, 9, 9]),
                    80,
                ),
                detail,
                counter: 2,
                hash: device,
            },
        }
    }

    #[test]
    fn every_event_gets_exactly_one_disposition() {
        // max_agg_keys = 2: devices 1 and 2 aggregate, the rest overflow.
        let mut s = ShardWorker::new(100, 4, 2, 8);
        for device in 1..=6u32 {
            // Half drops (sketch-absorbable), half PathChange (sheddable).
            let ty = if device % 2 == 0 { EventType::PathChange } else { EventType::MmuDrop };
            s.absorb(&ev(device, ty, 10));
        }
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.ingested, 6);
        assert_eq!(s.ledger.aggregated, 2, "first two keys accepted");
        assert_eq!(s.ledger.sketch_absorbed, 2, "overflowing drops hit the sketch");
        assert_eq!(s.ledger.shed_analytics, 2, "overflowing path-changes shed");
    }

    #[test]
    fn drop_weight_reaches_the_sketch_even_when_aggregated() {
        let mut s = ShardWorker::new(100, 4, 64, 8);
        let e = ev(1, EventType::InterSwitchDrop, 5);
        s.absorb(&e);
        assert_eq!(s.ledger.aggregated, 1);
        assert_eq!(s.topk.estimate(&e.record.flow), Some((2, 0)), "counter weight 2");
    }

    #[test]
    fn event_time_zero_config_is_exact_passthrough() {
        let mut a = ShardWorker::new(100, 4, 64, 8);
        let mut b = ShardWorker::new(100, 4, 64, 8).with_event_time(0, 0);
        for (i, t) in [500u64, 10, 350, 350, 90].into_iter().enumerate() {
            let e = ev(i as u32 % 3 + 1, EventType::MmuDrop, t);
            a.absorb(&e);
            b.absorb(&e);
        }
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.windows.totals(), b.windows.totals());
        assert_eq!(a.windows.late, b.windows.late);
    }

    #[test]
    fn reorder_buffer_releases_in_event_time_order() {
        let mut s = ShardWorker::new(100, 8, 64, 8).with_event_time(200, 16);
        // Stamps arrive shuffled; watermark (max - 200) releases them
        // sorted, so the aggregator books zero of its own `late`.
        for t in [300u64, 100, 250, 600, 420, 500, 900, 880] {
            s.absorb(&ev(1, EventType::MmuDrop, t));
        }
        s.flush();
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.pending_reorder, 0);
        assert_eq!(s.ledger.ingested, 8);
        assert_eq!(s.ledger.aggregated, 8);
        assert_eq!(s.ledger.late_shed, 0);
        assert_eq!(s.windows.late, 0, "reorder buffer absorbed the disorder");
    }

    #[test]
    fn deep_late_events_are_shed_and_booked() {
        let mut s = ShardWorker::new(100, 8, 64, 8).with_event_time(50, 4);
        s.absorb(&ev(1, EventType::MmuDrop, 10_000));
        // Watermark is 9_950; within-bound late admits, deeper sheds.
        s.absorb(&ev(1, EventType::MmuDrop, 9_920));
        s.absorb(&ev(1, EventType::MmuDrop, 3));
        s.flush();
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.late_admitted, 1);
        assert_eq!(s.ledger.late_shed, 1);
        assert_eq!(s.ledger.ingested, 3);
        assert_eq!(s.ledger.aggregated, 2, "the shed event never reached the windows");
    }

    #[test]
    fn cap_overflow_releases_oldest_instead_of_dropping() {
        let mut s = ShardWorker::new(100, 8, 64, 8).with_event_time(u64::MAX / 2, 2);
        // Watermark never advances past 0 (huge bound), so only the cap
        // can release events — and it must release, not drop.
        for t in [40u64, 10, 30, 20] {
            s.absorb(&ev(1, EventType::MmuDrop, t));
        }
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.pending_reorder, 2, "cap holds two parked");
        assert_eq!(s.ledger.aggregated, 2, "overflow released the two oldest");
        s.flush();
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.aggregated, 4);
        assert_eq!(s.ledger.late_shed, 0);
    }

    #[test]
    fn ledger_absorb_sums_shards() {
        let mut a = AnalyticsLedger {
            ingested: 3,
            aggregated: 2,
            sketch_absorbed: 1,
            ..Default::default()
        };
        let b =
            AnalyticsLedger { ingested: 2, aggregated: 1, shed_analytics: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.ingested, 5);
        a.assert_balanced();
    }
}
