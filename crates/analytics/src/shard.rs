//! One analytics shard: a windowed aggregator plus a Space-Saving sketch,
//! with a per-shard [`AnalyticsLedger`] that accounts for every ingested
//! event so nothing disappears silently — the analytics-side extension of
//! the transport's `generated == delivered + shed + pending +
//! lost_to_crash` discipline.

use crate::topk::SpaceSaving;
use crate::window::{AggKey, WindowAggregator};
use netseer::StoredEvent;

/// Disposition accounting for one shard (or, summed, the whole engine).
///
/// Identity: `ingested == aggregated + sketch_absorbed + shed_analytics`.
///
/// Every event gets exactly one disposition:
/// * `aggregated` — the window aggregator accepted it (the common case);
/// * `sketch_absorbed` — the aggregator's key table was full but the event
///   is a loss/congestion report, so the top-k sketch (which never
///   rejects) still captured its flow;
/// * `shed_analytics` — neither structure could hold it; counted, not lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticsLedger {
    /// Events handed to the shard.
    pub ingested: u64,
    /// Accepted by the window aggregator.
    pub aggregated: u64,
    /// Refused by the aggregator, absorbed by the top-k sketch.
    pub sketch_absorbed: u64,
    /// Refused by both; accounted as analytics shed.
    pub shed_analytics: u64,
}

impl AnalyticsLedger {
    /// True when the identity holds.
    pub fn balanced(&self) -> bool {
        self.ingested == self.aggregated + self.sketch_absorbed + self.shed_analytics
    }

    /// Events unaccounted for (0 when balanced).
    pub fn missing(&self) -> i64 {
        self.ingested as i64 - (self.aggregated + self.sketch_absorbed + self.shed_analytics) as i64
    }

    /// Panic with a full breakdown unless balanced.
    pub fn assert_balanced(&self) {
        assert!(
            self.balanced(),
            "analytics ledger unbalanced: ingested {} != aggregated {} + sketch_absorbed {} \
             + shed_analytics {} (missing {})",
            self.ingested,
            self.aggregated,
            self.sketch_absorbed,
            self.shed_analytics,
            self.missing()
        );
    }

    /// Sum another ledger into this one.
    pub fn absorb(&mut self, other: &AnalyticsLedger) {
        self.ingested += other.ingested;
        self.aggregated += other.aggregated;
        self.sketch_absorbed += other.sketch_absorbed;
        self.shed_analytics += other.shed_analytics;
    }
}

/// One flow-hash shard: windows + sketch + ledger.
#[derive(Debug, Clone)]
pub struct ShardWorker {
    /// Tumbling/sliding aggregates for this shard's flows.
    pub windows: WindowAggregator,
    /// Heaviest loss/congestion flows in this shard.
    pub topk: SpaceSaving,
    /// Disposition accounting.
    pub ledger: AnalyticsLedger,
}

impl ShardWorker {
    /// A shard with the given window geometry and sketch capacity.
    pub fn new(window_ns: u64, sliding_buckets: usize, max_agg_keys: usize, topk_k: usize) -> Self {
        ShardWorker {
            windows: WindowAggregator::new(window_ns, sliding_buckets, max_agg_keys),
            topk: SpaceSaving::new(topk_k),
            ledger: AnalyticsLedger::default(),
        }
    }

    /// Absorb one delivered event, assigning it exactly one disposition.
    pub fn absorb(&mut self, e: &StoredEvent) {
        self.ledger.ingested += 1;
        let weight = u64::from(e.record.counter.max(1));
        let interesting = e.record.ty.is_drop() || e.record.ty == fet_packet::EventType::Congestion;
        // Victim flows feed the sketch regardless of the aggregator's
        // verdict — the sketch ranks flows, the windows count keys, and
        // the two answer different questions.
        if interesting {
            self.topk.offer(e.record.flow, weight);
        }
        if self.windows.offer(e.time_ns, AggKey::of(e), weight) {
            self.ledger.aggregated += 1;
        } else if interesting {
            self.ledger.sketch_absorbed += 1;
        } else {
            self.ledger.shed_analytics += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn ev(device: u32, ty: EventType, time_ns: u64) -> StoredEvent {
        let detail = if ty.is_drop() {
            EventDetail::Drop { ingress_port: 1, egress_port: 2, code: DropCode::TableMiss }
        } else {
            EventDetail::Congestion { egress_port: 2, queue: 0, latency_us: 100 }
        };
        StoredEvent {
            time_ns,
            device,
            epoch: 0,
            seq: 0,
            record: EventRecord {
                ty,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_u32(0x0a00_0000 | device),
                    1,
                    Ipv4Addr::from_octets([10, 9, 9, 9]),
                    80,
                ),
                detail,
                counter: 2,
                hash: device,
            },
        }
    }

    #[test]
    fn every_event_gets_exactly_one_disposition() {
        // max_agg_keys = 2: devices 1 and 2 aggregate, the rest overflow.
        let mut s = ShardWorker::new(100, 4, 2, 8);
        for device in 1..=6u32 {
            // Half drops (sketch-absorbable), half PathChange (sheddable).
            let ty = if device % 2 == 0 { EventType::PathChange } else { EventType::MmuDrop };
            s.absorb(&ev(device, ty, 10));
        }
        s.ledger.assert_balanced();
        assert_eq!(s.ledger.ingested, 6);
        assert_eq!(s.ledger.aggregated, 2, "first two keys accepted");
        assert_eq!(s.ledger.sketch_absorbed, 2, "overflowing drops hit the sketch");
        assert_eq!(s.ledger.shed_analytics, 2, "overflowing path-changes shed");
    }

    #[test]
    fn drop_weight_reaches_the_sketch_even_when_aggregated() {
        let mut s = ShardWorker::new(100, 4, 64, 8);
        let e = ev(1, EventType::InterSwitchDrop, 5);
        s.absorb(&e);
        assert_eq!(s.ledger.aggregated, 1);
        assert_eq!(s.topk.estimate(&e.record.flow), Some((2, 0)), "counter weight 2");
    }

    #[test]
    fn ledger_absorb_sums_shards() {
        let mut a = AnalyticsLedger {
            ingested: 3,
            aggregated: 2,
            sketch_absorbed: 1,
            ..Default::default()
        };
        let b =
            AnalyticsLedger { ingested: 2, aggregated: 1, shed_analytics: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.ingested, 5);
        a.assert_balanced();
    }
}
