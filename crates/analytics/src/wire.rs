//! Glue between the simulator fleet and the analytics engine: build the
//! link map from the simulator's wiring truth and harvest downstream
//! gap-detector scrapes from the deployed monitors.

use crate::correlate::{GapReport, LinkMap};
use fet_netsim::engine::Simulator;
use netseer::deploy::gap_reports;

/// The fleet's link map, from the simulator's port wiring.
pub fn link_map_from_sim(sim: &Simulator) -> LinkMap {
    LinkMap::from_endpoints(sim.link_endpoints())
}

/// Scrape every deployed monitor's per-port gap counts as correlator
/// input. Counts are cumulative; feed each scrape to a fresh engine (or
/// diff externally) rather than re-ingesting the same scrape twice.
pub fn harvest_gap_reports(sim: &Simulator) -> Vec<GapReport> {
    gap_reports(sim)
        .into_iter()
        .map(|(device, port, gaps)| GapReport { device, port, gaps })
        .collect()
}
