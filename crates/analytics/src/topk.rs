//! Space-Saving top-k sketch (Metwally, Agrawal, El Abbadi 2005) over
//! victim flows, in the HashPipe lineage of data-plane heavy-hitter
//! detection: a hard-bounded table of `k` counters that absorbs an
//! unbounded stream and answers "which flows did this fault hurt most?"
//! with a provable per-entry error bound.
//!
//! Guarantees (for total absorbed weight `W` and capacity `k`):
//!
//! * every entry reports `count` and `error` with
//!   `count - error <= true_weight <= count`;
//! * any flow whose true weight exceeds `W / k` is present in the table
//!   (zero false negatives above the guarantee threshold);
//! * memory is exactly `k` entries, whatever the stream does.

use fet_packet::FlowKey;
use std::collections::HashMap;

/// One reported heavy-hitter entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEntry {
    /// The victim flow.
    pub flow: FlowKey,
    /// Estimated weight (an overestimate: `true <= count`).
    pub count: u64,
    /// Maximum overestimation (`count - error <= true`).
    pub error: u64,
}

impl TopKEntry {
    /// Guaranteed lower bound on the flow's true weight.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// The Space-Saving sketch: at most `k` monitored flows.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    table: HashMap<FlowKey, (u64, u64)>, // flow -> (count, error)
    /// Offers absorbed (every offer is absorbed; the sketch never rejects).
    pub offered: u64,
    /// Total absorbed weight `W` (guarantee threshold is `W / k`).
    pub total_weight: u64,
    /// Evictions of the minimum entry (replacement pressure).
    pub evictions: u64,
}

impl SpaceSaving {
    /// A sketch tracking at most `k` flows (`k >= 1`).
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        SpaceSaving {
            k,
            table: HashMap::with_capacity(k),
            offered: 0,
            total_weight: 0,
            evictions: 0,
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Monitored flows right now (≤ k).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing was offered yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Absorb one observation of `flow` with `weight`. Never rejects.
    pub fn offer(&mut self, flow: FlowKey, weight: u64) {
        let weight = weight.max(1);
        self.offered += 1;
        self.total_weight += weight;
        if let Some((count, _)) = self.table.get_mut(&flow) {
            *count += weight;
            return;
        }
        if self.table.len() < self.k {
            self.table.insert(flow, (weight, 0));
            return;
        }
        // Replace the minimum-count entry; ties break on the smallest flow
        // key so the same stream always evicts the same victim.
        let (&victim, &(min_count, _)) =
            self.table.iter().min_by_key(|&(f, &(c, _))| (c, *f)).expect("k >= 1 and table full");
        self.table.remove(&victim);
        // The newcomer inherits the victim's count as its error bound: its
        // true weight is at most `min_count + weight`, at least `weight`.
        self.table.insert(flow, (min_count + weight, min_count));
        self.evictions += 1;
    }

    /// The top `n` entries, heaviest first (deterministic tie-break on the
    /// flow key).
    pub fn top(&self, n: usize) -> Vec<TopKEntry> {
        let mut v: Vec<TopKEntry> = self
            .table
            .iter()
            .map(|(&flow, &(count, error))| TopKEntry { flow, count, error })
            .collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.flow.cmp(&b.flow)));
        v.truncate(n);
        v
    }

    /// The smallest monitored count (the eviction bar; 0 while not full).
    pub fn min_count(&self) -> u64 {
        if self.table.len() < self.k {
            return 0;
        }
        self.table.values().map(|&(c, _)| c).min().unwrap_or(0)
    }

    /// The guarantee threshold: any flow with true weight above
    /// `total_weight / k` is certainly in the table.
    pub fn guarantee_threshold(&self) -> u64 {
        self.total_weight / self.k as u64
    }

    /// Estimated (count, error) for a flow, if monitored.
    pub fn estimate(&self, flow: &FlowKey) -> Option<(u64, u64)> {
        self.table.get(flow).copied()
    }

    /// Fold another sketch into this one (used to merge per-shard sketches;
    /// with flow-hash sharding each flow lives in exactly one shard, so the
    /// merge is a disjoint union and the per-entry bounds are preserved).
    pub fn absorb_entries(&mut self, other: &SpaceSaving) {
        self.offered += other.offered;
        self.total_weight += other.total_weight;
        self.evictions += other.evictions;
        for (&flow, &(count, error)) in &other.table {
            self.table.insert(flow, (count, error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0000 | n),
            (n % 60_000) as u16,
            Ipv4Addr::from_octets([10, 200, 0, 1]),
            80,
        )
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for n in 0..5u32 {
            for _ in 0..=n {
                s.offer(flow(n), 1);
            }
        }
        for n in 0..5u32 {
            assert_eq!(s.estimate(&flow(n)), Some((u64::from(n) + 1, 0)));
        }
        assert_eq!(s.min_count(), 0, "not full yet");
        let top = s.top(2);
        assert_eq!(top[0].flow, flow(4));
        assert_eq!(top[1].flow, flow(3));
    }

    #[test]
    fn error_bounds_hold_under_eviction() {
        let mut s = SpaceSaving::new(4);
        let mut truth: HashMap<FlowKey, u64> = HashMap::new();
        // A skewed stream: flows 0..3 heavy, 4..20 light noise.
        for round in 0..50u32 {
            for n in 0..4u32 {
                s.offer(flow(n), 3);
                *truth.entry(flow(n)).or_default() += 3;
            }
            let noise = 4 + (round % 17);
            s.offer(flow(noise), 1);
            *truth.entry(flow(noise)).or_default() += 1;
        }
        for e in s.top(4) {
            let t = truth.get(&e.flow).copied().unwrap_or(0);
            assert!(t <= e.count, "true {t} > count {} for {:?}", e.count, e.flow);
            assert!(e.guaranteed() <= t, "lower bound {} > true {t}", e.guaranteed());
        }
    }

    #[test]
    fn heavy_hitters_above_threshold_never_evicted() {
        let mut s = SpaceSaving::new(8);
        // One flow takes half the total weight; it must be present.
        for i in 0..1000u32 {
            s.offer(flow(0), 1);
            s.offer(flow(1 + (i % 100)), 1);
        }
        assert!(s.estimate(&flow(0)).is_some(), "flow above W/k must survive");
        assert_eq!(s.top(1)[0].flow, flow(0));
        assert!(s.total_weight / 8 < 1000);
    }

    #[test]
    fn memory_is_hard_bounded() {
        let mut s = SpaceSaving::new(16);
        for n in 0..10_000u32 {
            s.offer(flow(n), 1);
        }
        assert_eq!(s.len(), 16);
        assert_eq!(s.offered, 10_000);
        assert!(s.evictions > 0);
    }

    #[test]
    fn merge_of_disjoint_sketches_is_lossless() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        a.offer(flow(1), 5);
        b.offer(flow(2), 7);
        let mut m = SpaceSaving::new(8);
        m.absorb_entries(&a);
        m.absorb_entries(&b);
        assert_eq!(m.estimate(&flow(1)), Some((5, 0)));
        assert_eq!(m.estimate(&flow(2)), Some((7, 0)));
        assert_eq!(m.total_weight, 12);
    }
}
