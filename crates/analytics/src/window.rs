//! Tumbling + sliding time-window aggregates per (device, event type,
//! drop reason), in the bounded-memory spirit of compact telemetry
//! summaries: the key table and the bucket ring are both hard-capped, and
//! an offer that would grow past the cap is *refused* (the caller routes
//! the event to the top-k sketch or the shed counter — never silently
//! dropped).

use fet_packet::event::{DropCode, EventDetail, EventType};
use netseer::StoredEvent;
use std::collections::{HashMap, VecDeque};

/// The aggregation key: where, what, and (for drops) why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggKey {
    /// Reporting device.
    pub device: u32,
    /// Event class.
    pub ty: EventType,
    /// Drop reason for the three drop classes, `None` otherwise.
    pub reason: Option<DropCode>,
}

impl AggKey {
    /// The key of a stored event.
    pub fn of(e: &StoredEvent) -> Self {
        let reason = match e.record.detail {
            EventDetail::Drop { code, .. } => Some(code),
            _ => None,
        };
        AggKey { device: e.device, ty: e.record.ty, reason }
    }

    /// Deterministic sort key (DropCode has no Ord; use wire codes).
    fn order(&self) -> (u32, u8, u8) {
        (self.device, self.ty.code(), self.reason.map_or(0, |c| c.code()))
    }
}

/// Aggregate counts for one key in one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Event records aggregated.
    pub events: u64,
    /// Total weight (the records' packet counters — a counter report for
    /// 128 suppressed packets weighs 128, not 1).
    pub weight: u64,
}

impl WindowStats {
    fn add(&mut self, weight: u64) {
        self.events += 1;
        self.weight += weight;
    }
}

/// Bounded tumbling-window aggregator with a sliding view over the last
/// `sliding_buckets` windows and cumulative per-key totals.
#[derive(Debug, Clone)]
pub struct WindowAggregator {
    width_ns: u64,
    sliding_buckets: usize,
    max_keys: usize,
    /// Retained tumbling buckets, oldest first: (bucket index, per-key stats).
    buckets: VecDeque<(u64, HashMap<AggKey, WindowStats>)>,
    totals: HashMap<AggKey, WindowStats>,
    /// Events accepted into the aggregates.
    pub aggregated: u64,
    /// Offers refused because a new key would exceed `max_keys`.
    pub rejected: u64,
    /// Accepted events older than the oldest retained bucket (they count
    /// in `totals` but have no tumbling bucket anymore).
    pub late: u64,
}

impl WindowAggregator {
    /// A new aggregator: `width_ns` per tumbling window, a sliding view of
    /// `sliding_buckets` windows, at most `max_keys` distinct keys.
    pub fn new(width_ns: u64, sliding_buckets: usize, max_keys: usize) -> Self {
        WindowAggregator {
            width_ns: width_ns.max(1),
            sliding_buckets: sliding_buckets.max(1),
            max_keys: max_keys.max(1),
            buckets: VecDeque::new(),
            totals: HashMap::new(),
            aggregated: 0,
            rejected: 0,
            late: 0,
        }
    }

    /// Tumbling window width, ns.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// The bucket index covering time `t`.
    pub fn bucket_of(&self, t: u64) -> u64 {
        t / self.width_ns
    }

    /// Offer one event: true = aggregated, false = refused (key table
    /// full). A refusal leaves the aggregator untouched so the caller can
    /// give the event another disposition.
    pub fn offer(&mut self, time_ns: u64, key: AggKey, weight: u64) -> bool {
        if !self.totals.contains_key(&key) && self.totals.len() >= self.max_keys {
            self.rejected += 1;
            return false;
        }
        let weight = weight.max(1);
        self.totals.entry(key).or_default().add(weight);
        self.aggregated += 1;
        let bucket = self.bucket_of(time_ns);
        // Deliveries are per-device ordered but may interleave slightly
        // across devices: place the event in its (possibly out-of-order)
        // bucket if the ring still covers it, else count it late.
        if self.buckets.front().is_some_and(|&(oldest, _)| bucket < oldest) {
            self.late += 1;
            return true;
        }
        match self.buckets.iter().position(|&(b, _)| b >= bucket) {
            Some(i) if self.buckets[i].0 == bucket => {
                self.buckets[i].1.entry(key).or_default().add(weight);
            }
            Some(i) => {
                let mut map = HashMap::new();
                map.entry(key).or_insert_with(WindowStats::default).add(weight);
                self.buckets.insert(i, (bucket, map));
            }
            None => {
                let mut map = HashMap::new();
                map.entry(key).or_insert_with(WindowStats::default).add(weight);
                self.buckets.push_back((bucket, map));
            }
        }
        while self.buckets.len() > self.sliding_buckets {
            self.buckets.pop_front();
        }
        true
    }

    /// The tumbling aggregate of one bucket, if still retained.
    pub fn tumbling(&self, bucket: u64) -> Option<&HashMap<AggKey, WindowStats>> {
        self.buckets.iter().find(|(b, _)| *b == bucket).map(|(_, m)| m)
    }

    /// The sliding aggregate: every retained bucket summed per key.
    pub fn sliding(&self) -> HashMap<AggKey, WindowStats> {
        let mut out: HashMap<AggKey, WindowStats> = HashMap::new();
        for (_, map) in &self.buckets {
            for (&k, s) in map {
                let e = out.entry(k).or_default();
                e.events += s.events;
                e.weight += s.weight;
            }
        }
        out
    }

    /// Cumulative total for one key.
    pub fn total(&self, key: &AggKey) -> WindowStats {
        self.totals.get(key).copied().unwrap_or_default()
    }

    /// All cumulative totals, deterministically ordered.
    pub fn totals(&self) -> Vec<(AggKey, WindowStats)> {
        let mut v: Vec<(AggKey, WindowStats)> = self.totals.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|(k, _)| k.order());
        v
    }

    /// Distinct keys tracked (≤ `max_keys`).
    pub fn key_count(&self) -> usize {
        self.totals.len()
    }

    /// Fold another aggregator's totals into this one (per-shard merge).
    /// Only the cumulative totals merge; tumbling buckets stay per-shard.
    pub fn merge_totals_from(&mut self, other: &WindowAggregator) {
        for (&k, s) in &other.totals {
            let e = self.totals.entry(k).or_default();
            e.events += s.events;
            e.weight += s.weight;
        }
        self.aggregated += other.aggregated;
        self.rejected += other.rejected;
        self.late += other.late;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(device: u32, ty: EventType) -> AggKey {
        AggKey { device, ty, reason: None }
    }

    #[test]
    fn tumbling_buckets_split_on_width() {
        let mut w = WindowAggregator::new(100, 4, 64);
        assert!(w.offer(10, key(1, EventType::Congestion), 1));
        assert!(w.offer(99, key(1, EventType::Congestion), 2));
        assert!(w.offer(100, key(1, EventType::Congestion), 1));
        let b0 = w.tumbling(0).unwrap();
        assert_eq!(b0[&key(1, EventType::Congestion)], WindowStats { events: 2, weight: 3 });
        let b1 = w.tumbling(1).unwrap();
        assert_eq!(b1[&key(1, EventType::Congestion)], WindowStats { events: 1, weight: 1 });
    }

    #[test]
    fn sliding_view_sums_retained_buckets_only() {
        let mut w = WindowAggregator::new(100, 2, 64);
        let k = key(7, EventType::Pause);
        w.offer(50, k, 1); // bucket 0 — will be evicted
        w.offer(150, k, 1); // bucket 1
        w.offer(250, k, 1); // bucket 2 — evicts bucket 0
        assert!(w.tumbling(0).is_none(), "bucket 0 out of the ring");
        assert_eq!(w.sliding()[&k].events, 2);
        // Cumulative totals still see everything.
        assert_eq!(w.total(&k).events, 3);
    }

    #[test]
    fn key_cap_refuses_without_side_effects() {
        let mut w = WindowAggregator::new(100, 4, 2);
        assert!(w.offer(0, key(1, EventType::Congestion), 1));
        assert!(w.offer(0, key(2, EventType::Congestion), 1));
        assert!(!w.offer(0, key(3, EventType::Congestion), 1), "third key must be refused");
        // Existing keys still aggregate.
        assert!(w.offer(0, key(1, EventType::Congestion), 5));
        assert_eq!(w.rejected, 1);
        assert_eq!(w.aggregated, 3);
        assert_eq!(w.key_count(), 2);
        assert_eq!(w.total(&key(1, EventType::Congestion)).weight, 6);
    }

    #[test]
    fn late_events_count_in_totals_not_buckets() {
        let mut w = WindowAggregator::new(100, 2, 64);
        let k = key(1, EventType::MmuDrop);
        w.offer(500, k, 1); // bucket 5
        w.offer(650, k, 1); // bucket 6
        assert!(w.offer(10, k, 1), "late event still aggregates");
        assert_eq!(w.late, 1);
        assert_eq!(w.total(&k).events, 3);
        assert_eq!(w.sliding()[&k].events, 2, "late event has no bucket");
    }
}
