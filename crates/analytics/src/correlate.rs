//! Cross-device loss localization (paper §6 case study: "which link is
//! eating packets?").
//!
//! Two independent signals describe one lossy link:
//!
//! * the **upstream** switch's ring-buffer recovery path reports
//!   `InterSwitchDrop` events whose detail names the egress port the
//!   victims left on (Fig. 5 steps 5–6);
//! * the **downstream** switch's gap detector counts sequence gaps on its
//!   ingress port (Fig. 5 steps 2–4) — a count the collector scrapes as a
//!   control-plane gap report, since gaps alone produce notifications, not
//!   backend events.
//!
//! The correlator joins the two through the topology's link map: a verdict
//! is *corroborated* when both ends of the same link agree, which rules
//! out a lying/miscounting device and localizes the loss to the wire
//! between them rather than to either box.

use fet_packet::event::{EventDetail, EventRecord, EventType};
use std::collections::HashMap;

/// One directed link: traffic flows `up:up_port → down:down_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Upstream (transmitting) device.
    pub up: u32,
    /// Upstream egress port.
    pub up_port: u8,
    /// Downstream (receiving) device.
    pub down: u32,
    /// Downstream ingress port.
    pub down_port: u8,
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} -> {}:{}", self.up, self.up_port, self.down, self.down_port)
    }
}

/// The wiring of the fleet: `(device, egress port) → (peer, peer port)`.
#[derive(Debug, Clone, Default)]
pub struct LinkMap {
    forward: HashMap<(u32, u8), (u32, u8)>,
}

impl LinkMap {
    /// Build from directed attachments `(node, port, peer, peer_port)`.
    pub fn from_endpoints(endpoints: impl IntoIterator<Item = (u32, u8, u32, u8)>) -> Self {
        let mut forward = HashMap::new();
        for (n, p, peer, peer_port) in endpoints {
            forward.insert((n, p), (peer, peer_port));
        }
        LinkMap { forward }
    }

    /// Resolve the link leaving `device` on `port`.
    pub fn link(&self, device: u32, port: u8) -> Option<LinkId> {
        self.forward.get(&(device, port)).map(|&(down, down_port)| LinkId {
            up: device,
            up_port: port,
            down,
            down_port,
        })
    }

    /// Known directed attachments.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when no wiring is known.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

/// A downstream gap-detector scrape: `gaps` sequence gaps observed on
/// `device`'s ingress `port` since the last report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapReport {
    /// The downstream device.
    pub device: u32,
    /// Its ingress port (where the tagged frames arrive).
    pub port: u8,
    /// Sequence gaps counted there.
    pub gaps: u64,
}

/// The correlator's judgement on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkVerdict {
    /// The accused link.
    pub link: LinkId,
    /// Upstream `InterSwitchDrop` reports charged to this link.
    pub upstream_reports: u64,
    /// Their total packet weight (event counters summed).
    pub upstream_weight: u64,
    /// Downstream sequence gaps on the link's receiving port.
    pub downstream_gaps: u64,
    /// Both ends agree the link lost packets.
    pub corroborated: bool,
}

/// Joins upstream loss reports with downstream gap reports per link.
#[derive(Debug, Clone, Default)]
pub struct Correlator {
    map: LinkMap,
    upstream: HashMap<(u32, u8), (u64, u64)>, // (device, egress) -> (reports, weight)
    downstream: HashMap<(u32, u8), u64>,      // (device, ingress) -> gaps
    /// Upstream reports whose (device, port) has no link in the map.
    pub unmapped: u64,
}

impl Correlator {
    /// A correlator over the given wiring.
    pub fn new(map: LinkMap) -> Self {
        Correlator { map, ..Correlator::default() }
    }

    /// Feed one delivered event; only `InterSwitchDrop` reports matter.
    pub fn observe(&mut self, device: u32, rec: &EventRecord) {
        if rec.ty != EventType::InterSwitchDrop {
            return;
        }
        let EventDetail::Drop { egress_port, .. } = rec.detail else {
            return;
        };
        if self.map.link(device, egress_port).is_none() {
            self.unmapped += 1;
            return;
        }
        let e = self.upstream.entry((device, egress_port)).or_default();
        e.0 += 1;
        e.1 += u64::from(rec.counter.max(1));
    }

    /// Feed one downstream gap-detector scrape.
    pub fn ingest_gap_report(&mut self, r: GapReport) {
        if r.gaps > 0 {
            *self.downstream.entry((r.device, r.port)).or_default() += r.gaps;
        }
    }

    /// Rank every implicated link, worst first: corroborated links before
    /// one-sided suspicions, then by upstream weight, then gaps. Ties
    /// break on the link id so the ranking is deterministic.
    pub fn localize(&self) -> Vec<LinkVerdict> {
        let mut out: Vec<LinkVerdict> = Vec::new();
        let mut covered: HashMap<(u32, u8), bool> = HashMap::new();
        for (&(device, port), &(reports, weight)) in &self.upstream {
            let Some(link) = self.map.link(device, port) else { continue };
            let gaps = self.downstream.get(&(link.down, link.down_port)).copied().unwrap_or(0);
            covered.insert((link.down, link.down_port), true);
            out.push(LinkVerdict {
                link,
                upstream_reports: reports,
                upstream_weight: weight,
                downstream_gaps: gaps,
                corroborated: reports > 0 && gaps > 0,
            });
        }
        // Downstream-only suspicions: gaps whose upstream reports never
        // arrived (e.g. every redundant notification copy died).
        for (&(down, down_port), &gaps) in &self.downstream {
            if covered.contains_key(&(down, down_port)) {
                continue;
            }
            // The reverse attachment names the upstream side.
            let Some(rev) = self.map.link(down, down_port) else { continue };
            out.push(LinkVerdict {
                link: LinkId { up: rev.down, up_port: rev.down_port, down, down_port },
                upstream_reports: 0,
                upstream_weight: 0,
                downstream_gaps: gaps,
                corroborated: false,
            });
        }
        out.sort_by(|a, b| {
            b.corroborated
                .cmp(&a.corroborated)
                .then(b.upstream_weight.cmp(&a.upstream_weight))
                .then(b.downstream_gaps.cmp(&a.downstream_gaps))
                .then(a.link.cmp(&b.link))
        });
        out
    }

    /// The single most likely lossy link, if any verdict is corroborated.
    pub fn culprit(&self) -> Option<LinkVerdict> {
        self.localize().into_iter().find(|v| v.corroborated)
    }

    /// Drop all observed counts, keeping the link map (the wiring is
    /// static truth; the counts revert with the events that produced
    /// them — used by the checkpoint-less engine restart path).
    pub fn reset_counts(&mut self) {
        self.upstream.clear();
        self.downstream.clear();
        self.unmapped = 0;
    }

    /// Fold another correlator's counts into this one (per-shard merge).
    pub fn merge_from(&mut self, other: &Correlator) {
        for (&k, &(r, w)) in &other.upstream {
            let e = self.upstream.entry(k).or_default();
            e.0 += r;
            e.1 += w;
        }
        for (&k, &g) in &other.downstream {
            *self.downstream.entry(k).or_default() += g;
        }
        self.unmapped += other.unmapped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::DropCode;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn isw_drop(port: u8, counter: u16) -> EventRecord {
        EventRecord {
            ty: EventType::InterSwitchDrop,
            flow: flow(counter),
            detail: EventDetail::Drop {
                ingress_port: port,
                egress_port: port,
                code: DropCode::LinkLoss,
            },
            counter,
            hash: u32::from(counter),
        }
    }

    /// 1:2 -> 2:5 and the reverse direction 2:5 -> 1:2.
    fn map() -> LinkMap {
        LinkMap::from_endpoints([(1, 2, 2, 5), (2, 5, 1, 2), (3, 0, 4, 1), (4, 1, 3, 0)])
    }

    #[test]
    fn corroborated_link_wins() {
        let mut c = Correlator::new(map());
        c.observe(1, &isw_drop(2, 3));
        c.observe(1, &isw_drop(2, 1));
        c.ingest_gap_report(GapReport { device: 2, port: 5, gaps: 2 });
        // A noisier but uncorroborated upstream claim elsewhere.
        c.observe(3, &isw_drop(0, 50));
        let v = c.culprit().expect("corroborated verdict");
        assert_eq!(v.link, LinkId { up: 1, up_port: 2, down: 2, down_port: 5 });
        assert!(v.corroborated);
        assert_eq!(v.upstream_reports, 2);
        assert_eq!(v.upstream_weight, 4);
        assert_eq!(v.downstream_gaps, 2);
        // The ranking puts the corroborated link first despite less weight.
        assert_eq!(c.localize()[0].link.up, 1);
    }

    #[test]
    fn downstream_only_suspicion_is_uncorroborated() {
        let mut c = Correlator::new(map());
        c.ingest_gap_report(GapReport { device: 2, port: 5, gaps: 7 });
        assert!(c.culprit().is_none());
        let v = &c.localize()[0];
        assert_eq!(v.link, LinkId { up: 1, up_port: 2, down: 2, down_port: 5 });
        assert_eq!(v.downstream_gaps, 7);
        assert!(!v.corroborated);
    }

    #[test]
    fn unmapped_reports_are_counted_not_dropped_silently() {
        let mut c = Correlator::new(map());
        c.observe(9, &isw_drop(9, 1));
        assert_eq!(c.unmapped, 1);
        assert!(c.localize().is_empty());
    }

    #[test]
    fn non_loss_events_are_ignored() {
        let mut c = Correlator::new(map());
        let rec = EventRecord {
            ty: EventType::Congestion,
            flow: flow(1),
            detail: EventDetail::Congestion { egress_port: 2, queue: 0, latency_us: 9 },
            counter: 1,
            hash: 1,
        };
        c.observe(1, &rec);
        assert!(c.localize().is_empty());
    }
}
