//! SLA evaluation: turn the event stream into per-device *breach
//! windows* — contiguous spans in which a device violated its loss or
//! congestion-latency budget. Operators consume breach windows, not raw
//! events: "device 3 was out of SLA from 12ms to 19ms, 841 drops, peak
//! queue delay 510us".

use fet_packet::event::EventDetail;
use netseer::StoredEvent;
use std::collections::HashMap;

/// The budget a device must stay within per evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaPolicy {
    /// Evaluation window width, ns.
    pub window_ns: u64,
    /// Maximum dropped-packet weight tolerated per window.
    pub max_drops_per_window: u64,
    /// Maximum congestion queuing delay tolerated, microseconds.
    pub max_congestion_latency_us: u16,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        // 1ms windows, 64 dropped packets tolerated, 400us queue delay.
        SlaPolicy { window_ns: 1_000_000, max_drops_per_window: 64, max_congestion_latency_us: 400 }
    }
}

/// One contiguous span of SLA violation on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreachWindow {
    /// The violating device.
    pub device: u32,
    /// Span start (inclusive), ns.
    pub from_ns: u64,
    /// Span end (exclusive), ns.
    pub to_ns: u64,
    /// Dropped-packet weight inside the span.
    pub drops: u64,
    /// Worst congestion latency observed inside the span, us.
    pub peak_latency_us: u16,
}

/// Per-device accumulator for the evaluation window in progress.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceWindow {
    bucket: u64,
    drops: u64,
    peak_latency_us: u16,
}

/// Streams events and emits [`BreachWindow`]s. Memory is bounded: one
/// small accumulator per device plus a capped breach list.
#[derive(Debug, Clone)]
pub struct SlaEvaluator {
    policy: SlaPolicy,
    open: HashMap<u32, DeviceWindow>,
    /// Breach in progress per device (merged while contiguous).
    current: HashMap<u32, BreachWindow>,
    breaches: Vec<BreachWindow>,
    max_breaches: usize,
    /// Breach windows discarded because `max_breaches` was reached.
    pub dropped_breaches: u64,
    /// Events inspected.
    pub observed: u64,
}

impl SlaEvaluator {
    /// An evaluator for `policy`, retaining at most `max_breaches` windows.
    pub fn new(policy: SlaPolicy, max_breaches: usize) -> Self {
        SlaEvaluator {
            policy,
            open: HashMap::new(),
            current: HashMap::new(),
            breaches: Vec::new(),
            max_breaches: max_breaches.max(1),
            dropped_breaches: 0,
            observed: 0,
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> SlaPolicy {
        self.policy
    }

    /// Inspect one delivered event.
    ///
    /// Deliveries are per-device ordered, so a new bucket index closes the
    /// device's previous evaluation window; slight cross-device interleave
    /// is fine because all state is per-device.
    pub fn observe(&mut self, e: &StoredEvent) {
        self.observed += 1;
        let bucket = e.time_ns / self.policy.window_ns.max(1);
        let w = self.open.entry(e.device).or_insert(DeviceWindow { bucket, ..Default::default() });
        if bucket != w.bucket {
            let closed = *w;
            let device = e.device;
            self.close_window(device, closed);
            self.open.insert(device, DeviceWindow { bucket, ..Default::default() });
        }
        let w = self.open.get_mut(&e.device).expect("just inserted");
        match e.record.detail {
            EventDetail::Drop { .. } => w.drops += u64::from(e.record.counter.max(1)),
            EventDetail::Congestion { latency_us, .. } => {
                w.peak_latency_us = w.peak_latency_us.max(latency_us);
            }
            _ => {}
        }
    }

    fn close_window(&mut self, device: u32, w: DeviceWindow) {
        let width = self.policy.window_ns.max(1);
        let breached = w.drops > self.policy.max_drops_per_window
            || w.peak_latency_us > self.policy.max_congestion_latency_us;
        let from_ns = w.bucket * width;
        let to_ns = from_ns + width;
        if !breached {
            // A clean window ends any breach in progress.
            if let Some(b) = self.current.remove(&device) {
                self.push_breach(b);
            }
            return;
        }
        match self.current.get_mut(&device) {
            // Contiguous with the breach in progress: extend it.
            Some(b) if b.to_ns == from_ns => {
                b.to_ns = to_ns;
                b.drops += w.drops;
                b.peak_latency_us = b.peak_latency_us.max(w.peak_latency_us);
            }
            Some(_) => {
                let prev = self.current.remove(&device).expect("matched Some");
                self.push_breach(prev);
                self.current.insert(
                    device,
                    BreachWindow {
                        device,
                        from_ns,
                        to_ns,
                        drops: w.drops,
                        peak_latency_us: w.peak_latency_us,
                    },
                );
            }
            None => {
                self.current.insert(
                    device,
                    BreachWindow {
                        device,
                        from_ns,
                        to_ns,
                        drops: w.drops,
                        peak_latency_us: w.peak_latency_us,
                    },
                );
            }
        }
    }

    fn push_breach(&mut self, b: BreachWindow) {
        if self.breaches.len() >= self.max_breaches {
            self.dropped_breaches += 1;
            return;
        }
        self.breaches.push(b);
    }

    /// Flush every open window and breach-in-progress, then return all
    /// breach windows sorted by (device, start).
    pub fn finish(&mut self) -> Vec<BreachWindow> {
        let mut open: Vec<(u32, DeviceWindow)> = self.open.drain().collect();
        open.sort_by_key(|&(d, _)| d);
        for (device, w) in open {
            self.close_window(device, w);
        }
        let mut current: Vec<BreachWindow> = self.current.drain().map(|(_, b)| b).collect();
        current.sort_by_key(|b| (b.device, b.from_ns));
        for b in current {
            self.push_breach(b);
        }
        let mut out = self.breaches.clone();
        out.sort_by_key(|b| (b.device, b.from_ns));
        out
    }

    /// Breach windows finalized so far (not yet flushed ones).
    pub fn breach_count(&self) -> usize {
        self.breaches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn policy() -> SlaPolicy {
        SlaPolicy { window_ns: 100, max_drops_per_window: 2, max_congestion_latency_us: 400 }
    }

    fn drop_ev(device: u32, time_ns: u64, counter: u16) -> StoredEvent {
        StoredEvent {
            time_ns,
            device,
            epoch: 0,
            seq: 0,
            record: EventRecord {
                ty: EventType::PipelineDrop,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_octets([10, 0, 0, 1]),
                    1,
                    Ipv4Addr::from_octets([10, 0, 0, 2]),
                    80,
                ),
                detail: EventDetail::Drop {
                    ingress_port: 1,
                    egress_port: 2,
                    code: DropCode::TableMiss,
                },
                counter,
                hash: 1,
            },
        }
    }

    fn cong_ev(device: u32, time_ns: u64, latency_us: u16) -> StoredEvent {
        let mut e = drop_ev(device, time_ns, 1);
        e.record.ty = EventType::Congestion;
        e.record.detail = EventDetail::Congestion { egress_port: 2, queue: 0, latency_us };
        e
    }

    #[test]
    fn quiet_device_has_no_breaches() {
        let mut s = SlaEvaluator::new(policy(), 16);
        s.observe(&drop_ev(1, 10, 1));
        s.observe(&drop_ev(1, 150, 1));
        assert!(s.finish().is_empty());
    }

    #[test]
    fn contiguous_breach_windows_merge() {
        let mut s = SlaEvaluator::new(policy(), 16);
        // Windows 0 and 1 both breach (3 drops each), window 2 is clean.
        for t in [10, 20, 30, 110, 120, 130] {
            s.observe(&drop_ev(1, t, 1));
        }
        s.observe(&drop_ev(1, 250, 1));
        let b = s.finish();
        assert_eq!(b.len(), 1, "two contiguous breach windows merge into one");
        assert_eq!((b[0].from_ns, b[0].to_ns), (0, 200));
        assert_eq!(b[0].drops, 6);
    }

    #[test]
    fn latency_breach_and_gap_splits_spans() {
        let mut s = SlaEvaluator::new(policy(), 16);
        s.observe(&cong_ev(2, 50, 900)); // window 0 breaches on latency
        s.observe(&cong_ev(2, 150, 10)); // window 1 clean
        s.observe(&drop_ev(2, 250, 3)); // window 2 breaches on drops
        let b = s.finish();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].peak_latency_us, 900);
        assert_eq!(b[1].drops, 3);
    }

    #[test]
    fn breach_list_is_bounded() {
        let mut s = SlaEvaluator::new(policy(), 2);
        // Alternate breach / clean windows so each breach finalizes alone.
        for w in 0..10u64 {
            s.observe(&drop_ev(3, w * 200 + 10, 3)); // breach window
            s.observe(&drop_ev(3, w * 200 + 110, 1)); // clean window closes it
        }
        let b = s.finish();
        assert_eq!(b.len(), 2);
        assert!(
            s.dropped_breaches >= 7,
            "overflowing breaches counted, got {}",
            s.dropped_breaches
        );
    }
}
