//! Streaming flow-event analytics for the NetSeer reproduction.
//!
//! The collector's event store answers *retrospective* queries; this
//! crate answers the paper's *operational* questions (§6) online, in
//! bounded memory, under the repo's ledger-invariant discipline:
//!
//! * **Where is the network hurting?** Tumbling + sliding time-window
//!   aggregates per (device, event type, drop reason) — [`window`].
//! * **Which flows are the victims?** A Space-Saving top-k sketch with
//!   provable error bounds — [`topk`].
//! * **Which link is eating packets?** A cross-device correlator joining
//!   upstream ring-buffer loss reports with downstream gap notifications
//!   — [`correlate`].
//! * **Did we break the SLA, and when?** Per-device breach windows —
//!   [`sla`].
//!
//! [`AnalyticsEngine`] composes these into a flow-hash-sharded pipeline
//! subscribed to the [`Collector`](netseer::recovery::Collector)'s
//! exactly-once delivery stream, with coordinated checkpoints so the
//! analytics state survives collector crashes. Every ingested event gets
//! exactly one disposition, extending the transport's delivery ledger to
//! the end of the pipeline:
//! `ingested == aggregated + sketch_absorbed + shed_analytics`.

#![warn(missing_docs)]

pub mod correlate;
pub mod engine;
pub mod shard;
pub mod sla;
pub mod topk;
pub mod window;
pub mod wire;

pub use correlate::{Correlator, GapReport, LinkId, LinkMap, LinkVerdict};
pub use engine::{flow_shard_hash, AnalyticsConfig, AnalyticsEngine, UPSTREAM_STREAM_CAP};
pub use shard::{AnalyticsLedger, ShardWorker};
pub use sla::{BreachWindow, SlaEvaluator, SlaPolicy};
pub use topk::{SpaceSaving, TopKEntry};
pub use window::{AggKey, WindowAggregator, WindowStats};
pub use wire::{harvest_gap_reports, link_map_from_sim};
