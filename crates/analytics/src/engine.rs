//! The sharded streaming engine: a [`Collector`] subscriber that fans
//! delivered events out to flow-hash shards (windows + top-k + ledger)
//! and feeds the engine-level cross-shard views (correlator, SLA).
//!
//! Sharding is by a stable FNV-1a hash of the 13-byte flow key wire
//! encoding — *not* `EventRecord::hash`, which is salted per device and
//! per event type and would scatter one flow across shards. With stable
//! flow sharding each flow lives in exactly one shard, so merging the
//! per-shard Space-Saving sketches is a disjoint union and the per-entry
//! error bounds survive the merge.
//!
//! Crash consistency: the engine runs in the collector process and
//! checkpoints *with* it — [`AnalyticsEngine::checkpoint`] snapshots the
//! shards, correlator, and SLA state at the same instant the collector
//! snapshots its store, gates, and subscriber cursors. A hard kill
//! reverts both sides together, so the re-drained suffix after sender
//! reconciliation is absorbed exactly once and the analytics ledger
//! identity `ingested == aggregated + sketch_absorbed + shed_analytics`
//! holds across the crash.

use crate::correlate::{Correlator, GapReport, LinkMap, LinkVerdict};
use crate::shard::{AnalyticsLedger, ShardWorker};
use crate::sla::{BreachWindow, SlaEvaluator, SlaPolicy};
use crate::topk::{SpaceSaving, TopKEntry};
use crate::window::{AggKey, WindowStats};
use fet_packet::flow::FLOW_KEY_LEN;
use fet_packet::FlowKey;
use fet_wire::{UpstreamLossReport, WireProtocol};
use netseer::faults::CrashKind;
use netseer::recovery::Collector;
use netseer::StoredEvent;
use std::collections::BTreeMap;

/// Engine geometry and budgets. Every bound is hard: the engine's memory
/// is fixed at construction time whatever the stream does.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticsConfig {
    /// Flow-hash shards.
    pub shards: usize,
    /// Tumbling window width, ns.
    pub window_ns: u64,
    /// Sliding view: retained windows per shard.
    pub sliding_buckets: usize,
    /// Space-Saving capacity per shard.
    pub topk_k: usize,
    /// Max (device, type, reason) keys per shard aggregator.
    pub max_agg_keys: usize,
    /// SLA budget per device window.
    pub sla: SlaPolicy,
    /// Max retained SLA breach windows.
    pub max_breaches: usize,
    /// Event-time watermark lag per shard, ns. With `reorder_cap` both
    /// zero (the default) the engine runs the exact arrival-order path —
    /// bit-identical to the pre-event-time engine.
    pub lateness_bound_ns: u64,
    /// Max parked events per shard reorder buffer.
    pub reorder_cap: usize,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig {
            shards: 4,
            window_ns: 1_000_000,
            sliding_buckets: 8,
            topk_k: 32,
            max_agg_keys: 4096,
            sla: SlaPolicy::default(),
            max_breaches: 1024,
            lateness_bound_ns: 0,
            reorder_cap: 0,
        }
    }
}

/// Stable shard assignment: FNV-1a over the flow key's wire bytes,
/// finished with a Murmur3-style avalanche. The finisher matters: raw
/// FNV-1a mod a small power of two sees only each byte's low bits, so
/// structured address/port patterns collapse onto one shard.
pub fn flow_shard_hash(flow: &FlowKey) -> u32 {
    let mut buf = [0u8; FLOW_KEY_LEN];
    flow.write_to(&mut buf);
    let mut h: u32 = 0x811c_9dc5;
    for b in buf {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^ (h >> 16)
}

#[derive(Debug, Clone)]
struct EngineCheckpoint {
    shards: Vec<ShardWorker>,
    correlator: Correlator,
    sla: SlaEvaluator,
    processed: u64,
}

/// The streaming analytics engine. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct AnalyticsEngine {
    cfg: AnalyticsConfig,
    shards: Vec<ShardWorker>,
    correlator: Correlator,
    sla: SlaEvaluator,
    subscription: Option<u32>,
    checkpoint: Option<EngineCheckpoint>,
    /// Latest cumulative upstream-loss scrape per wire exporter stream,
    /// keyed (protocol version, observation domain). Not checkpointed:
    /// scrapes are snapshots of the wire session's own accumulators
    /// (outside the collector crash domain) and the next scrape restores
    /// the state exactly.
    upstream: BTreeMap<(u16, u32), (u64, u64)>,
    /// Upstream-loss scrapes ignored because the stream map hit
    /// [`UPSTREAM_STREAM_CAP`] (bounded memory, never silent).
    pub upstream_overflow: u64,
    /// Events processed since construction.
    pub processed: u64,
    /// Engine crash/restart cycles.
    pub restarts: u64,
}

/// Hard cap on tracked wire exporter streams — defense in depth behind
/// the wire session's own `max_streams` bound.
pub const UPSTREAM_STREAM_CAP: usize = 1024;

impl AnalyticsEngine {
    /// Build an engine over the fleet wiring in `links`.
    pub fn new(cfg: AnalyticsConfig, links: LinkMap) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| {
                ShardWorker::new(cfg.window_ns, cfg.sliding_buckets, cfg.max_agg_keys, cfg.topk_k)
                    .with_event_time(cfg.lateness_bound_ns, cfg.reorder_cap)
            })
            .collect();
        AnalyticsEngine {
            cfg,
            shards,
            correlator: Correlator::new(links),
            sla: SlaEvaluator::new(cfg.sla, cfg.max_breaches),
            subscription: None,
            checkpoint: None,
            upstream: BTreeMap::new(),
            upstream_overflow: 0,
            processed: 0,
            restarts: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &AnalyticsConfig {
        &self.cfg
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Subscribe to a collector's delivery stream. Call once, before the
    /// first [`poll`](Self::poll).
    pub fn attach(&mut self, collector: &mut Collector) {
        assert!(self.subscription.is_none(), "engine already attached");
        self.subscription = Some(collector.subscribe());
    }

    /// Drain everything the collector stored since the last poll and
    /// absorb it. Returns how many events were processed. The drained
    /// stream is exactly-once by construction (the collector's epoch/seq
    /// gates dedup upstream of the subscription), so the engine never
    /// sees a duplicate — except after a coordinated hard-kill revert,
    /// where the rewound cursor replays exactly the suffix the engine's
    /// own state revert forgot.
    ///
    /// Draining is what relieves collector memory pressure, so each poll
    /// alternates drain with [`Collector::pump_spill`] until neither
    /// makes progress: spilled events are applied as the in-memory
    /// backlog shrinks below the watermark, without ever overshooting it.
    pub fn poll(&mut self, collector: &mut Collector) -> u64 {
        let id = self.subscription.expect("attach before poll");
        let mut total = 0u64;
        loop {
            let drained = collector.drain_ordered(id);
            for e in &drained {
                self.process(e);
            }
            total += drained.len() as u64;
            if collector.pump_spill() == 0 && drained.is_empty() {
                return total;
            }
        }
    }

    /// Absorb one delivered event.
    pub fn process(&mut self, e: &StoredEvent) {
        let shard = (flow_shard_hash(&e.record.flow) as usize) % self.shards.len();
        self.shards[shard].absorb(e);
        self.correlator.observe(e.device, &e.record);
        self.sla.observe(e);
        self.processed += 1;
    }

    /// Absorb a pre-collected slice directly (benchmarks and offline
    /// replays; bypasses the subscription — do not mix with `poll`).
    pub fn ingest_slice(&mut self, events: &[StoredEvent]) {
        for e in events {
            self.process(e);
        }
    }

    /// Feed downstream gap-detector scrapes to the correlator.
    pub fn ingest_gap_reports(&mut self, reports: impl IntoIterator<Item = GapReport>) {
        for r in reports {
            self.correlator.ingest_gap_report(r);
        }
    }

    /// Absorb a wire-ingest upstream-loss scrape (e.g.
    /// `WireIngest::upstream_losses`). Reports carry *cumulative*
    /// accumulators, so each stream's latest scrape replaces the previous
    /// one — re-ingesting the same scrape is idempotent.
    pub fn ingest_upstream_loss(&mut self, reports: impl IntoIterator<Item = UpstreamLossReport>) {
        for r in reports {
            let key = (r.protocol.version(), r.domain);
            if !self.upstream.contains_key(&key) && self.upstream.len() >= UPSTREAM_STREAM_CAP {
                self.upstream_overflow += 1;
                continue;
            }
            self.upstream.insert(key, (r.lost, r.gaps));
        }
    }

    /// Per-stream upstream loss, deterministically ordered. These units
    /// were lost *before* the collector's doorstep (exporter → collector
    /// path), disjoint from every term the delivery ledger accounts.
    pub fn upstream_losses(&self) -> Vec<UpstreamLossReport> {
        self.upstream
            .iter()
            .map(|(&(ver, domain), &(lost, gaps))| UpstreamLossReport {
                protocol: match ver {
                    5 => WireProtocol::V5,
                    9 => WireProtocol::V9,
                    _ => WireProtocol::Ipfix,
                },
                domain,
                lost,
                gaps,
            })
            .collect()
    }

    /// Total upstream-loss units across all wire streams.
    pub fn upstream_lost_total(&self) -> u64 {
        self.upstream.values().map(|&(lost, _)| lost).sum()
    }

    /// Total distinct sequence gaps across all wire streams.
    pub fn upstream_gap_total(&self) -> u64 {
        self.upstream.values().map(|&(_, gaps)| gaps).sum()
    }

    /// The merged analytics ledger across all shards. The identity
    /// `ingested == aggregated + sketch_absorbed + shed_analytics` holds
    /// per shard and therefore for the sum.
    pub fn ledger(&self) -> AnalyticsLedger {
        let mut total = AnalyticsLedger::default();
        for s in &self.shards {
            total.absorb(&s.ledger);
        }
        total
    }

    /// Per-shard ledgers (observability / tests).
    pub fn shard_ledgers(&self) -> Vec<AnalyticsLedger> {
        self.shards.iter().map(|s| s.ledger).collect()
    }

    /// The heaviest victim flows across all shards: disjoint union of the
    /// per-shard sketches (each flow lives in exactly one shard), sorted
    /// heaviest-first.
    pub fn top_flows(&self, n: usize) -> Vec<TopKEntry> {
        let mut merged = SpaceSaving::new(self.cfg.topk_k * self.shards.len());
        for s in &self.shards {
            merged.absorb_entries(&s.topk);
        }
        merged.top(n)
    }

    /// Total weight absorbed by the sketches (the `W` of the error bound).
    pub fn sketch_weight(&self) -> u64 {
        self.shards.iter().map(|s| s.topk.total_weight).sum()
    }

    /// Cumulative (device, type, reason) totals merged across shards,
    /// deterministically ordered.
    pub fn totals(&self) -> Vec<(AggKey, WindowStats)> {
        let mut merged = crate::window::WindowAggregator::new(self.cfg.window_ns, 1, usize::MAX);
        for s in &self.shards {
            merged.merge_totals_from(&s.windows);
        }
        merged.totals()
    }

    /// End-of-stream flush: drain every shard's event-time reorder
    /// buffer so all parked events get their final disposition and the
    /// ledger's `pending_reorder` term returns to zero. A no-op on the
    /// arrival-order path.
    pub fn flush(&mut self) {
        for s in &mut self.shards {
            s.flush();
        }
    }

    /// Rank implicated links, worst first.
    pub fn localize(&self) -> Vec<LinkVerdict> {
        self.correlator.localize()
    }

    /// The most likely lossy link (corroborated by both ends), if any.
    pub fn culprit(&self) -> Option<LinkVerdict> {
        self.correlator.culprit()
    }

    /// Flush and return all SLA breach windows, sorted by (device, start).
    pub fn finish_breaches(&mut self) -> Vec<BreachWindow> {
        self.sla.finish()
    }

    /// Checkpoint the engine *and* the collector at the same instant.
    /// The collector snapshot includes the subscription cursor, so after
    /// a coordinated hard-kill revert the re-drain resumes exactly where
    /// the engine snapshot left off.
    pub fn checkpoint(&mut self, collector: &mut Collector) {
        collector.checkpoint();
        self.checkpoint = Some(EngineCheckpoint {
            shards: self.shards.clone(),
            correlator: self.correlator.clone(),
            sla: self.sla.clone(),
            processed: self.processed,
        });
    }

    /// Crash and restart the collector process (which hosts the engine).
    /// Both sides revert to their coordinated checkpoint on a hard kill;
    /// a clean stop checkpoints on the way down and loses nothing.
    /// Returns how many engine-processed events were rolled back (the
    /// re-drain after sender reconciliation restores every one).
    pub fn crash_restart(&mut self, kind: CrashKind, collector: &mut Collector) -> u64 {
        if kind == CrashKind::Clean {
            self.checkpoint(collector);
        }
        collector.crash_restart(kind);
        let before = self.processed;
        match self.checkpoint.clone() {
            Some(cp) => {
                self.shards = cp.shards;
                self.correlator = cp.correlator;
                self.sla = cp.sla;
                self.processed = cp.processed;
            }
            None => {
                // Never checkpointed: restart empty, like the collector.
                // The correlator keeps its link map (static wiring truth)
                // but its counts revert with the events that made them.
                let fresh = AnalyticsEngine::new(self.cfg, LinkMap::default());
                self.shards = fresh.shards;
                self.sla = fresh.sla;
                self.correlator.reset_counts();
                self.processed = 0;
            }
        }
        self.restarts += 1;
        before - self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
    use fet_packet::ipv4::Ipv4Addr;

    fn ev(device: u32, seq: u64, sport: u16) -> StoredEvent {
        StoredEvent {
            time_ns: seq * 1000,
            device,
            epoch: 0,
            seq,
            record: EventRecord {
                ty: EventType::PipelineDrop,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_octets([10, 0, 0, 1]),
                    sport,
                    Ipv4Addr::from_octets([10, 0, 0, 2]),
                    80,
                ),
                detail: EventDetail::Drop {
                    ingress_port: 1,
                    egress_port: 2,
                    code: DropCode::TableMiss,
                },
                counter: 1,
                hash: u32::from(sport) ^ device,
            },
        }
    }

    #[test]
    fn sharding_is_stable_per_flow() {
        let e1 = ev(1, 0, 777);
        let e2 = ev(9, 5, 777); // same flow, different device/seq/hash
        assert_eq!(
            flow_shard_hash(&e1.record.flow),
            flow_shard_hash(&e2.record.flow),
            "shard hash must depend only on the flow key"
        );
    }

    #[test]
    fn poll_is_incremental_and_ledger_balances() {
        let mut c = Collector::new();
        let mut eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        eng.attach(&mut c);
        c.ingest(&(0..10).map(|s| ev(1, s, s as u16)).collect::<Vec<_>>());
        assert_eq!(eng.poll(&mut c), 10);
        assert_eq!(eng.poll(&mut c), 0, "nothing new");
        c.ingest(&(10..15).map(|s| ev(1, s, s as u16)).collect::<Vec<_>>());
        assert_eq!(eng.poll(&mut c), 5);
        let ledger = eng.ledger();
        ledger.assert_balanced();
        assert_eq!(ledger.ingested, 15);
        assert_eq!(eng.processed, 15);
    }

    #[test]
    fn coordinated_hard_kill_is_exactly_once() {
        let mut c = Collector::new();
        let mut eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        eng.attach(&mut c);
        let history: Vec<StoredEvent> = (0..30).map(|s| ev(2, s, (s % 7) as u16)).collect();
        c.ingest(&history[..12]);
        eng.poll(&mut c);
        eng.checkpoint(&mut c);
        c.ingest(&history[12..25]);
        eng.poll(&mut c);
        assert_eq!(eng.processed, 25);
        let rolled_back = eng.crash_restart(CrashKind::Hard, &mut c);
        assert_eq!(rolled_back, 13, "events past the checkpoint revert");
        assert_eq!(eng.processed, 12);
        // Sender reconciliation: the full history is re-offered; the
        // gates admit exactly the reverted suffix plus the tail.
        c.ingest(&history);
        eng.poll(&mut c);
        assert_eq!(eng.processed, 30, "every event processed exactly once");
        let ledger = eng.ledger();
        ledger.assert_balanced();
        assert_eq!(ledger.ingested, 30);
        // The sketch weight equals the stream weight: no double counting.
        assert_eq!(eng.sketch_weight(), 30);
    }

    #[test]
    fn clean_stop_loses_no_analytics_state() {
        let mut c = Collector::new();
        let mut eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        eng.attach(&mut c);
        c.ingest(&(0..8).map(|s| ev(3, s, s as u16)).collect::<Vec<_>>());
        eng.poll(&mut c);
        assert_eq!(eng.crash_restart(CrashKind::Clean, &mut c), 0);
        assert_eq!(eng.processed, 8);
        eng.ledger().assert_balanced();
    }

    #[test]
    fn upstream_loss_scrapes_are_idempotent_and_bounded() {
        let mut eng = AnalyticsEngine::new(AnalyticsConfig::default(), LinkMap::default());
        let scrape = vec![
            UpstreamLossReport { protocol: WireProtocol::V5, domain: 1, lost: 8, gaps: 2 },
            UpstreamLossReport { protocol: WireProtocol::Ipfix, domain: 1, lost: 3, gaps: 1 },
        ];
        eng.ingest_upstream_loss(scrape.clone());
        eng.ingest_upstream_loss(scrape); // cumulative re-scrape: no double count
        assert_eq!(eng.upstream_lost_total(), 11);
        assert_eq!(eng.upstream_gap_total(), 3);
        assert_eq!(eng.upstream_losses().len(), 2);
        // A later scrape with larger accumulators replaces, not adds.
        eng.ingest_upstream_loss([UpstreamLossReport {
            protocol: WireProtocol::V5,
            domain: 1,
            lost: 10,
            gaps: 3,
        }]);
        assert_eq!(eng.upstream_lost_total(), 13);
        // The stream map is hard-capped.
        for d in 0..2 * UPSTREAM_STREAM_CAP as u32 {
            eng.ingest_upstream_loss([UpstreamLossReport {
                protocol: WireProtocol::V9,
                domain: d,
                lost: 1,
                gaps: 1,
            }]);
        }
        assert!(eng.upstream_losses().len() <= UPSTREAM_STREAM_CAP);
        assert!(eng.upstream_overflow > 0);
    }

    #[test]
    fn top_flows_merge_across_shards() {
        let mut eng = AnalyticsEngine::new(
            AnalyticsConfig { shards: 4, ..Default::default() },
            LinkMap::default(),
        );
        // 40 distinct flows, flow 777 hit 10 extra times.
        let mut events: Vec<StoredEvent> = (0..40).map(|s| ev(1, s, s as u16)).collect();
        for s in 40..50 {
            events.push(ev(1, s, 777));
        }
        eng.ingest_slice(&events);
        let top = eng.top_flows(1);
        assert_eq!(top[0].flow, ev(0, 0, 777).record.flow);
        assert_eq!(top[0].count, 10);
    }
}
