// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the streaming analytics engine:
//!
//! * windowed cumulative totals equal a naive recomputation for arbitrary
//!   event streams;
//! * the Space-Saving sketch's per-entry error bounds and the `W / k`
//!   presence guarantee hold on arbitrary skewed streams;
//! * the extended ledger identity `ingested == aggregated +
//!   sketch_absorbed + shed_analytics` holds under arbitrary (tiny) caps;
//! * totals and the ledger are invariant under the shard count.

use fet_analytics::{AggKey, AnalyticsConfig, AnalyticsEngine, LinkMap, SpaceSaving, WindowStats};
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::StoredEvent;
use proptest::prelude::*;
use std::collections::HashMap;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | n),
        (n % 60_000) as u16,
        Ipv4Addr::from_octets([10, 200, 0, 1]),
        80,
    )
}

/// Build one stored event from raw prop inputs; drop classes carry a
/// seeded drop code, the rest carry a matching non-drop detail.
fn ev(t: u64, device: u32, fl: u32, ty_code: u8, counter: u16) -> StoredEvent {
    let ty = EventType::from_code(ty_code).unwrap();
    let detail = if ty.is_drop() {
        let code = if fl % 2 == 0 { DropCode::TableMiss } else { DropCode::LinkLoss };
        EventDetail::Drop { ingress_port: 0, egress_port: 1, code }
    } else {
        EventDetail::Pause { egress_port: 0, queue: 0 }
    };
    StoredEvent {
        time_ns: t,
        device,
        epoch: 0,
        seq: t,
        record: EventRecord { ty, flow: flow(fl), detail, counter, hash: fl },
    }
}

type RawEvent = (u64, u32, u32, u8, u16);

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<RawEvent>> {
    proptest::collection::vec((0u64..1_000_000, 0u32..6, 0u32..48, 1u8..=6, 0u16..5), 0..max_len)
}

fn naive_totals(events: &[StoredEvent]) -> HashMap<AggKey, WindowStats> {
    let mut naive: HashMap<AggKey, WindowStats> = HashMap::new();
    for e in events {
        let s = naive.entry(AggKey::of(e)).or_default();
        s.events += 1;
        s.weight += u64::from(e.record.counter.max(1));
    }
    naive
}

fn naive_weights(events: &[StoredEvent]) -> HashMap<FlowKey, u64> {
    let mut w: HashMap<FlowKey, u64> = HashMap::new();
    for e in events {
        if e.record.ty.is_drop() || e.record.ty == EventType::Congestion {
            *w.entry(e.record.flow).or_default() += u64::from(e.record.counter.max(1));
        }
    }
    w
}

proptest! {
    /// With uncapped budgets, nothing sheds and the merged cumulative
    /// totals equal the naive recomputation, whatever the stream.
    #[test]
    fn totals_match_naive_recompute(raw in stream_strategy(300), shards in 1usize..6) {
        let events: Vec<StoredEvent> =
            raw.iter().map(|&(t, d, f, c, w)| ev(t, d, f, c, w)).collect();
        let cfg = AnalyticsConfig { shards, ..AnalyticsConfig::default() };
        let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
        engine.ingest_slice(&events);

        let naive = naive_totals(&events);
        let totals = engine.totals();
        prop_assert_eq!(totals.len(), naive.len());
        for (key, stats) in &totals {
            prop_assert_eq!(Some(stats), naive.get(key), "diverged for {:?}", key);
        }
        let ledger = engine.ledger();
        ledger.assert_balanced();
        prop_assert_eq!(ledger.ingested, events.len() as u64);
        prop_assert_eq!(ledger.shed_analytics, 0, "default caps must not shed");
    }

    /// Space-Saving on an arbitrary weighted stream: every reported entry
    /// brackets the truth (`count - error <= true <= count`), and every
    /// flow heavier than `W / k` is present in the table.
    #[test]
    fn space_saving_bounds_and_guarantee(
        offers in proptest::collection::vec((0u32..64, 1u64..16), 1..400),
        k in 1usize..24,
    ) {
        let mut s = SpaceSaving::new(k);
        let mut truth: HashMap<FlowKey, u64> = HashMap::new();
        for &(f, w) in &offers {
            s.offer(flow(f), w);
            *truth.entry(flow(f)).or_default() += w;
        }
        for e in s.top(k) {
            let t = truth.get(&e.flow).copied().unwrap_or(0);
            prop_assert!(t <= e.count, "true {} > estimate {}", t, e.count);
            prop_assert!(e.guaranteed() <= t, "lower bound {} > true {}", e.guaranteed(), t);
        }
        let bar = s.guarantee_threshold();
        for (f, &w) in &truth {
            if w > bar {
                prop_assert!(s.estimate(f).is_some(), "flow above W/k evicted");
            }
        }
    }

    /// Engine-level top-k is exact (zero error) whenever the per-shard
    /// sketches never overflow, and recalls every true victim flow.
    #[test]
    fn topk_is_exact_below_capacity(raw in stream_strategy(250), shards in 1usize..5) {
        let events: Vec<StoredEvent> =
            raw.iter().map(|&(t, d, f, c, w)| ev(t, d, f, c, w)).collect();
        // 48 possible flows, topk_k = 64 per shard: no shard can overflow.
        let cfg =
            AnalyticsConfig { shards, topk_k: 64, ..AnalyticsConfig::default() };
        let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
        engine.ingest_slice(&events);

        let truth = naive_weights(&events);
        let reported = engine.top_flows(truth.len().max(1));
        prop_assert_eq!(reported.len(), truth.len());
        for e in &reported {
            prop_assert_eq!(e.error, 0, "no eviction, no error");
            prop_assert_eq!(Some(&e.count), truth.get(&e.flow));
        }
    }

    /// The extended ledger identity holds under arbitrarily tiny budgets,
    /// interesting events are never shed (the sketch always takes them),
    /// and generous key budgets shed nothing.
    #[test]
    fn ledger_identity_under_tiny_caps(
        raw in stream_strategy(300),
        shards in 1usize..5,
        max_agg_keys in 1usize..6,
        topk_k in 1usize..6,
    ) {
        let events: Vec<StoredEvent> =
            raw.iter().map(|&(t, d, f, c, w)| ev(t, d, f, c, w)).collect();
        let cfg = AnalyticsConfig {
            shards,
            max_agg_keys,
            topk_k,
            ..AnalyticsConfig::default()
        };
        let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
        engine.ingest_slice(&events);

        let ledger = engine.ledger();
        ledger.assert_balanced();
        prop_assert_eq!(ledger.ingested, events.len() as u64);
        let boring = events
            .iter()
            .filter(|e| !e.record.ty.is_drop() && e.record.ty != EventType::Congestion)
            .count() as u64;
        prop_assert!(
            ledger.shed_analytics <= boring,
            "shed {} > boring events {}; an interesting event was shed",
            ledger.shed_analytics,
            boring
        );
    }

    /// Cumulative totals and the ledger do not depend on the shard count.
    #[test]
    fn totals_are_shard_count_invariant(raw in stream_strategy(250)) {
        let events: Vec<StoredEvent> =
            raw.iter().map(|&(t, d, f, c, w)| ev(t, d, f, c, w)).collect();
        let run = |shards: usize| {
            let cfg = AnalyticsConfig { shards, ..AnalyticsConfig::default() };
            let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
            engine.ingest_slice(&events);
            (engine.totals(), engine.ledger())
        };
        let (t1, l1) = run(1);
        for shards in [2usize, 3, 5] {
            let (t, l) = run(shards);
            prop_assert_eq!(&t, &t1, "totals diverged at {} shards", shards);
            prop_assert_eq!(l, l1, "ledger diverged at {} shards", shards);
        }
    }
}
