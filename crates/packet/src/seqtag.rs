//! The NetSeer inter-switch sequence tag (paper §3.3, Figure 5).
//!
//! The upstream switch inserts a per-(egress-port) consecutive 4-byte packet
//! ID into every packet it sends to the downstream neighbor; the downstream
//! switch strips it at ingress and uses sequence gaps to detect silent drops
//! and corruptions on the link.
//!
//! The paper steals unused header bits (e.g. VLAN) for this. Our simulator
//! makes the tag explicit: it is shimmed between the Ethernet header and the
//! original payload, like a VLAN tag, with layout
//!
//! ```text
//! 0        4                 6
//! +--------+-----------------+
//! | seq u32| inner ethertype |
//! +--------+-----------------+
//! ```
//!
//! and the outer EtherType set to [`EtherType::NetSeerSeq`](crate::EtherType).

use crate::error::{ParseError, Result};
use crate::ethernet::EtherType;

/// On-wire length of the sequence tag shim.
pub const SEQTAG_LEN: usize = 6;

/// Typed view of the sequence tag shim (the bytes right after the Ethernet
/// header when the outer EtherType is `NetSeerSeq`).
#[derive(Debug, Clone)]
pub struct SeqTag<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> SeqTag<T> {
    /// Wrap a buffer, checking length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < SEQTAG_LEN {
            return Err(ParseError::Truncated { what: "seqtag", need: SEQTAG_LEN, have: len });
        }
        Ok(SeqTag { buffer })
    }

    /// The consecutive per-port packet ID.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// EtherType of the encapsulated payload.
    pub fn inner_ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from_value(u16::from_be_bytes([b[4], b[5]]))
    }

    /// Bytes after the shim.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[SEQTAG_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> SeqTag<T> {
    /// Set the packet ID.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[0..4].copy_from_slice(&seq.to_be_bytes());
    }

    /// Set the encapsulated EtherType.
    pub fn set_inner_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[4..6].copy_from_slice(&ty.value().to_be_bytes());
    }
}

/// Sequence-number arithmetic with wraparound, shared by the tagger and the
/// gap detector. `a` comes strictly before `b` if the signed distance is
/// positive — correct across the u32 wrap as long as the true distance is
/// below 2^31 packets (weeks of traffic at 100G).
pub fn seq_before(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 > 0
}

/// Number of packets strictly between two sequence numbers (the gap size).
pub fn gap_between(last_seen: u32, now_seen: u32) -> u32 {
    now_seen.wrapping_sub(last_seen).wrapping_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_roundtrip() {
        let mut buf = [0u8; 10];
        let mut t = SeqTag::new_checked(&mut buf[..]).unwrap();
        t.set_seq(0xfeed_beef);
        t.set_inner_ethertype(EtherType::Ipv4);
        let t = SeqTag::new_checked(&buf[..]).unwrap();
        assert_eq!(t.seq(), 0xfeed_beef);
        assert_eq!(t.inner_ethertype(), EtherType::Ipv4);
        assert_eq!(t.payload().len(), 4);
    }

    #[test]
    fn rejects_short() {
        assert!(SeqTag::new_checked(&[0u8; 5][..]).is_err());
    }

    #[test]
    fn ordering_handles_wraparound() {
        assert!(seq_before(1, 2));
        assert!(!seq_before(2, 1));
        assert!(seq_before(u32::MAX, 0));
        assert!(seq_before(u32::MAX - 1, 3));
        assert!(!seq_before(3, u32::MAX - 1));
        assert!(!seq_before(7, 7));
    }

    #[test]
    fn gap_counting() {
        assert_eq!(gap_between(5, 6), 0); // consecutive: no loss
        assert_eq!(gap_between(5, 8), 2); // 6 and 7 lost
        assert_eq!(gap_between(u32::MAX, 1), 1); // 0 lost across wrap
        assert_eq!(gap_between(u32::MAX - 2, 2), 4);
    }
}
