//! IPv4 header view (fixed 20-byte header; options unsupported, like most
//! data center fabrics which drop optioned packets at the edge).

use crate::checksum::{internet_checksum, verify_internet_checksum};
use crate::error::{ParseError, Result};
use crate::flow::IpProtocol;
use core::fmt;

/// Fixed IPv4 header length (IHL = 5).
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 address. A thin wrapper over 4 octets so the crate stays
/// dependency-free and `no_std`-friendly in spirit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// Build from octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr(u32::from_be_bytes(o))
    }

    /// Build from a host-order u32.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr(v)
    }

    /// Octet representation.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Host-order u32 representation.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Typed view of an IPv4 packet (header + payload).
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer, checking length, version, and IHL.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated { what: "ipv4", need: IPV4_HEADER_LEN, have: len });
        }
        let p = Ipv4Packet { buffer };
        let b = p.buffer.as_ref();
        if b[0] >> 4 != 4 {
            return Err(ParseError::Malformed { what: "ipv4.version" });
        }
        if b[0] & 0x0f != 5 {
            return Err(ParseError::Unsupported { what: "ipv4 options (ihl != 5)" });
        }
        if usize::from(p.total_length()) > len {
            return Err(ParseError::Truncated {
                what: "ipv4.total_length",
                need: usize::from(p.total_length()),
                have: len,
            });
        }
        // A total_length shorter than the header itself is malformed and
        // would otherwise let payload() slice backwards.
        if usize::from(p.total_length()) < IPV4_HEADER_LEN {
            return Err(ParseError::Malformed { what: "ipv4.total_length" });
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Total length field (header + payload).
    pub fn total_length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// DSCP (top 6 bits of the traffic class byte) — the simulator maps this
    /// to the egress priority queue.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// IP protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_number(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::from_octets([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::from_octets([b[16], b[17], b[18], b[19]])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        verify_internet_checksum(&self.buffer.as_ref()[..IPV4_HEADER_LEN])
    }

    /// Payload after the header (bounded by total_length when valid).
    pub fn payload(&self) -> &[u8] {
        let end = usize::from(self.total_length()).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[IPV4_HEADER_LEN..end]
    }

    /// Consume and return the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initialize version/IHL and sensible defaults.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[6] = 0x40; // don't fragment
        b[7] = 0;
        b[8] = 64;
    }

    /// Set the total length field.
    pub fn set_total_length(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Set DSCP (priority class).
    pub fn set_dscp(&mut self, dscp: u8) {
        let b = self.buffer.as_mut();
        b[1] = (b[1] & 0x03) | (dscp << 2);
    }

    /// Set TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Decrement TTL, saturating at zero. Returns the new value.
    pub fn decrement_ttl(&mut self) -> u8 {
        let b = self.buffer.as_mut();
        b[8] = b[8].saturating_sub(1);
        let ttl = b[8];
        self.fill_checksum();
        ttl
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[9] = p.number();
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.octets());
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.octets());
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        let b = self.buffer.as_mut();
        b[10] = 0;
        b[11] = 0;
        let cks = internet_checksum(&b[..IPV4_HEADER_LEN]);
        b[10..12].copy_from_slice(&cks.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[IPV4_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 40];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.init();
        p.set_total_length(40);
        p.set_src(Ipv4Addr::from_octets([10, 0, 0, 1]));
        p.set_dst(Ipv4Addr::from_octets([10, 0, 0, 2]));
        p.set_protocol(IpProtocol::Tcp);
        p.set_ttl(64);
        p.fill_checksum();
        buf
    }

    #[test]
    fn parse_roundtrip() {
        let buf = sample();
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src(), Ipv4Addr::from_octets([10, 0, 0, 1]));
        assert_eq!(p.dst(), Ipv4Addr::from_octets([10, 0, 0, 2]));
        assert_eq!(p.protocol(), IpProtocol::Tcp);
        assert_eq!(p.ttl(), 64);
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 20);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = sample();
        buf[0] = 0x65;
        assert!(matches!(Ipv4Packet::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
    }

    #[test]
    fn rejects_options() {
        let mut buf = sample();
        buf[0] = 0x46;
        assert!(matches!(Ipv4Packet::new_checked(&buf[..]), Err(ParseError::Unsupported { .. })));
    }

    #[test]
    fn rejects_total_length_beyond_buffer() {
        let mut buf = sample();
        buf[2] = 0xff;
        buf[3] = 0xff;
        assert!(matches!(Ipv4Packet::new_checked(&buf[..]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn ttl_decrement_saturates_and_rechecksums() {
        let mut buf = sample();
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_ttl(1);
        p.fill_checksum();
        assert_eq!(p.decrement_ttl(), 0);
        assert_eq!(p.decrement_ttl(), 0);
        assert!(p.verify_checksum());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = sample();
        buf[15] ^= 1;
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn dscp_field() {
        let mut buf = sample();
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_dscp(46); // EF
        assert_eq!(p.dscp(), 46);
    }

    #[test]
    fn addr_display_and_conversion() {
        let a = Ipv4Addr::from_octets([192, 168, 1, 9]);
        assert_eq!(a.to_string(), "192.168.1.9");
        assert_eq!(Ipv4Addr::from_u32(a.as_u32()), a);
    }
}
