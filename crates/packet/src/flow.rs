//! Flow identification: the 13-byte 5-tuple NetSeer reports per event.

use crate::ipv4::Ipv4Addr;
use core::fmt;

/// IP protocol numbers the simulator cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// ICMP (used by Pingmesh-style probes).
    Icmp,
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Wire value.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(n) => n,
        }
    }

    /// Decode from the wire value.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The 5-tuple flow identifier: 13 bytes on the wire
/// (src 4 + dst 4 + sport 2 + dport 2 + proto 1), exactly the "Flow (13B)"
/// field of the paper's event format (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source transport port (0 for ICMP).
    pub sport: u16,
    /// Destination transport port (0 for ICMP).
    pub dport: u16,
    /// IP protocol.
    pub proto: IpProtocol,
}

/// Serialized length of a [`FlowKey`].
pub const FLOW_KEY_LEN: usize = 13;

impl FlowKey {
    /// Construct a TCP flow key.
    pub fn tcp(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        FlowKey { src, dst, sport, dport, proto: IpProtocol::Tcp }
    }

    /// Construct a UDP flow key.
    pub fn udp(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        FlowKey { src, dst, sport, dport, proto: IpProtocol::Udp }
    }

    /// Serialize to the 13-byte wire layout.
    pub fn write_to(&self, buf: &mut [u8; FLOW_KEY_LEN]) {
        buf[0..4].copy_from_slice(&self.src.octets());
        buf[4..8].copy_from_slice(&self.dst.octets());
        buf[8..10].copy_from_slice(&self.sport.to_be_bytes());
        buf[10..12].copy_from_slice(&self.dport.to_be_bytes());
        buf[12] = self.proto.number();
    }

    /// Deserialize from the 13-byte wire layout.
    pub fn read_from(buf: &[u8; FLOW_KEY_LEN]) -> Self {
        FlowKey {
            src: Ipv4Addr::from_octets([buf[0], buf[1], buf[2], buf[3]]),
            dst: Ipv4Addr::from_octets([buf[4], buf[5], buf[6], buf[7]]),
            sport: u16::from_be_bytes([buf[8], buf[9]]),
            dport: u16::from_be_bytes([buf[10], buf[11]]),
            proto: IpProtocol::from_number(buf[12]),
        }
    }

    /// The reverse direction of this flow (for ACK/notification traffic).
    pub fn reversed(&self) -> Self {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} -> {}:{} ({})", self.src, self.sport, self.dst, self.dport, self.proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 1, 2]),
            43211,
            Ipv4Addr::from_octets([10, 0, 9, 8]),
            80,
        )
    }

    #[test]
    fn wire_roundtrip() {
        let k = key();
        let mut buf = [0u8; FLOW_KEY_LEN];
        k.write_to(&mut buf);
        assert_eq!(FlowKey::read_from(&buf), k);
    }

    #[test]
    fn wire_layout_is_stable() {
        let k = key();
        let mut buf = [0u8; FLOW_KEY_LEN];
        k.write_to(&mut buf);
        assert_eq!(&buf[0..4], &[10, 0, 1, 2]);
        assert_eq!(&buf[4..8], &[10, 0, 9, 8]);
        assert_eq!(u16::from_be_bytes([buf[8], buf[9]]), 43211);
        assert_eq!(u16::from_be_bytes([buf[10], buf[11]]), 80);
        assert_eq!(buf[12], 6);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.dport, k.sport);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(IpProtocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn display_is_readable() {
        let s = key().to_string();
        assert!(s.contains("10.0.1.2:43211"));
        assert!(s.contains("TCP"));
    }
}
