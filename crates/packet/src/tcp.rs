//! TCP header view (fixed 20-byte header; options not interpreted).

use crate::error::{ParseError, Result};

/// Fixed TCP header length (data offset = 5).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// Typed view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap a buffer, checking the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < TCP_HEADER_LEN {
            return Err(ParseError::Truncated { what: "tcp", need: TCP_HEADER_LEN, have: len });
        }
        Ok(TcpSegment { buffer })
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Flag byte (lower 8 flag bits).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13]
    }

    /// True if SYN set.
    pub fn is_syn(&self) -> bool {
        self.flags() & flags::SYN != 0
    }

    /// True if FIN set.
    pub fn is_fin(&self) -> bool {
        self.flags() & flags::FIN != 0
    }

    /// Payload after the fixed header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[TCP_HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initialize data offset and zero the rest of the header.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        for x in b[..TCP_HEADER_LEN].iter_mut() {
            *x = 0;
        }
        b[12] = 5 << 4; // data offset
    }

    /// Set source port.
    pub fn set_sport(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dport(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set sequence number.
    pub fn set_seq(&mut self, s: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&s.to_be_bytes());
    }

    /// Set ack number.
    pub fn set_ack(&mut self, a: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&a.to_be_bytes());
    }

    /// Set flag byte.
    pub fn set_flags(&mut self, f: u8) {
        self.buffer.as_mut()[13] = f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 32];
        let mut t = TcpSegment::new_unchecked(&mut buf[..]);
        t.init();
        t.set_sport(5555);
        t.set_dport(80);
        t.set_seq(0xdead_beef);
        t.set_ack(42);
        t.set_flags(flags::SYN | flags::ACK);
        let t = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(t.sport(), 5555);
        assert_eq!(t.dport(), 80);
        assert_eq!(t.seq(), 0xdead_beef);
        assert_eq!(t.ack(), 42);
        assert!(t.is_syn());
        assert!(!t.is_fin());
        assert_eq!(t.payload().len(), 12);
    }

    #[test]
    fn rejects_short() {
        assert!(TcpSegment::new_checked(&[0u8; 19][..]).is_err());
    }

    #[test]
    fn fin_detection() {
        let mut buf = [0u8; 20];
        let mut t = TcpSegment::new_unchecked(&mut buf[..]);
        t.init();
        t.set_flags(flags::FIN | flags::ACK);
        assert!(TcpSegment::new_checked(&buf[..]).unwrap().is_fin());
    }
}
