//! High-level packet construction and inspection helpers.
//!
//! The simulator represents every packet as an owned `Vec<u8>` containing a
//! complete Ethernet frame; these helpers build well-formed frames and
//! extract flow information without callers touching raw offsets.

use crate::cebp;
use crate::checksum::crc32c;
use crate::error::{ParseError, Result};
use crate::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use crate::event::EventRecord;
use crate::flow::{FlowKey, IpProtocol};
use crate::ipv4::{Ipv4Addr, Ipv4Packet, IPV4_HEADER_LEN};
use crate::notification::{build_notification, LossNotification, NOTIFICATION_LEN};
use crate::pfc::{PfcFrame, PFC_PAYLOAD_LEN};
use crate::seqtag::{SeqTag, SEQTAG_LEN};
use crate::tcp::{TcpSegment, TCP_HEADER_LEN};
use crate::udp::{UdpDatagram, UDP_HEADER_LEN};
use crate::{CRC_TRAILER_LEN, MIN_FRAME_LEN};

/// Build a complete Ethernet+IPv4+TCP/UDP frame for `flow` with `payload_len`
/// bytes of application payload (zero-filled). `tcp_flags` applies to TCP
/// flows only. Frames are padded to the 64-byte Ethernet minimum.
pub fn build_data_packet(
    flow: &FlowKey,
    payload_len: usize,
    tcp_flags: u8,
    dscp: u8,
    ttl: u8,
) -> Vec<u8> {
    let mut buf = vec![0u8; data_packet_len(flow, payload_len)];
    fill_data_packet(&mut buf, flow, payload_len, tcp_flags, dscp, ttl);
    buf
}

/// Like [`build_data_packet`] but drawing the (zeroed) buffer from a
/// [`crate::FrameArena`] — the zero-allocation form for steady-state
/// traffic sources.
pub fn build_data_packet_in(
    arena: &mut crate::FrameArena,
    flow: &FlowKey,
    payload_len: usize,
    tcp_flags: u8,
    dscp: u8,
    ttl: u8,
) -> Vec<u8> {
    let mut buf = arena.get(data_packet_len(flow, payload_len));
    fill_data_packet(&mut buf, flow, payload_len, tcp_flags, dscp, ttl);
    buf
}

/// On-wire length of the frame [`build_data_packet`] would produce.
pub fn data_packet_len(flow: &FlowKey, payload_len: usize) -> usize {
    let l4_len = match flow.proto {
        IpProtocol::Tcp => TCP_HEADER_LEN,
        IpProtocol::Udp => UDP_HEADER_LEN,
        _ => 0,
    };
    (ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + l4_len + payload_len).max(MIN_FRAME_LEN)
}

fn fill_data_packet(
    buf: &mut [u8],
    flow: &FlowKey,
    payload_len: usize,
    tcp_flags: u8,
    dscp: u8,
    ttl: u8,
) {
    let l4_len = match flow.proto {
        IpProtocol::Tcp => TCP_HEADER_LEN,
        IpProtocol::Udp => UDP_HEADER_LEN,
        _ => 0,
    };
    let ip_total = IPV4_HEADER_LEN + l4_len + payload_len;

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(MacAddr::BROADCAST);
    eth.set_src(MacAddr::BROADCAST);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
    ip.init();
    ip.set_total_length(ip_total as u16);
    ip.set_ttl(ttl);
    ip.set_dscp(dscp);
    ip.set_protocol(flow.proto);
    ip.set_src(flow.src);
    ip.set_dst(flow.dst);
    ip.fill_checksum();

    let l4_off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
    match flow.proto {
        IpProtocol::Tcp => {
            let mut t = TcpSegment::new_unchecked(&mut buf[l4_off..]);
            t.init();
            t.set_sport(flow.sport);
            t.set_dport(flow.dport);
            t.set_flags(tcp_flags);
        }
        IpProtocol::Udp => {
            let mut u = UdpDatagram::new_unchecked(&mut buf[l4_off..]);
            u.set_sport(flow.sport);
            u.set_dport(flow.dport);
            u.set_length((UDP_HEADER_LEN + payload_len) as u16);
        }
        _ => {}
    }
}

/// Build a PFC frame pausing (`quanta > 0`) or resuming (`quanta == 0`) the
/// given priority class.
pub fn build_pfc_frame(class: usize, quanta: u16) -> Vec<u8> {
    let mut buf = vec![0u8; (ETHERNET_HEADER_LEN + PFC_PAYLOAD_LEN).max(MIN_FRAME_LEN)];
    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x01]));
    eth.set_src(MacAddr::BROADCAST);
    eth.set_ethertype(EtherType::MacControl);
    let mut pfc = PfcFrame::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
    pfc.init();
    pfc.set_pause(class, quanta);
    buf
}

/// Build the three redundant loss-notification frames for a missing range
/// (the paper's default redundancy).
pub fn build_notification_frames(lo: u32, hi: u32, observer_port: u8) -> Vec<Vec<u8>> {
    build_notification_frames_with(lo, hi, observer_port, crate::notification::NOTIFICATION_COPIES)
}

/// Build `copies` redundant loss-notification frames (ablation knob).
pub fn build_notification_frames_with(
    lo: u32,
    hi: u32,
    observer_port: u8,
    copies: u8,
) -> Vec<Vec<u8>> {
    (0..copies.max(1))
        .map(|copy| {
            let payload = build_notification(lo, hi, copy, observer_port);
            let wire = ETHERNET_HEADER_LEN + NOTIFICATION_LEN + CRC_TRAILER_LEN;
            let mut buf = vec![0u8; wire.max(MIN_FRAME_LEN)];
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_dst(MacAddr::BROADCAST);
            eth.set_src(MacAddr::BROADCAST);
            eth.set_ethertype(EtherType::NetSeerNotify);
            buf[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + NOTIFICATION_LEN]
                .copy_from_slice(&payload);
            let crc = crc32c(&payload);
            buf[ETHERNET_HEADER_LEN + NOTIFICATION_LEN..wire].copy_from_slice(&crc.to_be_bytes());
            buf
        })
        .collect()
}

/// Build a CEBP frame carrying the given events, closed by a CRC-32C
/// trailer over the CEBP header + records.
pub fn build_cebp_frame(capacity: u16, events: &[EventRecord]) -> Result<Vec<u8>> {
    let payload = cebp::buffer_len_for(capacity);
    let mut buf = vec![0u8; ETHERNET_HEADER_LEN + payload + CRC_TRAILER_LEN];
    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(MacAddr::BROADCAST);
    eth.set_src(MacAddr::BROADCAST);
    eth.set_ethertype(EtherType::NetSeerCebp);
    let mut p = cebp::CebpPacket::new_checked(&mut buf[ETHERNET_HEADER_LEN..][..payload])
        .expect("sized buffer");
    p.init(capacity);
    for ev in events {
        p.push_event(ev)?;
    }
    let crc = crc32c(&buf[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + payload]);
    buf[ETHERNET_HEADER_LEN + payload..].copy_from_slice(&crc.to_be_bytes());
    Ok(buf)
}

/// Parse and integrity-check a CEBP report frame: EtherType, CRC-32C
/// trailer, then the batched event records. Returns `BadChecksum` on any
/// trailer mismatch — callers treat that as a poison report to quarantine.
pub fn parse_cebp_frame(frame: &[u8]) -> Result<Vec<EventRecord>> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != EtherType::NetSeerCebp {
        return Err(ParseError::Malformed { what: "cebp.ethertype" });
    }
    let payload = eth.payload();
    if payload.len() < cebp::CEBP_HEADER_LEN + CRC_TRAILER_LEN {
        return Err(ParseError::Truncated {
            what: "cebp.trailer",
            need: cebp::CEBP_HEADER_LEN + CRC_TRAILER_LEN,
            have: payload.len(),
        });
    }
    let (body, trailer) = payload.split_at(payload.len() - CRC_TRAILER_LEN);
    let want = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32c(body) != want {
        return Err(ParseError::BadChecksum { what: "cebp.crc32c" });
    }
    cebp::CebpPacket::new_checked(body)?.events()
}

/// Insert a NetSeer sequence tag into a frame (paper Figure 5 step 1),
/// returning the re-framed packet. The original EtherType moves into the
/// tag's inner-EtherType field.
pub fn insert_seqtag(frame: &[u8], seq: u32) -> Result<Vec<u8>> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() == EtherType::NetSeerSeq {
        return Err(ParseError::Malformed { what: "seqtag.double-insert" });
    }
    let inner = eth.ethertype();
    let mut out = Vec::with_capacity(frame.len() + SEQTAG_LEN);
    out.extend_from_slice(&frame[..ETHERNET_HEADER_LEN]);
    out.extend_from_slice(&[0u8; SEQTAG_LEN]);
    out.extend_from_slice(&frame[ETHERNET_HEADER_LEN..]);
    let mut eth = EthernetFrame::new_unchecked(&mut out[..]);
    eth.set_ethertype(EtherType::NetSeerSeq);
    let mut tag = SeqTag::new_checked(&mut out[ETHERNET_HEADER_LEN..]).expect("sized");
    tag.set_seq(seq);
    tag.set_inner_ethertype(inner);
    Ok(out)
}

/// Strip a NetSeer sequence tag (paper Figure 5 step 2), returning the
/// sequence number and the restored frame.
pub fn strip_seqtag(frame: &[u8]) -> Result<(u32, Vec<u8>)> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != EtherType::NetSeerSeq {
        return Err(ParseError::Malformed { what: "seqtag.missing" });
    }
    let tag = SeqTag::new_checked(eth.payload())?;
    let seq = tag.seq();
    let inner = tag.inner_ethertype();
    let mut out = Vec::with_capacity(frame.len() - SEQTAG_LEN);
    out.extend_from_slice(&frame[..ETHERNET_HEADER_LEN]);
    out.extend_from_slice(&frame[ETHERNET_HEADER_LEN + SEQTAG_LEN..]);
    let mut eth = EthernetFrame::new_unchecked(&mut out[..]);
    eth.set_ethertype(inner);
    Ok((seq, out))
}

/// Insert a NetSeer sequence tag **in place**: the frame grows by
/// [`SEQTAG_LEN`] bytes but keeps its buffer (and, once warm, its
/// capacity) — the zero-allocation form of [`insert_seqtag`] used on the
/// per-packet hot path.
pub fn insert_seqtag_in_place(frame: &mut Vec<u8>, seq: u32) -> Result<()> {
    let eth = EthernetFrame::new_checked(&frame[..])?;
    if eth.ethertype() == EtherType::NetSeerSeq {
        return Err(ParseError::Malformed { what: "seqtag.double-insert" });
    }
    let inner = eth.ethertype();
    let old_len = frame.len();
    frame.resize(old_len + SEQTAG_LEN, 0);
    frame.copy_within(ETHERNET_HEADER_LEN..old_len, ETHERNET_HEADER_LEN + SEQTAG_LEN);
    let mut eth = EthernetFrame::new_unchecked(&mut frame[..]);
    eth.set_ethertype(EtherType::NetSeerSeq);
    let mut tag = SeqTag::new_checked(&mut frame[ETHERNET_HEADER_LEN..]).expect("sized");
    tag.set_seq(seq);
    tag.set_inner_ethertype(inner);
    Ok(())
}

/// Strip a NetSeer sequence tag **in place**, returning the sequence
/// number. The frame shrinks by [`SEQTAG_LEN`] bytes but keeps its buffer
/// — the zero-allocation form of [`strip_seqtag`] used on the per-packet
/// hot path.
pub fn strip_seqtag_in_place(frame: &mut Vec<u8>) -> Result<u32> {
    let eth = EthernetFrame::new_checked(&frame[..])?;
    if eth.ethertype() != EtherType::NetSeerSeq {
        return Err(ParseError::Malformed { what: "seqtag.missing" });
    }
    let tag = SeqTag::new_checked(eth.payload())?;
    let seq = tag.seq();
    let inner = tag.inner_ethertype();
    let len = frame.len();
    frame.copy_within(ETHERNET_HEADER_LEN + SEQTAG_LEN..len, ETHERNET_HEADER_LEN);
    frame.truncate(len - SEQTAG_LEN);
    let mut eth = EthernetFrame::new_unchecked(&mut frame[..]);
    eth.set_ethertype(inner);
    Ok(seq)
}

/// Big-endian 16-bit load at a byte offset; `None` past the end.
/// Compiles to a single bounds check plus one word load — the primitive
/// the word-at-a-time parser fast paths are built from.
#[inline]
fn be16_at(b: &[u8], off: usize) -> Option<u16> {
    b.get(off..off + 2).map(|w| u16::from_be_bytes([w[0], w[1]]))
}

/// Big-endian 32-bit load at a byte offset; `None` past the end.
#[inline]
fn be32_at(b: &[u8], off: usize) -> Option<u32> {
    b.get(off..off + 4).map(|w| u32::from_be_bytes([w[0], w[1], w[2], w[3]]))
}

/// Peek the sequence number of a tagged frame without re-framing.
pub fn peek_seqtag(frame: &[u8]) -> Result<u32> {
    // Word-at-a-time fast path: one ethertype load, one seq load. Anything
    // short or untagged drops to the layered parsers purely to produce the
    // exact same error values they always have.
    if frame.len() >= ETHERNET_HEADER_LEN + SEQTAG_LEN
        && be16_at(frame, 12) == Some(EtherType::NetSeerSeq.value())
    {
        if let Some(seq) = be32_at(frame, ETHERNET_HEADER_LEN) {
            return Ok(seq);
        }
    }
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != EtherType::NetSeerSeq {
        return Err(ParseError::Malformed { what: "seqtag.missing" });
    }
    Ok(SeqTag::new_checked(eth.payload())?.seq())
}

/// Extract the 5-tuple from an Ethernet frame, looking through a sequence
/// tag if present. Non-IP frames yield `None`.
///
/// The common case — a well-formed TCP/UDP-in-IPv4 frame, tagged or not —
/// is decoded with a handful of word loads at fixed offsets; anything the
/// fast path is not certain about (IP options, unusual protocols, odd
/// lengths) falls back to the layered checked parsers, which remain
/// authoritative. The equivalence of the two paths is property-tested in
/// this module.
pub fn extract_flow(frame: &[u8]) -> Option<FlowKey> {
    if let Some(f) = extract_flow_fast(frame) {
        return Some(f);
    }
    extract_flow_checked(frame)
}

/// Word-at-a-time `extract_flow` fast path. Every guard here mirrors a
/// validation the checked parsers perform, so `Some` answers are exactly
/// what [`extract_flow_checked`] would return; `None` only means "let the
/// slow path decide".
#[inline]
fn extract_flow_fast(frame: &[u8]) -> Option<FlowKey> {
    let l3_off = match be16_at(frame, 12)? {
        0x0800 => ETHERNET_HEADER_LEN,
        0x88b5 if be16_at(frame, ETHERNET_HEADER_LEN + 4)? == 0x0800 => {
            ETHERNET_HEADER_LEN + SEQTAG_LEN
        }
        _ => return None,
    };
    let l3_len = frame.len() - l3_off;
    // Version 4, IHL 5 in one byte compare; options (IHL != 5) fall back.
    if l3_len < IPV4_HEADER_LEN || frame[l3_off] != 0x45 {
        return None;
    }
    let total = usize::from(be16_at(frame, l3_off + 2)?);
    if total < IPV4_HEADER_LEN || total > l3_len {
        return None;
    }
    let l4_len = total - IPV4_HEADER_LEN;
    let l4 = l3_off + IPV4_HEADER_LEN;
    let proto = frame[l3_off + 9];
    let (sport, dport) = match proto {
        6 if l4_len >= TCP_HEADER_LEN => (be16_at(frame, l4)?, be16_at(frame, l4 + 2)?),
        17 if l4_len >= UDP_HEADER_LEN => {
            let ulen = usize::from(be16_at(frame, l4 + 4)?);
            if ulen < UDP_HEADER_LEN || ulen > l4_len {
                return None;
            }
            (be16_at(frame, l4)?, be16_at(frame, l4 + 2)?)
        }
        _ => return None,
    };
    Some(FlowKey {
        src: Ipv4Addr::from_u32(be32_at(frame, l3_off + 12)?),
        dst: Ipv4Addr::from_u32(be32_at(frame, l3_off + 16)?),
        sport,
        dport,
        proto: IpProtocol::from_number(proto),
    })
}

/// Layered-parser `extract_flow`: the authoritative slow path.
fn extract_flow_checked(frame: &[u8]) -> Option<FlowKey> {
    let eth = EthernetFrame::new_checked(frame).ok()?;
    let (ethertype, l3) = match eth.ethertype() {
        EtherType::NetSeerSeq => {
            let tag = SeqTag::new_checked(eth.payload()).ok()?;
            (tag.inner_ethertype(), &eth.payload()[SEQTAG_LEN..])
        }
        ty => (ty, eth.payload()),
    };
    if ethertype != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Packet::new_checked(l3).ok()?;
    let (sport, dport) = match ip.protocol() {
        IpProtocol::Tcp => {
            let t = TcpSegment::new_checked(ip.payload()).ok()?;
            (t.sport(), t.dport())
        }
        IpProtocol::Udp => {
            let u = UdpDatagram::new_checked(ip.payload()).ok()?;
            (u.sport(), u.dport())
        }
        _ => (0, 0),
    };
    Some(FlowKey { src: ip.src(), dst: ip.dst(), sport, dport, proto: ip.protocol() })
}

/// Classify a frame's top-level protocol for switch parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// IPv4 data traffic (possibly beneath a sequence tag).
    Ipv4,
    /// PFC pause frame.
    Pfc,
    /// NetSeer loss notification.
    LossNotification,
    /// NetSeer CEBP.
    Cebp,
    /// Anything else.
    Other,
}

/// Determine the frame kind.
///
/// Pure word-at-a-time: one ethertype load, plus one inner-ethertype load
/// when a sequence tag is present. A frame too short for the load it needs
/// is `Other`, exactly as the layered parsers would report.
pub fn classify(frame: &[u8]) -> FrameKind {
    match be16_at(frame, 12) {
        Some(0x0800) => FrameKind::Ipv4,
        Some(0x88b5) => match be16_at(frame, ETHERNET_HEADER_LEN + 4) {
            Some(0x0800) => FrameKind::Ipv4,
            Some(0x88b6) => FrameKind::LossNotification,
            _ => FrameKind::Other,
        },
        Some(0x8808) => FrameKind::Pfc,
        Some(0x88b6) => FrameKind::LossNotification,
        Some(0x88b7) => FrameKind::Cebp,
        _ => FrameKind::Other,
    }
}

/// Parse a loss-notification frame (possibly beneath a sequence tag).
pub fn parse_notification(frame: &[u8]) -> Result<(u32, u32, u8, u8)> {
    let eth = EthernetFrame::new_checked(frame)?;
    let payload = match eth.ethertype() {
        EtherType::NetSeerNotify => eth.payload(),
        EtherType::NetSeerSeq => {
            let tag = SeqTag::new_checked(eth.payload())?;
            if tag.inner_ethertype() != EtherType::NetSeerNotify {
                return Err(ParseError::Malformed { what: "notification.ethertype" });
            }
            &eth.payload()[SEQTAG_LEN..]
        }
        _ => return Err(ParseError::Malformed { what: "notification.ethertype" }),
    };
    if payload.len() < NOTIFICATION_LEN + CRC_TRAILER_LEN {
        return Err(ParseError::Truncated {
            what: "notification.trailer",
            need: NOTIFICATION_LEN + CRC_TRAILER_LEN,
            have: payload.len(),
        });
    }
    let want = u32::from_be_bytes([
        payload[NOTIFICATION_LEN],
        payload[NOTIFICATION_LEN + 1],
        payload[NOTIFICATION_LEN + 2],
        payload[NOTIFICATION_LEN + 3],
    ]);
    if crc32c(&payload[..NOTIFICATION_LEN]) != want {
        return Err(ParseError::BadChecksum { what: "notification.crc32c" });
    }
    let n = LossNotification::new_checked(payload)?;
    Ok((n.seq_lo(), n.seq_hi(), n.copy_index(), n.observer_port()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr;
    use crate::tcp::flags;

    fn flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 1, 1]),
            40000,
            Ipv4Addr::from_octets([10, 0, 2, 2]),
            443,
        )
    }

    #[test]
    fn data_packet_roundtrip() {
        let f = flow();
        let pkt = build_data_packet(&f, 100, flags::SYN, 0, 64);
        assert!(pkt.len() >= MIN_FRAME_LEN);
        assert_eq!(classify(&pkt), FrameKind::Ipv4);
        assert_eq!(extract_flow(&pkt), Some(f));
    }

    #[test]
    fn small_packets_pad_to_minimum() {
        let pkt = build_data_packet(&flow(), 0, 0, 0, 64);
        assert_eq!(pkt.len(), MIN_FRAME_LEN);
    }

    #[test]
    fn udp_packet_flow_extraction() {
        let f = FlowKey::udp(
            Ipv4Addr::from_octets([10, 0, 1, 1]),
            5000,
            Ipv4Addr::from_octets([10, 0, 2, 2]),
            6000,
        );
        let pkt = build_data_packet(&f, 200, 0, 0, 64);
        assert_eq!(extract_flow(&pkt), Some(f));
    }

    #[test]
    fn seqtag_insert_strip_roundtrip() {
        let pkt = build_data_packet(&flow(), 50, 0, 0, 64);
        let tagged = insert_seqtag(&pkt, 12345).unwrap();
        assert_eq!(tagged.len(), pkt.len() + SEQTAG_LEN);
        assert_eq!(peek_seqtag(&tagged).unwrap(), 12345);
        // Flow stays extractable through the tag.
        assert_eq!(extract_flow(&tagged), Some(flow()));
        assert_eq!(classify(&tagged), FrameKind::Ipv4);
        let (seq, restored) = strip_seqtag(&tagged).unwrap();
        assert_eq!(seq, 12345);
        assert_eq!(restored, pkt);
    }

    #[test]
    fn in_place_seqtag_matches_allocating_form() {
        let pkt = build_data_packet(&flow(), 50, 0, 0, 64);
        let mut buf = pkt.clone();
        insert_seqtag_in_place(&mut buf, 12345).unwrap();
        assert_eq!(buf, insert_seqtag(&pkt, 12345).unwrap());
        assert!(insert_seqtag_in_place(&mut buf.clone(), 1).is_err());
        let seq = strip_seqtag_in_place(&mut buf).unwrap();
        assert_eq!(seq, 12345);
        assert_eq!(buf, pkt);
        assert!(strip_seqtag_in_place(&mut buf).is_err());
    }

    #[test]
    fn double_insert_rejected() {
        let pkt = build_data_packet(&flow(), 50, 0, 0, 64);
        let tagged = insert_seqtag(&pkt, 1).unwrap();
        assert!(insert_seqtag(&tagged, 2).is_err());
    }

    #[test]
    fn strip_untagged_rejected() {
        let pkt = build_data_packet(&flow(), 50, 0, 0, 64);
        assert!(strip_seqtag(&pkt).is_err());
        assert!(peek_seqtag(&pkt).is_err());
    }

    #[test]
    fn pfc_frame_classifies() {
        let pkt = build_pfc_frame(3, 100);
        assert_eq!(classify(&pkt), FrameKind::Pfc);
        assert_eq!(extract_flow(&pkt), None);
    }

    #[test]
    fn notification_frames_are_redundant_copies() {
        let frames = build_notification_frames(10, 20, 5);
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(classify(f), FrameKind::LossNotification);
            let (lo, hi, copy, port) = parse_notification(f).unwrap();
            assert_eq!((lo, hi, port), (10, 20, 5));
            assert_eq!(copy as usize, i);
        }
    }

    #[test]
    fn notification_survives_seqtag() {
        let frames = build_notification_frames(1, 2, 0);
        let tagged = insert_seqtag(&frames[0], 77).unwrap();
        assert_eq!(classify(&tagged), FrameKind::LossNotification);
        let (lo, hi, _, _) = parse_notification(&tagged).unwrap();
        assert_eq!((lo, hi), (1, 2));
    }

    #[test]
    fn cebp_frame_roundtrip() {
        let ev = EventRecord {
            ty: crate::event::EventType::Pause,
            flow: flow(),
            detail: crate::event::EventDetail::Pause { egress_port: 1, queue: 2 },
            counter: 1,
            hash: 42,
        };
        let frame = build_cebp_frame(10, &[ev]).unwrap();
        assert_eq!(classify(&frame), FrameKind::Cebp);
        let p = cebp::CebpPacket::new_checked(&frame[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(p.count(), 1);
        assert_eq!(p.events().unwrap()[0], ev);
        assert_eq!(parse_cebp_frame(&frame).unwrap(), vec![ev]);
    }

    #[test]
    fn cebp_crc_rejects_any_single_bit_flip() {
        let ev = EventRecord {
            ty: crate::event::EventType::Pause,
            flow: flow(),
            detail: crate::event::EventDetail::Pause { egress_port: 1, queue: 2 },
            counter: 1,
            hash: 42,
        };
        let frame = build_cebp_frame(10, &[ev]).unwrap();
        // Flip one bit in every CRC-covered byte position in turn.
        for i in ETHERNET_HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(
                matches!(parse_cebp_frame(&bad), Err(ParseError::BadChecksum { .. })),
                "flip at byte {i} was not caught"
            );
        }
        // Truncation is caught too (as truncation or checksum failure).
        assert!(parse_cebp_frame(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn notification_crc_rejects_payload_corruption() {
        let frames = build_notification_frames(10, 20, 5);
        for i in ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + NOTIFICATION_LEN + 4 {
            let mut bad = frames[0].clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(parse_notification(&bad), Err(ParseError::BadChecksum { .. })),
                "flip at byte {i} was not caught"
            );
        }
    }

    #[test]
    fn fast_flow_extraction_matches_checked_parsers() {
        // Corpus: well-formed frames of every kind, then adversarial
        // mutations of each. The word-at-a-time fast path must agree with
        // the layered checked parsers on every byte string.
        let f = flow();
        let udp = FlowKey::udp(
            Ipv4Addr::from_octets([192, 168, 0, 9]),
            1234,
            Ipv4Addr::from_octets([172, 16, 0, 1]),
            4321,
        );
        let mut corpus: Vec<Vec<u8>> = vec![
            build_data_packet(&f, 100, flags::SYN, 0, 64),
            build_data_packet(&f, 0, 0, 46, 1),
            build_data_packet(&udp, 64, 0, 8, 64),
            insert_seqtag(&build_data_packet(&f, 33, 0, 0, 64), 7).unwrap(),
            insert_seqtag(&build_data_packet(&udp, 0, 0, 0, 64), u32::MAX).unwrap(),
            build_pfc_frame(2, 55),
            build_notification_frames(3, 9, 1).remove(0),
            build_cebp_frame(4, &[]).unwrap(),
            vec![],
            vec![0u8; 13],
            vec![0u8; 64],
        ];
        let mutations: Vec<Vec<u8>> = corpus
            .iter()
            .flat_map(|pkt| {
                let mut out = Vec::new();
                // Every truncation point.
                for cut in 0..pkt.len() {
                    out.push(pkt[..cut].to_vec());
                }
                // Single-byte corruptions across the header region: hits
                // ethertype, version/IHL, total length, protocol, ports.
                for i in 0..pkt.len().min(40) {
                    for flip in [0x01u8, 0x10, 0xff] {
                        let mut bad = pkt.clone();
                        bad[i] ^= flip;
                        out.push(bad);
                    }
                }
                out
            })
            .collect();
        corpus.extend(mutations);
        for pkt in &corpus {
            assert_eq!(extract_flow(pkt), extract_flow_checked(pkt), "flow mismatch on {pkt:02x?}");
            let fast = extract_flow_fast(pkt);
            if fast.is_some() {
                assert_eq!(fast, extract_flow_checked(pkt), "fast-path lied on {pkt:02x?}");
            }
        }
    }

    #[test]
    fn fast_peek_matches_tagged_frames() {
        let tagged = insert_seqtag(&build_data_packet(&flow(), 10, 0, 0, 64), 0xdead_beef).unwrap();
        assert_eq!(peek_seqtag(&tagged).unwrap(), 0xdead_beef);
        // Truncations and untagged frames must still error like the
        // layered parsers.
        assert!(peek_seqtag(&tagged[..13]).is_err());
        assert!(peek_seqtag(&tagged[..16]).is_err());
        // 18 bytes holds the seq word but not the full 6-byte shim: the
        // checked parser rejects it, so the fast path must too.
        assert!(peek_seqtag(&tagged[..18]).is_err());
        assert!(peek_seqtag(&build_data_packet(&flow(), 10, 0, 0, 64)).is_err());
    }

    #[test]
    fn classify_garbage() {
        assert_eq!(classify(&[0u8; 5]), FrameKind::Other);
        let mut junk = vec![0u8; 64];
        junk[12] = 0x12;
        junk[13] = 0x34;
        assert_eq!(classify(&junk), FrameKind::Other);
    }
}
