//! Priority Flow Control (IEEE 802.1Qbb) frame view.
//!
//! PFC frames ride MAC control frames (EtherType 0x8808) with opcode 0x0101:
//! a class-enable bitmap and eight 16-bit pause timers (in 512-bit-time
//! quanta). NetSeer's pause detector (paper §3.3) parses these to track
//! per-queue pause state at ingress.

use crate::error::{ParseError, Result};

/// MAC control opcode for PFC.
pub const PFC_OPCODE: u16 = 0x0101;

/// Payload length: opcode (2) + class vector (2) + 8 timers (16).
pub const PFC_PAYLOAD_LEN: usize = 20;

/// Number of PFC priority classes.
pub const PFC_CLASSES: usize = 8;

/// Typed view of a PFC frame payload (bytes after the Ethernet header of a
/// MAC control frame).
#[derive(Debug, Clone)]
pub struct PfcFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> PfcFrame<T> {
    /// Wrap a buffer, validating length and opcode.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < PFC_PAYLOAD_LEN {
            return Err(ParseError::Truncated { what: "pfc", need: PFC_PAYLOAD_LEN, have: len });
        }
        let f = PfcFrame { buffer };
        if f.opcode() != PFC_OPCODE {
            return Err(ParseError::Malformed { what: "pfc.opcode" });
        }
        Ok(f)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        PfcFrame { buffer }
    }

    /// MAC control opcode.
    pub fn opcode(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Class-enable vector: bit i set means the timer for priority i applies.
    pub fn class_vector(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Pause timer for a priority, in 512-bit-time quanta. Zero = resume.
    pub fn timer(&self, class: usize) -> u16 {
        assert!(class < PFC_CLASSES);
        let b = self.buffer.as_ref();
        let off = 4 + class * 2;
        u16::from_be_bytes([b[off], b[off + 1]])
    }

    /// True if the frame pauses `class` (enabled with nonzero timer).
    pub fn pauses(&self, class: usize) -> bool {
        self.class_vector() & (1 << class) != 0 && self.timer(class) > 0
    }

    /// True if the frame resumes `class` (enabled with zero timer).
    pub fn resumes(&self, class: usize) -> bool {
        self.class_vector() & (1 << class) != 0 && self.timer(class) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> PfcFrame<T> {
    /// Write opcode and zero all fields.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        for x in b[..PFC_PAYLOAD_LEN].iter_mut() {
            *x = 0;
        }
        b[0..2].copy_from_slice(&PFC_OPCODE.to_be_bytes());
    }

    /// Set the class-enable vector.
    pub fn set_class_vector(&mut self, v: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the pause timer for a priority class.
    pub fn set_timer(&mut self, class: usize, quanta: u16) {
        assert!(class < PFC_CLASSES);
        let off = 4 + class * 2;
        self.buffer.as_mut()[off..off + 2].copy_from_slice(&quanta.to_be_bytes());
    }

    /// Convenience: enable `class` and set its timer in one call.
    pub fn set_pause(&mut self, class: usize, quanta: u16) {
        let v = {
            let b = self.buffer.as_ref();
            u16::from_be_bytes([b[2], b[3]])
        } | (1 << class);
        self.set_class_vector(v);
        self.set_timer(class, quanta);
    }
}

/// Convert PFC quanta to nanoseconds at a given link speed.
///
/// One quantum is 512 bit times; at `gbps` gigabits per second a bit time is
/// `1/gbps` ns.
pub fn quanta_to_ns(quanta: u16, gbps: f64) -> u64 {
    ((f64::from(quanta) * 512.0) / gbps).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse() {
        let mut buf = [0u8; PFC_PAYLOAD_LEN];
        let mut f = PfcFrame::new_unchecked(&mut buf[..]);
        f.init();
        f.set_pause(3, 0xffff);
        f.set_pause(5, 0);
        let f = PfcFrame::new_checked(&buf[..]).unwrap();
        assert!(f.pauses(3));
        assert!(!f.pauses(5));
        assert!(f.resumes(5));
        assert!(!f.pauses(0));
        assert!(!f.resumes(0)); // class 0 not enabled
    }

    #[test]
    fn rejects_wrong_opcode() {
        let buf = [0u8; PFC_PAYLOAD_LEN];
        assert!(matches!(PfcFrame::new_checked(&buf[..]), Err(ParseError::Malformed { .. })));
    }

    #[test]
    fn rejects_short() {
        assert!(PfcFrame::new_checked(&[0u8; 10][..]).is_err());
    }

    #[test]
    fn quanta_conversion() {
        // At 100 Gbps, one quantum = 512 / 100 = 5.12 ns.
        assert_eq!(quanta_to_ns(1, 100.0), 5);
        assert_eq!(quanta_to_ns(100, 100.0), 512);
        // At 25 Gbps it is 4x longer.
        assert_eq!(quanta_to_ns(100, 25.0), 2048);
    }

    #[test]
    #[should_panic]
    fn timer_class_out_of_range_panics() {
        let buf = [0u8; PFC_PAYLOAD_LEN];
        let f = PfcFrame::new_unchecked(&buf[..]);
        let _ = f.timer(8);
    }
}
