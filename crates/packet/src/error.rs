//! Error types for packet parsing and construction.

use core::fmt;

/// Errors raised when interpreting a byte buffer as a protocol frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated {
        /// Protocol whose header did not fit.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A field carries a value that the format forbids
    /// (e.g. IPv4 IHL < 5, wrong PFC opcode).
    Malformed {
        /// Protocol and field that failed validation.
        what: &'static str,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed.
        what: &'static str,
    },
    /// An EtherType / protocol number is not one this stack understands.
    Unsupported {
        /// Offending protocol identifier.
        what: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            ParseError::Malformed { what } => write!(f, "{what}: malformed field"),
            ParseError::BadChecksum { what } => write!(f, "{what}: checksum mismatch"),
            ParseError::Unsupported { what } => write!(f, "{what}: unsupported protocol"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ParseError::Truncated { what: "ipv4", need: 20, have: 7 };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, have 7)");
        let e = ParseError::Malformed { what: "ipv4.ihl" };
        assert!(e.to_string().contains("ipv4.ihl"));
        let e = ParseError::BadChecksum { what: "tcp" };
        assert!(e.to_string().contains("checksum"));
        let e = ParseError::Unsupported { what: "ethertype 0x1234" };
        assert!(e.to_string().contains("unsupported"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ParseError::Malformed { what: "x" }, ParseError::Malformed { what: "x" });
        assert_ne!(ParseError::Malformed { what: "x" }, ParseError::BadChecksum { what: "x" });
    }
}
