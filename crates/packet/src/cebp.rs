//! Circulating Event Batching Packets (paper §3.5).
//!
//! CEBPs recirculate inside the switch via an internal port. Each time a
//! CEBP passes the in-pipeline event stack it pops one event and appends it
//! to its payload; once it carries `capacity` events (recommended 50) it is
//! forwarded to the switch CPU and a fresh empty clone continues
//! circulating.
//!
//! Wire layout (after an Ethernet header with EtherType `NetSeerCebp`):
//!
//! ```text
//! 0        2          4
//! +--------+----------+----------------------------------+
//! | count  | capacity | count * 24-byte EventRecords ... |
//! +--------+----------+----------------------------------+
//! ```

use crate::error::{ParseError, Result};
use crate::event::{EventRecord, EVENT_RECORD_LEN};

/// CEBP fixed header length.
pub const CEBP_HEADER_LEN: usize = 4;

/// The paper's recommended batch size.
pub const RECOMMENDED_BATCH: u16 = 50;

/// Typed view over a CEBP payload.
#[derive(Debug, Clone)]
pub struct CebpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> CebpPacket<T> {
    /// Wrap a buffer, validating the header and that `count` events fit.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < CEBP_HEADER_LEN {
            return Err(ParseError::Truncated { what: "cebp", need: CEBP_HEADER_LEN, have: len });
        }
        let p = CebpPacket { buffer };
        let need = CEBP_HEADER_LEN + usize::from(p.count()) * EVENT_RECORD_LEN;
        let have = p.buffer.as_ref().len();
        if need > have {
            return Err(ParseError::Truncated { what: "cebp.events", need, have });
        }
        if p.count() > p.capacity() {
            return Err(ParseError::Malformed { what: "cebp.count > capacity" });
        }
        Ok(p)
    }

    /// Number of events currently carried.
    pub fn count(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Batch capacity this CEBP was created with.
    pub fn capacity(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// True once the CEBP should be forwarded to the CPU.
    pub fn is_full(&self) -> bool {
        self.count() >= self.capacity()
    }

    /// Decode the `i`-th carried event.
    pub fn event(&self, i: u16) -> Result<EventRecord> {
        if i >= self.count() {
            return Err(ParseError::Malformed { what: "cebp.index" });
        }
        let off = CEBP_HEADER_LEN + usize::from(i) * EVENT_RECORD_LEN;
        EventRecord::parse(&self.buffer.as_ref()[off..off + EVENT_RECORD_LEN])
    }

    /// Decode all carried events.
    pub fn events(&self) -> Result<Vec<EventRecord>> {
        (0..self.count()).map(|i| self.event(i)).collect()
    }

    /// Total bytes this CEBP occupies on the internal wire
    /// (header + carried events), excluding Ethernet framing.
    pub fn wire_len(&self) -> usize {
        CEBP_HEADER_LEN + usize::from(self.count()) * EVENT_RECORD_LEN
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> CebpPacket<T> {
    /// Initialize an empty CEBP with the given capacity. The buffer must be
    /// at least `buffer_len_for(capacity)` bytes.
    pub fn init(&mut self, capacity: u16) {
        let b = self.buffer.as_mut();
        b[0..2].copy_from_slice(&0u16.to_be_bytes());
        b[2..4].copy_from_slice(&capacity.to_be_bytes());
    }

    /// Append one event; fails with `Malformed` when already full and
    /// `Truncated` when the buffer cannot hold another record.
    pub fn push_event(&mut self, ev: &EventRecord) -> Result<()> {
        let count = self.count();
        if count >= self.capacity() {
            return Err(ParseError::Malformed { what: "cebp.full" });
        }
        let off = CEBP_HEADER_LEN + usize::from(count) * EVENT_RECORD_LEN;
        let b = self.buffer.as_mut();
        if b.len() < off + EVENT_RECORD_LEN {
            return Err(ParseError::Truncated {
                what: "cebp.push",
                need: off + EVENT_RECORD_LEN,
                have: b.len(),
            });
        }
        let mut rec = [0u8; EVENT_RECORD_LEN];
        ev.write_to(&mut rec);
        b[off..off + EVENT_RECORD_LEN].copy_from_slice(&rec);
        b[0..2].copy_from_slice(&(count + 1).to_be_bytes());
        Ok(())
    }
}

/// Buffer size needed for a CEBP with the given capacity.
pub fn buffer_len_for(capacity: u16) -> usize {
    CEBP_HEADER_LEN + usize::from(capacity) * EVENT_RECORD_LEN
}

/// Allocate and initialize an empty CEBP buffer.
pub fn new_cebp_buffer(capacity: u16) -> Vec<u8> {
    let mut buf = vec![0u8; buffer_len_for(capacity)];
    CebpPacket { buffer: &mut buf[..] }.init(capacity);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventDetail, EventType};
    use crate::flow::FlowKey;
    use crate::ipv4::Ipv4Addr;

    fn ev(n: u16) -> EventRecord {
        EventRecord {
            ty: EventType::Congestion,
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 1]),
                n,
                Ipv4Addr::from_octets([10, 0, 0, 2]),
                80,
            ),
            detail: EventDetail::Congestion { egress_port: 1, queue: 0, latency_us: n },
            counter: 1,
            hash: u32::from(n),
        }
    }

    #[test]
    fn fill_to_capacity_and_readback() {
        let mut buf = new_cebp_buffer(50);
        let mut p = CebpPacket::new_checked(&mut buf[..]).unwrap();
        for i in 0..50 {
            assert!(!p.is_full());
            p.push_event(&ev(i)).unwrap();
        }
        assert!(p.is_full());
        assert!(p.push_event(&ev(99)).is_err());

        let p = CebpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.count(), 50);
        assert_eq!(p.capacity(), 50);
        let evs = p.events().unwrap();
        assert_eq!(evs.len(), 50);
        assert_eq!(evs[17], ev(17));
    }

    #[test]
    fn wire_len_grows_with_events() {
        let mut buf = new_cebp_buffer(10);
        let mut p = CebpPacket::new_checked(&mut buf[..]).unwrap();
        assert_eq!(p.wire_len(), CEBP_HEADER_LEN);
        p.push_event(&ev(0)).unwrap();
        assert_eq!(p.wire_len(), CEBP_HEADER_LEN + 24);
    }

    #[test]
    fn checked_rejects_count_beyond_buffer() {
        let mut buf = new_cebp_buffer(2);
        buf[0] = 0;
        buf[1] = 3; // claim 3 events in a 2-capacity buffer
        assert!(CebpPacket::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn index_out_of_range() {
        let buf = new_cebp_buffer(4);
        let p = CebpPacket::new_checked(&buf[..]).unwrap();
        assert!(p.event(0).is_err());
    }

    #[test]
    fn recommended_batch_fits_jumbo_free_mtu() {
        // 50 events * 24B + 4B header + 14B eth + 4B CRC trailer = 1222 < 1518.
        assert!(
            buffer_len_for(RECOMMENDED_BATCH) + 14 + crate::CRC_TRAILER_LEN <= crate::MAX_FRAME_LEN
        );
    }
}
