//! Internet checksum (RFC 1071) and CRC-32 (Ethernet FCS) helpers.

/// Running one's-complement sum used by the Internet checksum family.
///
/// Fold with [`Checksum::finish`] to obtain the 16-bit complement value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Start a fresh accumulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate a byte slice. Odd trailing bytes are padded with zero,
    /// matching RFC 1071's treatment of the final octet.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Accumulate a big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Accumulate a big-endian 32-bit word as two 16-bit halves.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16((v & 0xffff) as u16);
    }

    /// Fold carries and return the one's complement of the sum.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Compute the Internet checksum of one contiguous buffer.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place sums to zero.
pub fn verify_internet_checksum(data: &[u8]) -> bool {
    // A correct buffer folds to 0xffff before complement, i.e. finish() == 0.
    internet_checksum(data) == 0
}

/// CRC-32 (IEEE 802.3) over a buffer, as used by the Ethernet FCS.
///
/// Implemented bitwise with the reflected polynomial 0xEDB88320; the
/// simulator uses this both for FCS validation of corrupted frames and as
/// one of the PDP hash units.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Reflected CRC-32C (Castagnoli) polynomial, as computed in hardware by
/// iSCSI offloads, NICs, and switch ASICs.
const CRC32C_POLY: u32 = 0x82f6_3b78;

/// Slice-by-8 lookup tables for CRC-32C, built at compile time.
///
/// `T[0]` is the classic byte-at-a-time table; `T[k][i]` extends it with
/// `k` extra zero bytes, so eight table lookups advance the CRC across
/// eight message bytes at once.
static CRC32C_TABLES: [[u32; 256]; 8] = build_crc32c_tables();

const fn build_crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (CRC32C_POLY & mask);
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC-32C (Castagnoli) over a buffer, as used by the NetSeer telemetry
/// framing trailers (CEBP reports, loss notifications, WAL records) and
/// the spill-store segment framing.
///
/// This is the integrity hot path — every telemetry message and every
/// spill record passes through it — so it dispatches to the SSE4.2
/// `crc32` instruction where the CPU has it (runtime-detected, result
/// cached by `std`), and otherwise to a portable slice-by-8 kernel.
/// Both produce bit-identical results to the one-bit-at-a-time
/// [`crc32c_reference`]; the property tests in this module and the CI
/// fuzz harness hold all three together.
pub fn crc32c(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the sse4.2 feature was just verified at runtime.
            return unsafe { crc32c_hw(data) };
        }
    }
    crc32c_sw(data)
}

/// Portable slice-by-8 CRC-32C kernel: eight message bytes per step,
/// eight independent table lookups the CPU can overlap.
fn crc32c_sw(data: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut crc: u32 = 0xffff_ffff;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Hardware CRC-32C kernel: the SSE4.2 `crc32` instruction, 8 message
/// bytes per instruction (SIMD-register width), byte-at-a-time tail.
///
/// # Safety
/// The caller must have verified the CPU supports SSE4.2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc: u64 = 0xffff_ffff;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc = _mm_crc32_u64(crc, word);
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// One-bit-at-a-time CRC-32C with the reflected polynomial 0x82F63B78 —
/// the original implementation, kept as the oracle the slice-by-8 and
/// SSE4.2 kernels are property-tested against.
pub fn crc32c_reference(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (CRC32C_POLY & mask);
        }
    }
    !crc
}

/// CRC-16/CCITT used as the second independent PDP hash unit.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in data {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn checksum_roundtrip_verifies() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0];
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let cks = internet_checksum(&data);
        data[10] = (cks >> 8) as u8;
        data[11] = (cks & 0xff) as u8;
        assert!(verify_internet_checksum(&data));
    }

    #[test]
    fn odd_length_is_zero_padded() {
        let even = internet_checksum(&[0xab, 0x00]);
        let odd = internet_checksum(&[0xab]);
        assert_eq!(even, odd);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" is the canonical CRC check string.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut buf = b"hello netseer packet".to_vec();
        let orig = crc32(&buf);
        buf[3] ^= 0x04;
        assert_ne!(orig, crc32(&buf));
    }

    #[test]
    fn crc32c_known_vector() {
        // CRC-32C (Castagnoli) of the canonical check string.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn crc32c_differs_from_ieee() {
        assert_ne!(crc32c(b"123456789"), crc32(b"123456789"));
    }

    #[test]
    fn crc32c_golden_vectors() {
        // RFC 3720 appendix B.4 test patterns plus the canonical check string,
        // pinned against all three kernels (dispatched, slice-by-8, bitwise).
        let cases: &[(&[u8], u32)] = &[
            (b"", 0x0000_0000),
            (b"123456789", 0xe306_9283),
            (&[0u8; 32], 0x8a91_36aa),
            (&[0xffu8; 32], 0x62a8_ab43),
            (b"a", 0xc1d0_4330),
            (b"The quick brown fox jumps over the lazy dog", 0x2262_0404),
        ];
        for &(input, expect) in cases {
            assert_eq!(crc32c(input), expect, "dispatch on {input:?}");
            assert_eq!(crc32c_sw(input), expect, "slice-by-8 on {input:?}");
            assert_eq!(crc32c_reference(input), expect, "bitwise on {input:?}");
        }
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
    }

    #[test]
    fn crc32c_kernels_agree_on_random_and_truncated_inputs() {
        // Tiny xorshift generator so the property test needs no dependencies.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..64 {
            // Lengths sweep 0..=256 so every chunks_exact(8) tail length
            // (0..=7) and the empty buffer are exercised repeatedly.
            let len = (round * 5) % 257;
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let expect = crc32c_reference(&buf);
            assert_eq!(crc32c(&buf), expect, "dispatch, len {len}");
            assert_eq!(crc32c_sw(&buf), expect, "slice-by-8, len {len}");
            // Every truncation of the buffer must also agree: catches kernels
            // that only match on aligned lengths.
            for cut in 0..buf.len().min(24) {
                let t = &buf[..cut];
                assert_eq!(crc32c(t), crc32c_reference(t), "truncated to {cut}");
            }
        }
    }

    #[test]
    fn crc32c_detects_bit_flips_and_truncation() {
        let mut buf = b"cebp trailer coverage".to_vec();
        let orig = crc32c(&buf);
        buf[7] ^= 0x80;
        assert_ne!(orig, crc32c(&buf));
        buf[7] ^= 0x80;
        buf.pop();
        assert_ne!(orig, crc32c(&buf));
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789".
        assert_eq!(crc16(b"123456789"), 0x29b1);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..100]);
        c.add_bytes(&data[100..]);
        assert_eq!(c.finish(), internet_checksum(&data));
    }

    #[test]
    fn add_u32_matches_bytes() {
        let mut a = Checksum::new();
        a.add_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.add_bytes(&0xdead_beefu32.to_be_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
