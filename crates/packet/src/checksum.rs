//! Internet checksum (RFC 1071) and CRC-32 (Ethernet FCS) helpers.

/// Running one's-complement sum used by the Internet checksum family.
///
/// Fold with [`Checksum::finish`] to obtain the 16-bit complement value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Start a fresh accumulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate a byte slice. Odd trailing bytes are padded with zero,
    /// matching RFC 1071's treatment of the final octet.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Accumulate a big-endian 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Accumulate a big-endian 32-bit word as two 16-bit halves.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16((v & 0xffff) as u16);
    }

    /// Fold carries and return the one's complement of the sum.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Compute the Internet checksum of one contiguous buffer.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place sums to zero.
pub fn verify_internet_checksum(data: &[u8]) -> bool {
    // A correct buffer folds to 0xffff before complement, i.e. finish() == 0.
    internet_checksum(data) == 0
}

/// CRC-32 (IEEE 802.3) over a buffer, as used by the Ethernet FCS.
///
/// Implemented bitwise with the reflected polynomial 0xEDB88320; the
/// simulator uses this both for FCS validation of corrupted frames and as
/// one of the PDP hash units.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// CRC-32C (Castagnoli) over a buffer, as used by the NetSeer telemetry
/// framing trailers (CEBP reports, loss notifications, WAL records).
///
/// Implemented bitwise with the reflected polynomial 0x82F63B78 — the same
/// polynomial iSCSI and modern NICs/switch ASICs compute in hardware, which
/// is why the telemetry plane standardises on it rather than the FCS CRC-32.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0x82f6_3b78 & mask);
        }
    }
    !crc
}

/// CRC-16/CCITT used as the second independent PDP hash unit.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in data {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn checksum_roundtrip_verifies() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0];
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let cks = internet_checksum(&data);
        data[10] = (cks >> 8) as u8;
        data[11] = (cks & 0xff) as u8;
        assert!(verify_internet_checksum(&data));
    }

    #[test]
    fn odd_length_is_zero_padded() {
        let even = internet_checksum(&[0xab, 0x00]);
        let odd = internet_checksum(&[0xab]);
        assert_eq!(even, odd);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" is the canonical CRC check string.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut buf = b"hello netseer packet".to_vec();
        let orig = crc32(&buf);
        buf[3] ^= 0x04;
        assert_ne!(orig, crc32(&buf));
    }

    #[test]
    fn crc32c_known_vector() {
        // CRC-32C (Castagnoli) of the canonical check string.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn crc32c_differs_from_ieee() {
        assert_ne!(crc32c(b"123456789"), crc32(b"123456789"));
    }

    #[test]
    fn crc32c_detects_bit_flips_and_truncation() {
        let mut buf = b"cebp trailer coverage".to_vec();
        let orig = crc32c(&buf);
        buf[7] ^= 0x80;
        assert_ne!(orig, crc32c(&buf));
        buf[7] ^= 0x80;
        buf.pop();
        assert_ne!(orig, crc32c(&buf));
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789".
        assert_eq!(crc16(b"123456789"), 0x29b1);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..100]);
        c.add_bytes(&data[100..]);
        assert_eq!(c.finish(), internet_checksum(&data));
    }

    #[test]
    fn add_u32_matches_bytes() {
        let mut a = Checksum::new();
        a.add_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.add_bytes(&0xdead_beefu32.to_be_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
