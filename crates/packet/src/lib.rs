//! Typed, zero-copy packet views and NetSeer wire formats.
//!
//! This crate follows the smoltcp idiom: every protocol is a thin typed view
//! (`XxxFrame<T: AsRef<[u8]>>`) over a byte buffer, with checked constructors
//! and field accessors that never panic on well-formed views. Mutation is
//! available when the underlying buffer is `AsMut<[u8]>`.
//!
//! Beyond the classic headers (Ethernet / IPv4 / TCP / UDP / PFC), the crate
//! defines the NetSeer-specific wire formats from the paper:
//!
//! * [`seqtag::SeqTag`] — the 4-byte consecutive packet ID inserted by the
//!   upstream switch for inter-switch drop detection (paper §3.3, Figure 5);
//! * [`event::EventRecord`] — the fixed 24-byte flow-event report
//!   (paper §4, "Event formats");
//! * [`notification::LossNotification`] — the downstream→upstream missing
//!   sequence range report (sent in 3 redundant copies);
//! * [`cebp::CebpPacket`] — the Circulating Event Batching Packet that
//!   collects events from the in-pipeline stack (paper §3.5).

#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod cebp;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod event;
pub mod flow;
pub mod ipv4;
pub mod notification;
pub mod pfc;
pub mod seqtag;
pub mod tcp;
pub mod udp;

pub use arena::FrameArena;
pub use error::{ParseError, Result};
pub use ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
pub use event::{DropCode, EventDetail, EventRecord, EventType, EVENT_RECORD_LEN};
pub use flow::{FlowKey, IpProtocol};
pub use ipv4::{Ipv4Addr, Ipv4Packet, IPV4_HEADER_LEN};
pub use seqtag::{SeqTag, SEQTAG_LEN};

/// Minimum Ethernet frame length (without FCS), as on a real wire.
pub const MIN_FRAME_LEN: usize = 64;

/// Maximum standard (non-jumbo) Ethernet frame length.
pub const MAX_FRAME_LEN: usize = 1518;

/// Length of the CRC-32C integrity trailer appended to NetSeer telemetry
/// framing (CEBP reports and loss notifications). The FCS protects the hop;
/// this trailer protects the telemetry payload end-to-end, surviving
/// store-and-forward rewrites that recompute the FCS over corrupted bytes.
pub const CRC_TRAILER_LEN: usize = 4;
