//! Loss notification packets (paper §3.3, Figure 5 step 4).
//!
//! When the downstream switch observes a sequence gap it constructs a packet
//! carrying the starting and ending missing sequence numbers and sends
//! **three copies** of it back to the upstream switch through an independent
//! high-priority queue, so the notification survives the very loss it
//! reports.
//!
//! Wire layout (after an Ethernet header with EtherType `NetSeerNotify`):
//!
//! ```text
//! 0         4         8        9        10
//! +---------+---------+--------+--------+
//! | seq_lo  | seq_hi  | copy   | port   |
//! +---------+---------+--------+--------+
//! ```
//!
//! `seq_lo..=seq_hi` is the inclusive missing range; `copy` numbers the
//! redundant copies 0..3 so receivers can dedup; `port` is the downstream
//! ingress port the gap was seen on (diagnostic only).

use crate::error::{ParseError, Result};

/// Payload length of a loss notification.
pub const NOTIFICATION_LEN: usize = 10;

/// Number of redundant copies sent per notification (paper: three).
pub const NOTIFICATION_COPIES: u8 = 3;

/// Typed view of a loss notification payload.
#[derive(Debug, Clone)]
pub struct LossNotification<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> LossNotification<T> {
    /// Wrap a buffer, checking length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < NOTIFICATION_LEN {
            return Err(ParseError::Truncated {
                what: "loss-notification",
                need: NOTIFICATION_LEN,
                have: len,
            });
        }
        Ok(LossNotification { buffer })
    }

    /// First missing sequence number (inclusive).
    pub fn seq_lo(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Last missing sequence number (inclusive).
    pub fn seq_hi(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Redundant copy index (0-based).
    pub fn copy_index(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Downstream ingress port that observed the gap.
    pub fn observer_port(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Number of packets the range covers (wraparound-safe).
    pub fn missing_count(&self) -> u32 {
        self.seq_hi().wrapping_sub(self.seq_lo()).wrapping_add(1)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> LossNotification<T> {
    /// Set the missing range.
    pub fn set_range(&mut self, lo: u32, hi: u32) {
        let b = self.buffer.as_mut();
        b[0..4].copy_from_slice(&lo.to_be_bytes());
        b[4..8].copy_from_slice(&hi.to_be_bytes());
    }

    /// Set the copy index.
    pub fn set_copy_index(&mut self, idx: u8) {
        self.buffer.as_mut()[8] = idx;
    }

    /// Set the observing port.
    pub fn set_observer_port(&mut self, port: u8) {
        self.buffer.as_mut()[9] = port;
    }
}

/// Build a standalone notification payload.
pub fn build_notification(lo: u32, hi: u32, copy: u8, port: u8) -> [u8; NOTIFICATION_LEN] {
    let mut buf = [0u8; NOTIFICATION_LEN];
    let mut n = LossNotification::new_checked(&mut buf[..]).expect("sized buffer");
    n.set_range(lo, hi);
    n.set_copy_index(copy);
    n.set_observer_port(port);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let buf = build_notification(100, 104, 2, 7);
        let n = LossNotification::new_checked(&buf[..]).unwrap();
        assert_eq!(n.seq_lo(), 100);
        assert_eq!(n.seq_hi(), 104);
        assert_eq!(n.copy_index(), 2);
        assert_eq!(n.observer_port(), 7);
        assert_eq!(n.missing_count(), 5);
    }

    #[test]
    fn single_packet_range() {
        let buf = build_notification(42, 42, 0, 0);
        let n = LossNotification::new_checked(&buf[..]).unwrap();
        assert_eq!(n.missing_count(), 1);
    }

    #[test]
    fn wraparound_range() {
        let buf = build_notification(u32::MAX - 1, 1, 0, 0);
        let n = LossNotification::new_checked(&buf[..]).unwrap();
        // MAX-1, MAX, 0, 1 => 4 packets
        assert_eq!(n.missing_count(), 4);
    }

    #[test]
    fn rejects_short() {
        assert!(LossNotification::new_checked(&[0u8; 9][..]).is_err());
    }
}
