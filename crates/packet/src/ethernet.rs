//! Ethernet II frame view.

use crate::error::{ParseError, Result};
use core::fmt;

/// Length of the Ethernet II header (dst + src + ethertype), no FCS.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Locally-administered address derived from a device/port pair, used by
    /// the simulator to give every port a distinct, deterministic MAC.
    pub fn for_port(device: u32, port: u16) -> Self {
        let d = device.to_be_bytes();
        let p = port.to_be_bytes();
        // 0x02 sets the locally-administered bit.
        MacAddr([0x02, d[1], d[2], d[3], p[0], p[1]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

/// EtherType values understood by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IEEE 802.3x / 802.1Qbb MAC control, carries PFC frames (0x8808).
    MacControl,
    /// NetSeer inter-switch sequence tag (experimental 0x88B5).
    NetSeerSeq,
    /// NetSeer loss notification (experimental 0x88B6).
    NetSeerNotify,
    /// NetSeer circulating event batching packet (experimental 0x88B7).
    NetSeerCebp,
    /// Unknown, preserved verbatim.
    Unknown(u16),
}

impl EtherType {
    /// Wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::MacControl => 0x8808,
            EtherType::NetSeerSeq => 0x88b5,
            EtherType::NetSeerNotify => 0x88b6,
            EtherType::NetSeerCebp => 0x88b7,
            EtherType::Unknown(v) => v,
        }
    }

    /// Decode from the wire value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x8808 => EtherType::MacControl,
            0x88b5 => EtherType::NetSeerSeq,
            0x88b6 => EtherType::NetSeerNotify,
            0x88b7 => EtherType::NetSeerCebp,
            other => EtherType::Unknown(other),
        }
    }
}

/// Typed view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer, checking it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "ethernet",
                need: ETHERNET_HEADER_LEN,
                have: len,
            });
        }
        Ok(EthernetFrame { buffer })
    }

    /// Wrap without checking; callers must guarantee the length.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from_value(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The bytes after the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Total frame length.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Set the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&ty.value().to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_short_buffer() {
        let err = EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { what: "ethernet", .. }));
    }

    #[test]
    fn field_roundtrip() {
        let mut buf = [0u8; 64];
        let mut f = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        f.set_dst(MacAddr([1, 2, 3, 4, 5, 6]));
        f.set_src(MacAddr::for_port(7, 3));
        f.set_ethertype(EtherType::Ipv4);
        assert_eq!(f.dst(), MacAddr([1, 2, 3, 4, 5, 6]));
        assert_eq!(f.src(), MacAddr::for_port(7, 3));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn payload_starts_after_header() {
        let mut buf = [0u8; 20];
        buf[14] = 0xaa;
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.payload()[0], 0xaa);
        assert_eq!(f.payload().len(), 6);
    }

    #[test]
    fn ethertype_values_roundtrip() {
        for ty in [
            EtherType::Ipv4,
            EtherType::MacControl,
            EtherType::NetSeerSeq,
            EtherType::NetSeerNotify,
            EtherType::NetSeerCebp,
            EtherType::Unknown(0xbeef),
        ] {
            assert_eq!(EtherType::from_value(ty.value()), ty);
        }
    }

    #[test]
    fn port_macs_are_distinct() {
        assert_ne!(MacAddr::for_port(1, 1), MacAddr::for_port(1, 2));
        assert_ne!(MacAddr::for_port(1, 1), MacAddr::for_port(2, 1));
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr([0xde, 0xad, 0, 0, 0xbe, 0xef]).to_string(), "de:ad:00:00:be:ef");
    }
}
