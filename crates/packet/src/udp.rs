//! UDP header view.

use crate::error::{ParseError, Result};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Typed view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer, checking the header fits and the length field agrees.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < UDP_HEADER_LEN {
            return Err(ParseError::Truncated { what: "udp", need: UDP_HEADER_LEN, have: len });
        }
        let d = UdpDatagram { buffer };
        let field = usize::from(d.length());
        if field < UDP_HEADER_LEN || field > len {
            return Err(ParseError::Malformed { what: "udp.length" });
        }
        Ok(d)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let end = usize::from(self.length()).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[UDP_HEADER_LEN..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set source port.
    pub fn set_sport(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dport(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_length(&mut self, l: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&l.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 16];
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_sport(9999);
        d.set_dport(53);
        d.set_length(16);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.sport(), 9999);
        assert_eq!(d.dport(), 53);
        assert_eq!(d.payload().len(), 8);
    }

    #[test]
    fn rejects_bogus_length_field() {
        let mut buf = [0u8; 16];
        {
            let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
            d.set_length(3);
        }
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
        {
            let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
            d.set_length(200);
        }
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_short() {
        assert!(UdpDatagram::new_checked(&[0u8; 7][..]).is_err());
    }
}
