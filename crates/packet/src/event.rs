//! The fixed 24-byte flow-event wire format (paper §4, "Event formats").
//!
//! Layout:
//!
//! ```text
//! 0        1              14           18          20         24
//! +--------+--------------+------------+-----------+----------+
//! | type   | flow (13B)   | detail(4B) | counter   | hash     |
//! +--------+--------------+------------+-----------+----------+
//! ```
//!
//! The paper allocates 13 B to the 5-tuple, 2–5 B of per-type detail, a
//! 2-byte counter, and a 4-byte data-plane pre-computed hash, totalling
//! "<24 bytes" per event. We pack the detail into 4 bytes so records are
//! exactly 24 bytes and arrays of them tile a CEBP payload cleanly.

use crate::error::{ParseError, Result};
use crate::flow::{FlowKey, FLOW_KEY_LEN};
use core::fmt;

/// Serialized event size.
pub const EVENT_RECORD_LEN: usize = 24;

/// The flow-event classes NetSeer detects (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventType {
    /// Drop inside the ingress/egress pipeline (table miss, ACL, TTL, MTU…).
    PipelineDrop,
    /// Drop inside the MMU due to buffer exhaustion (congestion drop).
    MmuDrop,
    /// Drop or corruption on the link between two switches.
    InterSwitchDrop,
    /// Queuing delay over threshold.
    Congestion,
    /// Flow seen on a new (ingress, egress) port pair.
    PathChange,
    /// Packet arrived to a PFC-paused queue.
    Pause,
}

/// All event types, in wire-code order.
pub const ALL_EVENT_TYPES: [EventType; 6] = [
    EventType::PipelineDrop,
    EventType::MmuDrop,
    EventType::InterSwitchDrop,
    EventType::Congestion,
    EventType::PathChange,
    EventType::Pause,
];

impl EventType {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            EventType::PipelineDrop => 1,
            EventType::MmuDrop => 2,
            EventType::InterSwitchDrop => 3,
            EventType::Congestion => 4,
            EventType::PathChange => 5,
            EventType::Pause => 6,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Result<Self> {
        Ok(match c {
            1 => EventType::PipelineDrop,
            2 => EventType::MmuDrop,
            3 => EventType::InterSwitchDrop,
            4 => EventType::Congestion,
            5 => EventType::PathChange,
            6 => EventType::Pause,
            _ => return Err(ParseError::Malformed { what: "event.type" }),
        })
    }

    /// True for the three drop classes.
    pub fn is_drop(self) -> bool {
        matches!(self, EventType::PipelineDrop | EventType::MmuDrop | EventType::InterSwitchDrop)
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventType::PipelineDrop => "pipeline-drop",
            EventType::MmuDrop => "mmu-drop",
            EventType::InterSwitchDrop => "inter-switch-drop",
            EventType::Congestion => "congestion",
            EventType::PathChange => "path-change",
            EventType::Pause => "pause",
        };
        f.write_str(s)
    }
}

/// Reason codes for pipeline drops (paper Figure 4's "drop reason" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCode {
    /// Routing table lookup miss (blackhole / parity error).
    TableMiss,
    /// Target port or link is down.
    PortDown,
    /// Dropped by an ACL rule (detail carries the rule id).
    AclDeny,
    /// TTL reached zero (forwarding loop).
    TtlExpired,
    /// Packet larger than egress MTU.
    MtuExceeded,
    /// Malformed packet (bad IP checksum / parse error).
    ParseError,
    /// Dropped by the MMU (buffer full).
    BufferFull,
    /// Lost or corrupted on the wire.
    LinkLoss,
    /// Device processing capacity exceeded (middlebox overload, §3.7).
    Overload,
}

impl DropCode {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            DropCode::TableMiss => 1,
            DropCode::PortDown => 2,
            DropCode::AclDeny => 3,
            DropCode::TtlExpired => 4,
            DropCode::MtuExceeded => 5,
            DropCode::ParseError => 6,
            DropCode::BufferFull => 7,
            DropCode::LinkLoss => 8,
            DropCode::Overload => 9,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Result<Self> {
        Ok(match c {
            1 => DropCode::TableMiss,
            2 => DropCode::PortDown,
            3 => DropCode::AclDeny,
            4 => DropCode::TtlExpired,
            5 => DropCode::MtuExceeded,
            6 => DropCode::ParseError,
            7 => DropCode::BufferFull,
            8 => DropCode::LinkLoss,
            9 => DropCode::Overload,
            _ => return Err(ParseError::Malformed { what: "event.drop_code" }),
        })
    }
}

impl fmt::Display for DropCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropCode::TableMiss => "table-miss",
            DropCode::PortDown => "port-down",
            DropCode::AclDeny => "acl-deny",
            DropCode::TtlExpired => "ttl-expired",
            DropCode::MtuExceeded => "mtu-exceeded",
            DropCode::ParseError => "parse-error",
            DropCode::BufferFull => "buffer-full",
            DropCode::LinkLoss => "link-loss",
            DropCode::Overload => "overload",
        };
        f.write_str(s)
    }
}

/// Per-type event detail, 4 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventDetail {
    /// `<ingress port, egress port, drop code>` for drops.
    Drop {
        /// Port the packet entered on.
        ingress_port: u8,
        /// Intended egress port (0xff if unresolved).
        egress_port: u8,
        /// Why it was dropped.
        code: DropCode,
    },
    /// `<egress port, egress queue, queue latency>` for congestion.
    Congestion {
        /// Congested egress port.
        egress_port: u8,
        /// Congested queue.
        queue: u8,
        /// Observed queuing delay, microseconds, saturating.
        latency_us: u16,
    },
    /// `<ingress port, egress port>` for path change.
    PathChange {
        /// New ingress port.
        ingress_port: u8,
        /// New egress port.
        egress_port: u8,
    },
    /// `<egress port, egress queue>` for pause.
    Pause {
        /// Paused egress port.
        egress_port: u8,
        /// Paused queue.
        queue: u8,
    },
}

impl EventDetail {
    fn write_to(&self, buf: &mut [u8; 4]) {
        *buf = [0; 4];
        match *self {
            EventDetail::Drop { ingress_port, egress_port, code } => {
                buf[0] = ingress_port;
                buf[1] = egress_port;
                buf[2] = code.code();
            }
            EventDetail::Congestion { egress_port, queue, latency_us } => {
                buf[0] = egress_port;
                buf[1] = queue;
                buf[2..4].copy_from_slice(&latency_us.to_be_bytes());
            }
            EventDetail::PathChange { ingress_port, egress_port } => {
                buf[0] = ingress_port;
                buf[1] = egress_port;
            }
            EventDetail::Pause { egress_port, queue } => {
                buf[0] = egress_port;
                buf[1] = queue;
            }
        }
    }

    fn read_from(ty: EventType, buf: &[u8; 4]) -> Result<Self> {
        Ok(match ty {
            EventType::PipelineDrop | EventType::MmuDrop | EventType::InterSwitchDrop => {
                EventDetail::Drop {
                    ingress_port: buf[0],
                    egress_port: buf[1],
                    code: DropCode::from_code(buf[2])?,
                }
            }
            EventType::Congestion => EventDetail::Congestion {
                egress_port: buf[0],
                queue: buf[1],
                latency_us: u16::from_be_bytes([buf[2], buf[3]]),
            },
            EventType::PathChange => {
                EventDetail::PathChange { ingress_port: buf[0], egress_port: buf[1] }
            }
            EventType::Pause => EventDetail::Pause { egress_port: buf[0], queue: buf[1] },
        })
    }
}

/// A complete flow-event record: what gets packed 50-at-a-time into CEBPs
/// and ultimately stored in the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRecord {
    /// Event class.
    pub ty: EventType,
    /// Victim flow.
    pub flow: FlowKey,
    /// Per-type detail.
    pub detail: EventDetail,
    /// Aggregated packet counter (group caching threshold reports).
    pub counter: u16,
    /// Data-plane pre-computed hash of the flow key (CPU uses it directly).
    pub hash: u32,
}

impl EventRecord {
    /// Serialize to the 24-byte wire layout.
    pub fn write_to(&self, buf: &mut [u8; EVENT_RECORD_LEN]) {
        buf[0] = self.ty.code();
        let mut fk = [0u8; FLOW_KEY_LEN];
        self.flow.write_to(&mut fk);
        buf[1..14].copy_from_slice(&fk);
        let mut d = [0u8; 4];
        self.detail.write_to(&mut d);
        buf[14..18].copy_from_slice(&d);
        buf[18..20].copy_from_slice(&self.counter.to_be_bytes());
        buf[20..24].copy_from_slice(&self.hash.to_be_bytes());
    }

    /// Serialize to an owned array.
    pub fn to_bytes(&self) -> [u8; EVENT_RECORD_LEN] {
        let mut buf = [0u8; EVENT_RECORD_LEN];
        self.write_to(&mut buf);
        buf
    }

    /// Deserialize from the 24-byte wire layout.
    pub fn read_from(buf: &[u8; EVENT_RECORD_LEN]) -> Result<Self> {
        let ty = EventType::from_code(buf[0])?;
        let mut fk = [0u8; FLOW_KEY_LEN];
        fk.copy_from_slice(&buf[1..14]);
        let flow = FlowKey::read_from(&fk);
        let mut d = [0u8; 4];
        d.copy_from_slice(&buf[14..18]);
        let detail = EventDetail::read_from(ty, &d)?;
        let counter = u16::from_be_bytes([buf[18], buf[19]]);
        let hash = u32::from_be_bytes([buf[20], buf[21], buf[22], buf[23]]);
        Ok(EventRecord { ty, flow, detail, counter, hash })
    }

    /// Parse from an arbitrary slice, checking length.
    pub fn parse(slice: &[u8]) -> Result<Self> {
        if slice.len() < EVENT_RECORD_LEN {
            return Err(ParseError::Truncated {
                what: "event",
                need: EVENT_RECORD_LEN,
                have: slice.len(),
            });
        }
        let mut buf = [0u8; EVENT_RECORD_LEN];
        buf.copy_from_slice(&slice[..EVENT_RECORD_LEN]);
        Self::read_from(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr;

    fn flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 1, 2, 3]),
            1234,
            Ipv4Addr::from_octets([10, 4, 5, 6]),
            443,
        )
    }

    fn samples() -> Vec<EventRecord> {
        vec![
            EventRecord {
                ty: EventType::PipelineDrop,
                flow: flow(),
                detail: EventDetail::Drop {
                    ingress_port: 3,
                    egress_port: 7,
                    code: DropCode::TableMiss,
                },
                counter: 1,
                hash: 0xabcd_ef01,
            },
            EventRecord {
                ty: EventType::Congestion,
                flow: flow(),
                detail: EventDetail::Congestion { egress_port: 2, queue: 1, latency_us: 500 },
                counter: 128,
                hash: 7,
            },
            EventRecord {
                ty: EventType::PathChange,
                flow: flow(),
                detail: EventDetail::PathChange { ingress_port: 1, egress_port: 9 },
                counter: 1,
                hash: 0,
            },
            EventRecord {
                ty: EventType::Pause,
                flow: flow(),
                detail: EventDetail::Pause { egress_port: 4, queue: 3 },
                counter: 17,
                hash: u32::MAX,
            },
            EventRecord {
                ty: EventType::InterSwitchDrop,
                flow: flow(),
                detail: EventDetail::Drop {
                    ingress_port: 0,
                    egress_port: 5,
                    code: DropCode::LinkLoss,
                },
                counter: 3,
                hash: 99,
            },
        ]
    }

    #[test]
    fn all_types_roundtrip() {
        for ev in samples() {
            let bytes = ev.to_bytes();
            assert_eq!(EventRecord::read_from(&bytes).unwrap(), ev);
        }
    }

    #[test]
    fn record_is_exactly_24_bytes() {
        assert_eq!(EVENT_RECORD_LEN, 24);
        let ev = &samples()[0];
        assert_eq!(ev.to_bytes().len(), 24);
    }

    #[test]
    fn parse_rejects_short_slice() {
        assert!(matches!(EventRecord::parse(&[0u8; 23]), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn rejects_unknown_type_code() {
        let mut bytes = samples()[0].to_bytes();
        bytes[0] = 0;
        assert!(EventRecord::read_from(&bytes).is_err());
        bytes[0] = 200;
        assert!(EventRecord::read_from(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_drop_code() {
        let mut bytes = samples()[0].to_bytes();
        bytes[16] = 99;
        assert!(EventRecord::read_from(&bytes).is_err());
    }

    #[test]
    fn event_type_codes_roundtrip() {
        for ty in ALL_EVENT_TYPES {
            assert_eq!(EventType::from_code(ty.code()).unwrap(), ty);
        }
    }

    #[test]
    fn drop_classification() {
        assert!(EventType::PipelineDrop.is_drop());
        assert!(EventType::MmuDrop.is_drop());
        assert!(EventType::InterSwitchDrop.is_drop());
        assert!(!EventType::Congestion.is_drop());
        assert!(!EventType::PathChange.is_drop());
        assert!(!EventType::Pause.is_drop());
    }
}
