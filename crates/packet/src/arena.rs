//! Pooled frame buffers for the per-packet hot path.
//!
//! Every packet in the simulator is an owned `Vec<u8>`; building one
//! per packet from scratch is a heap allocation per packet. A
//! [`FrameArena`] recycles retired frame buffers so a steady-state
//! traffic source allocates nothing: `get` hands back a zeroed buffer of
//! the requested length (reusing a retired buffer's capacity when one is
//! available) and `put` retires a buffer into the pool.
//!
//! The arena is deliberately *not* thread-safe or reference-counted —
//! each device owns its own pool, matching the simulator's
//! one-device-per-shard execution model, and buffers are plain `Vec<u8>`
//! so they flow through the existing packet APIs unchanged.

/// A recycling pool of frame buffers.
#[derive(Debug, Default)]
pub struct FrameArena {
    pool: Vec<Vec<u8>>,
    /// Buffers handed out (gets that found a pooled buffer + fresh ones).
    gets: u64,
    /// Gets that had to heap-allocate because the pool was empty.
    misses: u64,
}

/// Retired buffers kept per arena; beyond this, `put` lets buffers drop.
const MAX_POOLED: usize = 64;

impl FrameArena {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `len` bytes, reusing pooled capacity
    /// when available.
    pub fn get(&mut self, len: usize) -> Vec<u8> {
        self.gets += 1;
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                // Zero the whole buffer: resize only zeroes the grown tail,
                // but the recycled prefix still holds the previous packet.
                buf.fill(0);
                buf
            }
            None => {
                self.misses += 1;
                vec![0u8; len]
            }
        }
    }

    /// Retire a buffer into the pool for a later [`get`](Self::get).
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.pool.len() < MAX_POOLED && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// `(gets, misses)` — misses are gets that had to heap-allocate. A
    /// steady-state source shows a growing `gets` with constant `misses`.
    pub fn stats(&self) -> (u64, u64) {
        (self.gets, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_and_zeroes() {
        let mut a = FrameArena::new();
        let mut b = a.get(64);
        b.iter().for_each(|&x| assert_eq!(x, 0));
        b[10] = 0xAB;
        let cap = b.capacity();
        a.put(b);
        assert_eq!(a.pooled(), 1);
        let c = a.get(32);
        assert_eq!(c.len(), 32);
        assert_eq!(c.capacity(), cap, "capacity reused");
        assert!(c.iter().all(|&x| x == 0), "stale bytes cleared");
        assert_eq!(a.stats(), (2, 1), "second get hit the pool");
    }

    #[test]
    fn pool_is_bounded() {
        let mut a = FrameArena::new();
        for _ in 0..(MAX_POOLED + 10) {
            a.put(vec![0u8; 16]);
        }
        assert_eq!(a.pooled(), MAX_POOLED);
    }

    #[test]
    fn grow_beyond_recycled_capacity() {
        let mut a = FrameArena::new();
        a.put(Vec::with_capacity(8));
        let b = a.get(1500);
        assert_eq!(b.len(), 1500);
        assert!(b.iter().all(|&x| x == 0));
    }
}
