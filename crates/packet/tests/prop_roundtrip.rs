// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests: every wire format must round-trip bit-exactly, and the
//! sequence-number arithmetic must be total and wrap-safe.

use fet_packet::builder::{
    build_data_packet, classify, extract_flow, insert_seqtag, peek_seqtag, strip_seqtag, FrameKind,
};
use fet_packet::checksum::{crc32, internet_checksum, verify_internet_checksum, Checksum};
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::flow::FLOW_KEY_LEN;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::seqtag::{gap_between, seq_before};
use fet_packet::{FlowKey, IpProtocol};
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), prop_oneof![Just(6u8), Just(17u8)])
        .prop_map(|(s, d, sp, dp, proto)| FlowKey {
            src: Ipv4Addr::from_u32(s),
            dst: Ipv4Addr::from_u32(d),
            sport: sp,
            dport: dp,
            proto: IpProtocol::from_number(proto),
        })
}

fn arb_detail(ty: EventType) -> impl Strategy<Value = EventDetail> {
    (any::<u8>(), any::<u8>(), any::<u16>(), 1u8..=8).prop_map(move |(a, b, c, code)| match ty {
        EventType::PipelineDrop | EventType::MmuDrop | EventType::InterSwitchDrop => {
            EventDetail::Drop {
                ingress_port: a,
                egress_port: b,
                code: DropCode::from_code(code).unwrap(),
            }
        }
        EventType::Congestion => {
            EventDetail::Congestion { egress_port: a, queue: b, latency_us: c }
        }
        EventType::PathChange => EventDetail::PathChange { ingress_port: a, egress_port: b },
        EventType::Pause => EventDetail::Pause { egress_port: a, queue: b },
    })
}

fn arb_event() -> impl Strategy<Value = EventRecord> {
    prop_oneof![
        Just(EventType::PipelineDrop),
        Just(EventType::MmuDrop),
        Just(EventType::InterSwitchDrop),
        Just(EventType::Congestion),
        Just(EventType::PathChange),
        Just(EventType::Pause),
    ]
    .prop_flat_map(|ty| {
        (Just(ty), arb_flow(), arb_detail(ty), any::<u16>(), any::<u32>()).prop_map(
            |(ty, flow, detail, counter, hash)| EventRecord { ty, flow, detail, counter, hash },
        )
    })
}

proptest! {
    #[test]
    fn flow_key_roundtrips(flow in arb_flow()) {
        let mut buf = [0u8; FLOW_KEY_LEN];
        flow.write_to(&mut buf);
        prop_assert_eq!(FlowKey::read_from(&buf), flow);
    }

    #[test]
    fn flow_reversal_is_involution(flow in arb_flow()) {
        prop_assert_eq!(flow.reversed().reversed(), flow);
    }

    #[test]
    fn event_record_roundtrips(ev in arb_event()) {
        let bytes = ev.to_bytes();
        prop_assert_eq!(EventRecord::read_from(&bytes).unwrap(), ev);
        // And via the checked slice parser too.
        prop_assert_eq!(EventRecord::parse(&bytes).unwrap(), ev);
    }

    #[test]
    fn data_packets_always_classify_and_extract(
        flow in arb_flow(),
        payload in 0usize..1400,
        dscp in 0u8..64,
        ttl in 1u8..=255,
    ) {
        let pkt = build_data_packet(&flow, payload, 0, dscp, ttl);
        prop_assert!(pkt.len() >= 64);
        prop_assert_eq!(classify(&pkt), FrameKind::Ipv4);
        prop_assert_eq!(extract_flow(&pkt), Some(flow));
    }

    #[test]
    fn seqtag_roundtrip_any_seq(flow in arb_flow(), seq in any::<u32>(), payload in 0usize..1000) {
        let pkt = build_data_packet(&flow, payload, 0, 0, 64);
        let tagged = insert_seqtag(&pkt, seq).unwrap();
        prop_assert_eq!(peek_seqtag(&tagged).unwrap(), seq);
        prop_assert_eq!(extract_flow(&tagged), Some(flow));
        let (got, restored) = strip_seqtag(&tagged).unwrap();
        prop_assert_eq!(got, seq);
        prop_assert_eq!(restored, pkt);
    }

    #[test]
    fn internet_checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Append the checksum; the whole buffer then verifies.
        let cks = internet_checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&cks.to_be_bytes());
        // Only even-length buffers keep the field aligned.
        if data.len() % 2 == 0 {
            prop_assert!(verify_internet_checksum(&with));
        }
    }

    #[test]
    fn checksum_incremental_equals_oneshot(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Split accumulation only matches when the first part is
        // even-length (RFC 1071 words are 16-bit).
        prop_assume!(a.len() % 2 == 0);
        let mut inc = Checksum::new();
        inc.add_bytes(&a);
        inc.add_bytes(&b);
        let mut whole = a.clone();
        whole.extend_from_slice(&b);
        prop_assert_eq!(inc.finish(), internet_checksum(&whole));
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        bit in any::<u16>(),
    ) {
        let orig = crc32(&data);
        let mut flipped = data.clone();
        let pos = usize::from(bit) % (data.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        prop_assert_ne!(orig, crc32(&flipped));
    }

    #[test]
    fn seq_ordering_antisymmetric(a in any::<u32>(), b in any::<u32>()) {
        if a != b {
            prop_assert_ne!(seq_before(a, b), seq_before(b, a));
        } else {
            prop_assert!(!seq_before(a, b));
        }
    }

    #[test]
    fn gap_counts_match_distance(start in any::<u32>(), gap in 0u32..10_000) {
        // If we see `start` then `start + gap + 1`, exactly `gap` are missing.
        let next = start.wrapping_add(gap).wrapping_add(1);
        prop_assert_eq!(gap_between(start, next), gap);
    }
}
