//! Wire ingestion: the bridge from untrusted NetFlow/IPFIX datagrams
//! (`fet-wire`) into the collector's normal admission path.
//!
//! Decoded flow records become [`StoredEvent`]s and go through
//! [`Collector::ingest`] like any simulator delivery — so wire input
//! inherits the memory → spill → shed admission ladder, backpressure, and
//! exactly-once replay for free. Nothing bypasses the collector.
//!
//! Accounting is the point. Per datagram:
//!
//! * every record the exporter *claimed* (decoded + undecodable) enters
//!   the wire ledger's `generated`;
//! * decoded records admitted to memory or spill count as `delivered`
//!   (spill occupancy is re-bucketed to `buffered` by
//!   [`WireIngest::ledger`], exactly like the fleet ledger);
//! * records refused because the spill budget ran out land in
//!   `shed_cpu_overload` — the collector's overload refusal;
//! * undecodable records land in the new `malformed` term;
//! * datagram-fatal rejects are quarantined verbatim via
//!   [`Collector::quarantine_poison`] and counted per
//!   [`RejectReason`].
//!
//! The extended identity `generated == delivered + shed + pending +
//! buffered + lost_to_crash + corrupted + malformed` holds exactly for
//! wire-sourced events; the chaos and determinism harnesses assert it
//! under hostile-exporter storms.

use crate::recovery::{Collector, PoisonFrame};
use crate::storage::StoredEvent;
use crate::DeliveryLedger;
use fet_wire::{
    translate, IngestReport, UpstreamLossReport, WireSession, WireSessionConfig, REASON_COUNT,
};
use std::collections::BTreeMap;

/// Wire-ingest configuration.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Parser/session bounds (template cache, datagram size, stream cap).
    pub session: WireSessionConfig,
    /// Device ids assigned to wire exporters start here, keeping them
    /// disjoint from simulator device ids.
    pub device_base: u32,
    /// Distinct exporter streams mapped to their own device id; streams
    /// beyond the cap share the last id (bounded, deterministic).
    pub max_devices: u32,
    /// Bytes of a rejected datagram preserved in quarantine (the head;
    /// hostile datagrams can be 64 KiB and quarantine is retention-bounded
    /// but each frame should stay small).
    pub quarantine_prefix: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            session: WireSessionConfig::default(),
            device_base: 1 << 16,
            max_devices: 1024,
            quarantine_prefix: 256,
        }
    }
}

/// What one datagram did, after admission.
#[derive(Debug, Clone)]
pub struct WireAdmission {
    /// The parser-level report (protocol, per-reason counts, loss signal).
    pub report: IngestReport,
    /// Events accepted into the in-memory store.
    pub admitted: u64,
    /// Events diverted to the durable spill.
    pub spilled: u64,
    /// Events refused because the spill budget was exhausted.
    pub refused: u64,
    /// Device id this datagram's records were filed under.
    pub device: u32,
}

/// The stateful adapter: one per collector ingest socket.
#[derive(Debug)]
pub struct WireIngest {
    cfg: WireConfig,
    session: WireSession,
    devices: BTreeMap<(u16, u32), u32>,
    next_seq: BTreeMap<u32, u64>,
    generated: u64,
    delivered: u64,
    shed: u64,
    malformed: u64,
}

impl WireIngest {
    /// New adapter with the given bounds.
    pub fn new(cfg: WireConfig) -> Self {
        WireIngest {
            session: WireSession::new(cfg.session),
            cfg,
            devices: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            generated: 0,
            delivered: 0,
            shed: 0,
            malformed: 0,
        }
    }

    /// The parser session (template cache occupancy, per-reason stats).
    pub fn session(&self) -> &WireSession {
        &self.session
    }

    /// Expire stale templates (callers pump this on their housekeeping
    /// tick); returns how many were dropped.
    pub fn sweep_templates(&mut self, now_ns: u64) -> u64 {
        self.session.sweep_templates(now_ns)
    }

    /// Upstream-loss accumulators per exporter stream, for analytics.
    pub fn upstream_losses(&self) -> Vec<UpstreamLossReport> {
        self.session.upstream_losses()
    }

    /// Map an exporter stream to a stable device id, bounded by
    /// `max_devices`.
    fn device_for(&mut self, version: u16, domain: u32) -> u32 {
        let cap = self.cfg.max_devices.max(1);
        let next = self.devices.len() as u32;
        let base = self.cfg.device_base;
        *self.devices.entry((version, domain)).or_insert_with(|| base + next.min(cap - 1))
    }

    /// Ingest one datagram through the collector's admission path.
    pub fn ingest_datagram(
        &mut self,
        collector: &mut Collector,
        datagram: &[u8],
        now_ns: u64,
    ) -> WireAdmission {
        let report = self.session.ingest(datagram, now_ns);
        self.generated += report.claimed();
        self.malformed += report.malformed;

        if let Some(reason) = report.rejected {
            let keep = datagram.len().min(self.cfg.quarantine_prefix);
            collector.quarantine_poison(PoisonFrame {
                device: self.cfg.device_base,
                quarantined_ns: now_ns,
                frame: datagram[..keep].to_vec(),
                reason: format!("wire:{}", reason.as_str()),
            });
            return WireAdmission { report, admitted: 0, spilled: 0, refused: 0, device: 0 };
        }

        let version = report.protocol.map(|p| p.version()).unwrap_or(0);
        let device = self.device_for(version, report.domain);
        // Event-time stamp: the session's vetted export time — never the
        // exporter's raw claim. Implausible claims were clamped to the
        // receive clock (and booked under a clock-lie) upstream.
        let stamp_ns = if report.event_time_ns > 0 { report.event_time_ns } else { now_ns };
        let batch: Vec<StoredEvent> = report
            .samples
            .iter()
            .map(|s| {
                let seq = self.next_seq.entry(device).or_insert(0);
                let e = StoredEvent {
                    time_ns: stamp_ns,
                    device,
                    epoch: 0,
                    seq: *seq,
                    record: translate(s),
                };
                *seq += 1;
                e
            })
            .collect();

        let spilled_before = collector.spilled;
        let refused_before = collector.overflow_refused;
        let admitted = collector.ingest(&batch);
        let spilled = collector.spilled - spilled_before;
        let refused = collector.overflow_refused - refused_before;

        // Admitted to memory or parked on disk both count as delivered;
        // ledger() re-buckets current spill occupancy into `buffered`.
        self.delivered += admitted + spilled;
        self.shed += refused;
        WireAdmission { report, admitted, spilled, refused, device }
    }

    /// Fatal rejects per [`RejectReason::index`].
    pub fn rejects_by_reason(&self) -> [u64; REASON_COUNT] {
        self.session.stats().rejects
    }

    /// Soft rejects per [`RejectReason::index`].
    pub fn soft_rejects_by_reason(&self) -> [u64; REASON_COUNT] {
        self.session.stats().soft
    }

    /// Total datagrams rejected outright.
    pub fn rejected_datagrams(&self) -> u64 {
        self.session.stats().rejected
    }

    /// The wire-scope delivery ledger for a collector dedicated to this
    /// ingest (the example / chaos topology): spill occupancy re-buckets
    /// from `delivered` into `buffered`, so the extended identity holds
    /// exactly at any instant.
    pub fn ledger(&self, collector: &Collector) -> DeliveryLedger {
        let mut ledger = DeliveryLedger {
            generated: self.generated,
            delivered: self.delivered,
            shed_cpu_overload: self.shed,
            malformed: self.malformed,
            ..Default::default()
        };
        collector.refine_fleet_ledger(&mut ledger);
        ledger
    }

    /// Records decoded and admitted (memory + spill) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Records booked as malformed so far.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Records refused at the spill-full choke point so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Every record that entered wire accounting.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Clock lies booked per [`fet_wire::ClockLie::index`].
    pub fn clock_lies(&self) -> [u64; fet_wire::CLOCK_LIE_COUNT] {
        self.session.stats().clock_lies
    }

    /// Event-time stamps clamped to the receive clock so far.
    pub fn clamped_stamps(&self) -> u64 {
        self.session.stats().clamped_stamps
    }
}

impl Default for WireIngest {
    fn default() -> Self {
        WireIngest::new(WireConfig::default())
    }
}

/// Re-exported so callers can name reasons without importing `fet-wire`.
pub use fet_wire::ALL_REASONS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectorConfig;
    use fet_packet::flow::FlowKey;
    use fet_packet::Ipv4Addr;
    use fet_wire::builder::{v5_datagram, v5_datagram_with_count, IpfixBuilder, V9Builder};
    use fet_wire::fields::base_flow_fields;
    use fet_wire::{FlowSample, RejectReason};

    fn sample(n: u8) -> FlowSample {
        FlowSample {
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, n]),
                1000 + n as u16,
                Ipv4Addr::from_octets([10, 1, 0, n]),
                443,
            ),
            in_port: 2,
            out_port: 4,
            packets: 10 + n as u64,
            bytes: 1000,
            tcp_flags: 0x10,
            forwarding_status: Some(0x40),
            first_ms: 0,
            last_ms: 0,
        }
    }

    #[test]
    fn future_export_time_is_clamped_to_receive_clock() {
        use fet_wire::builder::v5_datagram_with_times;
        use fet_wire::ClockLie;
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        // Exporter claims a far-future export time; the stored stamp must
        // be the collector's receive clock, with the lie booked.
        let now_ns = 50 * 1_000_000_000;
        let dg = v5_datagram_with_times(0, 0, 1, &[sample(1)], 1, 1_000, 2_000_000_000);
        w.ingest_datagram(&mut c, &dg, now_ns);
        let got = c.store().query(&crate::storage::Query::any());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].time_ns, now_ns, "future claim must clamp to receive time");
        assert!(w.clock_lies()[ClockLie::FutureExport.index()] > 0);
        assert!(w.clamped_stamps() > 0);
        w.ledger(&c).assert_balanced();
    }

    #[test]
    fn clean_datagrams_flow_into_the_store() {
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        let adm = w.ingest_datagram(&mut c, &v5_datagram(0, 0, 1, &[sample(1), sample(2)]), 7);
        assert_eq!(adm.admitted, 2);
        assert_eq!(c.len(), 2);
        let ledger = w.ledger(&c);
        ledger.assert_balanced();
        assert_eq!(ledger.generated, 2);
        assert_eq!(ledger.delivered, 2);
        // Events are queryable like any simulator event.
        let got = c.store().query(&crate::storage::Query::any().flow(sample(1).flow));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].device, WireConfig::default().device_base);
    }

    #[test]
    fn malformed_records_balance_the_ledger() {
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        // Claims 9 records, carries 2: 7 malformed, 2 delivered.
        let dg = v5_datagram_with_count(0, 0, 1, &[sample(1), sample(2)], 9);
        w.ingest_datagram(&mut c, &dg, 0);
        let ledger = w.ledger(&c);
        ledger.assert_balanced();
        assert_eq!(ledger.generated, 9);
        assert_eq!(ledger.delivered, 2);
        assert_eq!(ledger.malformed, 7);
    }

    #[test]
    fn fatal_rejects_are_quarantined_with_reason() {
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        let adm = w.ingest_datagram(&mut c, &[0, 77, 1, 2, 3], 5);
        assert_eq!(adm.report.rejected, Some(RejectReason::BadVersion));
        assert_eq!(c.quarantine().len(), 1);
        assert_eq!(c.quarantine()[0].reason, "wire:bad-version");
        assert_eq!(w.rejected_datagrams(), 1);
        assert_eq!(w.rejects_by_reason()[RejectReason::BadVersion.index()], 1);
        // Rejected datagrams contribute nothing to generated.
        w.ledger(&c).assert_balanced();
        assert_eq!(w.generated(), 0);
    }

    #[test]
    fn quarantined_frames_keep_only_a_prefix() {
        let mut w = WireIngest::new(WireConfig { quarantine_prefix: 16, ..Default::default() });
        let mut c = Collector::new();
        w.ingest_datagram(&mut c, &[1u8; 4000], 0);
        assert_eq!(c.quarantine()[0].frame.len(), 16);
    }

    #[test]
    fn spill_and_shed_stay_accounted() {
        // Tight watermark with no subscriber: everything past the first
        // events spills, and a tiny spill budget forces refusals.
        let mut w = WireIngest::default();
        let mut c = Collector::with_config(CollectorConfig {
            memory_watermark: 4,
            max_spill_bytes: 1024,
            spill_segment_bytes: 512,
            ..Default::default()
        });
        c.subscribe();
        for i in 0..40 {
            let flows: Vec<FlowSample> = (0..10).map(|j| sample((i * 10 + j) as u8)).collect();
            w.ingest_datagram(&mut c, &v5_datagram(u32::MAX, 0, 1, &flows), i as u64);
        }
        let ledger = w.ledger(&c);
        ledger.assert_balanced();
        assert!(ledger.buffered > 0, "watermark must divert to spill");
        assert!(ledger.shed_cpu_overload > 0, "tiny spill budget must refuse");
        assert_eq!(ledger.generated, 400);
    }

    #[test]
    fn spill_drains_back_to_delivered() {
        let mut tight =
            Collector::with_config(CollectorConfig { memory_watermark: 2, ..Default::default() });
        let mut w = WireIngest::default();
        let sub = tight.subscribe();
        for i in 0..5u8 {
            w.ingest_datagram(&mut tight, &v5_datagram(0, 0, 1, &[sample(i)]), i as u64);
        }
        // Events past the watermark spilled.
        assert!(w.ledger(&tight).buffered > 0);
        // Pump the spill dry, draining between pumps (each pump stops at
        // the watermark until a subscriber clears the backlog).
        loop {
            tight.drain_ordered(sub);
            if tight.pump_spill() == 0 {
                break;
            }
        }
        let ledger = w.ledger(&tight);
        ledger.assert_balanced();
        assert_eq!(ledger.buffered, 0);
        assert_eq!(ledger.delivered, 5);
    }

    #[test]
    fn template_protocols_ride_the_same_path() {
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        let dg = V9Builder::new(7, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(1)])
            .build();
        w.ingest_datagram(&mut c, &dg, 0);
        let dg = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(2)])
            .build();
        w.ingest_datagram(&mut c, &dg, 0);
        assert_eq!(c.len(), 2);
        // v9 source 7 and IPFIX domain 9 are distinct devices.
        let devices: std::collections::BTreeSet<u32> =
            c.store().query(&crate::storage::Query::any()).iter().map(|e| e.device).collect();
        assert_eq!(devices.len(), 2);
        w.ledger(&c).assert_balanced();
    }

    #[test]
    fn device_map_is_bounded() {
        let mut w = WireIngest::new(WireConfig { max_devices: 4, ..Default::default() });
        let mut c = Collector::new();
        for engine in 0..50u8 {
            w.ingest_datagram(&mut c, &v5_datagram(0, 0, engine, &[sample(engine)]), 0);
        }
        let devices: std::collections::BTreeSet<u32> =
            c.store().query(&crate::storage::Query::any()).iter().map(|e| e.device).collect();
        assert!(devices.len() <= 4, "streams beyond the cap share the last device id");
        w.ledger(&c).assert_balanced();
    }

    #[test]
    fn upstream_loss_surfaces_per_stream() {
        let mut w = WireIngest::default();
        let mut c = Collector::new();
        w.ingest_datagram(&mut c, &v5_datagram(0, 0, 1, &[sample(1)]), 0);
        w.ingest_datagram(&mut c, &v5_datagram(10, 0, 1, &[sample(2)]), 0);
        let losses = w.upstream_losses();
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].lost, 9);
        assert_eq!(losses[0].gaps, 1);
    }
}
