//! ACL drop aggregation (§3.4): drops caused by ACL rules aggregate per
//! **rule id**, not per flow, because most ACL drops are intentional and
//! per-flow reporting would flood the event path. The switch CPU maps the
//! rule id back to the rule's match description when reporting.

use std::collections::HashMap;

/// CPU-side rule registry: maps the data plane's rule ids back to the
/// rule's match description, so reports carry "the original ACL rule"
/// (§3.4: "The switch CPU can find the ACL rule corresponding to the ID,
/// and report the original ACL rule and the counter").
#[derive(Debug, Default)]
pub struct RuleRegistry {
    rules: HashMap<u32, String>,
}

impl RuleRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a rule's human-readable description at install time.
    pub fn register(&mut self, rule_id: u32, description: impl Into<String>) {
        self.rules.insert(rule_id, description.into());
    }

    /// Resolve an id (drops silently report "unknown rule").
    pub fn describe(&self, rule_id: u32) -> &str {
        self.rules.get(&rule_id).map(String::as_str).unwrap_or("<unknown rule>")
    }

    /// Remove a rule at uninstall time.
    pub fn unregister(&mut self, rule_id: u32) -> bool {
        self.rules.remove(&rule_id).is_some()
    }
}

/// Per-ACL-rule drop counters with periodic report thresholds.
#[derive(Debug, Default)]
pub struct AclAggregator {
    counters: HashMap<u32, u64>,
    reported_at: HashMap<u32, u64>,
    /// Counter interval between refresher reports.
    report_interval: u64,
}

/// What an ACL drop produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclOutcome {
    /// First drop on this rule: report (rule id, count = 1).
    FirstReport,
    /// Crossed a report threshold: report (rule id, count).
    ThresholdReport {
        /// Drop count at the report.
        count: u64,
    },
    /// Counted silently.
    Counted,
}

impl AclAggregator {
    /// Create with a refresher interval (drops between reports).
    pub fn new(report_interval: u64) -> Self {
        AclAggregator {
            counters: HashMap::new(),
            reported_at: HashMap::new(),
            report_interval: report_interval.max(1),
        }
    }

    /// Record one ACL drop on `rule_id`.
    pub fn record(&mut self, rule_id: u32) -> AclOutcome {
        let c = self.counters.entry(rule_id).or_insert(0);
        *c += 1;
        let count = *c;
        let last = self.reported_at.entry(rule_id).or_insert(0);
        if count == 1 {
            *last = 1;
            AclOutcome::FirstReport
        } else if count - *last >= self.report_interval {
            *last = count;
            AclOutcome::ThresholdReport { count }
        } else {
            AclOutcome::Counted
        }
    }

    /// Current drop count of one rule.
    pub fn count(&self, rule_id: u32) -> u64 {
        self.counters.get(&rule_id).copied().unwrap_or(0)
    }

    /// All (rule, count) pairs, sorted by rule id.
    pub fn snapshot(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<_> = self.counters.iter().map(|(&r, &c)| (r, c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_drop_reports() {
        let mut a = AclAggregator::new(100);
        assert_eq!(a.record(7), AclOutcome::FirstReport);
        assert_eq!(a.record(7), AclOutcome::Counted);
        assert_eq!(a.count(7), 2);
    }

    #[test]
    fn threshold_refreshers() {
        let mut a = AclAggregator::new(10);
        assert_eq!(a.record(1), AclOutcome::FirstReport);
        for _ in 0..9 {
            a.record(1);
        }
        // 11th drop: 11 - 1 >= 10.
        assert_eq!(a.record(1), AclOutcome::ThresholdReport { count: 11 });
        for _ in 0..9 {
            assert_eq!(a.record(1), AclOutcome::Counted);
        }
        assert_eq!(a.record(1), AclOutcome::ThresholdReport { count: 21 });
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = RuleRegistry::new();
        r.register(7, "deny tcp any any eq 22");
        assert_eq!(r.describe(7), "deny tcp any any eq 22");
        assert_eq!(r.describe(8), "<unknown rule>");
        assert!(r.unregister(7));
        assert!(!r.unregister(7));
        assert_eq!(r.describe(7), "<unknown rule>");
    }

    #[test]
    fn rules_independent() {
        let mut a = AclAggregator::new(5);
        a.record(1);
        assert_eq!(a.record(2), AclOutcome::FirstReport);
        assert_eq!(a.snapshot(), vec![(1, 1), (2, 1)]);
    }
}
