//! Backend event storage and the operator query interface (§3.2 step 4):
//! "Operators could flexibly query the storage by specifying a flow,
//! event, device, or period and obtain related flow events."

use fet_packet::event::{EventRecord, EventType};
use fet_packet::FlowKey;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One event at rest in the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredEvent {
    /// Backend receive time, ns.
    pub time_ns: u64,
    /// Reporting device.
    pub device: u32,
    /// Sender connection epoch at delivery time (bumped per device
    /// restart). `(device, epoch, seq)` is the exactly-once dedup key.
    pub epoch: u32,
    /// Per-device delivery sequence number (monotonic across epochs).
    pub seq: u64,
    /// The 24-byte record.
    pub record: EventRecord,
}

/// A query: every field is an optional conjunctive filter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Query {
    /// Restrict to one flow.
    pub flow: Option<FlowKey>,
    /// Restrict to one device.
    pub device: Option<u32>,
    /// Restrict to one event type.
    pub ty: Option<EventType>,
    /// Restrict to a half-open time window `[from, to)`.
    pub window: Option<(u64, u64)>,
}

impl Query {
    /// Match everything.
    pub fn any() -> Self {
        Query::default()
    }

    /// Filter by flow.
    pub fn flow(mut self, f: FlowKey) -> Self {
        self.flow = Some(f);
        self
    }

    /// Filter by device.
    pub fn device(mut self, d: u32) -> Self {
        self.device = Some(d);
        self
    }

    /// Filter by event type.
    pub fn ty(mut self, t: EventType) -> Self {
        self.ty = Some(t);
        self
    }

    /// Filter by time window.
    pub fn window(mut self, from: u64, to: u64) -> Self {
        self.window = Some((from, to));
        self
    }

    fn matches(&self, e: &StoredEvent) -> bool {
        self.flow.is_none_or(|f| e.record.flow == f)
            && self.device.is_none_or(|d| e.device == d)
            && self.ty.is_none_or(|t| e.record.ty == t)
            && self.window.is_none_or(|(a, b)| e.time_ns >= a && e.time_ns < b)
    }
}

/// Indexed event store. `Clone` is deliberate: the collector's crash
/// model checkpoints the store by value and reverts to the clone on a
/// hard kill (see [`crate::recovery::Collector`]).
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    events: Vec<StoredEvent>,
    by_flow: HashMap<FlowKey, Vec<usize>>,
    by_device: HashMap<u32, Vec<usize>>,
    /// Secondary index by ingress timestamp: window queries walk
    /// `range(from..to)` instead of scanning every event, so a pure
    /// `Query::window` costs O(log n + k) rather than O(n).
    by_time: BTreeMap<u64, Vec<usize>>,
}

impl EventStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one event.
    pub fn insert(&mut self, e: StoredEvent) {
        let i = self.events.len();
        self.by_flow.entry(e.record.flow).or_default().push(i);
        self.by_device.entry(e.device).or_default().push(i);
        self.by_time.entry(e.time_ns).or_default().push(i);
        self.events.push(e);
    }

    /// Bulk insert.
    pub fn extend(&mut self, it: impl IntoIterator<Item = StoredEvent>) {
        for e in it {
            self.insert(e);
        }
    }

    /// Run a query. Uses the narrowest applicable index: flow, then
    /// device, then the timestamp B-tree for window queries; only an
    /// unconstrained (or type-only) query still scans.
    ///
    /// The time index yields candidates out of insertion order, so window
    /// results are re-sorted by position to keep every index path
    /// returning the same order as a scan.
    pub fn query(&self, q: &Query) -> Vec<&StoredEvent> {
        if let Some(f) = q.flow {
            let idx = self.by_flow.get(&f).map(Vec::as_slice).unwrap_or_default();
            return self.filter_positions(idx.iter().copied(), q, false);
        }
        if let Some(d) = q.device {
            let idx = self.by_device.get(&d).map(Vec::as_slice).unwrap_or_default();
            return self.filter_positions(idx.iter().copied(), q, false);
        }
        if let Some((from, to)) = q.window {
            if from >= to {
                return Vec::new();
            }
            let hits = self.by_time.range(from..to).flat_map(|(_, v)| v.iter().copied());
            return self.filter_positions(hits, q, true);
        }
        self.events.iter().filter(|e| q.matches(e)).collect()
    }

    fn filter_positions(
        &self,
        positions: impl Iterator<Item = usize>,
        q: &Query,
        resort: bool,
    ) -> Vec<&StoredEvent> {
        let mut hit: Vec<usize> = positions.filter(|&i| q.matches(&self.events[i])).collect();
        if resort {
            hit.sort_unstable();
        }
        hit.into_iter().map(|i| &self.events[i]).collect()
    }

    /// Total stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events.
    pub fn events(&self) -> &[StoredEvent] {
        &self.events
    }

    /// Distinct (device, flow) pairs for one event type — the unit compared
    /// against [`fet_netsim::GroundTruth::flow_events`] for coverage.
    pub fn flow_events(&self, ty: EventType) -> BTreeSet<(u32, FlowKey)> {
        self.events
            .iter()
            .filter(|e| e.record.ty == ty)
            .map(|e| (e.device, e.record.flow))
            .collect()
    }

    /// Count of events of one type.
    pub fn count(&self, ty: EventType) -> usize {
        self.events.iter().filter(|e| e.record.ty == ty).count()
    }

    /// Per-device, per-type event counts — the dashboard view an operator
    /// scans before drilling into flow queries.
    pub fn summarize(&self) -> Vec<(u32, EventType, usize)> {
        let mut counts: HashMap<(u32, EventType), usize> = HashMap::new();
        for e in &self.events {
            *counts.entry((e.device, e.record.ty)).or_insert(0) += 1;
        }
        let mut v: Vec<(u32, EventType, usize)> =
            counts.into_iter().map(|((d, t), n)| (d, t, n)).collect();
        v.sort_by_key(|&(d, t, n)| (d, t, std::cmp::Reverse(n)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::EventDetail;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn ev(t: u64, dev: u32, ty: EventType, n: u16) -> StoredEvent {
        StoredEvent {
            time_ns: t,
            device: dev,
            epoch: 0,
            seq: t,
            record: EventRecord {
                ty,
                flow: flow(n),
                detail: EventDetail::Pause { egress_port: 0, queue: 0 },
                counter: 1,
                hash: u32::from(n),
            },
        }
    }

    fn store() -> EventStore {
        let mut s = EventStore::new();
        s.insert(ev(10, 1, EventType::Congestion, 1));
        s.insert(ev(20, 1, EventType::Pause, 1));
        s.insert(ev(30, 2, EventType::Congestion, 2));
        s.insert(ev(40, 2, EventType::Congestion, 1));
        s
    }

    #[test]
    fn query_by_flow() {
        let s = store();
        let r = s.query(&Query::any().flow(flow(1)));
        assert_eq!(r.len(), 3);
        let r = s.query(&Query::any().flow(flow(9)));
        assert!(r.is_empty());
    }

    #[test]
    fn query_by_device_and_type() {
        let s = store();
        let r = s.query(&Query::any().device(2).ty(EventType::Congestion));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn query_by_window() {
        let s = store();
        let r = s.query(&Query::any().window(15, 35));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn window_index_matches_full_scan() {
        // A store with duplicate timestamps, out-of-order inserts, and
        // mixed devices/types, queried over exhaustive window bounds: the
        // B-tree path must agree with a brute-force scan on every one.
        let mut s = EventStore::new();
        for (t, dev, n) in
            [(30, 1, 1), (10, 2, 2), (30, 2, 1), (50, 1, 3), (20, 1, 2), (10, 1, 1), (40, 2, 3)]
        {
            s.insert(ev(t, dev, EventType::Congestion, n));
        }
        for from in 0..60u64 {
            for to in from..=60u64 {
                for q in [
                    Query::any().window(from, to),
                    Query::any().window(from, to).ty(EventType::Congestion),
                ] {
                    let indexed = s.query(&q);
                    let scanned: Vec<&StoredEvent> = s
                        .events()
                        .iter()
                        .filter(|e| e.time_ns >= from && e.time_ns < to)
                        .filter(|e| q.ty.is_none_or(|t| e.record.ty == t))
                        .collect();
                    assert_eq!(indexed, scanned, "window [{from}, {to}) diverged");
                }
            }
        }
        // Degenerate windows are empty, not panicking.
        assert!(s.query(&Query::any().window(20, 20)).is_empty());
        assert!(s.query(&Query::any().window(30, 10)).is_empty());
    }

    #[test]
    fn conjunctive_filters() {
        let s = store();
        let r = s.query(&Query::any().flow(flow(1)).device(2).window(0, 100));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].time_ns, 40);
    }

    #[test]
    fn flow_events_deduplicate() {
        let mut s = store();
        s.insert(ev(50, 2, EventType::Congestion, 1));
        let fe = s.flow_events(EventType::Congestion);
        // (1, f1), (2, f2), (2, f1)
        assert_eq!(fe.len(), 3);
    }

    #[test]
    fn summarize_gives_device_type_counts() {
        let s = store();
        let sum = s.summarize();
        assert!(sum.contains(&(1, EventType::Congestion, 1)));
        assert!(sum.contains(&(2, EventType::Congestion, 2)));
        assert!(sum.contains(&(1, EventType::Pause, 1)));
        assert_eq!(sum.len(), 3);
    }

    #[test]
    fn counts() {
        let s = store();
        assert_eq!(s.count(EventType::Congestion), 3);
        assert_eq!(s.count(EventType::Pause), 1);
        assert_eq!(s.count(EventType::MmuDrop), 0);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
