//! Deterministic fault injection and end-to-end event accounting.
//!
//! NetSeer's core promise (§3.5–§3.6) is *lossless* event reporting: every
//! generated event either reaches the backend or is deliberately shed at a
//! bounded, counted choke point. The happy path exercises none of that.
//! This module provides two things:
//!
//! 1. [`FaultPlan`] — a seeded, schedulable description of every failure
//!    mode the reporting pipeline crosses: burst (Gilbert–Elliott) loss and
//!    partitions on the management network, loss of the redundant
//!    inter-switch loss notifications, CEBP recirculation and PCIe stalls,
//!    switch-CPU overload windows, and — the integrity fault domain —
//!    seeded byte corruption of CEBP reports, notification copies, and
//!    torn WAL tail-writes on hard crashes. The same plan + seed
//!    reproduces the same run bit-for-bit.
//!
//! 2. [`DeliveryLedger`] — the pipeline-wide accounting invariant:
//!    `generated == delivered + shed + pending + lost_to_crash +
//!    corrupted`, where every shed event is attributed to a named choke
//!    point. Any imbalance is a silent-loss bug.
//!
//! The plan is pure data ([`Clone`], [`Default`]); per-concern runtime
//! state (Gilbert–Elliott channel state, RNG streams) lives in
//! [`LossGen`] instances derived from the plan so that independent
//! subsystems draw from independent, reproducible streams.

use fet_netsim::rng::Pcg32;

pub use fet_netsim::clockfault::{ClockSpec, DeviceClock};
pub use fet_netsim::corrupt::{CorruptionGen, CorruptionSpec, CorruptionTally};

/// A half-open time window `[start_ns, end_ns)` during which a scheduled
/// fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Fault activates at this time (inclusive), ns.
    pub start_ns: u64,
    /// Fault clears at this time (exclusive), ns.
    pub end_ns: u64,
}

impl Window {
    /// Is `t` inside the window?
    pub fn contains(&self, t: u64) -> bool {
        self.start_ns <= t && t < self.end_ns
    }
}

/// Returns the end of the first window containing `t`, if any — i.e. when
/// a stalled operation may resume.
pub fn stall_release(windows: &[Window], t: u64) -> Option<u64> {
    windows.iter().filter(|w| w.contains(t)).map(|w| w.end_ns).max()
}

/// True when `t` falls inside any of the windows.
pub fn in_any_window(windows: &[Window], t: u64) -> bool {
    windows.iter().any(|w| w.contains(t))
}

/// A stochastic loss process for one link or message class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossProcess {
    /// No loss.
    #[default]
    None,
    /// Independent per-attempt loss with probability `p`.
    Bernoulli {
        /// Loss probability per attempt, `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss: a good state with rare loss
    /// and a bad state with heavy loss, with geometric sojourn times.
    GilbertElliott {
        /// P(good → bad) per attempt.
        p_enter_bad: f64,
        /// P(bad → good) per attempt.
        p_exit_bad: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

/// Runtime state of one [`LossProcess`]: owns an independent RNG stream
/// so two subsystems never perturb each other's draws.
#[derive(Debug, Clone)]
pub struct LossGen {
    process: LossProcess,
    rng: Pcg32,
    in_bad: bool,
}

impl LossGen {
    /// Instantiate a process with an independent stream.
    pub fn new(process: LossProcess, seed: u64, stream: u64) -> Self {
        LossGen { process, rng: Pcg32::new(seed, stream), in_bad: false }
    }

    /// Decide one attempt: true = the attempt is lost.
    pub fn lose(&mut self) -> bool {
        match self.process {
            LossProcess::None => false,
            LossProcess::Bernoulli { p } => self.rng.chance(p.clamp(0.0, 1.0)),
            LossProcess::GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad } => {
                // State transition first, then the loss draw in the new state.
                if self.in_bad {
                    if self.rng.chance(p_exit_bad) {
                        self.in_bad = false;
                    }
                } else if self.rng.chance(p_enter_bad) {
                    self.in_bad = true;
                }
                let p = if self.in_bad { loss_bad } else { loss_good };
                self.rng.chance(p.clamp(0.0, 1.0))
            }
        }
    }

    /// Currently in the bad (bursty-loss) state?
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

/// How a component dies.
///
/// The distinction is the fsync watermark: a clean stop flushes the
/// recovery WAL before exiting, a hard kill loses whatever was appended
/// after the last fsync (see [`crate::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Orderly shutdown: the WAL tail is fsynced before the process exits,
    /// so replay restores the pre-crash pending state exactly.
    Clean,
    /// Power-pull / SIGKILL: the un-fsynced WAL tail is lost and the
    /// events it covered become `lost_to_crash` — bounded by the
    /// checkpoint/fsync cadence, never silent.
    Hard,
}

/// One scheduled switch-CPU crash: the device's monitor dies at `at_ns`
/// and restarts (recovering from its checkpoint + WAL) at `restart_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCrash {
    /// The device (node id) whose switch CPU dies.
    pub device: u32,
    /// Kill time, ns.
    pub at_ns: u64,
    /// Restart time, ns (must be > `at_ns`).
    pub restart_ns: u64,
    /// Clean stop or hard kill.
    pub kind: CrashKind,
}

/// One scheduled collector (backend) crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorCrash {
    /// Kill time, ns.
    pub at_ns: u64,
    /// Clean stop or hard kill.
    pub kind: CrashKind,
}

/// Generate a seeded crash schedule that kills (and restarts) every listed
/// device exactly once, with kill times drawn uniformly from
/// `[window.start_ns, window.end_ns)` on the [`streams::CRASH`] RNG stream.
/// The same seed reproduces the same schedule bit-for-bit.
pub fn seeded_device_crashes(
    seed: u64,
    devices: &[u32],
    window: Window,
    down_ns: u64,
    kind: CrashKind,
) -> Vec<DeviceCrash> {
    let span = window.end_ns.saturating_sub(window.start_ns).max(1);
    devices
        .iter()
        .map(|&device| {
            let mut rng = Pcg32::new(seed ^ (u64::from(device) << 17), streams::CRASH);
            let at_ns = window.start_ns + rng.next_u64() % span;
            DeviceCrash { device, at_ns, restart_ns: at_ns + down_ns.max(1), kind }
        })
        .collect()
}

/// A CPU overload window: per-event processing cost is multiplied by
/// `factor` while active (models the event cores being stolen by other
/// control-plane work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadWindow {
    /// When the overload is active.
    pub window: Window,
    /// Per-event cost multiplier (≥ 1.0).
    pub factor: f64,
}

/// The complete, seeded fault schedule for one device's reporting pipeline.
///
/// `FaultPlan::default()` injects nothing; every field is independent so a
/// drill can compose exactly the failure modes it wants.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Master seed; every subsystem derives an independent stream from it.
    pub seed: u64,
    /// Stochastic loss on the management network (switch CPU → backend).
    pub mgmt_loss: LossProcess,
    /// Hard partitions of the management network: every transmission
    /// attempted inside a window is lost, regardless of `mgmt_loss`.
    pub mgmt_partitions: Vec<Window>,
    /// Loss applied independently to each redundant inter-switch loss
    /// notification copy on its way back upstream.
    pub notification_loss: LossProcess,
    /// Windows during which CEBP recirculation stalls (internal-port
    /// arbitration loss, recirculation-queue backpressure).
    pub cebp_stalls: Vec<Window>,
    /// Windows during which the PCIe channel to the switch CPU stalls
    /// (DMA engine busy, doorbell backpressure).
    pub pcie_stalls: Vec<Window>,
    /// Switch-CPU overload windows.
    pub cpu_overload: Vec<OverloadWindow>,
    /// Scheduled switch-CPU crash/restart events.
    pub device_crashes: Vec<DeviceCrash>,
    /// Scheduled collector (backend) crashes.
    pub collector_crashes: Vec<CollectorCrash>,
    /// Byte damage applied to each CEBP report frame on its way to the
    /// collector (drawn on [`streams::CEBP_CORRUPT`]). The CRC-32C trailer
    /// detects it; the transport treats the failure as an implicit NACK and
    /// retransmits, so only a retry-budget exhaustion turns into the
    /// ledger's terminal `corrupted` count.
    pub cebp_corruption: CorruptionSpec,
    /// Byte damage applied to each emitted loss-notification copy (drawn
    /// on [`streams::NOTIF_CORRUPT`]). Damaged copies fail the notification
    /// CRC at the upstream monitor and are counted, not parsed.
    pub notification_corruption: CorruptionSpec,
    /// Torn tail-write damage applied to the un-fsynced WAL region on a
    /// hard crash (drawn on [`streams::WAL_CORRUPT`]). Replay stops at the
    /// first record whose per-record CRC fails instead of deserializing
    /// garbage. Inactive spec = the whole un-fsynced tail is lost (the
    /// pre-integrity model).
    pub torn_wal: CorruptionSpec,
    /// Per-device virtual clock faults (offset/drift/step/freeze, drawn
    /// on [`streams::CLOCK`]). Local clocks rewrite *recorded stamps*
    /// only — event stamps, WAL/snapshot stamps, heartbeat readings —
    /// while simulator global time stays the ordering authority, so the
    /// generated event set and serial/parallel determinism are untouched.
    /// Inactive spec = identity clocks, zero RNG draws.
    pub clock: ClockSpec,
}

/// RNG stream ids, one per concern, so streams never collide.
pub mod streams {
    /// Management-network loss draws (inside `ReliableChannel`).
    pub const MGMT: u64 = 0x4d47;
    /// Notification-copy loss draws (inside `NetSeerMonitor`).
    pub const NOTIFICATION: u64 = 0x4e4f;
    /// Crash-schedule draws ([`super::seeded_device_crashes`]).
    pub const CRASH: u64 = 0x4352;
    /// CEBP report-frame byte damage (inside `NetSeerMonitor`).
    pub const CEBP_CORRUPT: u64 = 0x4345;
    /// Notification-copy byte damage (inside `NetSeerMonitor`).
    pub const NOTIF_CORRUPT: u64 = 0x434e;
    /// Torn-WAL tail damage on hard crash (inside `RecoveryLog`).
    pub const WAL_CORRUPT: u64 = 0x4357;
    /// Torn spill-segment tail damage on a collector hard kill (inside
    /// `SpillStore`).
    pub const SPILL_CORRUPT: u64 = 0x4350;
    /// Per-device clock-fault parameter draws (inside
    /// `fet_netsim::clockfault::DeviceClock`).
    pub const CLOCK: u64 = fet_netsim::clockfault::CLOCK_STREAM;
}

impl FaultPlan {
    /// A plan that injects nothing (the happy path).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// CPU cost multiplier at time `t` (1.0 = no overload).
    pub fn cpu_factor(&self, t: u64) -> f64 {
        self.cpu_overload
            .iter()
            .filter(|o| o.window.contains(t))
            .map(|o| o.factor.max(1.0))
            .fold(1.0, f64::max)
    }

    /// Is the management network partitioned at `t`?
    pub fn mgmt_partitioned(&self, t: u64) -> bool {
        in_any_window(&self.mgmt_partitions, t)
    }

    /// End of the partition containing `t`, if any.
    pub fn mgmt_partition_release(&self, t: u64) -> Option<u64> {
        stall_release(&self.mgmt_partitions, t)
    }
}

/// Why an event was shed. Every category is a *named, bounded* choke point;
/// the shed order under pressure is priority-aware (drops survive longest —
/// see [`event_priority`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedCause {
    /// In-pipeline event stack overflow (lowest-priority victim evicted).
    StackOverflow,
    /// PCIe channel rejected the batch (DMA ring full / stalled too long).
    Pcie,
    /// Switch-CPU overload controller dropped the batch instead of
    /// queueing unboundedly.
    CpuOverload,
    /// CPU false-positive elimination (deliberate, §3.6).
    FalsePositive,
    /// Reliable transport exhausted its retry budget (prolonged partition).
    Transport,
}

/// Reporting priority of an event type under shedding pressure: higher is
/// kept longer. Per the paper's triage order, packet-loss events are the
/// most actionable (drops > congestion/pause > path-change).
pub fn event_priority(ty: fet_packet::event::EventType) -> u8 {
    use fet_packet::event::EventType;
    match ty {
        EventType::PipelineDrop | EventType::MmuDrop | EventType::InterSwitchDrop => 2,
        EventType::Congestion | EventType::Pause => 1,
        EventType::PathChange => 0,
    }
}

/// The end-to-end accounting snapshot for one monitor's reporting pipeline.
///
/// Invariant: `generated == delivered + shed_total() + pending + buffered +
/// lost_to_crash + corrupted + malformed`. The pipeline may legitimately
/// hold events in flight (`pending`), park them in the collector's durable
/// spill buffer (`buffered`), shed them at a counted choke point, lose a
/// bounded tail to a hard crash, lose a batch to unrecoverable wire
/// corruption, or refuse undecodable wire-ingest records (`malformed`) —
/// but it must never lose one silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryLedger {
    /// Event records handed to the reporting path (post-dedup).
    pub generated: u64,
    /// Events that reached the backend (or a NIC's local log).
    pub delivered: u64,
    /// Shed: in-pipeline stack overflow.
    pub shed_stack: u64,
    /// Shed: PCIe rejection.
    pub shed_pcie: u64,
    /// Shed: CPU overload controller.
    pub shed_cpu_overload: u64,
    /// Shed: CPU false-positive elimination (deliberate).
    pub shed_false_positive: u64,
    /// Shed: transport retry budget exhausted.
    pub shed_transport: u64,
    /// Events still in flight (batcher stack + open CEBP).
    pub pending: u64,
    /// Events parked in the collector's durable spill buffer: delivered to
    /// the backend host but not yet applied to the queryable store (the
    /// collector was past its memory watermark and wrote them to disk
    /// instead of shedding). They drain to `delivered` as the backlog
    /// clears; see `netseer::spill`.
    pub buffered: u64,
    /// Events lost to a hard kill: they were pending when the un-fsynced
    /// WAL tail vanished, so replay could not resurrect them. Bounded by
    /// the checkpoint/fsync window; 0 for clean stops.
    pub lost_to_crash: u64,
    /// Events whose report batch failed its CRC-32C trailer on every
    /// transmission attempt (implicit-NACK retransmits included) — the
    /// poison copies are quarantined at the collector, never silently
    /// dropped, and the terminal count lands here.
    pub corrupted: u64,
    /// Wire-ingest records an exporter claimed but the collector could not
    /// decode: truncated record tails, count lies, data sets referencing
    /// unknown templates. The offending datagrams are quarantined with a
    /// per-reason breakdown (`netseer::wire`); the terminal record count
    /// lands here. Always 0 for simulator-born events.
    pub malformed: u64,
}

impl DeliveryLedger {
    /// Total events shed across all categories.
    pub fn shed_total(&self) -> u64 {
        self.shed_stack
            + self.shed_pcie
            + self.shed_cpu_overload
            + self.shed_false_positive
            + self.shed_transport
    }

    /// Everything a generated event is allowed to have become.
    fn accounted(&self) -> u64 {
        self.delivered
            + self.shed_total()
            + self.pending
            + self.buffered
            + self.lost_to_crash
            + self.corrupted
            + self.malformed
    }

    /// Does the exactly-once-or-counted invariant hold?
    /// `generated == delivered + shed + pending + buffered + lost_to_crash
    /// + corrupted + malformed`, across any number of crash/restart cycles.
    pub fn balanced(&self) -> bool {
        self.generated == self.accounted()
    }

    /// Events unaccounted for (0 on a healthy pipeline). A positive value
    /// means silent loss; negative (reported as 0 here, see `surplus`)
    /// would mean double delivery.
    pub fn missing(&self) -> u64 {
        self.generated.saturating_sub(self.accounted())
    }

    /// Events delivered or shed beyond what was generated (double counting).
    pub fn surplus(&self) -> u64 {
        self.accounted().saturating_sub(self.generated)
    }

    /// Panic with a full breakdown unless the invariant holds.
    pub fn assert_balanced(&self) {
        assert!(
            self.balanced(),
            "delivery ledger imbalance (silent loss or double count): {self:?} \
             missing={} surplus={}",
            self.missing(),
            self.surplus()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::EventType;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::none();
        let mut g = LossGen::new(p.mgmt_loss, 1, streams::MGMT);
        assert!((0..1000).all(|_| !g.lose()));
        assert!(!p.mgmt_partitioned(0));
        assert_eq!(p.cpu_factor(12345), 1.0);
    }

    #[test]
    fn windows_are_half_open() {
        let w = Window { start_ns: 10, end_ns: 20 };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }

    #[test]
    fn stall_release_picks_latest_cover() {
        let ws = [Window { start_ns: 0, end_ns: 100 }, Window { start_ns: 50, end_ns: 300 }];
        assert_eq!(stall_release(&ws, 60), Some(300));
        assert_eq!(stall_release(&ws, 10), Some(100));
        assert_eq!(stall_release(&ws, 400), None);
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut g = LossGen::new(LossProcess::Bernoulli { p: 0.3 }, 7, 1);
        let losses = (0..100_000).filter(|_| g.lose()).count();
        assert!((28_000..32_000).contains(&losses), "losses {losses}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Equal overall loss mass, but GE concentrates losses into runs.
        let ge = LossProcess::GilbertElliott {
            p_enter_bad: 0.01,
            p_exit_bad: 0.1,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let mut g = LossGen::new(ge, 11, 2);
        let outcomes: Vec<bool> = (0..200_000).map(|_| g.lose()).collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        assert!(losses > 5_000, "GE should lose packets: {losses}");
        // Burstiness: P(loss | previous loss) far above the marginal rate.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        let marginal = losses as f64 / outcomes.len() as f64;
        assert!(cond > marginal * 3.0, "conditional loss {cond:.3} vs marginal {marginal:.3}");
    }

    #[test]
    fn same_seed_same_stream() {
        let ge = LossProcess::GilbertElliott {
            p_enter_bad: 0.05,
            p_exit_bad: 0.2,
            loss_good: 0.01,
            loss_bad: 0.8,
        };
        let a: Vec<bool> = {
            let mut g = LossGen::new(ge, 99, 3);
            (0..1000).map(|_| g.lose()).collect()
        };
        let b: Vec<bool> = {
            let mut g = LossGen::new(ge, 99, 3);
            (0..1000).map(|_| g.lose()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn priorities_follow_paper_triage() {
        assert!(event_priority(EventType::PipelineDrop) > event_priority(EventType::Congestion));
        assert!(event_priority(EventType::MmuDrop) > event_priority(EventType::PathChange));
        assert!(event_priority(EventType::InterSwitchDrop) > event_priority(EventType::Pause));
        assert!(event_priority(EventType::Congestion) > event_priority(EventType::PathChange));
    }

    #[test]
    fn ledger_balance_and_breakdown() {
        let mut l = DeliveryLedger { generated: 100, delivered: 80, ..Default::default() };
        assert!(!l.balanced());
        assert_eq!(l.missing(), 20);
        l.shed_stack = 5;
        l.shed_transport = 10;
        l.pending = 5;
        l.assert_balanced();
        assert_eq!(l.shed_total(), 15);
        l.delivered += 1; // double delivery must also trip the invariant
        assert!(!l.balanced());
        assert_eq!(l.surplus(), 1);
    }

    #[test]
    fn ledger_counts_corruption_separately() {
        let l = DeliveryLedger {
            generated: 100,
            delivered: 90,
            pending: 3,
            lost_to_crash: 4,
            corrupted: 3,
            ..Default::default()
        };
        l.assert_balanced();
        assert_eq!(l.missing(), 0);
        let silent = DeliveryLedger {
            generated: 100,
            delivered: 90,
            pending: 3,
            lost_to_crash: 4,
            ..Default::default()
        };
        assert_eq!(silent.missing(), 3, "uncounted corruption must show as silent loss");
    }

    #[test]
    fn corruption_plan_defaults_inactive() {
        let p = FaultPlan::none();
        assert!(!p.cebp_corruption.is_active());
        assert!(!p.notification_corruption.is_active());
        assert!(!p.torn_wal.is_active());
        assert!(!p.clock.is_active());
        assert!(DeviceClock::new(&p.clock, p.seed, 9).is_identity());
    }

    #[test]
    fn ledger_counts_crash_losses_separately() {
        let l = DeliveryLedger {
            generated: 100,
            delivered: 90,
            pending: 4,
            lost_to_crash: 6,
            ..Default::default()
        };
        l.assert_balanced();
        assert_eq!(l.missing(), 0);
        let silent = DeliveryLedger { generated: 100, delivered: 94, ..Default::default() };
        assert_eq!(silent.missing(), 6, "without lost_to_crash the same run shows silent loss");
    }

    #[test]
    fn ledger_counts_malformed_separately() {
        let l = DeliveryLedger {
            generated: 100,
            delivered: 88,
            pending: 2,
            malformed: 10,
            ..Default::default()
        };
        l.assert_balanced();
        assert_eq!(l.missing(), 0);
        let silent =
            DeliveryLedger { generated: 100, delivered: 88, pending: 2, ..Default::default() };
        assert_eq!(silent.missing(), 10, "uncounted malformed records must show as silent loss");
    }

    #[test]
    fn ledger_counts_buffered_separately() {
        let l = DeliveryLedger {
            generated: 100,
            delivered: 80,
            pending: 5,
            buffered: 15,
            ..Default::default()
        };
        l.assert_balanced();
        assert_eq!(l.missing(), 0);
        let silent =
            DeliveryLedger { generated: 100, delivered: 80, pending: 5, ..Default::default() };
        assert_eq!(silent.missing(), 15, "spill-resident events must be accounted as buffered");
    }

    #[test]
    fn seeded_crash_schedule_is_deterministic_and_in_window() {
        let w = Window { start_ns: 1_000, end_ns: 9_000 };
        let devices = [3u32, 7, 11];
        let a = seeded_device_crashes(0xABCD, &devices, w, 500, CrashKind::Hard);
        let b = seeded_device_crashes(0xABCD, &devices, w, 500, CrashKind::Hard);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), devices.len());
        for c in &a {
            assert!(w.contains(c.at_ns), "kill inside the window: {c:?}");
            assert_eq!(c.restart_ns, c.at_ns + 500);
            assert_eq!(c.kind, CrashKind::Hard);
        }
        // Devices get independent draws, not the same offset.
        assert!(a.windows(2).any(|p| p[0].at_ns != p[1].at_ns));
        let c = seeded_device_crashes(0xABCE, &devices, w, 500, CrashKind::Hard);
        assert_ne!(a, c, "different seeds should perturb the schedule");
    }

    #[test]
    fn cpu_factor_takes_worst_overlap() {
        let p = FaultPlan {
            cpu_overload: vec![
                OverloadWindow { window: Window { start_ns: 0, end_ns: 100 }, factor: 4.0 },
                OverloadWindow { window: Window { start_ns: 50, end_ns: 80 }, factor: 10.0 },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(p.cpu_factor(60), 10.0);
        assert_eq!(p.cpu_factor(90), 4.0);
        assert_eq!(p.cpu_factor(200), 1.0);
    }
}
