//! Event information extraction (§3.4): reduce a selected event packet
//! (hundreds of bytes) to the fixed 24-byte [`EventRecord`], keeping only
//! the 5-tuple, switch-port-queue context, event-specific data, counter,
//! and the data-plane pre-computed hash.

use fet_packet::event::{EventDetail, EventRecord, EventType, EVENT_RECORD_LEN};
use fet_packet::FlowKey;

/// Stateless record builder with volume accounting (it is the accounting
/// that regenerates the "reduce the traffic by about 97%" claim).
#[derive(Debug, Default)]
pub struct Extractor {
    /// Bytes of the original event packets that entered extraction.
    pub input_bytes: u64,
    /// Bytes of the 24-byte records produced.
    pub output_bytes: u64,
    /// Records produced.
    pub records: u64,
}

impl Extractor {
    /// Fresh extractor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the 24-byte record for an event detected on a packet of
    /// `original_len` bytes.
    pub fn extract(
        &mut self,
        ty: EventType,
        flow: FlowKey,
        detail: EventDetail,
        counter: u16,
        hash: u32,
        original_len: usize,
    ) -> EventRecord {
        self.input_bytes += original_len as u64;
        self.output_bytes += EVENT_RECORD_LEN as u64;
        self.records += 1;
        EventRecord { ty, flow, detail, counter, hash }
    }

    /// Fraction of volume removed by extraction so far.
    pub fn reduction(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        1.0 - self.output_bytes as f64 / self.input_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            1,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            2,
        )
    }

    #[test]
    fn record_carries_all_fields() {
        let mut e = Extractor::new();
        let r = e.extract(
            EventType::Congestion,
            flow(),
            EventDetail::Congestion { egress_port: 3, queue: 1, latency_us: 77 },
            5,
            0xdead,
            724,
        );
        assert_eq!(r.ty, EventType::Congestion);
        assert_eq!(r.counter, 5);
        assert_eq!(r.hash, 0xdead);
        assert_eq!(e.records, 1);
    }

    #[test]
    fn reduction_matches_paper_for_average_packets() {
        // Data-center average packet ≈ 724 B (paper cites [8]); 24/724 ≈ 97%.
        let mut e = Extractor::new();
        for _ in 0..100 {
            e.extract(
                EventType::Congestion,
                flow(),
                EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: 1 },
                1,
                0,
                724,
            );
        }
        assert!((e.reduction() - (1.0 - 24.0 / 724.0)).abs() < 1e-9);
        assert!(e.reduction() > 0.96);
    }

    #[test]
    fn empty_extractor_reports_zero() {
        assert_eq!(Extractor::new().reduction(), 0.0);
    }
}
