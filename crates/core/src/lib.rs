//! NetSeer — flow event telemetry on an emulated programmable data plane.
//!
//! This crate is the paper's primary contribution: an always-on monitor
//! that detects every performance-critical data-plane event at flow
//! granularity, then deduplicates, compresses, batches, and reliably
//! reports it — almost entirely inside the (emulated) switch pipeline.
//!
//! Pipeline (paper Figure 2):
//!
//! ```text
//! raw packets ──► event packet detection (§3.3)      [detect::*]
//!             ──► group-caching deduplication (§3.4) [dedup]
//!             ──► event info extraction to 24 B      [extract]
//!             ──► circulating event batching (§3.5)  [batch]
//!             ──► PCIe → switch CPU: FP elimination,
//!                 pacing (§3.6)                      [cpu]
//!             ──► reliable transport to backend      [transport]
//!             ──► storage + flow/device/type/period
//!                 queries (§3.2 step 4)              [storage]
//! ```
//!
//! [`monitor::NetSeerMonitor`] wires everything into the
//! [`fet_netsim::SwitchMonitor`] hook points of a simulated switch or NIC.
//!
//! # Example
//!
//! Deploy NetSeer fleet-wide on the paper's testbed topology, inject a
//! routing blackhole, and query the backend like an operator:
//!
//! ```
//! use fet_netsim::{Simulator, MILLIS};
//! use fet_netsim::host::FlowSpec;
//! use fet_netsim::routing::{install_ecmp_routes, remove_route};
//! use fet_netsim::topology::{build_fat_tree, FatTreeParams};
//! use fet_packet::{EventType, FlowKey};
//! use netseer::deploy::{collect_events, deploy, DeployOptions};
//! use netseer::Query;
//!
//! let mut sim = Simulator::new();
//! let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
//! install_ecmp_routes(&mut sim);
//! deploy(&mut sim, &DeployOptions::default());
//!
//! // A customer flow, and a fault that blackholes it mid-run.
//! let flow = FlowKey::tcp(ft.host_ips[0], 5_000, ft.host_ips[7], 443);
//! let idx = sim.host_mut(ft.hosts[0]).add_flow(FlowSpec {
//!     key: flow,
//!     total_bytes: 2_000_000,
//!     pkt_payload: 1_000,
//!     rate_gbps: 5.0,
//!     start_ns: 0,
//!     dscp: 0,
//! });
//! sim.schedule_flow(ft.hosts[0], idx);
//! let (tor, victim_ip) = (ft.edges[1][1], ft.host_ips[7]);
//! sim.schedule_control(MILLIS, move |s| remove_route(s, tor, victim_ip));
//! sim.run_until(20 * MILLIS);
//!
//! // One query answers "did the network touch this flow, and where?"
//! let store = collect_events(&mut sim);
//! let drops = store.query(&Query::any().flow(flow).ty(EventType::PipelineDrop));
//! assert!(!drops.is_empty());
//! assert_eq!(drops[0].device, tor);
//! ```

#![warn(missing_docs)]

pub mod acl_agg;
pub mod batch;
pub mod capacity;
pub mod config;
pub mod cpu;
pub mod dedup;
pub mod deploy;
pub mod detect;
pub mod extract;
pub mod faults;
pub mod monitor;
pub mod recovery;
pub mod spill;
pub mod storage;
pub mod tables;
pub mod transport;
pub mod watchdog;
pub mod wire;

pub use config::{CollectorConfig, NetSeerConfig};
pub use faults::{
    CollectorCrash, CorruptionGen, CorruptionSpec, CrashKind, DeliveryLedger, DeviceCrash,
    FaultPlan, LossProcess, Window,
};
pub use monitor::{NetSeerMonitor, Role};
pub use recovery::{
    run_collector_crash_drill, schedule_device_crashes, Collector, CrashLog, CrashReport,
    PoisonFrame,
};
pub use spill::SpillStore;
pub use storage::{EventStore, Query, StoredEvent};
pub use watchdog::{schedule_watchdog, schedule_wedge, Incident, WatchdogConfig, WatchdogLog};
pub use wire::{WireAdmission, WireConfig, WireIngest};
