//! Flat, cache-friendly replacements for the per-packet `HashMap`s in the
//! monitor hot path.
//!
//! A hardware pipeline indexes register arrays by port number and by event
//! type — it never hashes. Mirroring that, [`PortTable`] is a 256-slot
//! array keyed directly by the `u8` port and [`DedupTable`] is a 6-slot
//! array keyed by the [`EventType`] discriminant. Both turn the per-packet
//! map lookups (hash + probe + possible allocation) into a bounds-free
//! index, which is what lets the steady-state packet path run without
//! touching the allocator.

use crate::dedup::GroupCache;
use fet_packet::event::{EventType, ALL_EVENT_TYPES};

/// Sparse per-port state addressed directly by the `u8` port number.
///
/// Drop-in replacement for `HashMap<u8, T>` on the hot path: `get` /
/// `get_mut` are a single indexed load, and iteration is in ascending
/// port order (so scrapes that used to sort after collecting from a map
/// are naturally sorted).
#[derive(Debug)]
pub struct PortTable<T> {
    slots: Box<[Option<T>; 256]>,
    /// Number of occupied slots.
    len: usize,
}

impl<T> Default for PortTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PortTable<T> {
    /// An empty table (one heap allocation for the slot array, ever).
    pub fn new() -> Self {
        PortTable { slots: Box::new(std::array::from_fn(|_| None)), len: 0 }
    }

    /// State for `port`, if present.
    #[inline]
    pub fn get(&self, port: u8) -> Option<&T> {
        self.slots[usize::from(port)].as_ref()
    }

    /// Mutable state for `port`, if present.
    #[inline]
    pub fn get_mut(&mut self, port: u8) -> Option<&mut T> {
        self.slots[usize::from(port)].as_mut()
    }

    /// State for `port`, created with `make` on first touch.
    #[inline]
    pub fn get_or_insert_with(&mut self, port: u8, make: impl FnOnce() -> T) -> &mut T {
        let slot = &mut self.slots[usize::from(port)];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Occupied ports, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &T)> {
        self.slots.iter().enumerate().filter_map(|(p, s)| s.as_ref().map(|t| (p as u8, t)))
    }

    /// Occupied ports with mutable state, ascending.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u8, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(p, s)| s.as_mut().map(|t| (p as u8, t)))
    }

    /// Occupied slots, ascending port order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Occupied slots, mutable, ascending port order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no port has state.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The six per-event-type group caches as a flat array indexed by the
/// [`EventType`] discriminant (replaces `HashMap<EventType, GroupCache>`).
#[derive(Debug)]
pub struct DedupTable {
    caches: [GroupCache; 6],
}

#[inline]
fn idx(ty: EventType) -> usize {
    ty as usize
}

impl DedupTable {
    /// Build the table, constructing each type's cache with `make`.
    pub fn build(mut make: impl FnMut(EventType) -> GroupCache) -> Self {
        DedupTable { caches: ALL_EVENT_TYPES.map(&mut make) }
    }

    /// The cache for an event type (always present).
    #[inline]
    pub fn get(&self, ty: EventType) -> &GroupCache {
        &self.caches[idx(ty)]
    }

    /// The mutable cache for an event type (always present).
    #[inline]
    pub fn get_mut(&mut self, ty: EventType) -> &mut GroupCache {
        &mut self.caches[idx(ty)]
    }

    /// `(type, cache)` pairs in discriminant (wire-code) order.
    pub fn iter(&self) -> impl Iterator<Item = (EventType, &GroupCache)> {
        ALL_EVENT_TYPES.iter().map(move |&ty| (ty, &self.caches[idx(ty)]))
    }

    /// All caches in discriminant order.
    pub fn values(&self) -> impl Iterator<Item = &GroupCache> {
        self.caches.iter()
    }

    /// All caches, mutable, in discriminant order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut GroupCache> {
        self.caches.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_table_basic() {
        let mut t: PortTable<u32> = PortTable::new();
        assert!(t.is_empty());
        assert!(t.get(7).is_none());
        *t.get_or_insert_with(7, || 1) += 10;
        *t.get_or_insert_with(3, || 2) += 20;
        *t.get_or_insert_with(7, || 999) += 100; // existing slot kept
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(7), Some(&111));
        assert_eq!(t.get_mut(3).copied(), Some(22));
        assert_eq!(t.get(0), None);
        let pairs: Vec<(u8, u32)> = t.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(pairs, vec![(3, 22), (7, 111)], "ascending port order");
        assert_eq!(t.values().count(), 2);
        for v in t.values_mut() {
            *v = 0;
        }
        assert_eq!(t.get(3), Some(&0));
    }

    #[test]
    fn port_table_edges() {
        let mut t: PortTable<&'static str> = PortTable::new();
        t.get_or_insert_with(0, || "zero");
        t.get_or_insert_with(255, || "max");
        assert_eq!(t.get(0), Some(&"zero"));
        assert_eq!(t.get(255), Some(&"max"));
        assert_eq!(t.iter().map(|(p, _)| p).collect::<Vec<_>>(), vec![0, 255]);
    }

    #[test]
    fn dedup_table_indexes_every_type() {
        let mut t = DedupTable::build(|ty| GroupCache::new("t", 8, 128, ty as u32));
        for ty in ALL_EVENT_TYPES {
            t.get_mut(ty).offered += 1;
        }
        for ty in ALL_EVENT_TYPES {
            assert_eq!(t.get(ty).offered, 1, "{ty:?}");
        }
        assert_eq!(t.values().count(), 6);
        let order: Vec<EventType> = t.iter().map(|(ty, _)| ty).collect();
        assert_eq!(order.as_slice(), &ALL_EVENT_TYPES, "wire-code order");
    }
}
