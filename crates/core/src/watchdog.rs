//! Liveness supervision for switch-CPU monitor processes.
//!
//! The paper's switch-CPU component (§3.6) is a single point of silence: if
//! the process wedges — a stuck lock, a hung driver call — it stops
//! draining CEBPs, stops checkpointing, and stops reporting, while the data
//! plane keeps forwarding as if nothing were wrong. Crash faults
//! ([`schedule_device_crashes`](crate::recovery::schedule_device_crashes))
//! model a process that *dies*; this module models one that *hangs*.
//!
//! The watchdog samples every supervised monitor's heartbeat counter on a
//! fixed cadence. A monitor whose heartbeat freezes for
//! [`missed_beats`](WatchdogConfig::missed_beats) consecutive checks is
//! declared **suspect**: the watchdog hard-kills it (a wedged process
//! cannot flush its WAL tail, so the kill is `CrashKind::Hard`) and
//! schedules a restart through the normal recovery path — checkpoint + WAL
//! replay, transport reconnect under a new epoch, neighbor gap-detector
//! re-base. Every supervision action is recorded as an [`Incident`].
//!
//! The state machine per monitor:
//!
//! ```text
//! healthy --heartbeat frozen--> stalled(n) --n == missed_beats--> suspect
//!    ^                              |                                |
//!    |                          heartbeat                        hard kill
//!    |                           advanced                      + restart at
//!    |                              v                          +restart_delay
//!    +--------------------------- healthy <----- restarted ---------+
//! ```
//!
//! Checks are pre-scheduled simulator controls, so the whole protocol is
//! deterministic under a seed and bit-identical across
//! `run_until_parallel` shard counts (controls always run serially on the
//! master thread, and a control may schedule further controls).

use crate::faults::CrashKind;
use crate::monitor::NetSeerMonitor;
use crate::recovery::CrashReport;
use fet_netsim::engine::Simulator;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Supervision policy.
///
/// Liveness is **counter-primary**: the watchdog compares heartbeat
/// *counters*, never heartbeat *timestamps*, so a monitor whose local
/// clock drifts, steps, or freezes can never be declared suspect while
/// its control loop still ticks — zero false positives at any drift, by
/// construction. Local-clock stamps are sampled purely for observability
/// (see [`WatchdogLog::max_abs_skew_ns`]).
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Heartbeat sampling cadence, ns.
    pub check_interval_ns: u64,
    /// Consecutive frozen-heartbeat checks before a monitor is suspect.
    pub missed_beats: u32,
    /// Delay between the hard kill and the supervised restart, ns.
    pub restart_delay_ns: u64,
    /// Clock-skew observability threshold, ns: a healthy monitor whose
    /// local heartbeat stamp deviates from global time by more than this
    /// is *flagged* in the log ([`WatchdogLog::drift_flagged`]) — an
    /// operator signal, never a kill reason.
    pub drift_tolerance_ns: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            check_interval_ns: 500 * fet_netsim::MICROS,
            missed_beats: 2,
            restart_delay_ns: 100 * fet_netsim::MICROS,
            drift_tolerance_ns: fet_netsim::MILLIS,
        }
    }
}

/// One supervision incident: a monitor declared suspect and restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    /// The silent device.
    pub device: u32,
    /// When the watchdog declared it suspect (and hard-killed it), ns.
    pub declared_ns: u64,
    /// The heartbeat value it was frozen at.
    pub stuck_heartbeat: u64,
    /// When the supervised restart fired, ns.
    pub restart_ns: u64,
}

/// Shared handle to the watchdog's incident and restart records. The
/// supervision actions run inside the simulator, so results surface here
/// after `run_until`.
#[derive(Debug, Clone, Default)]
pub struct WatchdogLog {
    incidents: Arc<Mutex<Vec<Incident>>>,
    restarts: Arc<Mutex<Vec<CrashReport>>>,
    skew: Arc<Mutex<SkewStats>>,
}

/// Clock-skew observability accumulated across all checks.
#[derive(Debug, Clone, Copy, Default)]
struct SkewStats {
    max_abs_ns: u64,
    flagged: u64,
}

impl WatchdogLog {
    /// All incidents, in declaration order.
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents.lock().unwrap().clone()
    }

    /// Crash reports of the supervised restarts, in restart order.
    pub fn restarts(&self) -> Vec<CrashReport> {
        self.restarts.lock().unwrap().clone()
    }

    /// Number of incidents declared.
    pub fn len(&self) -> usize {
        self.incidents.lock().unwrap().len()
    }

    /// True when no monitor was ever declared suspect.
    pub fn is_empty(&self) -> bool {
        self.incidents.lock().unwrap().is_empty()
    }

    /// The largest `|local heartbeat stamp - global check time|` observed
    /// across every sampled monitor — how wrong the fleet's clocks got.
    pub fn max_abs_skew_ns(&self) -> u64 {
        self.skew.lock().unwrap().max_abs_ns
    }

    /// Checks where a healthy monitor's skew exceeded
    /// [`WatchdogConfig::drift_tolerance_ns`]. An operator signal only:
    /// flagged monitors are never killed for drift.
    pub fn drift_flagged(&self) -> u64 {
        self.skew.lock().unwrap().flagged
    }
}

/// Per-monitor supervision state.
#[derive(Debug, Clone, Copy, Default)]
struct Tracked {
    last_beat: u64,
    stalls: u32,
}

/// Script a wedge fault: at `at_ns` the device's control loop hangs — the
/// heartbeat freezes, batches pile up and shed, checkpoints stop — until a
/// (watchdog-driven) restart clears it.
pub fn schedule_wedge(sim: &mut Simulator, device: u32, at_ns: u64) {
    sim.schedule_control(at_ns, move |s| {
        if let Some(mut bm) = s.take_node_monitor(device) {
            if let Some(ns) = bm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                ns.wedge();
            }
            s.install_node_monitor(device, bm);
        }
    });
}

/// Supervise `devices` with heartbeat checks every
/// [`check_interval_ns`](WatchdogConfig::check_interval_ns) until
/// `until_ns`. Call after [`deploy`](crate::deploy::deploy) and before
/// `run_until`; size the horizon so a late incident's restart (declared +
/// [`restart_delay_ns`](WatchdogConfig::restart_delay_ns)) still fits.
pub fn schedule_watchdog(
    sim: &mut Simulator,
    devices: &[u32],
    cfg: WatchdogConfig,
    until_ns: u64,
) -> WatchdogLog {
    assert!(cfg.missed_beats > 0, "a zero-tolerance watchdog would kill healthy monitors");
    let log = WatchdogLog::default();
    let tracked: Arc<Mutex<HashMap<u32, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    // Suspect monitors wait here, detached, between the kill and restart.
    let stash: Arc<Mutex<HashMap<u32, Box<dyn fet_netsim::monitor::SwitchMonitor>>>> =
        Arc::new(Mutex::new(HashMap::new()));

    let interval = cfg.check_interval_ns.max(1);
    let devices: Arc<Vec<u32>> = Arc::new(devices.to_vec());
    let mut check_at = interval;
    while check_at <= until_ns {
        let tracked = Arc::clone(&tracked);
        let stash = Arc::clone(&stash);
        let devices = Arc::clone(&devices);
        let incidents = Arc::clone(&log.incidents);
        let restarts = Arc::clone(&log.restarts);
        let skew_stats = Arc::clone(&log.skew);
        sim.schedule_control(check_at, move |s| {
            for &device in devices.iter() {
                // A detached monitor (crashed, or already suspect) has no
                // heartbeat to sample; its restart resets the tracker.
                let Some(mut bm) = s.take_node_monitor(device) else { continue };
                let Some(ns) = bm.as_any_mut().downcast_mut::<NetSeerMonitor>() else {
                    s.install_node_monitor(device, bm);
                    continue;
                };
                let beat = ns.heartbeat;
                // Observability only: record how far the monitor's local
                // clock has wandered from the supervisor's. Liveness below
                // compares counters, so skew can never cause a kill.
                let skew_ns = ns.clock().skew_at(check_at).unsigned_abs();
                {
                    let mut st = skew_stats.lock().unwrap();
                    st.max_abs_ns = st.max_abs_ns.max(skew_ns);
                    if skew_ns > cfg.drift_tolerance_ns {
                        st.flagged += 1;
                    }
                }
                let mut map = tracked.lock().unwrap();
                let t = map.entry(device).or_insert(Tracked { last_beat: beat, stalls: 0 });
                if beat == t.last_beat {
                    t.stalls += 1;
                } else {
                    *t = Tracked { last_beat: beat, stalls: 0 };
                }
                if t.stalls < cfg.missed_beats {
                    drop(map);
                    s.install_node_monitor(device, bm);
                    continue;
                }
                // Suspect: hard-kill now (a hung process flushes nothing),
                // stash the monitor, and schedule the supervised restart.
                drop(map);
                let restart_ns = check_at + cfg.restart_delay_ns.max(1);
                ns.crash(CrashKind::Hard, check_at);
                incidents.lock().unwrap().push(Incident {
                    device,
                    declared_ns: check_at,
                    stuck_heartbeat: beat,
                    restart_ns,
                });
                stash.lock().unwrap().insert(device, bm);

                let tracked = Arc::clone(&tracked);
                let stash = Arc::clone(&stash);
                let restarts = Arc::clone(&restarts);
                s.schedule_control(restart_ns, move |s| {
                    let Some(mut bm) = stash.lock().unwrap().remove(&device) else {
                        return;
                    };
                    if let Some(ns) = bm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                        restarts.lock().unwrap().push(ns.restart(restart_ns));
                        // Fresh baseline: supervision resumes from the
                        // restarted process's first heartbeat.
                        tracked
                            .lock()
                            .unwrap()
                            .insert(device, Tracked { last_beat: ns.heartbeat, stalls: 0 });
                    }
                    s.install_node_monitor(device, bm);
                    // Neighbors re-sync their gap detectors on the
                    // restarted tagger instead of charging the sequence
                    // discontinuity as an inter-switch loss burst.
                    let ports: Vec<u8> = s
                        .adjacency()
                        .get(&device)
                        .into_iter()
                        .flatten()
                        .map(|&(port, _)| port)
                        .collect();
                    for port in ports {
                        let Some((nb, nb_port)) = s.peer_of(device, port) else { continue };
                        if let Some(mut nm) = s.take_node_monitor(nb) {
                            if let Some(ns) = nm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                                ns.rebase_ingress(nb_port);
                            }
                            s.install_node_monitor(nb, nm);
                        }
                    }
                });
            }
        });
        check_at += interval;
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = WatchdogConfig::default();
        assert!(cfg.check_interval_ns > 0);
        assert!(cfg.missed_beats > 0);
        assert!(cfg.restart_delay_ns > 0);
    }

    #[test]
    fn empty_log_reports_empty() {
        let log = WatchdogLog::default();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.incidents().is_empty());
        assert!(log.restarts().is_empty());
    }
}
