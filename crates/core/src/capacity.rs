//! Capacity models for inter-switch drop detection (paper §4 "Capacity"
//! and Figure 15).
//!
//! The ring buffer must hold a dropped packet's (ID, flow) until the
//! downstream's loss notification makes it back — during that feedback
//! interval the port keeps transmitting and overwriting slots. Fig. 15(a)
//! asks: how many slots to retrieve at least one dropped packet of a given
//! size? Fig. 15(b): how much SRAM to survive N *consecutive* drops?

/// Nanoseconds to serialize one packet of `pkt_bytes` at `gbps`.
fn pkt_time_ns(pkt_bytes: usize, gbps: f64) -> f64 {
    pkt_bytes as f64 * 8.0 / gbps
}

/// Feedback latency: detection (the next packet must arrive and reveal the
/// gap) + notification round trip on the high-priority queue.
pub fn feedback_latency_ns(pkt_bytes: usize, gbps: f64, link_rtt_ns: u64) -> f64 {
    pkt_time_ns(pkt_bytes, gbps) + link_rtt_ns as f64
}

/// Minimum ring slots (per port) to retrieve at least one dropped packet of
/// `pkt_bytes` on a `gbps` link with `link_rtt_ns` notification RTT
/// (regenerates Figure 15(a)). Smaller packets serialize faster, so more
/// packets overwrite the ring during feedback ⇒ more slots needed.
pub fn min_ring_slots(pkt_bytes: usize, gbps: f64, link_rtt_ns: u64) -> usize {
    let overwrites =
        feedback_latency_ns(pkt_bytes, gbps, link_rtt_ns) / pkt_time_ns(pkt_bytes, gbps);
    overwrites.ceil() as usize + 1
}

/// Ring slots needed to detect `consecutive_drops` back-to-back losses:
/// the burst occupies that many slots, plus the feedback-interval
/// overwrites on top.
pub fn slots_for_consecutive_drops(
    consecutive_drops: usize,
    pkt_bytes: usize,
    gbps: f64,
    link_rtt_ns: u64,
) -> usize {
    consecutive_drops + min_ring_slots(pkt_bytes, gbps, link_rtt_ns)
}

/// Bytes of one ring slot. The emulator stores the full 4 B ID + 13 B flow;
/// the paper packs ≈12 B by stealing spare bits (its 800 KB figure for 64
/// ports × 1,000 drops implies ~12.5 B/slot).
pub const SLOT_BYTES_EXACT: usize = 17;

/// The paper's packed slot size.
pub const SLOT_BYTES_PACKED: f64 = 12.5;

/// Total SRAM (bytes) for `ports` ports × `slots` slots at `slot_bytes`.
pub fn ring_sram_bytes(ports: usize, slots: usize, slot_bytes: f64) -> f64 {
    ports as f64 * slots as f64 * slot_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15a_1024b_needs_about_25_slots() {
        // Paper: ">25 slots to retrieve at least one 1024-byte dropped
        // packet". At 100G a 1024B packet is 81.9ns; with ~2µs feedback
        // that's ~25 overwrites.
        let slots = min_ring_slots(1024, 100.0, 2_000);
        assert!((24..=28).contains(&slots), "slots = {slots}");
    }

    #[test]
    fn smaller_packets_need_more_slots() {
        let s64 = min_ring_slots(64, 100.0, 2_000);
        let s256 = min_ring_slots(256, 100.0, 2_000);
        let s1024 = min_ring_slots(1024, 100.0, 2_000);
        let s1500 = min_ring_slots(1500, 100.0, 2_000);
        assert!(s64 > s256 && s256 > s1024 && s1024 > s1500);
        // 64B packets at 100G: ~5.12ns each → ~392 slots.
        assert!((350..=450).contains(&s64), "s64 = {s64}");
    }

    #[test]
    fn fig15b_800kb_covers_1000_consecutive_drops_on_64_ports() {
        // Paper: 1,000 consecutive 1024B drops per port, 64×100G ports,
        // ~800KB SRAM with the packed slot format.
        let slots = slots_for_consecutive_drops(1_000, 1024, 100.0, 2_000);
        let sram = ring_sram_bytes(64, slots, SLOT_BYTES_PACKED);
        assert!((700_000.0..=900_000.0).contains(&sram), "sram = {:.0} KB", sram / 1024.0);
        // With the exact 17B slots the emulator stores, ~1.1 MB.
        let exact = ring_sram_bytes(64, slots, SLOT_BYTES_EXACT as f64);
        assert!(exact > sram);
    }

    #[test]
    fn sram_grows_linearly_with_drops() {
        let s1 = slots_for_consecutive_drops(100, 1024, 100.0, 2_000);
        let s2 = slots_for_consecutive_drops(200, 1024, 100.0, 2_000);
        assert_eq!(s2 - s1, 100);
    }
}
