//! The switch-CPU stage (§3.6): PCIe admission, false-positive
//! elimination, and the cycle-cost model behind the hash-offload speedup.
//!
//! Calibration (paper Figure 14): with 2 × 2.5 GHz cores and hash offload,
//! the CPU sustains ≈82 Meps at 1 K concurrent flows and ≈4.5 Meps at 1 M
//! flows — i.e. per-event cost grows with the working set as the flow map
//! stops fitting in cache. We model cycles/event as
//! `base + growth × log2(flows / 1024)` (flows > 1024), fit to those two
//! end points, and add a hash cost when the data plane did **not**
//! pre-compute the flow hash, sized so offloading improves capacity 2.5×
//! (the paper's §5.2 number).

use crate::config::{CapacityModel, NetSeerConfig};
use crate::faults::{stall_release, OverloadWindow, Window};
use fet_packet::event::EventRecord;
use fet_pdp::RateLimitedChannel;
use std::collections::HashMap;

/// Cycles per event at ≤1K concurrent flows (fit to 82 Meps @ 5 Gcycles/s).
pub const BASE_CYCLES: f64 = 61.0;

/// Extra cycles per event per doubling of the flow working set
/// (fit to 4.5 Meps @ 1M flows).
pub const GROWTH_CYCLES_PER_DOUBLING: f64 = 105.0;

/// Hash-computation multiplier when offload is disabled: capacity drops
/// 2.5× (hash cost = 1.5 × the lookup cost).
pub const HASH_COST_FACTOR: f64 = 1.5;

/// Per-event CPU cycles for a flow working set of `flows`.
pub fn cycles_per_event(flows: usize, hash_offload: bool) -> f64 {
    let lookup = if flows <= 1024 {
        BASE_CYCLES
    } else {
        BASE_CYCLES + GROWTH_CYCLES_PER_DOUBLING * ((flows as f64) / 1024.0).log2()
    };
    if hash_offload {
        lookup
    } else {
        lookup * (1.0 + HASH_COST_FACTOR)
    }
}

/// Analytic CPU capacity in events/second (regenerates Figure 14(b)).
pub fn cpu_capacity_eps(cap: &CapacityModel, flows: usize, hash_offload: bool) -> f64 {
    let cycles_per_sec = cap.cpu_ghz * 1e9 * f64::from(cap.cpu_cores);
    cycles_per_sec / cycles_per_event(flows, hash_offload)
}

/// Analytic PCIe throughput for a batch size (regenerates Figure 14(a)):
/// the channel moves `wire_bytes(batch)` per batch; small batches waste the
/// per-message DMA overhead.
pub fn pcie_throughput(cap: &CapacityModel, batch_size: usize) -> (f64, f64) {
    // Per-message DMA/doorbell overhead, bytes-equivalent.
    const MSG_OVERHEAD_BYTES: f64 = 16.0;
    let payload = (batch_size * fet_packet::EVENT_RECORD_LEN) as f64;
    let eff = payload / (payload + MSG_OVERHEAD_BYTES);
    let gbps = cap.pcie_gbps() * eff;
    let eps = gbps * 1e9 / 8.0 / fet_packet::EVENT_RECORD_LEN as f64;
    (eps / 1e6, gbps)
}

/// One event after CPU processing, stamped with its completion time.
#[derive(Debug, Clone, Copy)]
pub struct CpuOutput {
    /// CPU completion time, ns.
    pub done_ns: u64,
    /// The surviving event.
    pub record: EventRecord,
}

/// The switch CPU: PCIe channel in front, FP-elimination hash map inside.
#[derive(Debug)]
pub struct SwitchCpu {
    pcie: RateLimitedChannel,
    capacity: CapacityModel,
    hash_offload: bool,
    fp_window_ns: u64,
    enable_fp: bool,
    /// Last initial-report time per (type code, flow hash).
    seen: HashMap<(u8, u32), u64>,
    cpu_free_ns: u64,
    /// Overload controller: maximum CPU backlog (how far `cpu_free_ns` may
    /// run ahead of a batch's arrival) before the batch is shed-and-counted
    /// instead of queueing unboundedly.
    max_backlog_ns: u64,
    /// Scheduled PCIe stall windows (from the device fault plan).
    pcie_stalls: Vec<Window>,
    /// Scheduled CPU overload windows: per-event cost multipliers.
    overload: Vec<OverloadWindow>,
    /// Events received from PCIe.
    pub received: u64,
    /// Initial reports eliminated as false positives.
    pub fp_eliminated: u64,
    /// Batches rejected by PCIe overflow.
    pub pcie_rejected: u64,
    /// Events inside PCIe-rejected batches (for delivery accounting).
    pub pcie_rejected_events: u64,
    /// Events shed by the overload controller.
    pub shed_overload: u64,
    /// Total busy CPU time, ns.
    pub busy_ns: u64,
}

impl SwitchCpu {
    /// Create from a NetSeer configuration.
    pub fn new(cfg: &NetSeerConfig) -> Self {
        SwitchCpu {
            pcie: RateLimitedChannel::new(
                "pcie",
                cfg.capacity.pcie_gbps(),
                // A few MB of DMA ring is plenty.
                4 * 1024 * 1024,
            ),
            capacity: cfg.capacity,
            hash_offload: cfg.hash_offload,
            fp_window_ns: cfg.fp_window_ns,
            enable_fp: cfg.enable_fp_elimination,
            seen: HashMap::new(),
            cpu_free_ns: 0,
            max_backlog_ns: cfg.cpu_max_backlog_ns.max(1),
            pcie_stalls: cfg.faults.pcie_stalls.clone(),
            overload: cfg.faults.cpu_overload.clone(),
            received: 0,
            fp_eliminated: 0,
            pcie_rejected: 0,
            pcie_rejected_events: 0,
            shed_overload: 0,
            busy_ns: 0,
        }
    }

    /// Carry the cumulative measurement counters from a pre-crash instance
    /// onto this freshly constructed one. Used by the monitor's restart
    /// path: the counters are telemetry about the whole device lifetime and
    /// must survive restarts (the ledger depends on them), while everything
    /// volatile — the FP-elimination window (`seen`), the DMA ring, the
    /// CPU-backlog clock — starts empty, exactly as on real hardware.
    pub fn carry_counters_from(&mut self, old: &SwitchCpu) {
        self.received = old.received;
        self.fp_eliminated = old.fp_eliminated;
        self.pcie_rejected = old.pcie_rejected;
        self.pcie_rejected_events = old.pcie_rejected_events;
        self.shed_overload = old.shed_overload;
        self.busy_ns = old.busy_ns;
    }

    /// Per-event cost multiplier at `t` from the overload schedule.
    fn overload_factor(&self, t: u64) -> f64 {
        self.overload
            .iter()
            .filter(|o| o.window.contains(t))
            .map(|o| o.factor.max(1.0))
            .fold(1.0, f64::max)
    }

    /// Process one batch arriving from the pipeline at `ready_ns`.
    /// Returns the surviving events with completion timestamps. An empty
    /// vec means the batch was shed — by PCIe rejection or by the overload
    /// controller — and the shed is counted in `pcie_rejected_events` /
    /// `shed_overload` respectively (never silent).
    pub fn process_batch(
        &mut self,
        ready_ns: u64,
        events: &[EventRecord],
        wire_bytes: usize,
    ) -> Vec<CpuOutput> {
        // A scheduled PCIe stall delays DMA admission to the window's end.
        let arrive_ns = stall_release(&self.pcie_stalls, ready_ns).unwrap_or(ready_ns);
        let Some(pcie_done) = self.pcie.offer(arrive_ns, wire_bytes) else {
            self.pcie_rejected += 1;
            self.pcie_rejected_events += events.len() as u64;
            return Vec::new();
        };
        // Overload controller: if the CPU is already this far behind, shed
        // the whole batch and count it rather than queueing unboundedly —
        // bounded-memory degradation instead of an ever-growing backlog.
        if self.cpu_free_ns.saturating_sub(pcie_done) > self.max_backlog_ns {
            self.shed_overload += events.len() as u64;
            return Vec::new();
        }
        let mut out = Vec::with_capacity(events.len());
        let mut t = self.cpu_free_ns.max(pcie_done);
        let cycles_per_sec = self.capacity.cpu_ghz * 1e9 * f64::from(self.capacity.cpu_cores);
        for ev in events {
            self.received += 1;
            let per_event_ns = (cycles_per_event(self.seen.len().max(1), self.hash_offload)
                / cycles_per_sec
                * 1e9
                * self.overload_factor(t))
            .max(1.0) as u64;
            t += per_event_ns;
            self.busy_ns += per_event_ns;
            if self.enable_fp && ev.counter <= 1 {
                // Initial report: a repeat within the window is the
                // collision-induced false positive of §3.6.
                let key = (ev.ty.code(), ev.hash);
                match self.seen.get(&key) {
                    Some(&last) if t.saturating_sub(last) < self.fp_window_ns => {
                        self.fp_eliminated += 1;
                        continue;
                    }
                    _ => {
                        self.seen.insert(key, t);
                    }
                }
            }
            out.push(CpuOutput { done_ns: t, record: *ev });
        }
        self.cpu_free_ns = t;
        out
    }

    /// Current flow working-set estimate.
    pub fn working_set(&self) -> usize {
        self.seen.len()
    }

    /// Drop FP-window entries older than the window (periodic sweep).
    pub fn expire(&mut self, now_ns: u64) {
        let w = self.fp_window_ns;
        self.seen.retain(|_, &mut t| now_ns.saturating_sub(t) < w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{EventDetail, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn ev(n: u16, counter: u16) -> EventRecord {
        EventRecord {
            ty: EventType::Congestion,
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 1]),
                n,
                Ipv4Addr::from_octets([10, 0, 0, 2]),
                80,
            ),
            detail: EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: 0 },
            counter,
            hash: u32::from(n).wrapping_mul(2_654_435_761),
        }
    }

    #[test]
    fn capacity_matches_paper_endpoints() {
        let cap = CapacityModel::default();
        let at_1k = cpu_capacity_eps(&cap, 1_000, true) / 1e6;
        let at_1m = cpu_capacity_eps(&cap, 1_000_000, true) / 1e6;
        assert!((75.0..=90.0).contains(&at_1k), "1K flows: {at_1k} Meps");
        assert!((3.5..=5.5).contains(&at_1m), "1M flows: {at_1m} Meps");
    }

    #[test]
    fn hash_offload_is_2_5x() {
        let cap = CapacityModel::default();
        let with = cpu_capacity_eps(&cap, 10_000, true);
        let without = cpu_capacity_eps(&cap, 10_000, false);
        assert!((with / without - 2.5).abs() < 1e-9);
    }

    #[test]
    fn pcie_throughput_saturates_with_batch() {
        let cap = CapacityModel::default();
        let (eps1, g1) = pcie_throughput(&cap, 1);
        let (eps20, g20) = pcie_throughput(&cap, 20);
        let (eps50, g50) = pcie_throughput(&cap, 50);
        assert!(eps1 < eps20 && eps20 < eps50);
        assert!(g1 < g20 && g20 < g50);
        // At batch ≥20 the paper reports ~18 Gbps with 2 cores.
        assert!(g20 > 17.0, "g20 = {g20}");
        assert!(g50 <= 18.0 + 1e-9);
        // 1-core configuration: ~9.5 Gbps.
        let one = CapacityModel { cpu_cores: 1, ..CapacityModel::default() };
        let (_, g20_1) = pcie_throughput(&one, 20);
        assert!((8.5..=9.5).contains(&g20_1), "1-core: {g20_1}");
    }

    #[test]
    fn fp_elimination_removes_repeated_initial_reports() {
        let mut cpu = SwitchCpu::new(&NetSeerConfig::default());
        let batch = vec![ev(1, 1), ev(1, 1), ev(2, 1)];
        let out = cpu.process_batch(0, &batch, 100);
        // The second initial report of flow 1 is the FP.
        assert_eq!(out.len(), 2);
        assert_eq!(cpu.fp_eliminated, 1);
        // Another batch soon after: flow 1's initial again eliminated.
        let out = cpu.process_batch(1_000, &[ev(1, 1)], 60);
        assert!(out.is_empty());
    }

    #[test]
    fn counter_reports_pass_through() {
        let mut cpu = SwitchCpu::new(&NetSeerConfig::default());
        let out = cpu.process_batch(0, &[ev(1, 1), ev(1, 128), ev(1, 256)], 100);
        assert_eq!(out.len(), 3);
        assert_eq!(cpu.fp_eliminated, 0);
    }

    #[test]
    fn initial_report_passes_again_after_window() {
        let cfg = NetSeerConfig { fp_window_ns: 1_000, ..NetSeerConfig::default() };
        let mut cpu = SwitchCpu::new(&cfg);
        assert_eq!(cpu.process_batch(0, &[ev(1, 1)], 60).len(), 1);
        assert_eq!(cpu.process_batch(10_000, &[ev(1, 1)], 60).len(), 1);
        assert_eq!(cpu.fp_eliminated, 0);
    }

    #[test]
    fn completion_times_are_monotonic() {
        let mut cpu = SwitchCpu::new(&NetSeerConfig::default());
        let batch: Vec<EventRecord> = (0..100).map(|n| ev(n, 1)).collect();
        let out = cpu.process_batch(0, &batch, 2_414);
        for w in out.windows(2) {
            assert!(w[0].done_ns <= w[1].done_ns);
        }
        assert!(cpu.busy_ns > 0);
    }

    #[test]
    fn expire_shrinks_working_set() {
        let cfg = NetSeerConfig { fp_window_ns: 1_000, ..NetSeerConfig::default() };
        let mut cpu = SwitchCpu::new(&cfg);
        cpu.process_batch(0, &(0..50).map(|n| ev(n, 1)).collect::<Vec<_>>(), 1_264);
        assert_eq!(cpu.working_set(), 50);
        cpu.expire(u64::MAX);
        assert_eq!(cpu.working_set(), 0);
    }

    #[test]
    fn overload_controller_sheds_and_counts() {
        let cfg = NetSeerConfig { cpu_max_backlog_ns: 1_000, ..NetSeerConfig::default() };
        let mut cpu = SwitchCpu::new(&cfg);
        let batch: Vec<EventRecord> = (0..50).map(|n| ev(n, 1)).collect();
        let mut processed = 0u64;
        // Hammer batches at t=0: the CPU backlog grows ~610ns per batch,
        // so the controller must start shedding after a couple of batches
        // instead of queueing unboundedly.
        for _ in 0..100 {
            processed += cpu.process_batch(0, &batch, 1_264).len() as u64;
        }
        assert!(cpu.shed_overload > 0, "controller never engaged");
        // Everything is accounted: processed + FP + shed == offered.
        assert_eq!(
            processed + cpu.fp_eliminated + cpu.shed_overload + cpu.pcie_rejected_events,
            100 * 50
        );
        // The backlog oscillates around the bound (shed batches don't
        // advance cpu_free_ns; PCIe keeps draining), never runs away.
        let backlog = cpu.cpu_free_ns;
        assert!(backlog < 100 * 700, "unbounded backlog {}", backlog);
    }

    #[test]
    fn overload_window_slows_processing() {
        use crate::faults::{OverloadWindow, Window};
        let mut cfg = NetSeerConfig::default();
        cfg.faults.cpu_overload =
            vec![OverloadWindow { window: Window { start_ns: 0, end_ns: u64::MAX }, factor: 10.0 }];
        let mut slow = SwitchCpu::new(&cfg);
        let mut fast = SwitchCpu::new(&NetSeerConfig::default());
        let batch: Vec<EventRecord> = (0..50).map(|n| ev(n, 1)).collect();
        let s = slow.process_batch(0, &batch, 1_264);
        let f = fast.process_batch(0, &batch, 1_264);
        assert!(
            s.last().unwrap().done_ns > 5 * f.last().unwrap().done_ns,
            "overload {} vs healthy {}",
            s.last().unwrap().done_ns,
            f.last().unwrap().done_ns
        );
    }

    #[test]
    fn pcie_stall_delays_admission() {
        use crate::faults::Window;
        let mut cfg = NetSeerConfig::default();
        cfg.faults.pcie_stalls = vec![Window { start_ns: 0, end_ns: 1_000_000 }];
        let mut cpu = SwitchCpu::new(&cfg);
        let out = cpu.process_batch(0, &[ev(1, 1)], 100);
        assert_eq!(out.len(), 1);
        assert!(out[0].done_ns >= 1_000_000, "done at {}", out[0].done_ns);
    }

    #[test]
    fn fp_disabled_passes_everything() {
        let cfg = NetSeerConfig { enable_fp_elimination: false, ..NetSeerConfig::default() };
        let mut cpu = SwitchCpu::new(&cfg);
        let out = cpu.process_batch(0, &[ev(1, 1), ev(1, 1), ev(1, 1)], 100);
        assert_eq!(out.len(), 3);
    }
}
