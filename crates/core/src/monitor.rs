//! [`NetSeerMonitor`] — the full NetSeer data-plane program, wired into the
//! emulated switch via [`fet_netsim::SwitchMonitor`], or into a SmartNIC
//! ([`Role::Nic`]) where only the inter-switch drop module runs and events
//! go to a local log (paper §4, "NIC").

use crate::acl_agg::{AclAggregator, AclOutcome};
use crate::batch::{CebpBatcher, PushOutcome};
use crate::config::NetSeerConfig;
use crate::cpu::SwitchCpu;
use crate::dedup::{DedupOutcome, GroupCache};
use crate::detect::{GapDetector, PathTable, PauseTracker, PendingLookups, PortTagger};
use crate::extract::Extractor;
use crate::faults::{streams, CorruptionGen, CrashKind, DeliveryLedger, DeviceClock, LossGen};
use crate::recovery::{CrashReport, DedupSummary, PoisonFrame, RecoveryLog, Snapshot};
use crate::storage::StoredEvent;
use crate::tables::{DedupTable, PortTable};
use crate::transport::ReliableChannel;
use fet_netsim::counters::PortCounters;
use fet_netsim::monitor::{Actions, EgressCtx, HookVerdict, IngressCtx, RoutedCtx, SwitchMonitor};
use fet_packet::builder::{
    build_cebp_frame, build_notification_frames_with, classify, extract_flow,
    insert_seqtag_in_place, parse_cebp_frame, parse_notification, strip_seqtag_in_place, FrameKind,
};
use fet_packet::ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType, EVENT_RECORD_LEN};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::pfc::{PfcFrame, PFC_CLASSES};
use fet_packet::{FlowKey, IpProtocol};
use fet_pdp::{RateLimitedChannel, ResourceKind, ResourceLedger};
use std::any::Any;
use std::collections::HashMap;

/// Where this monitor instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A full switch deployment: all detectors + event path.
    Switch,
    /// A SmartNIC: inter-switch drop detection only, events logged locally.
    Nic,
}

/// Per-step volume accounting (regenerates Figure 13).
#[derive(Debug, Default, Clone, Copy)]
pub struct StepStats {
    /// Data packets the pipeline saw.
    pub packets_seen: u64,
    /// Their bytes.
    pub packets_bytes: u64,
    /// Packets selected as event packets (step 1).
    pub event_packets: u64,
    /// Their bytes.
    pub event_packet_bytes: u64,
    /// Final reports delivered to the backend.
    pub final_reports: u64,
    /// Final report bytes on the management network.
    pub final_bytes: u64,
}

/// Overhead of a TCP/IP report message around the batched events.
const REPORT_HEADER_BYTES: usize = 54;

/// Synthetic "flow" carrying an ACL rule id, since ACL drops aggregate per
/// rule rather than per flow (§3.4). Proto 255 marks it unmistakably.
pub fn acl_rule_flow(rule_id: u32) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::from_u32(rule_id),
        dst: Ipv4Addr::from_u32(0),
        sport: 0,
        dport: 0,
        proto: IpProtocol::Other(255),
    }
}

/// The NetSeer data-plane + control-plane program for one device.
pub struct NetSeerMonitor {
    /// Configuration.
    pub cfg: NetSeerConfig,
    /// Switch or NIC deployment.
    pub role: Role,
    device: u32,
    // --- detection state (§3.3) ---
    // Flat 256-slot tables indexed by the u8 port (no per-packet hashing).
    taggers: PortTable<PortTagger>,
    gaps: PortTable<GapDetector>,
    pending: PortTable<PendingLookups>,
    /// PFC queue status (pause detection).
    pub pause_tracker: PauseTracker,
    /// Learned flow paths (path-change detection).
    pub path_table: PathTable,
    // --- aggregation (§3.4) ---
    /// One group cache per event type, indexed by discriminant.
    pub dedup: DedupTable,
    /// ACL-rule-granularity drop aggregation.
    pub acl: AclAggregator,
    /// 24-byte record builder.
    pub extractor: Extractor,
    // --- batching + CPU + transport (§3.5, §3.6) ---
    /// The circulating event batcher.
    pub batcher: CebpBatcher,
    /// The switch CPU model.
    pub cpu: SwitchCpu,
    /// Reliable TCP-ish reporting channel to the backend.
    pub transport: ReliableChannel,
    mmu_redirect: RateLimitedChannel,
    /// The internal port that carries redirected ingress/MMU event packets
    /// (and CEBPs): pause, ingress pipeline drop, and MMU drop events are
    /// "jointly limited by the bandwidth of switch's internal port" (§4).
    internal_port: RateLimitedChannel,
    /// MMU drops missed because the 40G redirect path was saturated.
    pub mmu_redirect_missed: u64,
    /// Events missed because the internal port was saturated.
    pub internal_port_missed: u64,
    /// Events that reached the backend (or the NIC's local log).
    pub delivered: Vec<StoredEvent>,
    /// Per-step volume stats.
    pub stats: StepStats,
    // --- fault injection + delivery accounting ---
    /// Loss process applied to each arriving loss-notification copy.
    notif_loss: LossGen,
    /// Byte damage applied to each outgoing CEBP report attempt.
    cebp_corrupt: CorruptionGen,
    /// Byte damage applied to each outgoing loss-notification copy.
    notif_corrupt: CorruptionGen,
    /// Event records handed to the reporting path (ledger numerator).
    pub events_generated: u64,
    /// Events shed because the transport exhausted its retry budget.
    pub transport_failed_events: u64,
    /// Reports (batches) the transport gave up on.
    pub transport_failed_reports: u64,
    /// Notification copies eaten by the injected loss process.
    pub notification_copies_dropped: u64,
    /// CEBP report attempts whose CRC trailer failed at the collector.
    /// Each failure is an implicit NACK: the sender retransmits.
    pub cebp_crc_failures: u64,
    /// Batches abandoned after every CRC retransmit failed; their events
    /// are the ledger's `corrupted` term.
    pub corrupted_batches: u64,
    /// Events in abandoned corrupted batches (terminal, counted — the
    /// poison frames are quarantined, never parsed into the store).
    pub corrupted_events: u64,
    /// Arriving loss-notification copies rejected by their CRC trailer.
    pub notifications_crc_rejected: u64,
    /// Poison CEBP frames held for collector-side quarantine, bounded by
    /// [`MAX_POISON_HELD`].
    poison: Vec<PoisonFrame>,
    // --- crash recovery ---
    /// Write-ahead log + periodic checkpoint for the pending set, tagger
    /// heads, and group-cache summaries (see [`crate::recovery`]).
    pub recovery: RecoveryLog,
    /// Monotonic delivery sequence number; `(device, epoch, seq)` is the
    /// collector's exactly-once dedup key.
    next_delivery_seq: u64,
    /// Reused scratch for the records produced by one `raise` call.
    records_scratch: Vec<(FlowKey, u16)>,
    /// Liveness heartbeat: advances on every timer tick while the control
    /// loop is healthy; the watchdog declares the monitor suspect when it
    /// stops (see [`crate::watchdog`]).
    pub heartbeat: u64,
    /// The device's *local* clock reading at the last heartbeat tick.
    /// Purely observational: the watchdog samples it to measure clock
    /// skew but never bases liveness on it (the counter is drift-immune).
    pub heartbeat_local_ns: u64,
    /// This device's virtual clock (identity unless
    /// [`FaultPlan::clock`](crate::faults::FaultPlan::clock) is active).
    /// Rewrites recorded stamps only — event times, snapshot stamps,
    /// heartbeat readings — never control flow, so a clock-faulted run
    /// generates exactly the same event set as an unfaulted one.
    clock: DeviceClock,
    /// Fault injection: a wedged control loop. Timer ticks and pumping do
    /// nothing (the heartbeat freezes, batches pile up and shed, no
    /// checkpoints are taken) until a restart clears it.
    wedged: bool,
}

/// Default poison-frame quarantine depth (now configurable via
/// [`NetSeerConfig::max_poison_held`]; this constant documents the
/// historical hard cap that the config default reproduces).
pub const MAX_POISON_HELD: usize = 16;

impl std::fmt::Debug for NetSeerMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSeerMonitor")
            .field("device", &self.device)
            .field("role", &self.role)
            .finish_non_exhaustive()
    }
}

impl NetSeerMonitor {
    /// Create a monitor for a device. `device` must match the node id the
    /// monitor is attached to; `seed` diversifies hash units per device.
    pub fn new(device: u32, role: Role, cfg: NetSeerConfig) -> Self {
        let seed = device.wrapping_mul(0x9e37_79b9).wrapping_add(7);
        let mk = |name: &'static str, salt: u32| {
            GroupCache::new(name, cfg.dedup_entries, cfg.dedup_c, seed ^ salt)
        };
        let dedup = DedupTable::build(|ty| match ty {
            EventType::Congestion => mk("dedup-congestion", 1),
            EventType::PipelineDrop => mk("dedup-pipedrop", 2),
            EventType::MmuDrop => mk("dedup-mmudrop", 3),
            EventType::InterSwitchDrop => mk("dedup-iswdrop", 4),
            EventType::PathChange => mk("dedup-path", 5),
            EventType::Pause => mk("dedup-pause", 6),
        });
        NetSeerMonitor {
            role,
            device,
            taggers: PortTable::new(),
            gaps: PortTable::new(),
            pending: PortTable::new(),
            pause_tracker: PauseTracker::new(64),
            path_table: PathTable::new(cfg.path_entries, seed ^ 0xabcd),
            dedup,
            acl: AclAggregator::new(u64::from(cfg.dedup_c)),
            extractor: Extractor::new(),
            batcher: CebpBatcher::new(&cfg),
            cpu: SwitchCpu::new(&cfg),
            transport: ReliableChannel::with_process(
                cfg.faults.mgmt_loss,
                cfg.faults.mgmt_partitions.clone(),
                50 * fet_netsim::MICROS,
                0,
                cfg.faults.seed ^ u64::from(seed),
                cfg.transport_max_retries,
            ),
            mmu_redirect: RateLimitedChannel::new(
                "mmu-redirect",
                cfg.capacity.mmu_redirect_gbps,
                1 << 20,
            ),
            internal_port: RateLimitedChannel::new(
                "internal-port",
                cfg.capacity.internal_port_gbps,
                4 << 20,
            ),
            mmu_redirect_missed: 0,
            internal_port_missed: 0,
            delivered: Vec::new(),
            stats: StepStats::default(),
            notif_loss: LossGen::new(
                cfg.faults.notification_loss,
                cfg.faults.seed ^ u64::from(seed),
                streams::NOTIFICATION,
            ),
            cebp_corrupt: CorruptionGen::new(
                cfg.faults.cebp_corruption,
                cfg.faults.seed ^ u64::from(seed),
                streams::CEBP_CORRUPT,
            ),
            notif_corrupt: CorruptionGen::new(
                cfg.faults.notification_corruption,
                cfg.faults.seed ^ u64::from(seed),
                streams::NOTIF_CORRUPT,
            ),
            events_generated: 0,
            transport_failed_events: 0,
            transport_failed_reports: 0,
            notification_copies_dropped: 0,
            cebp_crc_failures: 0,
            corrupted_batches: 0,
            corrupted_events: 0,
            notifications_crc_rejected: 0,
            poison: Vec::new(),
            recovery: {
                let mut recovery = RecoveryLog::new(cfg.checkpoint_interval_ns);
                recovery.set_torn_wal(CorruptionGen::new(
                    cfg.faults.torn_wal,
                    cfg.faults.seed ^ u64::from(seed),
                    streams::WAL_CORRUPT,
                ));
                recovery
            },
            next_delivery_seq: 0,
            records_scratch: Vec::with_capacity(4),
            heartbeat: 0,
            heartbeat_local_ns: 0,
            clock: DeviceClock::new(&cfg.faults.clock, cfg.faults.seed, device),
            wedged: false,
            cfg,
        }
    }

    /// The end-to-end delivery-accounting snapshot: every event handed to
    /// the reporting path is delivered, shed at a counted choke point, or
    /// still pending in the batcher. [`DeliveryLedger::balanced`] failing
    /// means silent loss — a bug, not a degradation mode.
    pub fn ledger(&self) -> DeliveryLedger {
        DeliveryLedger {
            generated: self.events_generated,
            delivered: self.stats.final_reports,
            shed_stack: self.batcher.dropped,
            shed_pcie: self.cpu.pcie_rejected_events,
            shed_cpu_overload: self.cpu.shed_overload,
            shed_false_positive: self.cpu.fp_eliminated,
            shed_transport: self.transport_failed_events,
            pending: self.batcher.backlog() as u64,
            buffered: 0,
            lost_to_crash: self.recovery.lost_to_crash,
            corrupted: self.corrupted_events,
            // Monitors emit simulator-born events; only wire ingestion
            // (crate::wire) books malformed records.
            malformed: 0,
        }
    }

    /// Wedge the control loop (fault injection): the heartbeat freezes and
    /// timer ticks / pumping become no-ops until [`restart`](Self::restart).
    pub fn wedge(&mut self) {
        self.wedged = true;
    }

    /// Is the control loop wedged?
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Poison CEBP frames held for quarantine (bounded, oldest first).
    pub fn poison_frames(&self) -> &[PoisonFrame] {
        &self.poison
    }

    /// Hand the held poison frames to the collector, emptying the hold.
    pub fn take_poison(&mut self) -> Vec<PoisonFrame> {
        std::mem::take(&mut self.poison)
    }

    /// Record the collector's backpressure level (piggybacked on transport
    /// ACKs in a real deployment). The next timer tick converts it into a
    /// flush-widening stride of `2^level` ticks, capped by
    /// [`NetSeerConfig::backpressure_max_widen`]. Level 0 restores
    /// flush-every-tick.
    pub fn set_backpressure(&mut self, level: u32) {
        self.transport.rx_backpressure_hint = level;
    }

    /// The currently signalled collector backpressure level.
    pub fn backpressure(&self) -> u32 {
        self.transport.rx_backpressure_hint
    }

    fn tagger(&mut self, port: u8) -> &mut PortTagger {
        let slots = self.cfg.ring_slots;
        self.taggers.get_or_insert_with(port, || PortTagger::new(slots))
    }

    /// Ring-buffer tagger stats for a port (diagnostics).
    pub fn tagger_stats(&self, port: u8) -> Option<(u64, u64, u64)> {
        self.taggers.get(port).map(|t| (t.tagged, t.lookup_hits, t.lookup_misses))
    }

    /// The device id this monitor reports as.
    pub fn device(&self) -> u32 {
        self.device
    }

    /// Total sequence gaps detected across ports.
    pub fn gaps_detected(&self) -> u64 {
        self.gaps.values().map(|g| g.gaps_detected).sum()
    }

    /// Per-ingress-port sequence-gap counts, sorted by port — the
    /// control-plane scrape the analytics correlator joins against
    /// upstream loss reports.
    pub fn gap_counts(&self) -> Vec<(u8, u64)> {
        // PortTable iteration is already in ascending port order.
        self.gaps.iter().map(|(port, g)| (port, g.gaps_detected)).collect()
    }

    /// Redirect an ingress-side event packet through the internal port;
    /// false when the port is saturated and the event is lost (§4).
    fn internal_redirect(&mut self, now_ns: u64, bytes: usize) -> bool {
        if self.internal_port.offer(now_ns, bytes).is_none() {
            self.internal_port_missed += 1;
            return false;
        }
        true
    }

    /// The core event path: dedup → extract → batch (or local log on NICs).
    fn raise(
        &mut self,
        now_ns: u64,
        ty: EventType,
        flow: FlowKey,
        detail: EventDetail,
        original_len: usize,
        out: &mut Actions,
    ) {
        // Partial deployment (§2.3): skip flows outside the filter.
        if let Some(filter) = self.cfg.flow_filter {
            if !filter.matches(&flow) {
                return;
            }
        }
        self.stats.event_packets += 1;
        self.stats.event_packet_bytes += original_len as u64;
        // Reused scratch: no per-event allocation in steady state.
        let mut records = std::mem::take(&mut self.records_scratch);
        records.clear();
        if self.cfg.enable_dedup {
            let cache = self.dedup.get_mut(ty);
            match cache.offer(flow) {
                DedupOutcome::Suppressed { .. } => {}
                DedupOutcome::NewFlow => records.push((flow, 1)),
                DedupOutcome::CounterReport { counter } => {
                    records.push((flow, counter.min(u32::from(u16::MAX)) as u16));
                }
                DedupOutcome::Evicted { old_flow, old_counter } => {
                    records.push((old_flow, old_counter.min(u32::from(u16::MAX)) as u16));
                    records.push((flow, 1));
                }
            }
        } else {
            records.push((flow, 1));
        }
        for (f, counter) in records.drain(..) {
            let hash = self.dedup.get(ty).flow_hash(&f);
            let rec = self.extractor.extract(ty, f, detail, counter, hash, original_len);
            self.dispatch_record(now_ns, rec, out);
        }
        self.records_scratch = records;
        self.pump(now_ns, out);
    }

    /// Push one finished record into the reporting path.
    fn dispatch_record(&mut self, now_ns: u64, rec: EventRecord, out: &mut Actions) {
        self.events_generated += 1;
        match self.role {
            Role::Switch => self.push_pending(now_ns, rec),
            Role::Nic => {
                // NICs log locally (paper §4): no CEBP/CPU path. The stamp
                // is the NIC's local clock reading, not global time.
                self.delivered.push(StoredEvent {
                    time_ns: self.clock.local_time(now_ns),
                    device: self.device,
                    epoch: self.transport.epoch,
                    seq: self.next_delivery_seq,
                    record: rec,
                });
                self.next_delivery_seq += 1;
                self.stats.final_reports += 1;
                self.stats.final_bytes += EVENT_RECORD_LEN as u64;
                out.report(EVENT_RECORD_LEN, "nic-events");
            }
        }
    }

    /// Offer one record to the batcher, mirroring the mutation into the
    /// WAL. Shedding (priority-aware, when the bounded stack is full) is
    /// counted inside the batcher — never silent — and an eviction is made
    /// durable immediately: the victim's shed is already counted, so a
    /// post-crash replay must never resurrect it.
    fn push_pending(&mut self, now_ns: u64, rec: EventRecord) {
        match self.batcher.push(now_ns, rec) {
            PushOutcome::Stored => self.recovery.log_enq(rec),
            PushOutcome::ShedVictim { pending_pos, .. } => {
                self.recovery.log_evict(pending_pos);
                self.recovery.log_enq(rec);
            }
            PushOutcome::ShedIncoming => {}
        }
    }

    /// Advance batcher → CPU → transport, delivering finished events.
    fn pump(&mut self, now_ns: u64, out: &mut Actions) {
        if self.wedged {
            return;
        }
        for batch in self.batcher.poll(now_ns) {
            self.deliver_batch(batch, out);
        }
    }

    fn deliver_batch(&mut self, batch: crate::batch::Batch, out: &mut Actions) {
        // The batch's events just left the pending set; the departure is
        // fsynced before any downstream effect (delivery or a counted
        // shed) so replay can never bring them back.
        self.recovery.log_deq(batch.events.len());
        let wire = batch.wire_bytes();
        let survived = self.cpu.process_batch(batch.ready_ns, &batch.events, wire);
        if survived.is_empty() {
            return;
        }
        let last_done = survived.last().expect("nonempty").done_ns;
        let bytes = survived.len() * EVENT_RECORD_LEN + REPORT_HEADER_BYTES;
        let records: Vec<EventRecord> = survived.iter().map(|s| s.record).collect();
        // Each transport attempt carries a real CEBP wire frame whose CRC32C
        // trailer the collector verifies. A CRC failure is an implicit NACK
        // (no ACK carries the reject): the sender retransmits, bounded by
        // the transport retry budget. With no corruption configured the
        // first attempt always verifies, so this loop runs exactly once.
        let mut send_at = last_done;
        for _attempt in 0..=self.cfg.transport_max_retries {
            match self.transport.send(send_at, bytes) {
                Ok(delivery) => {
                    let mut frame = build_cebp_frame(survived.len() as u16, &records)
                        .expect("report-sized CEBP always fits");
                    self.cebp_corrupt.corrupt(&mut frame);
                    match parse_cebp_frame(&frame) {
                        Ok(_) => {
                            for s in &survived {
                                // Stamped with the *monitor's* local clock:
                                // a skewed device reports skewed times, and
                                // downstream consumers must cope.
                                self.delivered.push(StoredEvent {
                                    time_ns: self
                                        .clock
                                        .local_time(delivery.delivered_ns.max(s.done_ns)),
                                    device: self.device,
                                    epoch: self.transport.epoch,
                                    seq: self.next_delivery_seq,
                                    record: s.record,
                                });
                                self.next_delivery_seq += 1;
                            }
                            self.stats.final_reports += survived.len() as u64;
                            self.stats.final_bytes += bytes as u64;
                            out.report(bytes, "netseer-events");
                            return;
                        }
                        Err(e) => {
                            // Poison: quarantine the damaged frame verbatim
                            // for CPU-side inspection, never parse it into
                            // the store, and retransmit.
                            self.cebp_crc_failures += 1;
                            if self.poison.len() < self.cfg.max_poison_held {
                                self.poison.push(PoisonFrame {
                                    device: self.device,
                                    quarantined_ns: delivery.delivered_ns,
                                    frame,
                                    reason: e.to_string(),
                                });
                            }
                            send_at = delivery.delivered_ns;
                        }
                    }
                }
                Err(_failure) => {
                    // Retry budget exhausted (e.g. a partition outlasting
                    // the backoff schedule): shed-and-count, never silent.
                    self.transport_failed_events += survived.len() as u64;
                    self.transport_failed_reports += 1;
                    return;
                }
            }
        }
        // Every attempt was damaged beyond its CRC: terminal corruption,
        // counted in the ledger's `corrupted` term.
        self.corrupted_batches += 1;
        self.corrupted_events += survived.len() as u64;
    }

    /// Drain up to `n` pending ring lookups for a port, raising drop events.
    fn drain_pending(&mut self, now_ns: u64, port: u8, n: usize, out: &mut Actions) {
        for _ in 0..n {
            let Some(seq) = self.pending.get_mut(port).and_then(|p| p.pop()) else {
                return;
            };
            let hit = self.tagger(port).lookup(seq);
            if let Some(flow) = hit {
                self.raise(
                    now_ns,
                    EventType::InterSwitchDrop,
                    flow,
                    EventDetail::Drop {
                        ingress_port: port,
                        egress_port: port,
                        code: DropCode::LinkLoss,
                    },
                    64,
                    out,
                );
            }
        }
    }

    fn take_snapshot(&self) -> Snapshot {
        // PortTable iterates ports ascending and DedupTable iterates types
        // in wire-code order, so both lists come out pre-sorted exactly as
        // the HashMap-era snapshot sorted them: serialization is stable.
        let tagger_heads: Vec<(u8, u32)> =
            self.taggers.iter().map(|(p, t)| (p, t.head())).collect();
        let dedup: Vec<DedupSummary> = self
            .dedup
            .iter()
            .map(|(ty, c)| DedupSummary { ty, offered: c.offered, reports: c.reports })
            .collect();
        Snapshot {
            taken_ns: 0,
            taken_local_ns: 0,
            pending: self.batcher.pending_events(),
            tagger_heads,
            dedup,
            ledger: self.ledger(),
        }
    }

    /// Take a checkpoint now: materialize the pending set, tagger heads,
    /// group-cache summaries, and the ledger; the WAL truncates behind it.
    /// The snapshot carries both stamps: global time drives the cadence,
    /// the local-clock reading is what a real process would have written.
    pub fn checkpoint(&mut self, now_ns: u64) {
        let mut snap = self.take_snapshot();
        snap.taken_local_ns = self.clock.local_time(now_ns);
        self.recovery.checkpoint(now_ns, snap);
    }

    /// This device's virtual clock (identity unless clock faults are
    /// configured in [`FaultPlan::clock`](crate::faults::FaultPlan::clock)).
    pub fn clock(&self) -> &DeviceClock {
        &self.clock
    }

    /// The switch-CPU process dies at `now_ns`. Detach the monitor from
    /// the device until [`restart`](Self::restart) — the data plane keeps
    /// forwarding unobserved meanwhile. A clean stop checkpoints
    /// everything on the way down (lossless); a hard kill loses the
    /// un-fsynced WAL tail.
    pub fn crash(&mut self, kind: CrashKind, now_ns: u64) {
        if kind == CrashKind::Clean {
            self.checkpoint(now_ns);
        }
        self.recovery.record_kill(kind, now_ns, self.batcher.backlog() as u64);
    }

    /// Recover from the durable state: replay snapshot + WAL into a
    /// rebuilt pipeline, reconnect the transport under a new epoch, and
    /// account exactly what the kill destroyed.
    ///
    /// Counters are the measurement apparatus, so every rebuilt subsystem
    /// carries its cumulative counters forward; only genuinely volatile
    /// state (the CPU's FP window, dedup tables, ring contents, learned
    /// paths, pause state, queued ring lookups) starts empty. Replayed
    /// events re-enter the batcher without touching `events_generated` —
    /// they were counted when first generated — and a replayed set larger
    /// than the fresh stack re-sheds by priority, counted as usual.
    pub fn restart(&mut self, now_ns: u64) -> CrashReport {
        // A restart always un-wedges: the fresh process has a live loop.
        self.wedged = false;
        let replayed = self.recovery.replay();

        // Batcher: fresh circulation state, carried counters.
        let mut batcher = CebpBatcher::new(&self.cfg);
        batcher.accepted = self.batcher.accepted;
        batcher.dropped = self.batcher.dropped;
        batcher.shed_by_type = std::mem::take(&mut self.batcher.shed_by_type);
        batcher.delivered_batches = self.batcher.delivered_batches;
        batcher.delivered_events = self.batcher.delivered_events;
        batcher.set_flush_stride(self.batcher.flush_stride());
        batcher.flush_calls = self.batcher.flush_calls;
        batcher.flushes_skipped = self.batcher.flushes_skipped;
        self.batcher = batcher;

        // CPU: fresh FP window and DMA engine, carried counters.
        let mut cpu = SwitchCpu::new(&self.cfg);
        cpu.carry_counters_from(&self.cpu);
        self.cpu = cpu;

        // Taggers: heads restored from the checkpoint. Ring contents are
        // lost — lookups in the gap window count misses, never misreport.
        let heads: HashMap<u8, u32> =
            self.recovery.snapshot().tagger_heads.iter().copied().collect();
        for (port, tagger) in self.taggers.iter_mut() {
            let mut fresh = PortTagger::new(self.cfg.ring_slots);
            fresh.restore_head(heads.get(&port).copied().unwrap_or(0));
            fresh.tagged = tagger.tagged;
            fresh.lookup_hits = tagger.lookup_hits;
            fresh.lookup_misses = tagger.lookup_misses;
            *tagger = fresh;
        }

        // Gap detectors keep their counters but re-base: the first frame
        // after downtime re-syncs instead of charging a loss burst.
        for g in self.gaps.values_mut() {
            g.rebase();
        }

        // Queued ring lookups are volatile (no event was generated from
        // them yet, so the ledger is unaffected); telemetry carries.
        for p in self.pending.values_mut() {
            let mut fresh = PendingLookups::new(self.cfg.pending_lookup_cap);
            fresh.overflowed = p.overflowed;
            fresh.copies_received = p.copies_received;
            fresh.duplicate_copies = p.duplicate_copies;
            fresh.ranges_accepted = p.ranges_accepted;
            fresh.corrupted_ranges = p.corrupted_ranges;
            *p = fresh;
        }

        // Group caches: tables are volatile, suppression telemetry is not.
        for cache in self.dedup.values_mut() {
            let (offered, reports) = (cache.offered, cache.reports);
            cache.clear();
            cache.offered = offered;
            cache.reports = reports;
        }

        // Learned paths and pause state rebuild from live traffic.
        let seed = self.device.wrapping_mul(0x9e37_79b9).wrapping_add(7);
        let (po, pr) = (self.path_table.offered, self.path_table.reported);
        self.path_table = PathTable::new(self.cfg.path_entries, seed ^ 0xabcd);
        self.path_table.offered = po;
        self.path_table.reported = pr;
        let (ps, rs) = (self.pause_tracker.pauses_seen, self.pause_tracker.resumes_seen);
        self.pause_tracker = PauseTracker::new(64);
        self.pause_tracker.pauses_seen = ps;
        self.pause_tracker.resumes_seen = rs;

        // Internal channels restart idle.
        self.mmu_redirect =
            RateLimitedChannel::new("mmu-redirect", self.cfg.capacity.mmu_redirect_gbps, 1 << 20);
        self.internal_port =
            RateLimitedChannel::new("internal-port", self.cfg.capacity.internal_port_gbps, 4 << 20);

        // Reconnect under a new epoch: the collector rejects retransmits
        // from the dead epoch, and the `(device, epoch, seq)` key turns
        // redelivery into exactly-once accounting.
        let handshake = self.transport.reconnect(now_ns);

        // Re-materialize the replayed pending set (already counted in
        // `events_generated` before the crash).
        for rec in &replayed {
            self.push_pending(now_ns, *rec);
        }

        let replayed_len = replayed.len() as u64;
        let (kind, killed_ns, lost) = self.recovery.complete_restart(replayed_len);
        // A fresh post-recovery baseline: the next hard kill can only
        // lose what arrives after this instant.
        self.checkpoint(now_ns);
        CrashReport {
            device: self.device,
            kind,
            killed_ns,
            restart_ns: now_ns,
            epoch: handshake.epoch,
            pending_at_kill: replayed_len + lost,
            replayed: replayed_len,
            lost,
        }
    }

    /// A neighboring device restarted: re-sync this ingress port's gap
    /// detector on the next tagged frame instead of charging the
    /// sequence discontinuity as an inter-switch loss burst.
    pub fn rebase_ingress(&mut self, port: u8) {
        self.gaps.get_or_insert_with(port, GapDetector::default).rebase();
    }

    /// Assemble the PDP resource picture of this deployment (Figure 7).
    /// Charges the real sizes of every stateful structure plus calibrated
    /// fixed costs for the match-action logic around them.
    pub fn resource_usage(&self) -> ResourceLedger {
        let mut ledger = ResourceLedger::new(fet_pdp::TOFINO_32D);
        // The base forwarding program (switch.p4) NetSeer extends.
        let base = "switch.p4";
        let cap = fet_pdp::TOFINO_32D.capacity;
        let frac = |i: usize, f: f64| (cap[i] as f64 * f) as u64;
        ledger.charge(base, ResourceKind::ExactXbar, frac(0, 0.30));
        ledger.charge(base, ResourceKind::TernaryXbar, frac(1, 0.28));
        ledger.charge(base, ResourceKind::HashBits, frac(2, 0.25));
        ledger.charge(base, ResourceKind::SramBits, frac(3, 0.35));
        ledger.charge(base, ResourceKind::TcamBits, frac(4, 0.32));
        ledger.charge(base, ResourceKind::VliwActions, frac(5, 0.30));
        ledger.charge(base, ResourceKind::StatefulAlu, frac(6, 0.08));
        ledger.charge(base, ResourceKind::PhvBits, frac(7, 0.40));

        // Event detection (congestion threshold compare, drop hooks, pause
        // lookup, path table).
        self.path_table.account(&mut ledger, "event-detection");
        self.pause_tracker.account(&mut ledger, "event-detection");
        ledger.charge("event-detection", ResourceKind::VliwActions, 12);
        ledger.charge("event-detection", ResourceKind::PhvBits, 160);
        ledger.charge("event-detection", ResourceKind::ExactXbar, 104);

        // Inter-switch: ring buffers + seq/gap registers (heavy stateful).
        // On the ASIC one wide register array serves every port (indexed by
        // port x slot), so the stateful-ALU cost is fixed; SRAM scales with
        // the per-port rings.
        for t in self.taggers.values() {
            ledger.charge("inter-switch", ResourceKind::SramBits, t.slots() as u64 * 137);
        }
        ledger.charge("inter-switch", ResourceKind::StatefulAlu, 6);
        ledger.charge("inter-switch", ResourceKind::PhvBits, 48);
        ledger.charge("inter-switch", ResourceKind::VliwActions, 8);

        // Deduplication: six group caches.
        for c in self.dedup.values() {
            c.account(&mut ledger, "dedup");
        }
        ledger.charge("dedup", ResourceKind::VliwActions, 12);

        // Batching: the cross-stage stack + CEBP logic.
        ledger.charge(
            "batching",
            ResourceKind::SramBits,
            (self.cfg.stack_capacity * EVENT_RECORD_LEN * 8) as u64,
        );
        ledger.charge("batching", ResourceKind::StatefulAlu, 4);
        ledger.charge("batching", ResourceKind::VliwActions, 10);
        ledger.charge("batching", ResourceKind::PhvBits, 224);
        ledger
    }
}

impl SwitchMonitor for NetSeerMonitor {
    fn on_ingress(
        &mut self,
        ctx: &IngressCtx,
        frame: &mut Vec<u8>,
        out: &mut Actions,
    ) -> HookVerdict {
        self.device = ctx.node;
        self.stats.packets_seen += 1;
        self.stats.packets_bytes += frame.len() as u64;

        // Strip the upstream's sequence tag and watch for gaps (Fig. 5
        // steps 2–4).
        if self.cfg.enable_interswitch {
            let eth = EthernetFrame::new_unchecked(frame.as_slice());
            if eth.ethertype() == EtherType::NetSeerSeq {
                if let Ok(seq) = strip_seqtag_in_place(frame) {
                    let gap =
                        self.gaps.get_or_insert_with(ctx.port, GapDetector::default).observe(seq);
                    if let Some((lo, hi)) = gap {
                        let copies = self.cfg.notification_copies;
                        for mut nf in build_notification_frames_with(lo, hi, ctx.port, copies) {
                            // Injected byte damage per copy: the receiver's
                            // CRC trailer catches what survives the FCS.
                            self.notif_corrupt.corrupt(&mut nf);
                            out.emit(ctx.port, nf, true);
                        }
                    }
                }
            }
        }

        match classify(frame) {
            FrameKind::LossNotification if self.cfg.enable_interswitch => {
                // Injected fault: this notification copy died on the wire.
                // Redundant copies (paper: three) are each drawn
                // independently, so survival of any one suffices.
                if self.notif_loss.lose() {
                    self.notification_copies_dropped += 1;
                    return HookVerdict::Consume;
                }
                // Fig. 5 step 5: queue ring lookups for the missing range.
                // `parse_notification` verifies the CRC32C trailer first, so
                // a corrupted range can never queue bogus ring lookups.
                match parse_notification(frame) {
                    Ok((lo, hi, _copy, _port)) => {
                        let cap = self.cfg.pending_lookup_cap;
                        self.pending
                            .get_or_insert_with(ctx.port, || PendingLookups::new(cap))
                            .push_range(lo, hi);
                    }
                    Err(_) => {
                        // Counted, never parsed: redundant copies mean any
                        // intact sibling still recovers the range.
                        self.notifications_crc_rejected += 1;
                    }
                }
                self.pump(ctx.now_ns, out);
                return HookVerdict::Consume;
            }
            FrameKind::Pfc => {
                // Queue status detector: parse PAUSE/RESUME ourselves.
                if let Ok(pfc) = PfcFrame::new_checked(&frame[ETHERNET_HEADER_LEN..]) {
                    for prio in 0..PFC_CLASSES {
                        if pfc.pauses(prio) {
                            self.pause_tracker.set(ctx.port, prio as u8, true);
                        } else if pfc.resumes(prio) {
                            self.pause_tracker.set(ctx.port, prio as u8, false);
                        }
                    }
                }
            }
            _ => {}
        }
        self.pump(ctx.now_ns, out);
        HookVerdict::Continue
    }

    fn on_routed(&mut self, ctx: &RoutedCtx, frame: &[u8], out: &mut Actions) {
        if self.role == Role::Nic {
            return;
        }
        // Pause event: the packet heads to a queue our tracker says is
        // paused (§3.3 "queue status detector ... looks up in ingress").
        if self.pause_tracker.is_paused(ctx.egress_port, ctx.queue) || ctx.queue_paused {
            // Pause event packets are redirected via the internal port.
            if self.internal_redirect(ctx.now_ns, frame.len()) {
                self.raise(
                    ctx.now_ns,
                    EventType::Pause,
                    ctx.flow,
                    EventDetail::Pause { egress_port: ctx.egress_port, queue: ctx.queue },
                    frame.len(),
                    out,
                );
            }
        }
        // Path change.
        if self.path_table.offer(ctx.flow, ctx.ingress_port, ctx.egress_port).is_some() {
            self.raise(
                ctx.now_ns,
                EventType::PathChange,
                ctx.flow,
                EventDetail::PathChange {
                    ingress_port: ctx.ingress_port,
                    egress_port: ctx.egress_port,
                },
                frame.len(),
                out,
            );
        }
    }

    fn on_pipeline_drop(
        &mut self,
        ctx: &IngressCtx,
        frame: &[u8],
        flow: Option<FlowKey>,
        code: DropCode,
        egress_port: Option<u8>,
        acl_rule: u32,
        out: &mut Actions,
    ) {
        if self.role == Role::Nic {
            return;
        }
        if code == DropCode::AclDeny {
            // Aggregate at ACL-rule granularity (§3.4).
            match self.acl.record(acl_rule) {
                AclOutcome::Counted => {}
                AclOutcome::FirstReport | AclOutcome::ThresholdReport { .. } => {
                    let count = self.acl.count(acl_rule).min(u64::from(u16::MAX)) as u16;
                    let hash = acl_rule;
                    let rec = self.extractor.extract(
                        EventType::PipelineDrop,
                        acl_rule_flow(acl_rule),
                        EventDetail::Drop {
                            ingress_port: ctx.port,
                            egress_port: egress_port.unwrap_or(0xff),
                            code,
                        },
                        count,
                        hash,
                        frame.len(),
                    );
                    self.stats.event_packets += 1;
                    self.stats.event_packet_bytes += frame.len() as u64;
                    self.dispatch_record(ctx.now_ns, rec, out);
                    self.pump(ctx.now_ns, out);
                }
            }
            return;
        }
        let Some(flow) = flow else {
            return; // non-IP garbage has no flow to report
        };
        // Ingress pipeline drops redirect through the internal port (§4).
        if !self.internal_redirect(ctx.now_ns, frame.len()) {
            return;
        }
        self.raise(
            ctx.now_ns,
            EventType::PipelineDrop,
            flow,
            EventDetail::Drop {
                ingress_port: ctx.port,
                egress_port: egress_port.unwrap_or(0xff),
                code,
            },
            frame.len(),
            out,
        );
    }

    fn on_mmu_drop(&mut self, ctx: &RoutedCtx, frame: &[u8], out: &mut Actions) {
        if self.role == Role::Nic {
            return;
        }
        // The MMU redirects the doomed packet to an internal port (≤40 Gbps,
        // §4); beyond that rate the event is lost.
        if self.mmu_redirect.offer(ctx.now_ns, frame.len()).is_none() {
            self.mmu_redirect_missed += 1;
            return;
        }
        if !self.internal_redirect(ctx.now_ns, frame.len()) {
            return;
        }
        self.raise(
            ctx.now_ns,
            EventType::MmuDrop,
            ctx.flow,
            EventDetail::Drop {
                ingress_port: ctx.ingress_port,
                egress_port: ctx.egress_port,
                code: DropCode::BufferFull,
            },
            frame.len(),
            out,
        );
    }

    fn on_egress(&mut self, ctx: &EgressCtx<'_>, frame: &mut Vec<u8>, out: &mut Actions) {
        // Congestion: queuing delay over threshold (switch role only).
        if self.role == Role::Switch {
            if let Some(flow) = ctx.meta.flow {
                let delay = ctx.meta.queuing_delay_ns();
                if delay > self.cfg.congestion_threshold_ns {
                    let latency_us = (delay / 1_000).min(u64::from(u16::MAX)) as u16;
                    self.raise(
                        ctx.now_ns,
                        EventType::Congestion,
                        flow,
                        EventDetail::Congestion {
                            egress_port: ctx.port,
                            queue: ctx.queue,
                            latency_us,
                        },
                        frame.len(),
                        out,
                    );
                }
            }
        }
        // Inter-switch numbering + ring recording (Fig. 5 step 1), and one
        // pending ring lookup per departing packet (§3.3: subsequent
        // packets trigger the lookups).
        if self.cfg.enable_interswitch && ctx.peer_tagged {
            let kind = classify(frame);
            let already_tagged =
                EthernetFrame::new_unchecked(frame.as_slice()).ethertype() == EtherType::NetSeerSeq;
            if kind != FrameKind::Pfc && !already_tagged {
                let flow = extract_flow(frame).unwrap_or(acl_rule_flow(0));
                let seq = self.tagger(ctx.port).next(flow);
                // In place: the buffer's spare capacity absorbs the 6-byte
                // tag after the first hop, so steady state never allocates.
                let _ = insert_seqtag_in_place(frame, seq);
            }
            self.drain_pending(ctx.now_ns, ctx.port, 1, out);
        }
        self.pump(ctx.now_ns, out);
    }

    fn on_pause_state(&mut self, _now_ns: u64, port: u8, prio: u8, paused: bool) {
        self.pause_tracker.set(port, prio, paused);
    }

    fn on_timer(&mut self, now_ns: u64, _counters: &[PortCounters], out: &mut Actions) {
        // A wedged control loop does nothing: the heartbeat freezes (the
        // watchdog's suspicion signal), batches pile up and shed by
        // priority, and no checkpoints are taken.
        if self.wedged {
            return;
        }
        self.heartbeat += 1;
        self.heartbeat_local_ns = self.clock.local_time(now_ns);
        // CPU-assisted backstop: drain pending lookups even on quiet ports.
        for p in 0..=255u8 {
            if self.pending.get(p).is_some() {
                self.drain_pending(now_ns, p, 64, out);
            }
        }
        // Deliver batches that completed on their own BEFORE flushing:
        // flush() polls internally and discards the ready batches it
        // finds, so they must go through deliver_batch first.
        self.pump(now_ns, out);
        // Collector backpressure widens the flush interval: a pressured
        // collector means partial batches wait 2^level ticks (bounded by
        // config) so the fabric sends fewer, fuller CEBPs. Full batches
        // still deliver through pump() above regardless of stride.
        let level = self.transport.rx_backpressure_hint.min(31);
        let stride = (1u32 << level).min(self.cfg.backpressure_max_widen.max(1));
        self.batcher.set_flush_stride(stride);
        // Age out partial batches so light traffic still reports promptly.
        if let Some(batch) = self.batcher.flush(now_ns) {
            self.deliver_batch(batch, out);
        }
        self.cpu.expire(now_ns);
        self.pump(now_ns, out);
        // Periodic durability: snapshot the pending set + detector heads
        // and truncate the WAL, bounding what a hard kill can destroy.
        if self.recovery.due(now_ns) {
            self.checkpoint(now_ns);
        }
    }

    fn timer_interval_ns(&self) -> Option<u64> {
        Some(self.cfg.timer_interval_ns)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::builder::build_data_packet;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn mon() -> NetSeerMonitor {
        NetSeerMonitor::new(3, Role::Switch, NetSeerConfig::default())
    }

    fn ictx(port: u8, now: u64) -> IngressCtx {
        IngressCtx { now_ns: now, node: 3, port, peer_tagged: true }
    }

    #[test]
    fn egress_tags_and_ingress_strips() {
        let mut up = mon();
        let mut down = NetSeerMonitor::new(4, Role::Switch, NetSeerConfig::default());
        let mut out = Actions::new();
        let mut frame = build_data_packet(&flow(1), 100, 0, 0, 64);
        let orig = frame.clone();
        let meta = fet_pdp::PacketMeta::arriving(0, 0, frame.len());
        let ectx =
            EgressCtx { now_ns: 0, node: 3, port: 2, queue: 0, peer_tagged: true, meta: &meta };
        up.on_egress(&ectx, &mut frame, &mut out);
        assert_ne!(frame, orig, "frame should be tagged");
        // Downstream strips.
        let v = down.on_ingress(&ictx(5, 100), &mut frame, &mut out);
        assert_eq!(v, HookVerdict::Continue);
        assert_eq!(frame, orig, "tag should be stripped");
    }

    #[test]
    fn gap_triggers_three_notifications() {
        let mut up = mon();
        let mut down = NetSeerMonitor::new(4, Role::Switch, NetSeerConfig::default());
        let meta = fet_pdp::PacketMeta::arriving(0, 0, 64);
        // Upstream sends seq 0,1,2,3,4; the wire eats 1..=3.
        let mut arrived = Vec::new();
        for n in 0..5u16 {
            let mut f = build_data_packet(&flow(n), 100, 0, 0, 64);
            let ectx =
                EgressCtx { now_ns: 0, node: 3, port: 2, queue: 0, peer_tagged: true, meta: &meta };
            let mut out = Actions::new();
            up.on_egress(&ectx, &mut f, &mut out);
            if n == 0 || n == 4 {
                arrived.push(f);
            }
        }
        let mut out = Actions::new();
        for mut f in arrived {
            down.on_ingress(&ictx(5, 10), &mut f, &mut out);
        }
        // Three redundant notification copies, high priority, back the way
        // the packets came.
        assert_eq!(out.emit.len(), 3);
        assert!(out.emit.iter().all(|e| e.high_priority && e.out_port == 5));
        assert_eq!(down.gaps_detected(), 1);
    }

    #[test]
    fn notification_roundtrip_recovers_lost_flows() {
        let mut up = mon();
        let mut down = NetSeerMonitor::new(4, Role::Switch, NetSeerConfig::default());
        let meta = fet_pdp::PacketMeta::arriving(0, 0, 64);
        let mk_ectx = |now| EgressCtx {
            now_ns: now,
            node: 3,
            port: 2,
            queue: 0,
            peer_tagged: true,
            meta: &meta,
        };
        // seq 0 arrives, 1 and 2 lost, 3 arrives.
        let mut survivors = Vec::new();
        for n in 0..4u16 {
            let mut f = build_data_packet(&flow(n), 100, 0, 0, 64);
            let mut out = Actions::new();
            up.on_egress(&mk_ectx(0), &mut f, &mut out);
            if n == 0 || n == 3 {
                survivors.push(f);
            }
        }
        let mut down_out = Actions::new();
        for mut f in survivors {
            down.on_ingress(&ictx(5, 10), &mut f, &mut down_out);
        }
        // Deliver the notifications back to the upstream on its port 2.
        let mut up_out = Actions::new();
        for e in down_out.emit {
            let mut f = e.frame;
            let v = up.on_ingress(&ictx(2, 20), &mut f, &mut up_out);
            assert_eq!(v, HookVerdict::Consume);
        }
        // Subsequent egress packets drain the pending lookups.
        for n in 10..14u16 {
            let mut f = build_data_packet(&flow(n), 100, 0, 0, 64);
            let mut out = Actions::new();
            up.on_egress(&mk_ectx(100), &mut f, &mut out);
        }
        // Force the event path to the end.
        let mut out = Actions::new();
        up.on_timer(10_000_000_000, &[], &mut out);
        let lost: Vec<FlowKey> = up
            .delivered
            .iter()
            .filter(|e| e.record.ty == EventType::InterSwitchDrop)
            .map(|e| e.record.flow)
            .collect();
        assert_eq!(lost, vec![flow(1), flow(2)]);
    }

    #[test]
    fn congestion_event_reported_once_per_flow() {
        let mut m = mon();
        let mut meta = fet_pdp::PacketMeta::arriving(0, 0, 100);
        meta.flow = Some(flow(1));
        meta.egress_ts_ns = 100 * fet_netsim::MICROS; // 100us delay
        let mut out = Actions::new();
        for _ in 0..50 {
            let mut f = build_data_packet(&flow(1), 100, 0, 0, 64);
            let ectx = EgressCtx {
                now_ns: meta.egress_ts_ns,
                node: 3,
                port: 1,
                queue: 0,
                peer_tagged: false,
                meta: &meta,
            };
            m.on_egress(&ectx, &mut f, &mut out);
        }
        m.on_timer(10_000_000_000, &[], &mut out);
        let cong: Vec<_> =
            m.delivered.iter().filter(|e| e.record.ty == EventType::Congestion).collect();
        // 50 event packets dedup to a single initial report (c=128 not hit).
        assert_eq!(cong.len(), 1);
        assert_eq!(cong[0].record.flow, flow(1));
        assert_eq!(m.stats.event_packets, 50);
    }

    #[test]
    fn below_threshold_is_not_congestion() {
        let mut m = mon();
        let mut meta = fet_pdp::PacketMeta::arriving(0, 0, 100);
        meta.flow = Some(flow(1));
        meta.egress_ts_ns = fet_netsim::MICROS;
        let mut out = Actions::new();
        let mut f = build_data_packet(&flow(1), 100, 0, 0, 64);
        let ectx = EgressCtx {
            now_ns: meta.egress_ts_ns,
            node: 3,
            port: 1,
            queue: 0,
            peer_tagged: false,
            meta: &meta,
        };
        m.on_egress(&ectx, &mut f, &mut out);
        assert_eq!(m.stats.event_packets, 0);
    }

    #[test]
    fn pause_event_on_paused_queue() {
        let mut m = mon();
        let mut out = Actions::new();
        m.on_pause_state(0, 7, 0, true);
        let rctx = RoutedCtx {
            now_ns: 10,
            node: 3,
            ingress_port: 1,
            egress_port: 7,
            queue: 0,
            queue_paused: false,
            flow: flow(2),
        };
        let f = build_data_packet(&flow(2), 100, 0, 0, 64);
        m.on_routed(&rctx, &f, &mut out);
        m.on_timer(10_000_000_000, &[], &mut out);
        assert_eq!(m.delivered.iter().filter(|e| e.record.ty == EventType::Pause).count(), 1);
    }

    #[test]
    fn path_change_reported_for_new_flow() {
        let mut m = mon();
        let mut out = Actions::new();
        let rctx = RoutedCtx {
            now_ns: 10,
            node: 3,
            ingress_port: 1,
            egress_port: 2,
            queue: 0,
            queue_paused: false,
            flow: flow(9),
        };
        let f = build_data_packet(&flow(9), 100, 0, 0, 64);
        m.on_routed(&rctx, &f, &mut out);
        m.on_routed(&rctx, &f, &mut out); // second packet: no event
        m.on_timer(10_000_000_000, &[], &mut out);
        assert_eq!(m.delivered.iter().filter(|e| e.record.ty == EventType::PathChange).count(), 1);
    }

    #[test]
    fn acl_drops_aggregate_per_rule() {
        let mut m = mon();
        let mut out = Actions::new();
        let f = build_data_packet(&flow(1), 100, 0, 0, 64);
        for i in 0..300u16 {
            // Different flows, same rule.
            let _ = i;
            m.on_pipeline_drop(
                &ictx(1, 10),
                &f,
                Some(flow(i)),
                DropCode::AclDeny,
                None,
                42,
                &mut out,
            );
        }
        m.on_timer(10_000_000_000, &[], &mut out);
        let acl_events: Vec<_> =
            m.delivered.iter().filter(|e| e.record.ty == EventType::PipelineDrop).collect();
        // 300 drops → first + 2 threshold refreshers (C=128), NOT 300.
        assert_eq!(acl_events.len(), 3);
        assert!(acl_events.iter().all(|e| e.record.flow == acl_rule_flow(42)));
        assert_eq!(m.acl.count(42), 300);
    }

    #[test]
    fn table_miss_drop_reports_victim_flow() {
        let mut m = mon();
        let mut out = Actions::new();
        let f = build_data_packet(&flow(5), 100, 0, 0, 64);
        m.on_pipeline_drop(&ictx(1, 10), &f, Some(flow(5)), DropCode::TableMiss, None, 0, &mut out);
        m.on_timer(10_000_000_000, &[], &mut out);
        let ev = m
            .delivered
            .iter()
            .find(|e| e.record.ty == EventType::PipelineDrop)
            .expect("drop event");
        assert_eq!(ev.record.flow, flow(5));
        match ev.record.detail {
            EventDetail::Drop { code, .. } => assert_eq!(code, DropCode::TableMiss),
            other => panic!("wrong detail {other:?}"),
        }
    }

    #[test]
    fn mmu_redirect_capacity_limits_drop_events() {
        let mut cfg = NetSeerConfig::default();
        cfg.capacity.mmu_redirect_gbps = 0.001; // ~1 Mbps: saturates fast
        let mut m = NetSeerMonitor::new(3, Role::Switch, cfg);
        let mut out = Actions::new();
        let rctx = RoutedCtx {
            now_ns: 0,
            node: 3,
            ingress_port: 1,
            egress_port: 2,
            queue: 0,
            queue_paused: false,
            flow: flow(1),
        };
        let f = build_data_packet(&flow(1), 1000, 0, 0, 64);
        for _ in 0..2_000 {
            m.on_mmu_drop(&rctx, &f, &mut out);
        }
        assert!(m.mmu_redirect_missed > 0, "redirect should saturate");
    }

    #[test]
    fn nic_role_logs_locally_and_skips_switch_detectors() {
        let mut m = NetSeerMonitor::new(9, Role::Nic, NetSeerConfig::default());
        let mut out = Actions::new();
        // NICs ignore routed/pipeline hooks.
        let rctx = RoutedCtx {
            now_ns: 0,
            node: 9,
            ingress_port: 0,
            egress_port: 0,
            queue: 0,
            queue_paused: true,
            flow: flow(1),
        };
        let f = build_data_packet(&flow(1), 100, 0, 0, 64);
        m.on_routed(&rctx, &f, &mut out);
        assert!(m.delivered.is_empty());
    }

    #[test]
    fn cebp_corruption_retransmits_then_delivers() {
        use crate::faults::CorruptionSpec;
        let mut cfg = NetSeerConfig::default();
        // Mild damage: most attempts fail on a 46-byte report frame, but
        // the implicit-NACK retransmit loop almost always gets one through.
        cfg.faults.cebp_corruption = CorruptionSpec::bit_flips(0.02);
        let mut m = NetSeerMonitor::new(3, Role::Switch, cfg);
        let mut out = Actions::new();
        for n in 0..30u16 {
            let mut meta = fet_pdp::PacketMeta::arriving(0, 0, 100);
            meta.flow = Some(flow(n));
            meta.egress_ts_ns = 100 * fet_netsim::MICROS;
            let mut f = build_data_packet(&flow(n), 100, 0, 0, 64);
            let ectx = EgressCtx {
                now_ns: meta.egress_ts_ns,
                node: 3,
                port: 1,
                queue: 0,
                peer_tagged: false,
                meta: &meta,
            };
            m.on_egress(&ectx, &mut f, &mut out);
            m.on_timer((u64::from(n) + 1) * 10_000_000, &[], &mut out);
        }
        assert_eq!(m.events_generated, 30);
        assert!(m.cebp_crc_failures > 0, "some attempts must fail CRC");
        assert!(m.stats.final_reports > 0, "retransmits must get batches through");
        assert!(!m.poison_frames().is_empty(), "failed attempts are quarantined");
        assert!(m.ledger().balanced(), "{:?}", m.ledger());
    }

    #[test]
    fn hopeless_cebp_corruption_is_terminal_and_counted() {
        use crate::faults::CorruptionSpec;
        let mut cfg = NetSeerConfig::default();
        // Half the bytes damaged per attempt: no attempt ever verifies.
        cfg.faults.cebp_corruption = CorruptionSpec::bit_flips(0.5);
        let mut m = NetSeerMonitor::new(3, Role::Switch, cfg);
        let mut out = Actions::new();
        let mut meta = fet_pdp::PacketMeta::arriving(0, 0, 100);
        meta.flow = Some(flow(1));
        meta.egress_ts_ns = 100 * fet_netsim::MICROS;
        let mut f = build_data_packet(&flow(1), 100, 0, 0, 64);
        let ectx = EgressCtx {
            now_ns: meta.egress_ts_ns,
            node: 3,
            port: 1,
            queue: 0,
            peer_tagged: false,
            meta: &meta,
        };
        m.on_egress(&ectx, &mut f, &mut out);
        m.on_timer(10_000_000_000, &[], &mut out);
        assert_eq!(m.stats.final_reports, 0);
        assert_eq!((m.corrupted_batches, m.corrupted_events), (1, 1));
        assert_eq!(m.ledger().corrupted, 1);
        assert!(m.ledger().balanced(), "{:?}", m.ledger());
        assert!(!m.poison_frames().is_empty());
        let poison = m.take_poison();
        assert!(!poison.is_empty() && m.poison_frames().is_empty());
        assert!(poison.iter().all(|p| p.device == 3 && !p.reason.is_empty()));
    }

    #[test]
    fn corrupted_notification_copy_is_rejected_not_parsed() {
        let mut m = mon();
        let mut out = Actions::new();
        let frames = build_notification_frames_with(5, 9, 2, 3);
        for (i, mut f) in frames.into_iter().enumerate() {
            if i == 0 {
                // Damage one copy's payload: its CRC trailer condemns it.
                f[ETHERNET_HEADER_LEN + 2] ^= 0x10;
            }
            let v = m.on_ingress(&ictx(2, 20), &mut f, &mut out);
            assert_eq!(v, HookVerdict::Consume);
        }
        assert_eq!(m.notifications_crc_rejected, 1);
        // The intact siblings still recovered the range.
        assert!(m.pending.get(2).is_some());
    }

    #[test]
    fn wedged_monitor_freezes_heartbeat_until_restart() {
        let mut m = mon();
        let mut out = Actions::new();
        m.on_timer(1_000_000, &[], &mut out);
        m.on_timer(2_000_000, &[], &mut out);
        assert_eq!(m.heartbeat, 2);
        m.wedge();
        assert!(m.is_wedged());
        m.on_timer(3_000_000, &[], &mut out);
        assert_eq!(m.heartbeat, 2, "a wedged loop makes no progress");
        m.crash(CrashKind::Hard, 4_000_000);
        let report = m.restart(5_000_000);
        assert!(!m.is_wedged(), "restart un-wedges");
        assert_eq!(report.kind, CrashKind::Hard);
        m.on_timer(6_000_000, &[], &mut out);
        assert_eq!(m.heartbeat, 3);
        assert!(m.ledger().balanced());
    }

    #[test]
    fn resource_usage_matches_paper_shape() {
        let mut m = mon();
        // Touch a few ports so ring buffers exist.
        let meta = fet_pdp::PacketMeta::arriving(0, 0, 64);
        for port in 0..4u8 {
            let mut f = build_data_packet(&flow(port.into()), 100, 0, 0, 64);
            let ectx =
                EgressCtx { now_ns: 0, node: 3, port, queue: 0, peer_tagged: true, meta: &meta };
            let mut out = Actions::new();
            m.on_egress(&ectx, &mut f, &mut out);
        }
        let ledger = m.resource_usage();
        // Nothing over budget; stateful ALU is the top NetSeer consumer.
        assert!(!ledger.over_budget());
        let alu = ledger.usage_fraction(ResourceKind::StatefulAlu);
        assert!(alu > 0.25 && alu <= 1.0, "ALU usage {alu}");
        for kind in [
            ResourceKind::ExactXbar,
            ResourceKind::TernaryXbar,
            ResourceKind::HashBits,
            ResourceKind::TcamBits,
        ] {
            assert!(ledger.usage_fraction(kind) < 0.6, "{kind:?} too high");
        }
        // All four NetSeer modules present.
        let mods = ledger.modules();
        for want in ["switch.p4", "event-detection", "inter-switch", "dedup", "batching"] {
            assert!(mods.contains(&want), "missing module {want}");
        }
    }
}
