//! Pause detection (§3.3): a queue status detector in the ingress pipeline
//! parses PFC frames to learn which (egress port, priority) queues are
//! paused; every packet routed toward a paused queue is a pause event
//! packet.

use fet_pdp::{ResourceKind, ResourceLedger};

/// Tracks PFC pause state per (port, priority).
#[derive(Debug)]
pub struct PauseTracker {
    /// Bit per (port, prio).
    bits: Vec<u64>,
    ports: usize,
    /// Pause transitions observed.
    pub pauses_seen: u64,
    /// Resume transitions observed.
    pub resumes_seen: u64,
}

const PRIOS: usize = 8;

impl PauseTracker {
    /// Create for `ports` ports.
    pub fn new(ports: usize) -> Self {
        PauseTracker {
            bits: vec![0; (ports * PRIOS).div_ceil(64)],
            ports,
            pauses_seen: 0,
            resumes_seen: 0,
        }
    }

    fn pos(&self, port: u8, prio: u8) -> (usize, u64) {
        let i = usize::from(port) * PRIOS + usize::from(prio);
        (i / 64, 1u64 << (i % 64))
    }

    /// Record a pause-state transition.
    pub fn set(&mut self, port: u8, prio: u8, paused: bool) {
        if usize::from(port) >= self.ports || usize::from(prio) >= PRIOS {
            return;
        }
        let (w, m) = self.pos(port, prio);
        let was = self.bits[w] & m != 0;
        if paused && !was {
            self.bits[w] |= m;
            self.pauses_seen += 1;
        } else if !paused && was {
            self.bits[w] &= !m;
            self.resumes_seen += 1;
        }
    }

    /// Is (port, prio) currently paused?
    pub fn is_paused(&self, port: u8, prio: u8) -> bool {
        if usize::from(port) >= self.ports || usize::from(prio) >= PRIOS {
            return false;
        }
        let (w, m) = self.pos(port, prio);
        self.bits[w] & m != 0
    }

    /// Charge the status bits to the ledger (SRAM, one stateful ALU).
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        ledger.charge(module, ResourceKind::SramBits, (self.ports * PRIOS) as u64);
        ledger.charge(module, ResourceKind::StatefulAlu, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_resume_cycle() {
        let mut t = PauseTracker::new(32);
        assert!(!t.is_paused(3, 5));
        t.set(3, 5, true);
        assert!(t.is_paused(3, 5));
        assert!(!t.is_paused(3, 4));
        assert!(!t.is_paused(4, 5));
        t.set(3, 5, false);
        assert!(!t.is_paused(3, 5));
        assert_eq!(t.pauses_seen, 1);
        assert_eq!(t.resumes_seen, 1);
    }

    #[test]
    fn idempotent_transitions_counted_once() {
        let mut t = PauseTracker::new(4);
        t.set(0, 0, true);
        t.set(0, 0, true);
        assert_eq!(t.pauses_seen, 1);
        t.set(0, 0, false);
        t.set(0, 0, false);
        assert_eq!(t.resumes_seen, 1);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut t = PauseTracker::new(4);
        t.set(200, 0, true);
        assert!(!t.is_paused(200, 0));
        assert_eq!(t.pauses_seen, 0);
    }

    #[test]
    fn all_slots_independent() {
        let mut t = PauseTracker::new(16);
        for port in 0..16u8 {
            for prio in 0..8u8 {
                if (port + prio) % 2 == 0 {
                    t.set(port, prio, true);
                }
            }
        }
        for port in 0..16u8 {
            for prio in 0..8u8 {
                assert_eq!(t.is_paused(port, prio), (port + prio) % 2 == 0);
            }
        }
    }
}
