//! Path-change detection (§3.3): learn each flow's (ingress, egress) port
//! pair in a hash-indexed flow table; report the first packet of a new
//! flow, or of an old flow whose ports changed.
//!
//! The table has finite entries and replaces on collision — the paper's
//! "quickly expire old flows ... with slightly more flows reported as new
//! ones". An evicted-then-returning flow is re-reported as new: that is a
//! deliberate over-report, never a miss.

use fet_packet::flow::FLOW_KEY_LEN;
use fet_packet::FlowKey;
use fet_pdp::{HashUnit, RegisterArray, ResourceLedger};

/// One learned path entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathEntry {
    valid: bool,
    flow: [u8; FLOW_KEY_LEN],
    in_port: u8,
    out_port: u8,
}

/// Why a packet was selected as a path-change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathChangeKind {
    /// First packet of a flow this table has no memory of.
    NewFlow,
    /// Known flow, but its port pair changed (a real path change).
    PortsChanged {
        /// Previous ingress port.
        old_in: u8,
        /// Previous egress port.
        old_out: u8,
    },
}

/// The learned flow-path table.
#[derive(Debug)]
pub struct PathTable {
    table: RegisterArray<PathEntry>,
    hash: HashUnit,
    /// Packets offered.
    pub offered: u64,
    /// Path-change events reported.
    pub reported: u64,
}

impl PathTable {
    /// Create with `entries` slots.
    pub fn new(entries: usize, hash_seed: u32) -> Self {
        PathTable {
            // valid + 104b flow + 2x8b ports ≈ 121 bits.
            table: RegisterArray::new("path-table", entries, 121),
            hash: HashUnit::new("path-hash", hash_seed, 32),
            offered: 0,
            reported: 0,
        }
    }

    /// Observe a routed packet. Returns `Some` when this packet should be
    /// reported as a path-change event.
    pub fn offer(&mut self, flow: FlowKey, in_port: u8, out_port: u8) -> Option<PathChangeKind> {
        self.offered += 1;
        let idx = self.hash.index(&flow, self.table.len());
        let mut fk = [0u8; FLOW_KEY_LEN];
        flow.write_to(&mut fk);
        let old = self.table.read_modify_write(idx, |_| PathEntry {
            valid: true,
            flow: fk,
            in_port,
            out_port,
        });
        let kind = if !old.valid || old.flow != fk {
            // Empty slot or a different flow evicted: report as new.
            Some(PathChangeKind::NewFlow)
        } else if old.in_port != in_port || old.out_port != out_port {
            Some(PathChangeKind::PortsChanged { old_in: old.in_port, old_out: old.out_port })
        } else {
            None
        };
        if kind.is_some() {
            self.reported += 1;
        }
        kind
    }

    /// Charge to a resource ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        self.table.account(ledger, module);
        self.hash.account(ledger, module);
    }

    /// Table size in entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0100 + n),
            5555,
            Ipv4Addr::from_octets([10, 9, 9, 9]),
            80,
        )
    }

    #[test]
    fn first_packet_reports_new_flow() {
        let mut t = PathTable::new(64, 1);
        assert_eq!(t.offer(flow(1), 1, 2), Some(PathChangeKind::NewFlow));
        assert_eq!(t.offer(flow(1), 1, 2), None);
        assert_eq!(t.offer(flow(1), 1, 2), None);
    }

    #[test]
    fn port_change_reports_with_old_ports() {
        let mut t = PathTable::new(64, 1);
        t.offer(flow(1), 1, 2);
        assert_eq!(
            t.offer(flow(1), 1, 3),
            Some(PathChangeKind::PortsChanged { old_in: 1, old_out: 2 })
        );
        assert_eq!(t.offer(flow(1), 1, 3), None);
    }

    #[test]
    fn eviction_rereports_as_new_never_misses() {
        // 1-entry table: two flows ping-pong; every transition re-reports.
        let mut t = PathTable::new(1, 1);
        assert!(t.offer(flow(1), 1, 2).is_some());
        assert!(t.offer(flow(2), 1, 2).is_some());
        assert!(t.offer(flow(1), 1, 2).is_some());
        // An actual path change of flow(1) after re-learn is still caught.
        assert_eq!(
            t.offer(flow(1), 1, 9),
            Some(PathChangeKind::PortsChanged { old_in: 1, old_out: 2 })
        );
    }

    #[test]
    fn ingress_port_change_also_reports() {
        let mut t = PathTable::new(64, 1);
        t.offer(flow(1), 1, 2);
        assert!(matches!(
            t.offer(flow(1), 7, 2),
            Some(PathChangeKind::PortsChanged { old_in: 1, .. })
        ));
    }

    #[test]
    fn counters_track() {
        let mut t = PathTable::new(64, 1);
        for n in 0..10 {
            t.offer(flow(n), 0, 1);
        }
        for n in 0..10 {
            t.offer(flow(n), 0, 1);
        }
        assert_eq!(t.offered, 20);
        // With 64 entries and 10 flows collisions are unlikely but possible;
        // at least the 10 initial reports must exist.
        assert!(t.reported >= 10);
    }
}
