//! Inter-switch drop/corruption detection (§3.3, Figure 5).
//!
//! Upstream side ([`PortTagger`]): a per-egress-port consecutive 4-byte
//! packet ID is inserted into every departing frame, and a ring buffer
//! caches (packet ID, 5-tuple) of the most recent `N` frames.
//!
//! Downstream side ([`GapDetector`]): the ingress strips the tag; a gap in
//! the sequence means frames died on the wire, so three redundant
//! [`LossNotification`](fet_packet::notification)s travel back on the
//! high-priority queue.
//!
//! Back upstream, the notification's missing range is queued in
//! [`PendingLookups`] and drained one ring lookup per subsequent egress
//! packet (programmable ASICs cannot loop within a stage — paper §3.3) with
//! the control-plane timer as a backstop when the port goes quiet. A slot
//! whose stored ID no longer matches was overridden by newer traffic: the
//! lookup misses and **no wrong packet is ever reported**.

use fet_packet::flow::FLOW_KEY_LEN;
use fet_packet::seqtag::gap_between;
use fet_packet::FlowKey;
use fet_pdp::{RegisterArray, ResourceLedger};
use std::collections::VecDeque;

/// One ring-buffer slot: 4 B packet ID + 13 B flow + valid bit
/// (the paper's "5-tuple and packet IDs of the recent N packets").
#[derive(Debug, Clone, Copy, Default)]
pub struct RingSlot {
    valid: bool,
    seq: u32,
    flow: [u8; FLOW_KEY_LEN],
}

/// Upstream per-port state: sequence numbering + ring buffer.
#[derive(Debug)]
pub struct PortTagger {
    next_seq: u32,
    ring: RegisterArray<RingSlot>,
    /// Frames tagged so far.
    pub tagged: u64,
    /// Ring lookups that found their packet.
    pub lookup_hits: u64,
    /// Ring lookups that missed (slot overridden — drop detected too late).
    pub lookup_misses: u64,
}

impl PortTagger {
    /// Create with `slots` ring entries.
    pub fn new(slots: usize) -> Self {
        PortTagger {
            next_seq: 0,
            // 1 + 32 + 104 bits ≈ 137 bits/slot.
            ring: RegisterArray::new("isw-ring", slots, 137),
            tagged: 0,
            lookup_hits: 0,
            lookup_misses: 0,
        }
    }

    /// Number the next departing frame: returns the sequence to insert and
    /// records (seq, flow) in the ring.
    pub fn next(&mut self, flow: FlowKey) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.tagged += 1;
        let slots = self.ring.len().max(1);
        let mut fk = [0u8; FLOW_KEY_LEN];
        flow.write_to(&mut fk);
        self.ring.write(seq as usize % slots, RingSlot { valid: true, seq, flow: fk });
        seq
    }

    /// Look up a reported-lost packet ID. `Some(flow)` only when the slot
    /// still holds exactly that ID (never reports the wrong packet).
    pub fn lookup(&mut self, seq: u32) -> Option<FlowKey> {
        let slots = self.ring.len().max(1);
        let slot = self.ring.read(seq as usize % slots);
        if slot.valid && slot.seq == seq {
            self.lookup_hits += 1;
            Some(FlowKey::read_from(&slot.flow))
        } else {
            self.lookup_misses += 1;
            None
        }
    }

    /// Ring capacity in slots.
    pub fn slots(&self) -> usize {
        self.ring.len()
    }

    /// The next sequence number this port will assign — the "ring-buffer
    /// head" a recovery checkpoint snapshots.
    pub fn head(&self) -> u32 {
        self.next_seq
    }

    /// Restore the numbering head from a checkpoint so the post-restart
    /// sequence continues where the pre-crash one left off (downstream
    /// gap detectors see a continuation, not a reset-to-zero burst). The
    /// ring contents themselves are volatile and stay lost: a missed
    /// lookup on old traffic is counted as a miss, never misreported.
    pub fn restore_head(&mut self, head: u32) {
        self.next_seq = head;
    }

    /// Charge the ring to a resource ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        self.ring.account(ledger, module);
    }
}

/// Downstream per-port state: expected-sequence tracking.
#[derive(Debug, Default)]
pub struct GapDetector {
    expected: Option<u32>,
    /// Tagged frames observed.
    pub packets_seen: u64,
    /// Gap events detected.
    pub gaps_detected: u64,
    /// Total missing packets across all gaps.
    pub packets_missing: u64,
    /// Explicit re-bases after an upstream restart (see
    /// [`GapDetector::rebase`]).
    pub rebases: u64,
}

impl GapDetector {
    /// Fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an arriving sequence number. Returns the inclusive missing
    /// range `(lo, hi)` when a gap is detected.
    pub fn observe(&mut self, seq: u32) -> Option<(u32, u32)> {
        self.packets_seen += 1;
        let out = match self.expected {
            None => None,
            Some(exp) if seq == exp => None,
            Some(exp) => {
                let missing = gap_between(exp.wrapping_sub(1), seq);
                if missing == 0 {
                    None
                } else {
                    self.gaps_detected += 1;
                    self.packets_missing += u64::from(missing);
                    Some((exp, seq.wrapping_sub(1)))
                }
            }
        };
        self.expected = Some(seq.wrapping_add(1));
        out
    }

    /// Forget the expected sequence without touching the cumulative
    /// counters: the next [`observe`](GapDetector::observe) re-synchronizes
    /// silently, exactly like the very first observation. Called when the
    /// *upstream* tagger restarts — its post-recovery sequence may be
    /// discontinuous (e.g. a hard kill rolled the head back), and counting
    /// that administrative discontinuity as an inter-switch loss burst
    /// would double-count the crash.
    pub fn rebase(&mut self) {
        self.expected = None;
        self.rebases += 1;
    }
}

/// Ceiling on a single notification's missing-range width. Anything wider
/// is a corrupted payload (no sane gap spans a million packets before the
/// next arrival reveals it) and is truncated + counted, so one flipped bit
/// can't wedge the lookup queue for seconds.
pub const MAX_NOTIFICATION_RANGE: u32 = 1 << 20;

/// Upstream queue of not-yet-performed ring lookups: one entry per missing
/// packet ID, drained one per subsequent egress packet + by the timer.
#[derive(Debug)]
pub struct PendingLookups {
    queue: VecDeque<u32>,
    cap: usize,
    /// Ranges recently enqueued (to drop redundant notification copies).
    recent: VecDeque<(u32, u32)>,
    /// Lookups dropped because the pending queue overflowed.
    pub overflowed: u64,
    /// Notification copies offered (including redundant ones).
    pub copies_received: u64,
    /// Redundant copies suppressed by dedup — each one is a copy that was
    /// *not needed* because an earlier copy survived.
    pub duplicate_copies: u64,
    /// Distinct ranges accepted. `copies_received` ≥ `ranges_accepted`;
    /// with triple redundancy and no loss it is 3× — the shortfall under
    /// injected notification loss measures redundancy effectiveness.
    pub ranges_accepted: u64,
    /// Absurd (corrupted) ranges truncated to [`MAX_NOTIFICATION_RANGE`].
    pub corrupted_ranges: u64,
}

impl PendingLookups {
    /// Create with a capacity bound.
    pub fn new(cap: usize) -> Self {
        PendingLookups {
            queue: VecDeque::new(),
            cap: cap.max(1),
            recent: VecDeque::new(),
            overflowed: 0,
            copies_received: 0,
            duplicate_copies: 0,
            ranges_accepted: 0,
            corrupted_ranges: 0,
        }
    }

    /// Enqueue a missing range from a notification. Redundant copies of the
    /// same range are ignored (reordered copies included, up to the recent
    /// window). Returns true if newly enqueued.
    pub fn push_range(&mut self, lo: u32, hi: u32) -> bool {
        self.copies_received += 1;
        if self.recent.contains(&(lo, hi)) {
            self.duplicate_copies += 1;
            return false;
        }
        self.recent.push_back((lo, hi));
        if self.recent.len() > 16 {
            self.recent.pop_front();
        }
        self.ranges_accepted += 1;
        let count = hi.wrapping_sub(lo).wrapping_add(1);
        // Guard against absurd ranges (corrupted notification payloads).
        if count > MAX_NOTIFICATION_RANGE {
            self.corrupted_ranges += 1;
        }
        let count = count.min(MAX_NOTIFICATION_RANGE);
        for i in 0..count {
            if self.queue.len() >= self.cap {
                self.overflowed += u64::from(count - i);
                break;
            }
            self.queue.push_back(lo.wrapping_add(i));
        }
        true
    }

    /// Pop one pending packet ID to look up.
    pub fn pop(&mut self) -> Option<u32> {
        self.queue.pop_front()
    }

    /// Pending count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    #[test]
    fn tagger_numbers_consecutively() {
        let mut t = PortTagger::new(8);
        assert_eq!(t.next(flow(1)), 0);
        assert_eq!(t.next(flow(2)), 1);
        assert_eq!(t.next(flow(3)), 2);
        assert_eq!(t.tagged, 3);
    }

    #[test]
    fn tagger_head_restores_across_restart() {
        let mut t = PortTagger::new(8);
        for n in 0..5 {
            t.next(flow(n));
        }
        let head = t.head();
        assert_eq!(head, 5);
        // A restart builds a fresh tagger and restores the checkpointed
        // head: numbering continues, the (volatile) ring starts empty.
        let mut fresh = PortTagger::new(8);
        fresh.restore_head(head);
        assert_eq!(fresh.next(flow(9)), 5, "sequence continues, no reset to 0");
        assert_eq!(fresh.lookup(2), None, "pre-crash ring contents are gone: counted miss");
        assert_eq!(fresh.lookup_misses, 1);
    }

    #[test]
    fn gap_detector_rebase_resyncs_without_counting_a_burst() {
        let mut g = GapDetector::new();
        for seq in 0..10 {
            g.observe(seq);
        }
        assert_eq!(g.gaps_detected, 0);
        // Upstream restarts and (hard kill) rolls its numbering back.
        // Without a rebase this discontinuity would register as a giant
        // burst of "missing" packets.
        g.rebase();
        assert_eq!(g.observe(3), None, "first post-rebase observation only syncs");
        assert_eq!(g.observe(4), None);
        assert_eq!(g.gaps_detected, 0);
        assert_eq!(g.packets_missing, 0);
        assert_eq!(g.rebases, 1);
        // Real gaps are still caught after the re-base.
        assert_eq!(g.observe(7), Some((5, 6)));
        assert_eq!(g.gaps_detected, 1);
        assert_eq!(g.packets_missing, 2);
        // Cumulative counters survived the rebase.
        assert_eq!(g.packets_seen, 13);
    }

    #[test]
    fn ring_lookup_finds_recent_flows() {
        let mut t = PortTagger::new(8);
        for n in 0..8 {
            t.next(flow(n));
        }
        assert_eq!(t.lookup(3), Some(flow(3)));
        assert_eq!(t.lookup(7), Some(flow(7)));
    }

    #[test]
    fn overridden_slot_never_reports_wrong_packet() {
        let mut t = PortTagger::new(4);
        for n in 0..10 {
            t.next(flow(n));
        }
        // Seq 2 was overridden by seq 6 (2 % 4 == 6 % 4).
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.lookup(6), Some(flow(6)));
        assert_eq!(t.lookup_misses, 1);
        assert_eq!(t.lookup_hits, 1);
    }

    #[test]
    fn gap_detector_flags_exact_range() {
        let mut g = GapDetector::new();
        assert_eq!(g.observe(10), None); // first packet: sync only
        assert_eq!(g.observe(11), None);
        assert_eq!(g.observe(15), Some((12, 14)));
        assert_eq!(g.packets_missing, 3);
        assert_eq!(g.observe(16), None);
        assert_eq!(g.gaps_detected, 1);
    }

    #[test]
    fn gap_detector_handles_wraparound() {
        let mut g = GapDetector::new();
        assert_eq!(g.observe(u32::MAX - 1), None);
        assert_eq!(g.observe(1), Some((u32::MAX, 0)));
        assert_eq!(g.packets_missing, 2);
    }

    #[test]
    fn single_loss_detected() {
        let mut g = GapDetector::new();
        g.observe(0);
        assert_eq!(g.observe(2), Some((1, 1)));
    }

    #[test]
    fn pending_lookup_dedups_notification_copies() {
        let mut p = PendingLookups::new(100);
        assert!(p.push_range(5, 9));
        assert!(!p.push_range(5, 9)); // copy 2
        assert!(!p.push_range(5, 9)); // copy 3
        assert_eq!(p.len(), 5);
        let drained: Vec<u32> = std::iter::from_fn(|| p.pop()).collect();
        assert_eq!(drained, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn pending_lookup_overflow_counts() {
        let mut p = PendingLookups::new(3);
        p.push_range(0, 9);
        assert_eq!(p.len(), 3);
        assert_eq!(p.overflowed, 7);
    }

    #[test]
    fn corrupted_range_is_truncated_and_counted() {
        // A corrupted payload claiming "everything is missing" (hi < lo
        // wraps to a ~4-billion-wide range) must not wedge the queue.
        let mut p = PendingLookups::new(usize::MAX);
        assert!(p.push_range(100, 98));
        assert_eq!(p.corrupted_ranges, 1);
        assert_eq!(p.len(), MAX_NOTIFICATION_RANGE as usize);
        // A legitimate wraparound range (small width across u32::MAX) is
        // not flagged.
        let mut q = PendingLookups::new(100);
        assert!(q.push_range(u32::MAX - 1, 2));
        assert_eq!(q.corrupted_ranges, 0);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![u32::MAX - 1, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn redundancy_counters_measure_copy_loss() {
        let mut p = PendingLookups::new(1000);
        // Range A: all 3 copies arrive. Range B: only 1 survives.
        for _ in 0..3 {
            p.push_range(10, 12);
        }
        p.push_range(20, 21);
        assert_eq!(p.copies_received, 4);
        assert_eq!(p.ranges_accepted, 2);
        assert_eq!(p.duplicate_copies, 2);
    }

    #[test]
    fn dedup_survives_reordered_interleaved_copies() {
        // Copies of different ranges interleave arbitrarily (the
        // high-priority queue can reorder across ports): each range is
        // still enqueued exactly once.
        let mut p = PendingLookups::new(1000);
        let copies =
            [(5u32, 6u32), (9, 9), (5, 6), (20, 22), (9, 9), (5, 6), (20, 22), (9, 9), (20, 22)];
        for (lo, hi) in copies {
            p.push_range(lo, hi);
        }
        assert_eq!(p.ranges_accepted, 3);
        let drained: Vec<u32> = std::iter::from_fn(|| p.pop()).collect();
        assert_eq!(drained, vec![5, 6, 9, 20, 21, 22]);
    }

    #[test]
    fn ring_wraparound_storm_sized_to_capacity_recovers_everything() {
        // A consecutive-drop storm exactly as large as the provisioning
        // rule slots_for_consecutive_drops() covers: the ring (sized with
        // the feedback-interval margin) must still hold every victim when
        // the notification arrives, even though the sequence space has
        // wrapped several times beforehand.
        let storm = 64usize;
        let margin = 16usize; // models min_ring_slots(feedback interval)
        let slots = storm + margin; // slots_for_consecutive_drops shape
        let mut up = PortTagger::new(slots);
        let mut down = GapDetector::new();
        // Wrap the ring many times with healthy traffic first; downstream
        // tracks the sequence the whole time.
        for n in 0..(slots as u32 * 7) {
            let seq = up.next(flow((n % 60_000) as u16));
            assert_eq!(down.observe(seq), None);
        }
        let mut lost = Vec::new();
        let mut recovered = Vec::new();
        let base = slots as u32 * 7;
        for i in 0..(storm as u32 + margin as u32) {
            let f = flow((7_000 + i) as u16);
            let seq = up.next(f);
            assert_eq!(seq, base + i);
            // The storm eats `storm` consecutive packets at the start.
            if i < storm as u32 {
                lost.push(f);
                continue;
            }
            if let Some((lo, hi)) = down.observe(seq) {
                for s in lo..=hi {
                    if let Some(found) = up.lookup(s) {
                        recovered.push(found);
                    }
                }
            }
        }
        assert_eq!(recovered, lost, "ring sized per capacity rule loses nothing");
    }

    #[test]
    fn ring_storm_beyond_capacity_misses_but_never_lies() {
        // A storm larger than the ring: older victims are overwritten.
        // The contract degrades to "fewer recoveries", never to "wrong
        // flow reported".
        let slots = 32usize;
        let mut up = PortTagger::new(slots);
        let mut down = GapDetector::new();
        assert_eq!(down.observe(up.next(flow(60_000))), None); // sync
        let storm = 100u32; // >> slots
        let mut truth = std::collections::HashMap::new();
        for i in 0..storm {
            let f = flow(i as u16);
            let seq = up.next(f);
            truth.insert(seq, f);
        }
        // One survivor reveals the gap.
        let survivor = flow(60_001);
        let seq = up.next(survivor);
        let (lo, hi) = down.observe(seq).expect("storm gap must be detected");
        assert_eq!((lo, hi), (1, storm));
        let mut recovered = 0;
        for s in lo..=hi {
            if let Some(found) = up.lookup(s) {
                assert_eq!(found, truth[&s], "reported flow must be the true victim");
                recovered += 1;
            }
        }
        assert!(recovered <= slots, "can't recover more than the ring holds");
        assert!(recovered > 0, "the most recent victims are still resident");
        assert!(up.lookup_misses > 0, "overwritten slots must miss, not lie");
    }

    #[test]
    fn end_to_end_loss_recovery() {
        // Upstream tags 100 packets; the wire eats 5; downstream detects
        // and upstream recovers exactly the victims' flows.
        let mut up = PortTagger::new(64);
        let mut down = GapDetector::new();
        let mut lost_flows = Vec::new();
        let mut recovered = Vec::new();
        for n in 0..100u16 {
            let seq = up.next(flow(n));
            let eaten = (40..45).contains(&n);
            if eaten {
                lost_flows.push(flow(n));
                continue;
            }
            if let Some((lo, hi)) = down.observe(seq) {
                for s in lo..=hi {
                    if let Some(f) = up.lookup(s) {
                        recovered.push(f);
                    }
                }
            }
        }
        assert_eq!(recovered, lost_flows);
    }
}
