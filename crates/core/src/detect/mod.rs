//! Event packet detection (§3.3): the in-pipeline logic that decides, per
//! packet, whether a flow event is happening.
//!
//! * [`interswitch`] — sequence tagging, per-port ring buffers, gap
//!   detection, and loss-notification processing for drops/corruptions on
//!   the wire between devices;
//! * [`path_change`] — the learned flow→(ingress, egress) port table;
//! * [`pause`] — the PFC queue-status tracker.
//!
//! Congestion detection is a stateless threshold on the queuing delay the
//! egress pipeline already has; pipeline- and MMU-drop detection are hook
//! points the emulated ASIC raises directly. All three live in
//! [`crate::monitor`].

pub mod interswitch;
pub mod path_change;
pub mod pause;

pub use interswitch::{GapDetector, PendingLookups, PortTagger};
pub use path_change::{PathChangeKind, PathTable};
pub use pause::PauseTracker;
