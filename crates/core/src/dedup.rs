//! Group-caching event deduplication — Algorithm 1 of the paper (§3.4).
//!
//! One hash table per event type; each entry stores an **exact** flow
//! 5-tuple, a counter, and a report target. The first packet of a flow
//! event is always reported (zero false negatives); subsequent packets of
//! the same flow event only bump the counter, with a refresher report every
//! `C` packets. A hash collision evicts the incumbent — both the evicted
//! flow (with its final counter) and the newcomer are reported, which can
//! produce *false positives* (repeated initial reports) that the switch CPU
//! later removes (§3.6).
//!
//! The table lives in a [`RegisterArray`] so the resource ledger charges it
//! like the stateful-ALU memory it would occupy on the ASIC.

use fet_packet::FlowKey;
use fet_pdp::{HashUnit, RegisterArray, ResourceLedger};

/// One group-cache entry. ~23 bytes of logical state (13 B flow + counter +
/// target), spanning two 128-bit stateful-ALU stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheEntry {
    flow: Option<FlowKey>,
    counter: u32,
    target: u32,
}

/// What `offer` decided (the produce_event calls of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// Suppressed: same flow, counter below target (lines 3–4).
    Suppressed {
        /// Counter value after increment.
        counter: u32,
    },
    /// Counter crossed the report target (lines 5–7): report a refresher.
    CounterReport {
        /// Counter value at the report.
        counter: u32,
    },
    /// New flow installed into an empty entry (lines 8–12): report it.
    NewFlow,
    /// New flow evicted an incumbent (lines 8–12): report both.
    Evicted {
        /// The evicted flow.
        old_flow: FlowKey,
        /// The evicted flow's counter at eviction.
        old_counter: u32,
    },
}

/// A group-caching deduplication table for one event type.
#[derive(Debug)]
pub struct GroupCache {
    table: RegisterArray<CacheEntry>,
    hash: HashUnit,
    c: u32,
    /// Packets offered.
    pub offered: u64,
    /// Reports produced (initial + eviction + counter reports).
    pub reports: u64,
}

impl GroupCache {
    /// Create a table with `entries` slots and report interval `c`.
    pub fn new(name: &'static str, entries: usize, c: u32, hash_seed: u32) -> Self {
        GroupCache {
            // 13B flow + 4B counter + 4B target + valid ≈ 176 bits/entry.
            table: RegisterArray::new(name, entries, 176),
            hash: HashUnit::new(name, hash_seed, 32),
            c: c.max(1),
            offered: 0,
            reports: 0,
        }
    }

    /// Offer one event packet of `flow`; returns what to report.
    /// This is Algorithm 1 verbatim.
    pub fn offer(&mut self, flow: FlowKey) -> DedupOutcome {
        self.offered += 1;
        let index = self.hash.index(&flow, self.table.len());
        let c = self.c;
        let entry = self.table.read(index);
        let outcome = if entry.flow == Some(flow) {
            let counter = entry.counter + 1;
            if counter >= entry.target {
                self.table.read_modify_write(index, |mut e| {
                    e.counter = counter;
                    e.target = entry.target + c;
                    e
                });
                DedupOutcome::CounterReport { counter }
            } else {
                self.table.read_modify_write(index, |mut e| {
                    e.counter = counter;
                    e
                });
                DedupOutcome::Suppressed { counter }
            }
        } else {
            let old = self.table.read_modify_write(index, |_| CacheEntry {
                flow: Some(flow),
                counter: 1,
                target: c,
            });
            match old.flow {
                Some(old_flow) => DedupOutcome::Evicted { old_flow, old_counter: old.counter },
                None => DedupOutcome::NewFlow,
            }
        };
        match outcome {
            DedupOutcome::Suppressed { .. } => {}
            DedupOutcome::Evicted { .. } => self.reports += 2,
            _ => self.reports += 1,
        }
        outcome
    }

    /// The data-plane pre-computed flow hash shipped in the event record.
    pub fn flow_hash(&self, flow: &FlowKey) -> u32 {
        self.hash.hash_flow(flow)
    }

    /// Report-suppression ratio achieved so far (the paper's ~95%).
    pub fn suppression_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        1.0 - (self.reports as f64 / self.offered as f64)
    }

    /// Reset all entries (e.g. between experiment phases).
    pub fn clear(&mut self) {
        self.table.clear();
        self.offered = 0;
        self.reports = 0;
    }

    /// Charge this table to a resource ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        self.table.account(ledger, module);
        self.hash.account(ledger, module);
    }

    /// Table size in entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0000 | n),
            (n % 50_000) as u16,
            Ipv4Addr::from_octets([10, 99, 0, 1]),
            80,
        )
    }

    #[test]
    fn first_packet_always_reported() {
        let mut gc = GroupCache::new("t", 1024, 100, 1);
        assert_eq!(gc.offer(flow(1)), DedupOutcome::NewFlow);
    }

    #[test]
    fn same_flow_suppressed_until_threshold() {
        let mut gc = GroupCache::new("t", 1024, 10, 1);
        assert_eq!(gc.offer(flow(1)), DedupOutcome::NewFlow);
        // Counter runs 2..9 suppressed; at 10 (== target) a report fires.
        for i in 2..10 {
            assert_eq!(gc.offer(flow(1)), DedupOutcome::Suppressed { counter: i });
        }
        assert_eq!(gc.offer(flow(1)), DedupOutcome::CounterReport { counter: 10 });
        // Then again at 20.
        for i in 11..20 {
            assert_eq!(gc.offer(flow(1)), DedupOutcome::Suppressed { counter: i });
        }
        assert_eq!(gc.offer(flow(1)), DedupOutcome::CounterReport { counter: 20 });
    }

    #[test]
    fn collision_reports_both_flows() {
        // Table of 1 entry: every flow collides.
        let mut gc = GroupCache::new("t", 1, 100, 1);
        assert_eq!(gc.offer(flow(1)), DedupOutcome::NewFlow);
        gc.offer(flow(1));
        gc.offer(flow(1));
        match gc.offer(flow(2)) {
            DedupOutcome::Evicted { old_flow, old_counter } => {
                assert_eq!(old_flow, flow(1));
                assert_eq!(old_counter, 3);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // Ping-pong back: flow(1) is reported again — the false positive
        // the switch CPU removes later.
        assert!(matches!(gc.offer(flow(1)), DedupOutcome::Evicted { .. }));
    }

    #[test]
    fn zero_false_negatives_under_collision_storm() {
        // Every flow that ever appears must be reported at least once,
        // even in a 4-entry table with 1000 flows.
        let mut gc = GroupCache::new("t", 4, 1_000_000, 1);
        let mut reported = std::collections::HashSet::new();
        for round in 0..3 {
            for n in 0..1000 {
                match gc.offer(flow(n)) {
                    DedupOutcome::NewFlow => {
                        reported.insert(flow(n));
                    }
                    DedupOutcome::Evicted { old_flow, .. } => {
                        reported.insert(old_flow);
                        reported.insert(flow(n));
                    }
                    DedupOutcome::CounterReport { .. } | DedupOutcome::Suppressed { .. } => {}
                }
            }
            let _ = round;
        }
        for n in 0..1000 {
            assert!(reported.contains(&flow(n)), "flow {n} never reported — false negative");
        }
    }

    #[test]
    fn suppression_ratio_high_for_heavy_flows() {
        // 10 flows, 10k packets each, big table: ~1 report per C packets.
        let mut gc = GroupCache::new("t", 4096, 128, 1);
        for _ in 0..10_000 {
            for n in 0..10 {
                gc.offer(flow(n));
            }
        }
        assert!(gc.suppression_ratio() > 0.95, "ratio {}", gc.suppression_ratio());
    }

    #[test]
    fn clear_resets_state() {
        let mut gc = GroupCache::new("t", 16, 10, 1);
        gc.offer(flow(1));
        gc.clear();
        assert_eq!(gc.offered, 0);
        assert_eq!(gc.offer(flow(1)), DedupOutcome::NewFlow);
    }

    #[test]
    fn c_of_zero_is_clamped() {
        let mut gc = GroupCache::new("t", 16, 0, 1);
        gc.offer(flow(1));
        // With c clamped to 1 every packet is a counter report, not a panic
        // or an infinite suppression.
        assert!(matches!(gc.offer(flow(1)), DedupOutcome::CounterReport { .. }));
    }
}

/// The bloom-filter deduplication alternative the paper rejects (§3.4):
/// memory-efficient, but hash collisions make it *drop first reports* —
/// false negatives, which are fatal for network exoneration. Included for
/// the ablation benchmark that reproduces that argument.
#[derive(Debug)]
pub struct BloomDedup {
    bits: Vec<u64>,
    nbits: usize,
    hashes: [HashUnit; 3],
    /// Packets offered.
    pub offered: u64,
    /// Reports produced.
    pub reports: u64,
}

impl BloomDedup {
    /// Create with `nbits` filter bits.
    pub fn new(nbits: usize, seed: u32) -> Self {
        let nbits = nbits.max(64);
        BloomDedup {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
            hashes: [
                HashUnit::new("bloom-a", seed ^ 0x1111, 32),
                HashUnit::new("bloom-b", seed ^ 0x2222, 32),
                HashUnit::new("bloom-c", seed ^ 0x3333, 32),
            ],
            offered: 0,
            reports: 0,
        }
    }

    /// Offer one event packet; returns true when it should be reported
    /// (i.e. the filter believes the flow is new).
    pub fn offer(&mut self, flow: fet_packet::FlowKey) -> bool {
        self.offered += 1;
        let mut all_set = true;
        let idxs: Vec<usize> =
            self.hashes.iter().map(|h| h.hash_flow(&flow) as usize % self.nbits).collect();
        for &i in &idxs {
            if self.bits[i / 64] & (1 << (i % 64)) == 0 {
                all_set = false;
            }
        }
        for &i in &idxs {
            self.bits[i / 64] |= 1 << (i % 64);
        }
        if !all_set {
            self.reports += 1;
        }
        !all_set
    }
}

#[cfg(test)]
mod bloom_tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn flow(n: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0000 | n),
            (n % 50_000) as u16,
            Ipv4Addr::from_octets([10, 99, 0, 1]),
            80,
        )
    }

    #[test]
    fn suppresses_repeats() {
        let mut b = BloomDedup::new(1 << 16, 1);
        assert!(b.offer(flow(1)));
        assert!(!b.offer(flow(1)));
        assert!(!b.offer(flow(1)));
    }

    #[test]
    fn saturated_filter_has_false_negatives() {
        // A deliberately tiny filter: with enough distinct flows, some
        // first reports get swallowed — the paper's §3.4 disqualifier.
        let mut b = BloomDedup::new(256, 1);
        let mut missed_first_report = 0;
        for n in 0..1_000 {
            if !b.offer(flow(n)) {
                missed_first_report += 1;
            }
        }
        assert!(missed_first_report > 0, "expected bloom false negatives");
    }

    #[test]
    fn group_cache_never_misses_where_bloom_does() {
        let mut bloom = BloomDedup::new(256, 1);
        let mut gc = GroupCache::new("gc", 16, 1_000_000, 1);
        let mut bloom_reported = std::collections::HashSet::new();
        let mut gc_reported = std::collections::HashSet::new();
        for n in 0..1_000 {
            if bloom.offer(flow(n)) {
                bloom_reported.insert(flow(n));
            }
            match gc.offer(flow(n)) {
                DedupOutcome::NewFlow => {
                    gc_reported.insert(flow(n));
                }
                DedupOutcome::Evicted { old_flow, .. } => {
                    gc_reported.insert(old_flow);
                    gc_reported.insert(flow(n));
                }
                _ => {}
            }
        }
        // Group caching reports every flow at least once; bloom does not.
        assert_eq!(gc_reported.len(), 1_000);
        assert!(bloom_reported.len() < 1_000);
    }
}
