//! NetSeer configuration and the hardware capacity model of §4.

use crate::faults::FaultPlan;
use crate::transport::DEFAULT_MAX_RETRIES;
use fet_netsim::time::{MICROS, MILLIS};
use fet_packet::ipv4::Ipv4Addr;

/// Partial-deployment flow filter (paper §2.3: "a partial deployment of
/// NetSeer to monitor flows of specific applications"). A flow is
/// monitored when its source OR destination falls in the prefix.
#[derive(Debug, Clone, Copy)]
pub struct FlowFilter {
    /// Prefix address.
    pub prefix: Ipv4Addr,
    /// Prefix length.
    pub len: u8,
}

impl FlowFilter {
    /// Does this filter select the flow?
    pub fn matches(&self, flow: &fet_packet::FlowKey) -> bool {
        let mask = if self.len == 0 { 0 } else { u32::MAX << (32 - u32::from(self.len)) };
        let p = self.prefix.as_u32() & mask;
        flow.src.as_u32() & mask == p || flow.dst.as_u32() & mask == p
    }
}

/// Capacity ceilings from the paper's §4 ("Capacity") — all the hardware
/// bottlenecks NetSeer's event path crosses.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Internal port bandwidth shared by redirected events and CEBPs, Gbps.
    pub internal_port_gbps: f64,
    /// MMU drop-redirect bandwidth, Gbps.
    pub mmu_redirect_gbps: f64,
    /// PCIe bandwidth pipeline→CPU with 1 core driving it, Gbps.
    pub pcie_1core_gbps: f64,
    /// PCIe bandwidth with 2 cores, Gbps.
    pub pcie_2core_gbps: f64,
    /// Switch CPU clock, GHz.
    pub cpu_ghz: f64,
    /// CPU cores dedicated to event processing.
    pub cpu_cores: u32,
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel {
            internal_port_gbps: 100.0,
            mmu_redirect_gbps: 40.0,
            pcie_1core_gbps: 9.5,
            pcie_2core_gbps: 18.0,
            cpu_ghz: 2.5,
            cpu_cores: 2,
        }
    }
}

impl CapacityModel {
    /// PCIe bandwidth for the configured core count.
    pub fn pcie_gbps(&self) -> f64 {
        if self.cpu_cores >= 2 {
            self.pcie_2core_gbps
        } else {
            self.pcie_1core_gbps
        }
    }
}

/// Full NetSeer configuration.
#[derive(Debug, Clone)]
pub struct NetSeerConfig {
    /// Group-caching table entries per event type (§3.4).
    pub dedup_entries: usize,
    /// Counter report interval C of Algorithm 1.
    pub dedup_c: u32,
    /// Queuing delay threshold for congestion events, ns (should match the
    /// fabric's SLO; the testbed uses 20 µs).
    pub congestion_threshold_ns: u64,
    /// Path-change flow table entries.
    pub path_entries: usize,
    /// Ring buffer slots per port for inter-switch drop detection.
    pub ring_slots: usize,
    /// Events per CEBP (paper recommends 50).
    pub batch_size: u16,
    /// In-pipeline event stack capacity (events awaiting a CEBP).
    pub stack_capacity: usize,
    /// Events collected per CEBP circulation (stack stages traversed).
    pub events_per_pass: u32,
    /// Fixed pipeline transit latency per circulation, ns.
    pub pass_latency_ns: u64,
    /// Pre-compute the flow hash in the data plane (§3.6 offload).
    pub hash_offload: bool,
    /// CPU false-positive window: repeats of an initial report within this
    /// window are eliminated, ns.
    pub fp_window_ns: u64,
    /// Redundant copies per loss notification (paper: three).
    pub notification_copies: u8,
    /// Max pending ring-buffer lookups buffered per port.
    pub pending_lookup_cap: usize,
    /// Control-plane tick interval, ns.
    pub timer_interval_ns: u64,
    /// Hardware capacity model.
    pub capacity: CapacityModel,
    /// Per-module enables (for ablations).
    pub enable_dedup: bool,
    /// Enable CPU false-positive elimination.
    pub enable_fp_elimination: bool,
    /// Enable inter-switch drop detection (tagging + ring buffer).
    pub enable_interswitch: bool,
    /// Partial deployment: only monitor flows matching this filter
    /// (None = monitor everything, the paper's always-on mode).
    pub flow_filter: Option<FlowFilter>,
    /// Deterministic fault schedule for this device's reporting pipeline
    /// (default: inject nothing).
    pub faults: FaultPlan,
    /// Transport retry budget before a report is shed-and-counted.
    pub transport_max_retries: u32,
    /// Switch-CPU overload controller: maximum backlog before batches are
    /// shed-and-counted instead of queueing unboundedly, ns.
    pub cpu_max_backlog_ns: u64,
    /// Crash-recovery checkpoint cadence: how often the monitor snapshots
    /// its pending set + detector heads and truncates/fsyncs the WAL, ns.
    /// Bounds `lost_to_crash` after a hard kill (see `netseer::recovery`).
    pub checkpoint_interval_ns: u64,
    /// Poison CEBP frames a monitor holds for collector-side quarantine
    /// before overflow frames are counted-but-dropped.
    pub max_poison_held: usize,
    /// Ceiling on the collector-driven batch-flush widening stride: under
    /// backpressure the monitor forces partial batches out only every
    /// `2^level` timer ticks, and this caps the stride so a runaway
    /// backlog signal can never silence the reporting path entirely.
    pub backpressure_max_widen: u32,
}

/// Configuration of the backend [`Collector`](crate::Collector): memory
/// watermark, spill budget, and quarantine retention. The defaults
/// reproduce the pre-spill collector exactly (unbounded memory admission,
/// spill never engaged).
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Quarantined poison frames retained at most this deep; overflow is
    /// still counted in `poison_seen`.
    pub max_quarantine: usize,
    /// Byte budget of the disk spill buffer. Events are shed (counted,
    /// refused) only once the spill is full — shedding is the last resort
    /// behind bounded disk.
    pub max_spill_bytes: u64,
    /// Spill segment rotation threshold, bytes. Closing a segment fsyncs
    /// it; smaller segments mean earlier durability and finer-grained
    /// deletion-after-ack at the cost of more rotations.
    pub spill_segment_bytes: u64,
    /// Undrained in-memory backlog (stored events not yet drained by the
    /// slowest subscriber) beyond which new deliveries go to the spill
    /// instead of the store. `usize::MAX` disables spilling entirely.
    pub memory_watermark: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            max_quarantine: 64,
            max_spill_bytes: 64 << 20,
            spill_segment_bytes: 1 << 20,
            memory_watermark: usize::MAX,
        }
    }
}

impl Default for NetSeerConfig {
    fn default() -> Self {
        NetSeerConfig {
            dedup_entries: 4096,
            dedup_c: 128,
            congestion_threshold_ns: 20 * MICROS,
            path_entries: 8192,
            ring_slots: 1024,
            batch_size: 50,
            stack_capacity: 512,
            events_per_pass: 6,
            pass_latency_ns: 60,
            hash_offload: true,
            fp_window_ns: 100 * fet_netsim::time::MILLIS,
            notification_copies: 3,
            pending_lookup_cap: 4096,
            timer_interval_ns: 100 * MICROS,
            capacity: CapacityModel::default(),
            enable_dedup: true,
            enable_fp_elimination: true,
            enable_interswitch: true,
            flow_filter: None,
            faults: FaultPlan::default(),
            transport_max_retries: DEFAULT_MAX_RETRIES,
            cpu_max_backlog_ns: 10 * MILLIS,
            checkpoint_interval_ns: MILLIS,
            max_poison_held: 16,
            backpressure_max_widen: 8,
        }
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;
    use fet_packet::FlowKey;

    #[test]
    fn filter_matches_either_endpoint() {
        let f = FlowFilter { prefix: Ipv4Addr::from_octets([10, 1, 0, 0]), len: 16 };
        let in_src = FlowKey::tcp(
            Ipv4Addr::from_octets([10, 1, 2, 3]),
            1,
            Ipv4Addr::from_octets([10, 9, 9, 9]),
            2,
        );
        let in_dst = in_src.reversed();
        let out = FlowKey::tcp(
            Ipv4Addr::from_octets([10, 2, 2, 3]),
            1,
            Ipv4Addr::from_octets([10, 9, 9, 9]),
            2,
        );
        assert!(f.matches(&in_src));
        assert!(f.matches(&in_dst));
        assert!(!f.matches(&out));
    }

    #[test]
    fn zero_length_matches_everything() {
        let f = FlowFilter { prefix: Ipv4Addr::from_u32(0), len: 0 };
        let any = FlowKey::tcp(
            Ipv4Addr::from_octets([1, 2, 3, 4]),
            1,
            Ipv4Addr::from_octets([5, 6, 7, 8]),
            2,
        );
        assert!(f.matches(&any));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = NetSeerConfig::default();
        assert_eq!(c.batch_size, 50);
        assert_eq!(c.capacity.internal_port_gbps, 100.0);
        assert_eq!(c.capacity.mmu_redirect_gbps, 40.0);
        assert_eq!(c.capacity.pcie_2core_gbps, 18.0);
        assert!(c.hash_offload);
    }

    #[test]
    fn collector_defaults_reproduce_pre_spill_behavior() {
        let c = CollectorConfig::default();
        // The old hard-coded caps are now the defaults.
        assert_eq!(c.max_quarantine, 64);
        assert_eq!(NetSeerConfig::default().max_poison_held, 16);
        // Spilling is off by default: the watermark is never reached.
        assert_eq!(c.memory_watermark, usize::MAX);
        assert!(c.max_spill_bytes > 0 && c.spill_segment_bytes > 0);
    }

    #[test]
    fn pcie_scales_with_cores() {
        let mut m = CapacityModel { cpu_cores: 1, ..CapacityModel::default() };
        assert_eq!(m.pcie_gbps(), 9.5);
        m.cpu_cores = 2;
        assert_eq!(m.pcie_gbps(), 18.0);
    }
}
