//! Crash recovery for the switch-CPU model and the collector.
//!
//! NetSeer's delivery guarantee (§3.5–§3.6) is only as strong as its most
//! volatile component: the CEBP batcher, group caches, and ring buffers
//! all live in switch memory, and the paper's lossless story silently
//! assumes neither the switch CPU nor the collector ever restarts. This
//! module supplies the missing half of the fault model:
//!
//! 1. **Write-ahead log + periodic snapshot** ([`RecoveryLog`]): the
//!    monitor mirrors every mutation of its pending set (enqueue, priority
//!    eviction, batch departure) into a compact op log, and periodically
//!    checkpoints the materialized state (pending events, per-port tagger
//!    heads, group-cache summaries, the ledger). Replaying the log over
//!    the snapshot reconstructs the pending set deterministically.
//!
//! 2. **Fsync discipline**: every *removal* op (a batch leaving, a victim
//!    evicted) is fsynced before its effect is externalized, so a hard
//!    kill can only lose trailing *enqueues*. Replay therefore never
//!    resurrects an event that was already delivered or shed — the ledger
//!    can lose to a crash but never double-count — and `lost_to_crash` is
//!    provably bounded by the enqueues since the last fsync, i.e. by the
//!    checkpoint window.
//!
//! 3. **Exactly-once reconciliation** ([`Collector`]): senders stamp every
//!    delivered event with `(epoch, seq)`; the collector gates on
//!    [`EpochReceiver`] per device, so at-least-once retransmission after
//!    any restart (sender's or collector's) dedups to exactly-once
//!    accounting, and pre-restart retransmits are rejected by epoch.
//!
//! 4. **Restart drivers** ([`schedule_device_crashes`],
//!    [`run_collector_crash_drill`]): turn a [`FaultPlan`]'s seeded crash
//!    schedule into scripted kill/restart actions inside the simulator.
//!
//! [`FaultPlan`]: crate::faults::FaultPlan

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::config::CollectorConfig;
use crate::faults::{CollectorCrash, CorruptionGen, CrashKind, DeliveryLedger, DeviceCrash};
use crate::monitor::NetSeerMonitor;
use crate::spill::SpillStore;
use crate::storage::{EventStore, StoredEvent};
use crate::transport::{EpochReceiver, RxVerdict};
use fet_netsim::engine::Simulator;
use fet_packet::checksum::crc32c;
use fet_packet::event::{EventRecord, EventType, EVENT_RECORD_LEN};

/// One mirrored mutation of the monitor's pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// An event entered the pending set (appended at the back).
    Enq(EventRecord),
    /// A priority eviction removed the pending event at this position
    /// (open CEBP first, then stack, oldest first).
    Evict {
        /// Position in the pending order at eviction time.
        pending_pos: u32,
    },
    /// A batch departed: the `count` oldest pending events left.
    Deq {
        /// Events in the departing batch.
        count: u32,
    },
}

const WAL_TAG_ENQ: u8 = 1;
const WAL_TAG_EVICT: u8 = 2;
const WAL_TAG_DEQ: u8 = 3;

/// Per-record CRC trailer length in the serialized WAL.
pub const WAL_RECORD_CRC_LEN: usize = 4;

impl WalOp {
    /// Serialize one op as `[tag][payload][crc32c over tag+payload]` —
    /// the on-disk record format whose per-record CRC lets replay stop
    /// cleanly at the first record a torn write damaged.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        match *self {
            WalOp::Enq(rec) => {
                out.push(WAL_TAG_ENQ);
                let mut b = [0u8; EVENT_RECORD_LEN];
                rec.write_to(&mut b);
                out.extend_from_slice(&b);
            }
            WalOp::Evict { pending_pos } => {
                out.push(WAL_TAG_EVICT);
                out.extend_from_slice(&pending_pos.to_be_bytes());
            }
            WalOp::Deq { count } => {
                out.push(WAL_TAG_DEQ);
                out.extend_from_slice(&count.to_be_bytes());
            }
        }
        let crc = crc32c(&out[start..]);
        out.extend_from_slice(&crc.to_be_bytes());
    }

    /// Decode one record from the head of `buf`. Returns the op and the
    /// bytes consumed, or `None` on a truncated tail, an unknown tag, a
    /// CRC mismatch, or a semantically invalid payload — all the ways a
    /// torn write manifests. Never panics on arbitrary bytes.
    pub fn decode_from(buf: &[u8]) -> Option<(WalOp, usize)> {
        let tag = *buf.first()?;
        let body_len = match tag {
            WAL_TAG_ENQ => 1 + EVENT_RECORD_LEN,
            WAL_TAG_EVICT | WAL_TAG_DEQ => 1 + 4,
            _ => return None,
        };
        let total = body_len + WAL_RECORD_CRC_LEN;
        if buf.len() < total {
            return None;
        }
        let want = u32::from_be_bytes([
            buf[body_len],
            buf[body_len + 1],
            buf[body_len + 2],
            buf[body_len + 3],
        ]);
        if crc32c(&buf[..body_len]) != want {
            return None;
        }
        let op = match tag {
            WAL_TAG_ENQ => WalOp::Enq(EventRecord::parse(&buf[1..body_len]).ok()?),
            WAL_TAG_EVICT => {
                WalOp::Evict { pending_pos: u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) }
            }
            _ => WalOp::Deq { count: u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) },
        };
        Some((op, total))
    }
}

/// Serialize a slice of ops into the on-disk record stream.
pub fn encode_wal(ops: &[WalOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        op.encode_into(&mut out);
    }
    out
}

/// Decode the longest valid record prefix of a (possibly torn) WAL byte
/// stream. Replay stops cleanly at the first bad record: everything before
/// it is recovered, everything at and after it is counted as lost — never
/// deserialized as garbage.
pub fn decode_wal_prefix(bytes: &[u8]) -> Vec<WalOp> {
    let mut ops = Vec::new();
    let mut off = 0;
    while let Some((op, used)) = WalOp::decode_from(&bytes[off..]) {
        ops.push(op);
        off += used;
    }
    ops
}

/// Replay a slice of WAL ops over a checkpointed base state. Pure and
/// deterministic: the same `(base, ops)` always yields the same pending
/// set, and replaying a durable log twice yields the same result as once
/// (the function has no hidden state).
pub fn replay_ops(base: &[EventRecord], ops: &[WalOp]) -> VecDeque<EventRecord> {
    let mut q: VecDeque<EventRecord> = base.iter().copied().collect();
    for op in ops {
        match *op {
            WalOp::Enq(rec) => q.push_back(rec),
            WalOp::Evict { pending_pos } => {
                q.remove(pending_pos as usize);
            }
            WalOp::Deq { count } => {
                q.drain(..(count as usize).min(q.len()));
            }
        }
    }
    q
}

/// The in-memory model of an append-only log file with an fsync watermark:
/// `ops[..synced]` survive a hard kill, the tail does not.
#[derive(Debug, Clone, Default)]
struct Wal {
    ops: Vec<WalOp>,
    synced: usize,
}

impl Wal {
    fn append(&mut self, op: WalOp) {
        self.ops.push(op);
    }

    fn fsync(&mut self) {
        self.synced = self.ops.len();
    }

    /// A hard kill: drop the un-fsynced tail, returning how many ops died.
    fn truncate_unsynced(&mut self) -> u64 {
        let lost = self.ops.len() - self.synced;
        self.ops.truncate(self.synced);
        lost as u64
    }

    fn unsynced(&self) -> usize {
        self.ops.len() - self.synced
    }

    fn clear(&mut self) {
        self.ops.clear();
        self.synced = 0;
    }
}

/// Per-event-type group-cache summary captured in a checkpoint. The cache
/// tables themselves are volatile (rebuilt empty after a restart); the
/// summary preserves the cumulative suppression telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupSummary {
    /// Event type this cache serves.
    pub ty: EventType,
    /// Events offered to the cache so far.
    pub offered: u64,
    /// Reports the cache let through.
    pub reports: u64,
}

/// A materialized checkpoint: everything needed to rebuild the durable
/// part of the monitor's state without the WAL.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// When it was taken, global simulator ns (set by
    /// [`RecoveryLog::checkpoint`]; drives the cadence).
    pub taken_ns: u64,
    /// The device's *local* clock reading at checkpoint time — the stamp
    /// a real process would have written to disk. Equal to `taken_ns`
    /// unless clock faults are active; never used for control flow.
    pub taken_local_ns: u64,
    /// The pending set (open CEBP cargo first, then stack, oldest first).
    pub pending: Vec<EventRecord>,
    /// Per-port tagger numbering heads (the notification ring-buffer
    /// heads): `(port, next_seq)`.
    pub tagger_heads: Vec<(u8, u32)>,
    /// Group-cache summaries per event type.
    pub dedup: Vec<DedupSummary>,
    /// The delivery ledger at checkpoint time (observability: lets an
    /// operator bound what a subsequent hard kill can have cost).
    pub ledger: DeliveryLedger,
}

#[derive(Debug, Clone, Copy)]
struct KillRecord {
    kind: CrashKind,
    at_ns: u64,
    pending_at_kill: u64,
    /// WAL ops destroyed by the kill (0 for clean stops).
    ops_lost: u64,
}

/// Accounting summary of one completed restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// The restarted device.
    pub device: u32,
    /// Clean stop or hard kill.
    pub kind: CrashKind,
    /// When the component died, ns.
    pub killed_ns: u64,
    /// When it came back, ns.
    pub restart_ns: u64,
    /// Transport epoch after the reconnect handshake.
    pub epoch: u32,
    /// Pending events at the moment of death.
    pub pending_at_kill: u64,
    /// Pending events reconstructed by snapshot + WAL replay.
    pub replayed: u64,
    /// Pending events the kill destroyed (`pending_at_kill - replayed`);
    /// 0 for clean stops, bounded by the un-fsynced enqueue tail for hard
    /// kills.
    pub lost: u64,
}

/// The write-ahead log + snapshot machinery for one monitor.
///
/// The monitor calls `log_*` as it mutates its pending set, `checkpoint`
/// on its cadence, and `record_kill`/`replay`/`complete_restart` across a
/// crash. Removal ops fsync eagerly (write-ahead discipline: the log entry
/// is durable before the removal's effect — a delivery or a counted shed —
/// is externalized); enqueues ride until the next checkpoint, which is
/// what bounds `lost_to_crash`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    wal: Wal,
    snapshot: Snapshot,
    interval_ns: u64,
    last_checkpoint_ns: u64,
    kill: Option<KillRecord>,
    /// When armed, hard kills tear the un-fsynced tail instead of cleanly
    /// truncating it: the tail is serialized, damaged, and decoded back,
    /// keeping only the record prefix whose per-record CRCs still verify.
    torn_wal: Option<CorruptionGen>,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// WAL ops appended.
    pub wal_appends: u64,
    /// Explicit fsyncs (removal ops + checkpoints + clean stops).
    pub wal_fsyncs: u64,
    /// Completed crash/restart cycles.
    pub restarts: u64,
    /// Events destroyed across all hard kills (the ledger's
    /// `lost_to_crash` term).
    pub lost_to_crash: u64,
    /// WAL records rejected during torn-tail recovery (CRC mismatch,
    /// truncated tail, or cut off behind the first bad record).
    pub wal_records_rejected: u64,
}

impl RecoveryLog {
    /// Create with a checkpoint cadence.
    pub fn new(interval_ns: u64) -> Self {
        RecoveryLog { interval_ns: interval_ns.max(1), ..Default::default() }
    }

    /// Mirror an enqueue. Not fsynced — this is the only op class a hard
    /// kill can destroy.
    pub fn log_enq(&mut self, rec: EventRecord) {
        self.wal.append(WalOp::Enq(rec));
        self.wal_appends += 1;
    }

    /// Mirror a priority eviction. Fsynced eagerly: the victim is counted
    /// as shed the moment it is evicted, so the log must never forget the
    /// eviction (replay would otherwise resurrect an already-counted
    /// event and double-count it).
    pub fn log_evict(&mut self, pending_pos: usize) {
        self.wal.append(WalOp::Evict { pending_pos: pending_pos as u32 });
        self.wal_appends += 1;
        self.fsync();
    }

    /// Mirror a batch departure. Fsynced eagerly for the same reason:
    /// the batch's events are about to be delivered or counted shed
    /// downstream, and replay must not bring them back.
    pub fn log_deq(&mut self, count: usize) {
        self.wal.append(WalOp::Deq { count: count as u32 });
        self.wal_appends += 1;
        self.fsync();
    }

    fn fsync(&mut self) {
        self.wal.fsync();
        self.wal_fsyncs += 1;
    }

    /// Is a checkpoint due at `now_ns`?
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.last_checkpoint_ns) >= self.interval_ns
    }

    /// Install a fresh checkpoint: the snapshot replaces the old one, the
    /// WAL is truncated (its effects are in the snapshot) and the log is
    /// durable again.
    pub fn checkpoint(&mut self, now_ns: u64, snapshot: Snapshot) {
        self.snapshot = snapshot;
        self.snapshot.taken_ns = now_ns;
        self.wal.clear();
        self.fsync();
        self.last_checkpoint_ns = now_ns;
        self.checkpoints += 1;
    }

    /// The current checkpoint.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// WAL ops appended since the last fsync (what a hard kill destroys).
    pub fn unsynced_ops(&self) -> usize {
        self.wal.unsynced()
    }

    /// The component died. A clean stop flushes the tail; a hard kill
    /// truncates it. `pending_at_kill` is the live pending count at the
    /// moment of death, used by [`complete_restart`](Self::complete_restart)
    /// to attribute the difference.
    pub fn record_kill(&mut self, kind: CrashKind, at_ns: u64, pending_at_kill: u64) {
        let ops_lost = match kind {
            CrashKind::Clean => {
                self.fsync();
                0
            }
            CrashKind::Hard => match &mut self.torn_wal {
                Some(gen) if gen.spec.is_active() => {
                    // Torn-write model: the tail was mid-flush when power
                    // died, so part of it made it to disk — damaged. Replay
                    // keeps the prefix that still passes per-record CRCs and
                    // loses everything at and after the first bad record.
                    let unsynced = self.wal.ops.split_off(self.wal.synced);
                    let mut bytes = encode_wal(&unsynced);
                    gen.corrupt(&mut bytes);
                    let survivors = decode_wal_prefix(&bytes);
                    // Byte duplication can re-align into spurious extra
                    // records; never recover more ops than were written.
                    let survived = survivors.len().min(unsynced.len());
                    let lost = (unsynced.len() - survived) as u64;
                    self.wal_records_rejected += lost;
                    self.wal.ops.extend(survivors.into_iter().take(survived));
                    // What decoded off disk is durable by definition.
                    self.wal.fsync();
                    lost
                }
                _ => self.wal.truncate_unsynced(),
            },
        };
        self.kill = Some(KillRecord { kind, at_ns, pending_at_kill, ops_lost });
    }

    /// Arm the torn-write failure model for hard kills. With no generator
    /// (or an inactive spec) hard kills cleanly truncate the un-fsynced
    /// tail, as before.
    pub fn set_torn_wal(&mut self, gen: CorruptionGen) {
        self.torn_wal = Some(gen);
    }

    /// Reconstruct the pending set from the durable state (snapshot + the
    /// surviving WAL). Deterministic; callable any number of times.
    pub fn replay(&self) -> Vec<EventRecord> {
        replay_ops(&self.snapshot.pending, &self.wal.ops).into()
    }

    /// Close the books on a restart: compute what the kill destroyed and
    /// fold it into `lost_to_crash`. Panics if no kill was recorded.
    pub fn complete_restart(&mut self, replayed: u64) -> (CrashKind, u64, u64) {
        let kill = self.kill.take().expect("complete_restart without record_kill");
        let lost = kill.pending_at_kill.saturating_sub(replayed);
        // The fsync discipline guarantees the bound: only enqueues can be
        // un-fsynced, so the replay can only be missing events, and no
        // more of them than the ops the kill destroyed.
        debug_assert!(lost <= kill.ops_lost, "lost {lost} > destroyed ops {}", kill.ops_lost);
        debug_assert!(
            kill.kind == CrashKind::Hard || lost == 0,
            "a clean stop must lose nothing, lost {lost}"
        );
        self.lost_to_crash += lost;
        self.restarts += 1;
        (kill.kind, kill.at_ns, lost)
    }
}

/// The backend collector with crash-consistent, exactly-once ingestion
/// and durable backpressure buffering.
///
/// Every [`StoredEvent`] arrives stamped `(device, epoch, seq)`; a
/// per-device [`EpochReceiver`] admits each key once, rejects same-epoch
/// duplicates, and refuses retransmits from pre-restart epochs. Because
/// ingestion is idempotent, recovery after a collector crash is simply
/// *re-offering*: senders keep their delivered history, and a
/// reconciliation pass re-ingests it — accepted exactly where the
/// reverted store is missing events, deduped everywhere else.
///
/// Under burst overload the admission order is **memory → spill → shed**:
/// once the undrained in-memory backlog passes the configured watermark,
/// deliveries divert verbatim into a bounded disk-backed [`SpillStore`]
/// and only a full spill refuses (counted). Spilled events pass the
/// epoch/seq gates when they are *applied* to the store
/// ([`pump_spill`](Self::pump_spill)), never at spill-admission — so the
/// gates always mirror the store exactly, the pair reverts together on a
/// hard kill, and replaying the spill from the durable cursor re-admits
/// each event exactly once.
#[derive(Debug, Clone)]
pub struct Collector {
    cfg: CollectorConfig,
    store: EventStore,
    gates: HashMap<u32, EpochReceiver>,
    checkpoint: Option<CollectorCheckpoint>,
    subscribers: HashMap<u32, usize>,
    next_subscriber: u32,
    quarantine: Vec<PoisonFrame>,
    spill: SpillStore,
    /// Crash/restart cycles survived.
    pub restarts: u64,
    /// Events rolled back by hard kills (recovered later by
    /// reconciliation; this counts the repair work, not a final loss).
    pub reverted_by_crash: u64,
    /// Poison frames offered to quarantine, including any dropped after
    /// the retention bound was reached.
    pub poison_seen: u64,
    /// Deliveries diverted to the spill (admitted to disk, not memory).
    pub spilled: u64,
    /// Deliveries refused because the spill byte budget was exhausted —
    /// the shed-of-last-resort the spill exists to make rare.
    pub overflow_refused: u64,
    /// Events applied to the store from the spill.
    pub spill_applied: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::with_config(CollectorConfig::default())
    }
}

/// A telemetry frame that failed its CRC trailer, quarantined verbatim for
/// CPU-side inspection instead of being parsed (it never reaches the event
/// store — corrupted batches are counted in the ledger's `corrupted` term).
#[derive(Debug, Clone)]
pub struct PoisonFrame {
    /// The monitor whose telemetry stream produced the frame.
    pub device: u32,
    /// Sim time the frame was quarantined, ns.
    pub quarantined_ns: u64,
    /// The damaged wire bytes, verbatim.
    pub frame: Vec<u8>,
    /// The parse failure that condemned it.
    pub reason: String,
}

/// The durable part of a collector: what a hard kill reverts to. Cursors
/// ride along so a subscriber's position rewinds together with the store
/// it indexes into.
#[derive(Debug, Clone, Default)]
struct CollectorCheckpoint {
    store: EventStore,
    gates: HashMap<u32, EpochReceiver>,
    cursors: HashMap<u32, usize>,
}

impl Collector {
    /// Empty collector with the default configuration (spilling disabled:
    /// the memory watermark is never reached).
    pub fn new() -> Self {
        Collector::default()
    }

    /// Empty collector with an explicit [`CollectorConfig`] (watermark,
    /// spill budget, quarantine retention).
    pub fn with_config(cfg: CollectorConfig) -> Self {
        Collector {
            spill: SpillStore::new(&cfg),
            cfg,
            store: EventStore::default(),
            gates: HashMap::new(),
            checkpoint: None,
            subscribers: HashMap::new(),
            next_subscriber: 0,
            quarantine: Vec::new(),
            restarts: 0,
            reverted_by_crash: 0,
            poison_seen: 0,
            spilled: 0,
            overflow_refused: 0,
            spill_applied: 0,
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.cfg
    }

    /// Offer a slice of deliveries. Returns how many were accepted into
    /// the in-memory store (the rest were duplicates, stale-epoch
    /// retransmits, diverted to the spill, or refused-and-counted when
    /// the spill budget ran out — never silently absorbed).
    ///
    /// Admission order: while the spill holds undrained records OR the
    /// undrained memory backlog is at the watermark, deliveries go to the
    /// spill **verbatim and ungated** — FIFO order is preserved (an event
    /// must not overtake the spilled events ahead of it) and the gates
    /// stay exactly in sync with the store. Gating happens at apply time
    /// in [`pump_spill`](Self::pump_spill).
    pub fn ingest(&mut self, events: &[StoredEvent]) -> u64 {
        let mut accepted = 0;
        for e in events {
            if !self.spill.is_drained() || self.backlog() >= self.cfg.memory_watermark {
                if self.spill.append(*e) {
                    self.spilled += 1;
                } else {
                    self.overflow_refused += 1;
                }
                continue;
            }
            if self.gates.entry(e.device).or_default().accept(e.epoch, e.seq) == RxVerdict::Accepted
            {
                self.store.insert(*e);
                accepted += 1;
            }
        }
        accepted
    }

    /// The undrained in-memory backlog: stored events the slowest
    /// subscriber has not drained yet (0 with no subscribers — nothing is
    /// waiting on anyone).
    pub fn backlog(&self) -> usize {
        let len = self.store.len();
        let min_cursor = self.subscribers.values().copied().min().unwrap_or(len);
        len - min_cursor.min(len)
    }

    /// Apply spilled events to the store while the backlog is below the
    /// watermark: each drained record passes the per-device epoch/seq
    /// gate (duplicate spill copies dedup here) and inserts exactly like
    /// a live delivery. Returns how many events were applied. The durable
    /// spill cursor does not advance until [`checkpoint`](Self::checkpoint).
    pub fn pump_spill(&mut self) -> u64 {
        let mut applied = 0;
        while !self.spill.is_drained() && self.backlog() < self.cfg.memory_watermark {
            let Some(e) = self.spill.drain_next() else { break };
            if self.gates.entry(e.device).or_default().accept(e.epoch, e.seq) == RxVerdict::Accepted
            {
                self.store.insert(e);
                self.spill_applied += 1;
                applied += 1;
            }
        }
        applied
    }

    /// Deliveries parked in the spill and not yet applied to the store —
    /// the fleet ledger's `buffered` term.
    pub fn buffered(&self) -> u64 {
        self.spill.pending()
    }

    /// Spill records re-read after a crash rewound the read cursor.
    pub fn spill_replayed(&self) -> u64 {
        self.spill.replayed
    }

    /// The spill store (telemetry: segment counts, fsyncs, cursors).
    pub fn spill(&self) -> &SpillStore {
        &self.spill
    }

    /// Arm the torn-tail failure model for the spill: a hard kill damages
    /// the open segment past its sync watermark instead of cleanly
    /// truncating it. Draw the generator on
    /// [`streams::SPILL_CORRUPT`](crate::faults::streams::SPILL_CORRUPT).
    pub fn set_torn_spill(&mut self, gen: CorruptionGen) {
        self.spill.set_torn(gen);
    }

    /// How hard the collector is pushing back, in widening levels: 0 below
    /// the watermark, then one level per watermark-multiple of combined
    /// memory backlog + spill occupancy. Monitors widen their batch-flush
    /// stride to `2^level` (capped by their own config) — deterministic,
    /// bounded, and zero when spilling is disabled.
    pub fn backpressure_level(&self) -> u32 {
        let wm = self.cfg.memory_watermark;
        if wm == 0 || wm == usize::MAX {
            return 0;
        }
        let load = self.backlog() as u64 + self.spill.pending();
        (load / wm as u64).min(u64::from(u32::MAX)) as u32
    }

    /// Re-bucket a fleet [`DeliveryLedger`] for this collector's view:
    /// deliveries currently parked in the spill move from `delivered`
    /// into `buffered`, keeping the extended identity `generated ==
    /// delivered + shed + pending + buffered + lost_to_crash + corrupted`
    /// exact end to end.
    pub fn refine_fleet_ledger(&self, ledger: &mut DeliveryLedger) {
        let buffered = self.spill.pending();
        ledger.delivered = ledger.delivered.saturating_sub(buffered);
        ledger.buffered += buffered;
    }

    /// Durably checkpoint the store, the dedup gates, and the subscriber
    /// cursors, and commit the spill cursor (fsync data through the read
    /// position, advance + fsync the durable cursor, delete acked
    /// segments). A hard kill reverts to the latest checkpoint — and the
    /// spill replays exactly the records applied since it.
    pub fn checkpoint(&mut self) {
        self.checkpoint = Some(CollectorCheckpoint {
            store: self.store.clone(),
            gates: self.gates.clone(),
            cursors: self.subscribers.clone(),
        });
        self.spill.commit();
    }

    /// Crash and restart. A clean stop fsyncs the spill and checkpoints
    /// on the way down (loses nothing); a hard kill reverts store, gates,
    /// and subscriber cursors to the last checkpoint, tears the spill's
    /// un-fsynced tail (longest-valid-prefix recovery), and rewinds the
    /// spill read position to the durable cursor so the unacked suffix
    /// replays through the reverted gates. Returns how many stored events
    /// were rolled back.
    pub fn crash_restart(&mut self, kind: CrashKind) -> u64 {
        if kind == CrashKind::Clean {
            self.spill.fsync();
            self.checkpoint();
        }
        let before = self.store.len();
        let cp = self.checkpoint.clone().unwrap_or_default();
        self.store = cp.store;
        self.gates = cp.gates;
        // Subscribers registered after the checkpoint keep their id but
        // rewind to the surviving prefix (the checkpoint store is always a
        // prefix of the pre-kill store: ingestion is insert-only).
        for (id, cursor) in self.subscribers.iter_mut() {
            *cursor = cp.cursors.get(id).copied().unwrap_or(*cursor).min(self.store.len());
        }
        self.spill.crash();
        let reverted = (before - self.store.len()) as u64;
        self.reverted_by_crash += reverted;
        self.restarts += 1;
        reverted
    }

    /// Default quarantine retention (see
    /// [`CollectorConfig::max_quarantine`] to change it per collector).
    pub const MAX_QUARANTINE: usize = 64;

    /// Quarantine a poison frame for inspection. Returns `true` when the
    /// frame was retained, `false` when only counted (bound reached).
    pub fn quarantine_poison(&mut self, frame: PoisonFrame) -> bool {
        self.poison_seen += 1;
        if self.quarantine.len() < self.cfg.max_quarantine {
            self.quarantine.push(frame);
            true
        } else {
            false
        }
    }

    /// The quarantined poison frames, oldest first.
    pub fn quarantine(&self) -> &[PoisonFrame] {
        &self.quarantine
    }

    /// Register a delivery subscriber starting at the beginning of the
    /// store. Returns the subscription id for [`drain_ordered`].
    ///
    /// [`drain_ordered`]: Self::drain_ordered
    pub fn subscribe(&mut self) -> u32 {
        let id = self.next_subscriber;
        self.next_subscriber += 1;
        self.subscribers.insert(id, 0);
        id
    }

    /// Drain every event stored since this subscriber last drained, in
    /// acceptance order (per-device epoch/seq-monotonic — the gates admit
    /// each `(device, epoch, seq)` exactly once, so the drained stream is
    /// duplicate-free by construction). Advances the cursor.
    pub fn drain_ordered(&mut self, id: u32) -> Vec<StoredEvent> {
        let Some(cursor) = self.subscribers.get_mut(&id) else {
            return Vec::new();
        };
        let from = (*cursor).min(self.store.len());
        *cursor = self.store.len();
        self.store.events()[from..].to_vec()
    }

    /// Move a subscriber's cursor (clamped to the store length). Rewinding
    /// replays events on the next drain — used by consumers that revert
    /// their own state and need the reverted suffix again.
    pub fn set_cursor(&mut self, id: u32, pos: usize) {
        if let Some(cursor) = self.subscribers.get_mut(&id) {
            *cursor = pos.min(self.store.len());
        }
    }

    /// A subscriber's current cursor, if registered.
    pub fn cursor(&self, id: u32) -> Option<usize> {
        self.subscribers.get(&id).copied()
    }

    /// The stored events.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Stored event count.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The sender suffix the collector still needs from `device`: its
    /// side of the reconnect handshake. Sequences below the watermark are
    /// covered; the sender retransmits from here.
    pub fn needed_from(&self, device: u32, epoch: u32) -> u64 {
        self.gates.get(&device).map_or(0, |g| g.watermark(epoch))
    }

    /// Same-epoch duplicates suppressed across all devices.
    pub fn duplicates_rejected(&self) -> u64 {
        self.gates.values().map(|g| g.duplicates_rejected).sum()
    }

    /// Pre-restart-epoch retransmits rejected across all devices.
    pub fn stale_epoch_rejected(&self) -> u64 {
        self.gates.values().map(|g| g.stale_epoch_rejected).sum()
    }
}

/// Handle to the crash reports produced by [`schedule_device_crashes`]:
/// the scripted actions run inside the simulator, so results surface
/// through this shared log after `run_until`.
#[derive(Debug, Clone, Default)]
pub struct CrashLog {
    reports: Arc<Mutex<Vec<CrashReport>>>,
}

impl CrashLog {
    /// Reports of all completed restarts, in restart order.
    pub fn reports(&self) -> Vec<CrashReport> {
        self.reports.lock().unwrap().clone()
    }

    /// Completed restarts.
    pub fn len(&self) -> usize {
        self.reports.lock().unwrap().len()
    }

    /// True when no restart completed.
    pub fn is_empty(&self) -> bool {
        self.reports.lock().unwrap().is_empty()
    }

    /// Total events destroyed across all kills.
    pub fn total_lost(&self) -> u64 {
        self.reports.lock().unwrap().iter().map(|r| r.lost).sum()
    }
}

/// Script a [`FaultPlan`](crate::faults::FaultPlan)'s device crashes into
/// the simulator: at `at_ns` the device's monitor is detached (the switch
/// CPU dies; the data plane keeps forwarding unobserved), and at
/// `restart_ns` it recovers from its checkpoint + WAL, reconnects its
/// transport under a new epoch, and is reattached. Neighboring switches
/// re-base their gap detectors for the restarted peer's ports so the
/// post-restart sequence discontinuity is not mistaken for a loss burst.
///
/// Call after [`deploy`](crate::deploy::deploy) and before `run_until`.
pub fn schedule_device_crashes(sim: &mut Simulator, crashes: &[DeviceCrash]) -> CrashLog {
    let log = CrashLog::default();
    for c in crashes.iter().copied() {
        assert!(c.restart_ns > c.at_ns, "restart must follow the kill: {c:?}");
        let stash: Arc<Mutex<Option<Box<dyn fet_netsim::monitor::SwitchMonitor>>>> =
            Arc::new(Mutex::new(None));

        let kill_stash = Arc::clone(&stash);
        sim.schedule_control(c.at_ns, move |s| {
            if let Some(mut bm) = s.take_node_monitor(c.device) {
                if let Some(ns) = bm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                    ns.crash(c.kind, c.at_ns);
                }
                *kill_stash.lock().unwrap() = Some(bm);
            }
        });

        let restart_stash = Arc::clone(&stash);
        let reports = Arc::clone(&log.reports);
        sim.schedule_control(c.restart_ns, move |s| {
            let Some(mut bm) = restart_stash.lock().unwrap().take() else {
                return;
            };
            if let Some(ns) = bm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                reports.lock().unwrap().push(ns.restart(c.restart_ns));
            }
            s.install_node_monitor(c.device, bm);
            // Downstream neighbors (switches AND host NICs — edge ports
            // are tagged when NIC deployment is on) re-sync on the
            // restarted tagger without charging the discontinuity as
            // inter-switch loss. A neighbor currently crashed itself is
            // skipped: its own restart re-bases all its detectors.
            let ports: Vec<u8> =
                s.adjacency().get(&c.device).into_iter().flatten().map(|&(port, _)| port).collect();
            for port in ports {
                let Some((nb, nb_port)) = s.peer_of(c.device, port) else { continue };
                if let Some(mut nm) = s.take_node_monitor(nb) {
                    if let Some(ns) = nm.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                        ns.rebase_ingress(nb_port);
                    }
                    s.install_node_monitor(nb, nm);
                }
            }
        });
    }
    log
}

/// Drive a collector through a crash schedule against a time-ordered
/// delivery stream, then reconcile: events delivered before each crash are
/// ingested, the crash fires (with a checkpoint taken at the preceding
/// crash boundary for hard kills to revert to), and after the last crash
/// the full history is re-offered — the idempotent gates turn the repair
/// into exactly-once. Returns the total events reverted by hard kills
/// (all of which reconciliation restores).
pub fn run_collector_crash_drill(
    collector: &mut Collector,
    deliveries: &[StoredEvent],
    crashes: &[CollectorCrash],
) -> u64 {
    let mut sorted: Vec<StoredEvent> = deliveries.to_vec();
    sorted.sort_by_key(|e| (e.time_ns, e.device, e.epoch, e.seq));
    let mut schedule: Vec<CollectorCrash> = crashes.to_vec();
    schedule.sort_by_key(|c| c.at_ns);
    let mut reverted = 0;
    let mut cursor = 0;
    for crash in schedule {
        let upto = sorted[cursor..].partition_point(|e| e.time_ns < crash.at_ns) + cursor;
        collector.ingest(&sorted[cursor..upto]);
        cursor = upto;
        reverted += collector.crash_restart(crash.kind);
        // Reconnect handshake: each sender learns the collector's
        // watermark and retransmits its uncovered suffix BEFORE new
        // deliveries resume — the per-epoch watermark must not jump over
        // the reverted range, or it would be rejected as duplicate
        // forever. The gates accept exactly what the kill reverted.
        collector.ingest(&sorted[..cursor]);
    }
    collector.ingest(&sorted[cursor..]);
    // A final full re-offer demonstrates idempotence: everything dedups.
    collector.ingest(&sorted);
    reverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{EventDetail, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn rec(n: u16) -> EventRecord {
        EventRecord {
            ty: EventType::Congestion,
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 1]),
                n,
                Ipv4Addr::from_octets([10, 0, 0, 2]),
                80,
            ),
            detail: EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: n },
            counter: 1,
            hash: u32::from(n),
        }
    }

    fn stored(device: u32, epoch: u32, seq: u64) -> StoredEvent {
        StoredEvent { time_ns: seq * 10, device, epoch, seq, record: rec(seq as u16) }
    }

    #[test]
    fn replay_reconstructs_enq_evict_deq() {
        let base = [rec(0), rec(1)];
        let ops = [
            WalOp::Enq(rec(2)),
            WalOp::Enq(rec(3)),
            // Evict position 1 (= rec(1)).
            WalOp::Evict { pending_pos: 1 },
            // A batch of 2 departs (= rec(0), rec(2)).
            WalOp::Deq { count: 2 },
            WalOp::Enq(rec(4)),
        ];
        let q = replay_ops(&base, &ops);
        assert_eq!(Vec::from(q), vec![rec(3), rec(4)]);
    }

    #[test]
    fn replay_is_idempotent_over_a_durable_log() {
        let base = [rec(7)];
        let ops = [WalOp::Enq(rec(8)), WalOp::Deq { count: 1 }, WalOp::Enq(rec(9))];
        assert_eq!(replay_ops(&base, &ops), replay_ops(&base, &ops));
    }

    #[test]
    fn clean_stop_loses_nothing() {
        let mut log = RecoveryLog::new(1_000_000);
        for n in 0..5 {
            log.log_enq(rec(n));
        }
        assert_eq!(log.unsynced_ops(), 5);
        log.record_kill(CrashKind::Clean, 500, 5);
        let replayed = log.replay();
        assert_eq!(replayed.len(), 5, "clean stop fsyncs the tail");
        let (kind, at, lost) = log.complete_restart(replayed.len() as u64);
        assert_eq!((kind, at, lost), (CrashKind::Clean, 500, 0));
        assert_eq!(log.lost_to_crash, 0);
        assert_eq!(log.restarts, 1);
    }

    #[test]
    fn hard_kill_loses_only_the_unsynced_enqueue_tail() {
        let mut log = RecoveryLog::new(1_000_000);
        log.log_enq(rec(0));
        log.log_enq(rec(1));
        // Checkpoint materializes the two and truncates the WAL.
        log.checkpoint(100, Snapshot { pending: vec![rec(0), rec(1)], ..Default::default() });
        // A batch departs (fsynced eagerly) then three arrive un-fsynced.
        log.log_deq(2);
        for n in 2..5 {
            log.log_enq(rec(n));
        }
        assert_eq!(log.unsynced_ops(), 3);
        log.record_kill(CrashKind::Hard, 900, 3);
        let replayed = log.replay();
        // The Deq survived (fsynced), the three enqueues died.
        assert!(replayed.is_empty());
        let (kind, _, lost) = log.complete_restart(replayed.len() as u64);
        assert_eq!(kind, CrashKind::Hard);
        assert_eq!(lost, 3, "exactly the un-fsynced tail");
        assert_eq!(log.lost_to_crash, 3);
    }

    #[test]
    fn hard_kill_never_resurrects_removed_events() {
        // The dangerous interleaving: deliver a batch, then die hard
        // before any further fsync. If the Deq were not fsynced eagerly,
        // replay would resurrect the delivered events (double count).
        let mut log = RecoveryLog::new(1_000_000);
        log.checkpoint(0, Snapshot { pending: vec![rec(0), rec(1), rec(2)], ..Default::default() });
        log.log_deq(3); // delivered downstream
        log.record_kill(CrashKind::Hard, 50, 0);
        assert!(log.replay().is_empty(), "delivered events must stay gone");
        let (_, _, lost) = log.complete_restart(0);
        assert_eq!(lost, 0);
    }

    #[test]
    fn eviction_is_durable_before_the_shed_is_counted() {
        let mut log = RecoveryLog::new(1_000_000);
        log.checkpoint(0, Snapshot { pending: vec![rec(0), rec(1)], ..Default::default() });
        // rec(0) evicted (counted shed), a replacement arrives un-fsynced.
        log.log_evict(0);
        log.log_enq(rec(9));
        log.record_kill(CrashKind::Hard, 10, 2);
        let replayed = log.replay();
        assert_eq!(replayed, vec![rec(1)], "the evicted event must not come back");
        let (_, _, lost) = log.complete_restart(replayed.len() as u64);
        assert_eq!(lost, 1, "only the un-fsynced arrival died");
    }

    #[test]
    fn checkpoint_cadence_gates_due() {
        let mut log = RecoveryLog::new(1_000);
        assert!(log.due(1_000));
        log.checkpoint(1_000, Snapshot::default());
        assert!(!log.due(1_500));
        assert!(log.due(2_000));
        assert_eq!(log.checkpoints, 1);
    }

    #[test]
    fn collector_ingest_is_exactly_once() {
        let mut c = Collector::new();
        let history: Vec<StoredEvent> = (0..10).map(|s| stored(3, 0, s)).collect();
        assert_eq!(c.ingest(&history), 10);
        // At-least-once: the full history re-offered dedups entirely.
        assert_eq!(c.ingest(&history), 0);
        assert_eq!(c.len(), 10);
        assert_eq!(c.duplicates_rejected(), 10);
    }

    #[test]
    fn collector_hard_kill_reverts_then_reconciliation_repairs() {
        let mut c = Collector::new();
        let history: Vec<StoredEvent> = (0..20).map(|s| stored(1, 0, s)).collect();
        c.ingest(&history[..8]);
        c.checkpoint();
        c.ingest(&history[8..15]);
        let reverted = c.crash_restart(CrashKind::Hard);
        assert_eq!(reverted, 7, "events since the checkpoint roll back");
        assert_eq!(c.len(), 8);
        // Reconciliation: the sender re-offers its whole delivered
        // history; the gates accept exactly the missing suffix.
        assert_eq!(c.ingest(&history), 12);
        assert_eq!(c.len(), 20);
        assert_eq!(c.restarts, 1);
    }

    #[test]
    fn collector_clean_stop_loses_nothing() {
        let mut c = Collector::new();
        c.ingest(&(0..5).map(|s| stored(2, 0, s)).collect::<Vec<_>>());
        assert_eq!(c.crash_restart(CrashKind::Clean), 0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn collector_rejects_pre_restart_epoch_after_bump() {
        let mut c = Collector::new();
        c.ingest(&[stored(5, 0, 0), stored(5, 0, 1)]);
        // The device restarted: epoch 1 deliveries arrive.
        c.ingest(&[stored(5, 1, 2)]);
        // A straggling epoch-0 retransmit must not enter the store.
        assert_eq!(c.ingest(&[stored(5, 0, 1)]), 0);
        assert_eq!(c.stale_epoch_rejected(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn collector_drill_is_exactly_once_across_crashes() {
        let history: Vec<StoredEvent> = (0..50).map(|s| stored(9, 0, s)).collect();
        let crashes = [
            CollectorCrash { at_ns: 120, kind: CrashKind::Clean },
            CollectorCrash { at_ns: 333, kind: CrashKind::Hard },
        ];
        let mut c = Collector::new();
        let reverted = run_collector_crash_drill(&mut c, &history, &crashes);
        assert_eq!(c.len(), 50, "every delivery stored exactly once");
        assert!(reverted > 0, "the hard kill must actually revert work");
        assert!(c.duplicates_rejected() >= 50, "reconciliation re-offers dedup");
    }

    #[test]
    fn subscriber_drains_each_event_exactly_once() {
        let mut c = Collector::new();
        let id = c.subscribe();
        c.ingest(&(0..4).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        assert_eq!(c.drain_ordered(id).len(), 4);
        assert!(c.drain_ordered(id).is_empty(), "second drain sees nothing new");
        c.ingest(&(4..7).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        let tail = c.drain_ordered(id);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        // Duplicate re-offers never reach subscribers: the gates eat them.
        c.ingest(&(0..7).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        assert!(c.drain_ordered(id).is_empty());
    }

    #[test]
    fn late_subscriber_sees_the_full_history() {
        let mut c = Collector::new();
        c.ingest(&(0..5).map(|s| stored(2, 0, s)).collect::<Vec<_>>());
        let id = c.subscribe();
        assert_eq!(c.drain_ordered(id).len(), 5, "subscription starts at the beginning");
    }

    #[test]
    fn hard_kill_rewinds_cursors_with_the_store() {
        let mut c = Collector::new();
        let id = c.subscribe();
        c.ingest(&(0..8).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        assert_eq!(c.drain_ordered(id).len(), 8);
        c.checkpoint();
        c.ingest(&(8..12).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        assert_eq!(c.drain_ordered(id).len(), 4);
        assert_eq!(c.crash_restart(CrashKind::Hard), 4);
        assert_eq!(c.cursor(id), Some(8), "cursor reverts with the store");
        // Reconciliation restores the suffix; the subscriber re-drains
        // exactly the reverted events, nothing twice.
        c.ingest(&(0..12).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        let redrained = c.drain_ordered(id);
        assert_eq!(redrained.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![8, 9, 10, 11]);
    }

    #[test]
    fn set_cursor_clamps_and_replays() {
        let mut c = Collector::new();
        let id = c.subscribe();
        c.ingest(&(0..3).map(|s| stored(1, 0, s)).collect::<Vec<_>>());
        c.drain_ordered(id);
        c.set_cursor(id, 1);
        assert_eq!(c.drain_ordered(id).len(), 2, "rewind replays the suffix");
        c.set_cursor(id, 99);
        assert_eq!(c.cursor(id), Some(3), "clamped to the store length");
    }

    #[test]
    fn wal_records_roundtrip_through_bytes() {
        let ops =
            vec![WalOp::Enq(rec(7)), WalOp::Evict { pending_pos: 3 }, WalOp::Deq { count: 12 }];
        let bytes = encode_wal(&ops);
        assert_eq!(decode_wal_prefix(&bytes), ops);
        // A truncated tail is tolerated: full records decode, the stub is
        // dropped without error.
        assert_eq!(decode_wal_prefix(&bytes[..bytes.len() - 1]), ops[..2].to_vec());
    }

    #[test]
    fn wal_decode_stops_at_first_bad_record() {
        let ops: Vec<WalOp> = (0..4).map(|n| WalOp::Enq(rec(n))).collect();
        let mut bytes = encode_wal(&ops);
        let rec_len = bytes.len() / 4;
        // Damage the second record: everything at and after it is lost,
        // even though records three and four are intact on disk.
        bytes[rec_len + 5] ^= 0x40;
        assert_eq!(decode_wal_prefix(&bytes), ops[..1].to_vec());
        // Garbage decodes to nothing rather than panicking.
        assert!(decode_wal_prefix(&[0xff; 200]).is_empty());
        assert!(decode_wal_prefix(&[]).is_empty());
    }

    #[test]
    fn torn_hard_kill_keeps_the_surviving_record_prefix() {
        use crate::faults::{streams, CorruptionGen, CorruptionSpec};
        let mut log = RecoveryLog::new(1_000_000);
        log.checkpoint(0, Snapshot::default());
        // Flip enough bits that some of the 32-record tail is damaged, but
        // at ~1e-3/byte almost never all of it.
        log.set_torn_wal(CorruptionGen::new(
            CorruptionSpec::bit_flips(1e-3),
            42,
            streams::WAL_CORRUPT,
        ));
        for n in 0..32 {
            log.log_enq(rec(n));
        }
        log.record_kill(CrashKind::Hard, 900, 32);
        let replayed = log.replay();
        assert!(!replayed.is_empty(), "torn write should save a prefix");
        assert!(replayed.len() < 32, "seed 42 at 1e-3 damages the tail");
        assert_eq!(replayed, (0..replayed.len()).map(|n| rec(n as u16)).collect::<Vec<_>>());
        let (_, _, lost) = log.complete_restart(replayed.len() as u64);
        assert_eq!(lost as usize + replayed.len(), 32);
        assert_eq!(log.wal_records_rejected, lost);
    }

    #[test]
    fn inactive_torn_spec_behaves_like_clean_truncation() {
        let run = |armed: bool| {
            use crate::faults::{streams, CorruptionGen, CorruptionSpec};
            let mut log = RecoveryLog::new(1_000_000);
            if armed {
                log.set_torn_wal(CorruptionGen::new(
                    CorruptionSpec::none(),
                    7,
                    streams::WAL_CORRUPT,
                ));
            }
            log.checkpoint(0, Snapshot { pending: vec![rec(0)], ..Default::default() });
            log.log_deq(1);
            log.log_enq(rec(1));
            log.record_kill(CrashKind::Hard, 10, 1);
            log.replay()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn collector_quarantines_poison_frames_bounded() {
        let mut c = Collector::new();
        for n in 0..(Collector::MAX_QUARANTINE as u64 + 10) {
            let kept = c.quarantine_poison(PoisonFrame {
                device: 3,
                quarantined_ns: n,
                frame: vec![0xde, 0xad],
                reason: "cebp.crc32c".into(),
            });
            assert_eq!(kept, (n as usize) < Collector::MAX_QUARANTINE);
        }
        assert_eq!(c.quarantine().len(), Collector::MAX_QUARANTINE);
        assert_eq!(c.poison_seen, Collector::MAX_QUARANTINE as u64 + 10);
        assert_eq!(c.quarantine()[0].quarantined_ns, 0, "oldest kept");
        assert!(c.is_empty(), "poison never reaches the store");
    }
}
