//! Reliable event transport (§3.6): the switch CPU ships batched events to
//! the backend over TCP. We model the property that matters — every
//! message is delivered exactly once or its failure is *explicitly
//! surfaced* — with a stop-and-wait ARQ upgraded for hostile networks:
//!
//! * **Adaptive RTO** (Jacobson/Karels SRTT + RTTVAR) instead of a fixed
//!   2×RTT timer, so the channel tracks management-network latency.
//! * **Exponential backoff with a ceiling**, so a partitioned link is
//!   probed at a decaying rate instead of hammered, yet recovery after the
//!   partition heals is prompt (the ceiling bounds the probe gap).
//! * **A retry cap**: a fully partitioned link (loss = 1.0, or a
//!   [`FaultPlan`] partition window outlasting the budget) yields a
//!   [`SendFailure`] the caller must account for — never an infinite loop
//!   and never silent loss.
//! * **Schedulable faults**: loss is drawn from a seeded
//!   [`LossProcess`] (Bernoulli or bursty Gilbert–Elliott) and hard
//!   partition windows, both from the device's [`FaultPlan`].

use std::collections::HashMap;

use crate::faults::{streams, FaultPlan, LossGen, LossProcess, Window};

/// Delivery record for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Sequence number assigned by the sender.
    pub seq: u64,
    /// When the backend received it, ns.
    pub delivered_ns: u64,
    /// Attempts it took (1 = no retransmission).
    pub attempts: u32,
}

/// A message the channel gave up on after exhausting its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFailure {
    /// Sequence number of the abandoned message.
    pub seq: u64,
    /// Attempts made (== 1 + retry cap).
    pub attempts: u32,
    /// When the sender abandoned the message, ns.
    pub gave_up_ns: u64,
}

/// Default retry budget: enough to ride out transient bursts, small enough
/// that a real partition surfaces as a failure in bounded time.
pub const DEFAULT_MAX_RETRIES: u32 = 12;

/// The sender's side of the reconnect handshake: sent to the receiver on
/// the first message after a restart so it can adopt the new epoch and
/// tell the sender which suffix is uncovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// The sender's new epoch (bumped once per restart).
    pub epoch: u32,
    /// Highest sequence number the sender saw acknowledged before the
    /// crash, if any: everything after it is the uncovered suffix the
    /// sender must retransmit.
    pub last_acked_seq: Option<u64>,
}

/// Stop-and-wait reliable channel with adaptive RTO and injectable faults.
#[derive(Debug)]
pub struct ReliableChannel {
    loss: LossGen,
    partitions: Vec<Window>,
    rtt_ns: u64,
    /// Pacing: minimum gap between first transmissions, ns (0 = none).
    pace_gap_ns: u64,
    max_retries: u32,
    /// Smoothed RTT estimate, ns (Jacobson).
    srtt_ns: f64,
    /// RTT variance estimate, ns.
    rttvar_ns: f64,
    next_seq: u64,
    /// The sender's next free transmission slot.
    next_send_ns: u64,
    /// Connection epoch: bumped by [`ReliableChannel::reconnect`] on every
    /// sender restart. Receivers reject traffic from older epochs.
    pub epoch: u32,
    /// Highest sequence number acknowledged by the receiver (i.e. the last
    /// `Ok` delivery). Carried into the reconnect [`Handshake`].
    pub last_acked_seq: Option<u64>,
    /// Receiver-pressure hint piggybacked on the most recent ACK (0 = no
    /// pressure): the collector's widening level, applied by the monitor's
    /// control loop to its batch-flush stride. Carried as channel state
    /// because the signal rides the existing ACK path — no extra
    /// messages, and it survives a reconnect (the receiver's pressure does
    /// not reset because the sender restarted).
    pub rx_backpressure_hint: u32,
    /// Bytes put on the management wire (including retransmissions).
    pub wire_bytes: u64,
    /// Total transmissions (first attempts + retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Messages abandoned after the retry budget.
    pub failed_sends: u64,
}

impl ReliableChannel {
    /// Create a channel with independent Bernoulli loss per attempt.
    /// `loss_prob` is clamped to `[0, 1]`: 1.0 models a fully partitioned
    /// link, where every send fails after the capped retries rather than
    /// panicking or looping forever.
    pub fn new(loss_prob: f64, rtt_ns: u64, pace_gap_ns: u64, seed: u64) -> Self {
        let p = loss_prob.clamp(0.0, 1.0);
        Self::with_process(
            LossProcess::Bernoulli { p },
            Vec::new(),
            rtt_ns,
            pace_gap_ns,
            seed,
            DEFAULT_MAX_RETRIES,
        )
    }

    /// Create from a device [`FaultPlan`]: management-network loss process
    /// plus hard partition windows.
    pub fn from_plan(plan: &FaultPlan, rtt_ns: u64, pace_gap_ns: u64, max_retries: u32) -> Self {
        Self::with_process(
            plan.mgmt_loss,
            plan.mgmt_partitions.clone(),
            rtt_ns,
            pace_gap_ns,
            plan.seed,
            max_retries,
        )
    }

    /// Fully explicit constructor.
    pub fn with_process(
        process: LossProcess,
        partitions: Vec<Window>,
        rtt_ns: u64,
        pace_gap_ns: u64,
        seed: u64,
        max_retries: u32,
    ) -> Self {
        let rtt = rtt_ns.max(1);
        ReliableChannel {
            loss: LossGen::new(process, seed, streams::MGMT),
            partitions,
            rtt_ns: rtt,
            pace_gap_ns,
            max_retries,
            srtt_ns: rtt as f64,
            rttvar_ns: rtt as f64 / 2.0,
            next_seq: 0,
            next_send_ns: 0,
            epoch: 0,
            last_acked_seq: None,
            rx_backpressure_hint: 0,
            wire_bytes: 0,
            transmissions: 0,
            retransmissions: 0,
            failed_sends: 0,
        }
    }

    /// Current retransmission timeout: `SRTT + 4·RTTVAR`, floored at the
    /// base RTT (an RTO below one RTT would retransmit before the ACK can
    /// possibly arrive).
    pub fn rto_ns(&self) -> u64 {
        (self.srtt_ns + 4.0 * self.rttvar_ns).max(self.rtt_ns as f64) as u64
    }

    /// Backoff ceiling: probes during a partition are at most this far
    /// apart, bounding post-partition recovery latency.
    pub fn rto_max_ns(&self) -> u64 {
        64 * self.rtt_ns
    }

    fn attempt_lost(&mut self, t: u64) -> bool {
        // A partition wins over the stochastic process: nothing crosses.
        crate::faults::in_any_window(&self.partitions, t) || self.loss.lose()
    }

    /// Send one message of `bytes` at `now_ns`. `Ok` carries the delivery;
    /// `Err` means the retry budget ran out (e.g. a partition outlasting
    /// the backoff schedule) and the caller must shed-and-count.
    pub fn send(&mut self, now_ns: u64, bytes: usize) -> Result<Delivery, SendFailure> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let start = self.next_send_ns.max(now_ns);
        self.next_send_ns = start + self.pace_gap_ns;
        let mut attempts = 0u32;
        let mut t = start;
        let mut rto = self.rto_ns().min(self.rto_max_ns());
        loop {
            attempts += 1;
            self.transmissions += 1;
            self.wire_bytes += bytes as u64;
            if attempts > 1 {
                self.retransmissions += 1;
            }
            if !self.attempt_lost(t) {
                let delivered_ns = t + self.rtt_ns / 2;
                // Karn's algorithm: only first-attempt deliveries produce
                // RTT samples — a retransmitted message's timing is
                // ambiguous and feeding it back inflates SRTT without
                // bound. Jacobson/Karels update:
                // RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT−sample|,
                // SRTT ← 7/8·SRTT + 1/8·sample.
                if attempts == 1 {
                    let sample = self.rtt_ns as f64;
                    self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - sample).abs();
                    self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * sample;
                }
                self.last_acked_seq = Some(seq);
                return Ok(Delivery { seq, delivered_ns, attempts });
            }
            if attempts > self.max_retries {
                self.failed_sends += 1;
                return Err(SendFailure { seq, attempts, gave_up_ns: t });
            }
            // Partition-aware wait: if this attempt landed inside a known
            // partition whose end is *sooner* than the backed-off RTO,
            // retry right as it lifts (TCP would discover this via the
            // first successful probe; we shortcut the last probe cycle).
            let next_try = t + rto;
            t = match crate::faults::stall_release(&self.partitions, t) {
                Some(release) if release < next_try => release,
                _ => next_try,
            };
            // Exponential backoff, capped.
            rto = (rto * 2).min(self.rto_max_ns());
        }
    }

    /// Reconnect after a sender restart: bump the epoch, reset the RTT
    /// estimator (the old path estimate is stale) and the pacing clock, and
    /// return the [`Handshake`] the receiver needs to dedup the uncovered
    /// suffix. Cumulative wire counters and the sequence counter survive —
    /// they are measurement, not connection state.
    pub fn reconnect(&mut self, now_ns: u64) -> Handshake {
        self.epoch += 1;
        self.srtt_ns = self.rtt_ns as f64;
        self.rttvar_ns = self.rtt_ns as f64 / 2.0;
        self.next_send_ns = now_ns;
        Handshake { epoch: self.epoch, last_acked_seq: self.last_acked_seq }
    }
}

/// Verdict of the receiver-side epoch/sequence gate for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// First sight of `(epoch, seq)`: deliver to the ledger.
    Accepted,
    /// The message's epoch predates the receiver's current epoch for this
    /// sender — a retransmit from before a restart. It must be rejected
    /// here, not silently delivered into the new epoch's accounting.
    StaleEpoch,
    /// Already seen (same epoch, seq at or below the watermark).
    Duplicate,
}

/// Receiver-side exactly-once gate: per-sender epoch adoption plus a
/// per-epoch sequence watermark. Senders attach `(epoch, seq)` to every
/// message; at-least-once retransmission + this gate = exactly-once
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct EpochReceiver {
    /// Current (highest ever seen) sender epoch.
    pub epoch: u32,
    /// Per-epoch next-expected sequence number: `seq < next[epoch]` has
    /// already been accepted.
    next: HashMap<u32, u64>,
    /// Messages accepted.
    pub accepted: u64,
    /// Retransmits rejected for carrying a pre-restart epoch.
    pub stale_epoch_rejected: u64,
    /// Same-epoch duplicates suppressed.
    pub duplicates_rejected: u64,
}

impl EpochReceiver {
    /// Judge one `(epoch, seq)` pair, updating the gate's state.
    pub fn accept(&mut self, epoch: u32, seq: u64) -> RxVerdict {
        if epoch < self.epoch {
            self.stale_epoch_rejected += 1;
            return RxVerdict::StaleEpoch;
        }
        self.epoch = epoch;
        let next = self.next.entry(epoch).or_insert(0);
        if seq < *next {
            self.duplicates_rejected += 1;
            return RxVerdict::Duplicate;
        }
        *next = seq + 1;
        self.accepted += 1;
        RxVerdict::Accepted
    }

    /// The watermark for `epoch`: sequences below it have been accepted.
    pub fn watermark(&self, epoch: u32) -> u64 {
        self.next.get(&epoch).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_delivers_first_try() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        let d = ch.send(0, 100).expect("delivered");
        assert_eq!(d.attempts, 1);
        assert_eq!(d.delivered_ns, 500);
        assert_eq!(ch.retransmissions, 0);
    }

    #[test]
    fn sequences_are_monotonic() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        let a = ch.send(0, 10).expect("delivered");
        let b = ch.send(0, 10).expect("delivered");
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
    }

    #[test]
    fn lossy_channel_retransmits_until_delivered() {
        let mut ch = ReliableChannel::new(0.5, 1_000, 0, 42);
        let mut total_attempts = 0u32;
        for _ in 0..200 {
            let d = ch.send(0, 100).expect("50% loss fits in the budget");
            total_attempts += d.attempts;
            assert!(d.attempts >= 1);
        }
        // Expected ~2 attempts per message at 50% loss.
        assert!(total_attempts > 300, "attempts {total_attempts}");
        assert_eq!(ch.retransmissions, u64::from(total_attempts) - 200);
        assert_eq!(ch.wire_bytes, u64::from(total_attempts) * 100);
    }

    #[test]
    fn retransmission_delays_delivery() {
        // Deterministic: find a seed where the first attempt is lost.
        let mut ch = ReliableChannel::new(0.9, 1_000, 0, 7);
        let d = ch.send(0, 10);
        if let Ok(d) = d {
            if d.attempts > 1 {
                assert!(d.delivered_ns >= 1_500, "delivery {d:?}");
            }
        }
    }

    #[test]
    fn pacing_spaces_out_sends() {
        let mut ch = ReliableChannel::new(0.0, 100, 1_000, 1);
        let a = ch.send(0, 10).expect("delivered");
        let b = ch.send(0, 10).expect("delivered");
        let c = ch.send(0, 10).expect("delivered");
        assert_eq!(a.delivered_ns, 50);
        assert_eq!(b.delivered_ns, 1_050);
        assert_eq!(c.delivered_ns, 2_050);
    }

    #[test]
    fn loss_prob_one_fails_after_capped_retries() {
        // A fully partitioned link: no panic, no infinite loop — a
        // counted failure after the retry budget.
        let mut ch = ReliableChannel::new(1.0, 1_000, 0, 1);
        let err = ch.send(0, 100).expect_err("must fail");
        assert_eq!(err.attempts, DEFAULT_MAX_RETRIES + 1);
        assert!(err.gave_up_ns > 0);
        assert_eq!(ch.failed_sends, 1);
        // The channel stays usable for subsequent messages.
        let err2 = ch.send(err.gave_up_ns, 100).expect_err("still partitioned");
        assert_eq!(err2.seq, 1);
    }

    #[test]
    fn out_of_range_loss_is_clamped() {
        let mut hi = ReliableChannel::new(7.5, 1_000, 0, 1);
        assert!(hi.send(0, 10).is_err(), "clamped to 1.0: total loss");
        let mut lo = ReliableChannel::new(-3.0, 1_000, 0, 1);
        assert_eq!(lo.send(0, 10).expect("clamped to 0.0").attempts, 1);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let mut ch = ReliableChannel::new(1.0, 1_000, 0, 3);
        let err = ch.send(0, 10).expect_err("total loss");
        // 12 retries with doubling from RTO≈3·RTT, capped at 64·RTT:
        // the give-up time is bounded by the cap times the retry count.
        let cap = ch.rto_max_ns();
        assert!(err.gave_up_ns <= cap * u64::from(err.attempts));
        // And it must actually have backed off beyond the fixed 2·RTT
        // schedule of the old stop-and-wait (12 retries × 2µs = 24µs).
        assert!(err.gave_up_ns > 24_000, "gave up at {}", err.gave_up_ns);
    }

    #[test]
    fn partition_window_fails_sends_inside_it() {
        let plan = FaultPlan {
            mgmt_partitions: vec![Window { start_ns: 0, end_ns: u64::MAX }],
            ..FaultPlan::default()
        };
        let mut ch = ReliableChannel::from_plan(&plan, 1_000, 0, 4);
        assert!(ch.send(0, 10).is_err());
    }

    #[test]
    fn partition_recovery_is_prompt() {
        // Partition for 300 µs (inside the retry budget's probing span),
        // then heal. The partition-aware timeout retries at the release
        // edge, so delivery lands right at the heal.
        let plan = FaultPlan {
            mgmt_partitions: vec![Window { start_ns: 0, end_ns: 300_000 }],
            ..FaultPlan::default()
        };
        let mut ch = ReliableChannel::from_plan(&plan, 1_000, 0, DEFAULT_MAX_RETRIES);
        let d = ch.send(0, 10).expect("heals in time");
        assert!(d.attempts > 1);
        assert!((300_000..310_000).contains(&d.delivered_ns), "delivered at {}", d.delivered_ns);
    }

    #[test]
    fn partition_outlasting_budget_fails_then_recovers() {
        // A 10 ms partition exceeds the probing span of the default
        // budget: sends inside it fail (counted), sends after it succeed.
        let plan = FaultPlan {
            mgmt_partitions: vec![Window { start_ns: 0, end_ns: 10_000_000 }],
            ..FaultPlan::default()
        };
        let mut ch = ReliableChannel::from_plan(&plan, 1_000, 0, DEFAULT_MAX_RETRIES);
        assert!(ch.send(0, 10).is_err());
        assert_eq!(ch.failed_sends, 1);
        let d = ch.send(10_000_000, 10).expect("after heal");
        assert_eq!(d.attempts, 1);
    }

    #[test]
    fn adaptive_rto_tracks_retransmission_history() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        let before = ch.rto_ns();
        for _ in 0..50 {
            ch.send(0, 10).expect("delivered");
        }
        // Clean deliveries shrink variance: RTO converges toward RTT.
        assert!(ch.rto_ns() <= before);
        assert!(ch.rto_ns() >= 1_000);
    }

    #[test]
    fn reconnect_bumps_epoch_and_carries_last_ack() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        assert_eq!(ch.epoch, 0);
        for _ in 0..3 {
            ch.send(0, 10).expect("delivered");
        }
        let tx_before = ch.transmissions;
        let hs = ch.reconnect(5_000);
        assert_eq!(hs, Handshake { epoch: 1, last_acked_seq: Some(2) });
        assert_eq!(ch.epoch, 1);
        // Counters and the sequence space survive the restart.
        assert_eq!(ch.transmissions, tx_before);
        assert_eq!(ch.send(5_000, 10).expect("delivered").seq, 3);
        // A second restart keeps bumping.
        assert_eq!(ch.reconnect(9_000).epoch, 2);
    }

    #[test]
    fn reconnect_with_nothing_acked_has_empty_handshake() {
        let mut ch = ReliableChannel::new(1.0, 1_000, 0, 1);
        assert!(ch.send(0, 10).is_err(), "total loss: nothing ever acked");
        assert_eq!(ch.reconnect(0).last_acked_seq, None);
    }

    #[test]
    fn receiver_rejects_stale_epoch_retransmits() {
        let mut rx = EpochReceiver::default();
        for seq in 0..5 {
            assert_eq!(rx.accept(0, seq), RxVerdict::Accepted);
        }
        // Sender restarts; receiver adopts epoch 1.
        assert_eq!(rx.accept(1, 5), RxVerdict::Accepted);
        // A late retransmit from before the restart must be rejected by
        // epoch — not delivered into the new epoch's ledger.
        assert_eq!(rx.accept(0, 3), RxVerdict::StaleEpoch);
        assert_eq!(rx.accept(0, 99), RxVerdict::StaleEpoch);
        assert_eq!(rx.stale_epoch_rejected, 2);
        assert_eq!(rx.accepted, 6);
    }

    #[test]
    fn receiver_dedups_within_an_epoch() {
        let mut rx = EpochReceiver::default();
        assert_eq!(rx.accept(2, 0), RxVerdict::Accepted);
        assert_eq!(rx.accept(2, 1), RxVerdict::Accepted);
        assert_eq!(rx.accept(2, 1), RxVerdict::Duplicate);
        assert_eq!(rx.accept(2, 0), RxVerdict::Duplicate);
        assert_eq!(rx.duplicates_rejected, 2);
        assert_eq!(rx.watermark(2), 2);
        // Re-offering the full history (reconciliation) is idempotent.
        for seq in 0..2 {
            assert_eq!(rx.accept(2, seq), RxVerdict::Duplicate);
        }
        assert_eq!(rx.accepted, 2);
    }

    #[test]
    fn gilbert_elliott_bursts_are_survivable() {
        let plan = FaultPlan {
            seed: 5,
            mgmt_loss: LossProcess::GilbertElliott {
                p_enter_bad: 0.05,
                p_exit_bad: 0.3,
                loss_good: 0.01,
                loss_bad: 0.95,
            },
            ..FaultPlan::default()
        };
        let mut ch = ReliableChannel::from_plan(&plan, 1_000, 0, DEFAULT_MAX_RETRIES);
        let mut ok = 0u32;
        for _ in 0..500 {
            if ch.send(0, 100).is_ok() {
                ok += 1;
            }
        }
        // Bursts cost retransmissions, not (many) messages.
        assert!(ok >= 495, "delivered {ok}/500");
        assert!(ch.retransmissions > 0);
    }
}
