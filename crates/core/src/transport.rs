//! Reliable event transport (§3.6): the switch CPU ships batched events to
//! the backend over TCP. We model the property that matters — every
//! message is eventually delivered exactly once despite management-network
//! loss — with a stop-and-wait ARQ whose retransmissions are metered, plus
//! pacing so report bursts don't spike the management network.

use fet_netsim::rng::Pcg32;

/// Delivery record for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Sequence number assigned by the sender.
    pub seq: u64,
    /// When the backend received it, ns.
    pub delivered_ns: u64,
    /// Attempts it took (1 = no retransmission).
    pub attempts: u32,
}

/// Stop-and-wait reliable channel with Bernoulli loss.
#[derive(Debug)]
pub struct ReliableChannel {
    loss_prob: f64,
    rtt_ns: u64,
    /// Pacing: minimum gap between first transmissions, ns (0 = none).
    pace_gap_ns: u64,
    rng: Pcg32,
    next_seq: u64,
    /// The sender's next free transmission slot.
    next_send_ns: u64,
    /// Bytes put on the management wire (including retransmissions).
    pub wire_bytes: u64,
    /// Total transmissions (first attempts + retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
}

impl ReliableChannel {
    /// Create a channel. `loss_prob` applies per attempt.
    pub fn new(loss_prob: f64, rtt_ns: u64, pace_gap_ns: u64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss_prob), "loss must be in [0,1)");
        ReliableChannel {
            loss_prob,
            rtt_ns: rtt_ns.max(1),
            pace_gap_ns,
            rng: Pcg32::new(seed, 77),
            next_seq: 0,
            next_send_ns: 0,
            wire_bytes: 0,
            transmissions: 0,
            retransmissions: 0,
        }
    }

    /// Send one message of `bytes` at `now_ns`; returns its delivery.
    /// Always succeeds eventually (that is the point of the ARQ).
    pub fn send(&mut self, now_ns: u64, bytes: usize) -> Delivery {
        let seq = self.next_seq;
        self.next_seq += 1;
        let start = self.next_send_ns.max(now_ns);
        self.next_send_ns = start + self.pace_gap_ns;
        let mut attempts = 0u32;
        let mut t = start;
        loop {
            attempts += 1;
            self.transmissions += 1;
            self.wire_bytes += bytes as u64;
            if attempts > 1 {
                self.retransmissions += 1;
            }
            if !self.rng.chance(self.loss_prob) {
                // One-way latency = rtt/2.
                return Delivery { seq, delivered_ns: t + self.rtt_ns / 2, attempts };
            }
            // Retransmit timeout: 2 × RTT.
            t += 2 * self.rtt_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_delivers_first_try() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        let d = ch.send(0, 100);
        assert_eq!(d.attempts, 1);
        assert_eq!(d.delivered_ns, 500);
        assert_eq!(ch.retransmissions, 0);
    }

    #[test]
    fn sequences_are_monotonic() {
        let mut ch = ReliableChannel::new(0.0, 1_000, 0, 1);
        let a = ch.send(0, 10);
        let b = ch.send(0, 10);
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
    }

    #[test]
    fn lossy_channel_retransmits_until_delivered() {
        let mut ch = ReliableChannel::new(0.5, 1_000, 0, 42);
        let mut total_attempts = 0u32;
        for _ in 0..200 {
            let d = ch.send(0, 100);
            total_attempts += d.attempts;
            assert!(d.attempts >= 1);
        }
        // Expected ~2 attempts per message at 50% loss.
        assert!(total_attempts > 300, "attempts {total_attempts}");
        assert_eq!(ch.retransmissions, u64::from(total_attempts) - 200);
        assert_eq!(ch.wire_bytes, u64::from(total_attempts) * 100);
    }

    #[test]
    fn retransmission_delays_delivery() {
        // Deterministic: find a seed where the first attempt is lost.
        let mut ch = ReliableChannel::new(0.9, 1_000, 0, 7);
        let d = ch.send(0, 10);
        if d.attempts > 1 {
            assert!(d.delivered_ns >= 2_000, "delivery {d:?}");
        }
    }

    #[test]
    fn pacing_spaces_out_sends() {
        let mut ch = ReliableChannel::new(0.0, 100, 1_000, 1);
        let a = ch.send(0, 10);
        let b = ch.send(0, 10);
        let c = ch.send(0, 10);
        assert_eq!(a.delivered_ns, 50);
        assert_eq!(b.delivered_ns, 1_050);
        assert_eq!(c.delivered_ns, 2_050);
    }

    #[test]
    #[should_panic]
    fn loss_prob_one_rejected() {
        let _ = ReliableChannel::new(1.0, 100, 0, 1);
    }
}
