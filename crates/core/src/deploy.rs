//! Fleet deployment helpers: attach NetSeer to every switch (and
//! optionally every NIC) of a simulated network, mark which ports carry
//! sequence tags, and gather delivered events into a queryable store.

use crate::config::NetSeerConfig;
use crate::monitor::{NetSeerMonitor, Role};
use crate::storage::EventStore;
use fet_netsim::engine::{Node, NodeId, Simulator};

/// Deployment options.
#[derive(Debug, Clone)]
pub struct DeployOptions {
    /// The NetSeer configuration cloned into every device.
    pub cfg: NetSeerConfig,
    /// Also deploy on host NICs (inter-switch module on edge links).
    pub on_nics: bool,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions { cfg: NetSeerConfig::default(), on_nics: true }
    }
}

/// Attach NetSeer monitors across the network. Ports whose peer also runs
/// a monitor are marked `tag_ports` so sequence tagging activates there.
pub fn deploy(sim: &mut Simulator, opts: &DeployOptions) {
    let switches = sim.switch_ids();
    let hosts = sim.host_ids();
    for &s in &switches {
        let m = NetSeerMonitor::new(s, Role::Switch, opts.cfg.clone());
        sim.switch_mut(s).set_monitor(Box::new(m));
    }
    if opts.on_nics {
        for &h in &hosts {
            let mut cfg = opts.cfg.clone();
            // NICs only need the inter-switch module.
            cfg.enable_dedup = true;
            let m = NetSeerMonitor::new(h, Role::Nic, cfg);
            sim.host_mut(h).monitor = Some(Box::new(m));
        }
    }
    // Mark tagged ports: every switch port whose peer is a switch, or a
    // host when NIC deployment is on.
    let adj = sim.adjacency();
    let is_switch = |n: NodeId| matches!(sim.nodes[n as usize], Node::Switch(_));
    let tags: Vec<(NodeId, u8)> = switches
        .iter()
        .flat_map(|&s| {
            adj.get(&s)
                .into_iter()
                .flatten()
                .filter(|&&(_, peer)| is_switch(peer) || opts.on_nics)
                .map(move |&(port, _)| (s, port))
                .collect::<Vec<_>>()
        })
        .collect();
    for (s, port) in tags {
        sim.switch_mut(s).tag_ports[usize::from(port)] = true;
    }
}

/// Pull every delivered event from every monitor into one indexed store.
/// Call after the simulation run.
pub fn collect_events(sim: &mut Simulator) -> EventStore {
    let mut store = EventStore::new();
    let ids: Vec<NodeId> = (0..sim.nodes.len() as NodeId).collect();
    for id in ids {
        let mon = match &mut sim.nodes[id as usize] {
            Node::Switch(s) => s.monitor.as_mut(),
            Node::Host(h) => h.monitor.as_mut(),
            Node::Vacant => None,
        };
        if let Some(m) = mon {
            if let Some(ns) = m.as_any_mut().downcast_mut::<NetSeerMonitor>() {
                store.extend(ns.delivered.iter().copied());
            }
        }
    }
    store
}

/// Every monitor's delivered history, read-only (no monitor mutation, so
/// callable mid-run): the at-least-once replay source the analytics layer
/// reconciles from after a collector crash.
pub fn delivered_history(sim: &Simulator) -> Vec<crate::storage::StoredEvent> {
    let mut out = Vec::new();
    for node in &sim.nodes {
        let mon = match node {
            Node::Switch(s) => s.monitor.as_ref(),
            Node::Host(h) => h.monitor.as_ref(),
            Node::Vacant => None,
        };
        if let Some(m) = mon {
            if let Some(ns) = m.as_any().downcast_ref::<NetSeerMonitor>() {
                out.extend(ns.delivered.iter().copied());
            }
        }
    }
    out
}

/// Scrape every monitor's per-port gap-detector counts:
/// `(device, ingress port, gaps)`, sorted. The downstream half of the
/// analytics correlator's link-loss join.
pub fn gap_reports(sim: &Simulator) -> Vec<(u32, u8, u64)> {
    let mut out = Vec::new();
    for node in &sim.nodes {
        let mon = match node {
            Node::Switch(s) => s.monitor.as_ref(),
            Node::Host(h) => h.monitor.as_ref(),
            Node::Vacant => None,
        };
        if let Some(m) = mon {
            if let Some(ns) = m.as_any().downcast_ref::<NetSeerMonitor>() {
                for (port, gaps) in ns.gap_counts() {
                    if gaps > 0 {
                        out.push((ns.device(), port, gaps));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Borrow the NetSeer monitor on a switch (panics if absent/not NetSeer).
pub fn monitor_of(sim: &Simulator, id: NodeId) -> &NetSeerMonitor {
    let m = match &sim.nodes[id as usize] {
        Node::Switch(s) => s.monitor.as_ref(),
        Node::Host(h) => h.monitor.as_ref(),
        Node::Vacant => None,
    };
    m.expect("monitor attached").as_any().downcast_ref::<NetSeerMonitor>().expect("NetSeer monitor")
}

/// Mutably borrow the NetSeer monitor on a node (panics if absent/not
/// NetSeer). Control-plane pokes that reach a live monitor from outside
/// the packet path go through here — e.g. relaying the collector's
/// backpressure level, which a real deployment piggybacks on ACKs.
pub fn monitor_of_mut(sim: &mut Simulator, id: NodeId) -> &mut NetSeerMonitor {
    let m = match &mut sim.nodes[id as usize] {
        Node::Switch(s) => s.monitor.as_mut(),
        Node::Host(h) => h.monitor.as_mut(),
        Node::Vacant => None,
    };
    m.expect("monitor attached")
        .as_any_mut()
        .downcast_mut::<NetSeerMonitor>()
        .expect("NetSeer monitor")
}

/// Sum every attached monitor's delivery ledger into one fleet ledger.
/// Each per-monitor ledger is asserted balanced on the way, so the sum
/// is too — the fleet-wide conservation identity the exporters publish.
pub fn fleet_ledger(sim: &Simulator) -> crate::DeliveryLedger {
    let mut total = crate::DeliveryLedger::default();
    for node in &sim.nodes {
        let mon = match node {
            Node::Switch(s) => s.monitor.as_ref(),
            Node::Host(h) => h.monitor.as_ref(),
            Node::Vacant => None,
        };
        if let Some(m) = mon {
            if let Some(ns) = m.as_any().downcast_ref::<NetSeerMonitor>() {
                let l = ns.ledger();
                l.assert_balanced();
                total.generated += l.generated;
                total.delivered += l.delivered;
                total.shed_stack += l.shed_stack;
                total.shed_pcie += l.shed_pcie;
                total.shed_cpu_overload += l.shed_cpu_overload;
                total.shed_false_positive += l.shed_false_positive;
                total.shed_transport += l.shed_transport;
                total.pending += l.pending;
                total.buffered += l.buffered;
                total.lost_to_crash += l.lost_to_crash;
                total.corrupted += l.corrupted;
                total.malformed += l.malformed;
            }
        }
    }
    total
}

/// Fleet-wide reliability counters aggregated across every monitor —
/// the scrape surface the observability exporters publish alongside the
/// ledger (see `fet-export`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// CEBP report batches that failed their CRC-32C trailer (implicit
    /// NACKs), fleet-wide.
    pub crc_failures: u64,
    /// WAL records rejected by torn-tail replay across all restarts.
    pub wal_records_rejected: u64,
    /// Partial CEBP flushes held back by backpressure-widened strides.
    pub flushes_skipped: u64,
    /// Transport retransmissions.
    pub retransmissions: u64,
    /// Loss-notification copies dropped by the fault plan.
    pub notification_copies_dropped: u64,
    /// Monitor restarts (clean and hard) completed.
    pub restarts: u64,
}

/// Aggregate [`FleetStats`] across every attached monitor.
pub fn fleet_stats(sim: &Simulator) -> FleetStats {
    let mut total = FleetStats::default();
    for node in &sim.nodes {
        let mon = match node {
            Node::Switch(s) => s.monitor.as_ref(),
            Node::Host(h) => h.monitor.as_ref(),
            Node::Vacant => None,
        };
        if let Some(m) = mon {
            if let Some(ns) = m.as_any().downcast_ref::<NetSeerMonitor>() {
                total.crc_failures += ns.cebp_crc_failures;
                total.wal_records_rejected += ns.recovery.wal_records_rejected;
                total.flushes_skipped += ns.batcher.flushes_skipped;
                total.retransmissions += ns.transport.retransmissions;
                total.notification_copies_dropped += ns.notification_copies_dropped;
                total.restarts += ns.recovery.restarts;
            }
        }
    }
    total
}

/// Aggregate per-step stats across all switch monitors (for Figure 13).
pub fn aggregate_stats(sim: &Simulator) -> crate::monitor::StepStats {
    let mut agg = crate::monitor::StepStats::default();
    for id in sim.switch_ids() {
        if sim.switch(id).monitor.is_some() {
            let m = monitor_of(sim, id);
            agg.packets_seen += m.stats.packets_seen;
            agg.packets_bytes += m.stats.packets_bytes;
            agg.event_packets += m.stats.event_packets;
            agg.event_packet_bytes += m.stats.event_packet_bytes;
            agg.final_reports += m.stats.final_reports;
            agg.final_bytes += m.stats.final_bytes;
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_netsim::routing::install_ecmp_routes;
    use fet_netsim::topology::{build_fat_tree, FatTreeParams};

    #[test]
    fn deploy_marks_fabric_and_edge_ports() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        deploy(&mut sim, &DeployOptions::default());
        // Every switch has a monitor.
        for &s in &ft.all_switches() {
            assert!(sim.switch(s).monitor.is_some());
        }
        for &h in &ft.hosts {
            assert!(sim.host(h).monitor.is_some());
        }
        // ToR ports toward aggs and hosts are tagged.
        let tor = ft.edges[0][0];
        assert!(sim.switch(tor).tag_ports.iter().filter(|&&b| b).count() >= 4);
    }

    #[test]
    fn deploy_without_nics_leaves_edge_untagged() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        deploy(&mut sim, &DeployOptions { on_nics: false, ..Default::default() });
        for &h in &ft.hosts {
            assert!(sim.host(h).monitor.is_none());
        }
        let tor = ft.edges[0][0];
        // Only the two agg-facing ports are tagged.
        assert_eq!(sim.switch(tor).tag_ports.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn collect_events_empty_before_traffic() {
        let mut sim = Simulator::new();
        build_fat_tree(&mut sim, &FatTreeParams::default());
        deploy(&mut sim, &DeployOptions::default());
        let store = collect_events(&mut sim);
        assert!(store.is_empty());
    }
}
