//! Circulating event batching (§3.5).
//!
//! A stack across pipeline stages caches extracted 24-byte events; CEBPs
//! (circulating event batching packets) recirculate through an internal
//! port, popping a few events per pass and appending them to their payload.
//! A CEBP that reaches `batch_size` events is forwarded to the switch CPU
//! over PCIe and replaced by an empty clone.
//!
//! The timing model is calibrated to the paper's Figure 12 (≈86 Meps /
//! 17.7 Gbps at batch 50): each circulation costs
//! `max(pass_latency, serialize(frame) @ internal port)` and collects up to
//! `events_per_pass` events (the stack spans several stages, and the CEBP
//! pops one event per stage it traverses); each delivery to the CPU costs
//! one extra pass plus the full-frame serialization.

use crate::config::NetSeerConfig;
use crate::faults::{event_priority, stall_release, Window};
use fet_packet::cebp::CEBP_HEADER_LEN;
use fet_packet::ethernet::ETHERNET_HEADER_LEN;
use fet_packet::event::{EventRecord, EventType, EVENT_RECORD_LEN};
use std::collections::HashMap;

/// A completed batch ready for the PCIe channel.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Time the CEBP finished collecting and left for the CPU, ns.
    pub ready_ns: u64,
    /// The carried events.
    pub events: Vec<EventRecord>,
}

impl Batch {
    /// Wire size of this batch on PCIe (Ethernet + CEBP framing + events).
    pub fn wire_bytes(&self) -> usize {
        ETHERNET_HEADER_LEN + CEBP_HEADER_LEN + self.events.len() * EVENT_RECORD_LEN
    }
}

/// Outcome of offering one event to the stack under the bounded-backlog,
/// priority-aware shedding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Event stored; nothing shed.
    Stored,
    /// Stack full and the incoming event did not outrank any resident:
    /// the incoming event was shed.
    ShedIncoming,
    /// Stack full but a lower-priority resident was evicted to make room.
    ShedVictim {
        /// The victim's event type.
        ty: EventType,
        /// The victim's position in the pending order (open CEBP first,
        /// then stack, oldest first) — what a recovery WAL needs to mirror
        /// the eviction.
        pending_pos: usize,
    },
}

/// The in-pipeline stack + circulating CEBP model.
#[derive(Debug)]
pub struct CebpBatcher {
    stack: Vec<EventRecord>,
    stack_cap: usize,
    batch_size: usize,
    events_per_pass: u32,
    pass_latency_ns: u64,
    internal_gbps: f64,
    /// Scheduled recirculation stalls (from the device fault plan).
    stalls: Vec<Window>,
    open: Vec<EventRecord>,
    /// When the circulating CEBP next visits the stack.
    next_visit_ns: u64,
    /// Backpressure: only every `flush_stride`-th [`flush`](Self::flush)
    /// call forces a partial batch out; the rest are skipped (counted).
    /// Stride 1 (the default) flushes every call — the pre-backpressure
    /// behavior, bit for bit.
    flush_stride: u32,
    /// Flush calls offered (skipped ones included).
    pub flush_calls: u64,
    /// Flush calls skipped by the widening stride.
    pub flushes_skipped: u64,
    /// Events pushed successfully.
    pub accepted: u64,
    /// Events shed because the stack was full (capacity limit). Shedding
    /// is priority-aware: drops outrank congestion/pause, which outrank
    /// path-change (see [`crate::faults::event_priority`]).
    pub dropped: u64,
    /// Shed counts broken down by the victim's event type.
    pub shed_by_type: HashMap<EventType, u64>,
    /// Batches delivered.
    pub delivered_batches: u64,
    /// Events delivered.
    pub delivered_events: u64,
}

impl CebpBatcher {
    /// Create from a NetSeer configuration.
    pub fn new(cfg: &NetSeerConfig) -> Self {
        CebpBatcher {
            stack: Vec::new(),
            stack_cap: cfg.stack_capacity.max(1),
            batch_size: usize::from(cfg.batch_size.max(1)),
            events_per_pass: cfg.events_per_pass.max(1),
            pass_latency_ns: cfg.pass_latency_ns.max(1),
            internal_gbps: cfg.capacity.internal_port_gbps,
            stalls: cfg.faults.cebp_stalls.clone(),
            open: Vec::new(),
            next_visit_ns: 0,
            flush_stride: 1,
            flush_calls: 0,
            flushes_skipped: 0,
            accepted: 0,
            dropped: 0,
            shed_by_type: HashMap::new(),
            delivered_batches: 0,
            delivered_events: 0,
        }
    }

    fn shed(&mut self, ty: EventType) {
        self.dropped += 1;
        *self.shed_by_type.entry(ty).or_insert(0) += 1;
    }

    fn frame_bytes(&self, events: usize) -> usize {
        ETHERNET_HEADER_LEN + CEBP_HEADER_LEN + events * EVENT_RECORD_LEN
    }

    fn pass_time(&self, events_in_cebp: usize) -> u64 {
        // Recirculation is cut-through: serialization overlaps pipeline
        // traversal, so a pass costs the pipeline latency unless the frame
        // has grown so large that the internal port itself throttles it.
        let ser = ((self.frame_bytes(events_in_cebp) as f64 * 8.0) / self.internal_gbps / 4.0) // four concurrent CEBPs share the port's serializer
            .ceil() as u64;
        ser.max(self.pass_latency_ns)
    }

    /// Push one event into the stack. When the stack is full the shedding
    /// policy is priority-aware: a lower-priority resident (path-change
    /// before congestion/pause before drops) is evicted in favor of a
    /// higher-priority arrival; otherwise the arrival itself is shed.
    /// Every shed is counted — never silent.
    pub fn push(&mut self, now_ns: u64, ev: EventRecord) -> PushOutcome {
        // The CEBP circulates continuously; while the stack was empty its
        // visits found nothing. The first visit that can pick this event
        // up is therefore no earlier than now.
        if self.next_visit_ns < now_ns {
            self.next_visit_ns = now_ns;
        }
        if self.stack.len() >= self.stack_cap {
            let incoming = event_priority(ev.ty);
            // Oldest lowest-priority resident is the victim candidate.
            let victim = self
                .stack
                .iter()
                .enumerate()
                .min_by_key(|(i, e)| (event_priority(e.ty), *i))
                .map(|(i, e)| (i, event_priority(e.ty), e.ty));
            match victim {
                Some((i, vp, vty)) if vp < incoming => {
                    self.stack.remove(i);
                    self.shed(vty);
                    self.stack.push(ev);
                    self.accepted += 1;
                    return PushOutcome::ShedVictim { ty: vty, pending_pos: self.open.len() + i };
                }
                _ => {
                    self.shed(ev.ty);
                    return PushOutcome::ShedIncoming;
                }
            }
        }
        self.stack.push(ev);
        self.accepted += 1;
        PushOutcome::Stored
    }

    /// Advance the circulation model to `now_ns`, returning batches that
    /// completed by then.
    pub fn poll(&mut self, now_ns: u64) -> Vec<Batch> {
        let mut out = Vec::new();
        while self.next_visit_ns <= now_ns && !self.stack.is_empty() {
            // A scheduled recirculation stall parks the CEBP until the
            // window lifts; events wait in the (bounded) stack meanwhile.
            if let Some(release) = stall_release(&self.stalls, self.next_visit_ns) {
                self.next_visit_ns = release;
                continue;
            }
            // One circulation: pop up to events_per_pass from the stack.
            let take = (self.events_per_pass as usize)
                .min(self.stack.len())
                .min(self.batch_size - self.open.len());
            let drained: Vec<EventRecord> = self.stack.drain(..take).collect();
            self.open.extend(drained);
            self.next_visit_ns += self.pass_time(self.open.len());
            if self.open.len() >= self.batch_size {
                // Delivery pass: forward to CPU, clone an empty CEBP.
                self.next_visit_ns += self.pass_time(self.open.len());
                let events = std::mem::take(&mut self.open);
                self.delivered_batches += 1;
                self.delivered_events += events.len() as u64;
                out.push(Batch { ready_ns: self.next_visit_ns, events });
            }
        }
        out
    }

    /// Set the flush-widening stride (collector backpressure): only every
    /// `stride`-th flush call forces a partial batch out. Clamped to ≥ 1;
    /// natural full batches via [`poll`](Self::poll) are unaffected.
    pub fn set_flush_stride(&mut self, stride: u32) {
        self.flush_stride = stride.max(1);
    }

    /// The current flush-widening stride.
    pub fn flush_stride(&self) -> u32 {
        self.flush_stride
    }

    /// Force a partial batch out (the control-plane timer prevents events
    /// from aging in a half-full CEBP when traffic is light). Under
    /// backpressure ([`set_flush_stride`](Self::set_flush_stride) > 1)
    /// skipped calls return `None` without touching circulation: events
    /// keep accumulating toward fuller batches instead of being forced
    /// out every tick.
    pub fn flush(&mut self, now_ns: u64) -> Option<Batch> {
        self.flush_calls += 1;
        if !self.flush_calls.is_multiple_of(u64::from(self.flush_stride)) {
            self.flushes_skipped += 1;
            return None;
        }
        let _ = self.poll(now_ns);
        if self.open.is_empty() && self.stack.is_empty() {
            return None;
        }
        self.open.append(&mut self.stack);
        let mut start = self.next_visit_ns.max(now_ns);
        if let Some(release) = stall_release(&self.stalls, start) {
            start = release;
        }
        let deliver_at = start + self.pass_time(self.open.len());
        self.next_visit_ns = deliver_at;
        let events = std::mem::take(&mut self.open);
        self.delivered_batches += 1;
        self.delivered_events += events.len() as u64;
        Some(Batch { ready_ns: deliver_at, events })
    }

    /// Events currently waiting (stack + open CEBP).
    pub fn backlog(&self) -> usize {
        self.stack.len() + self.open.len()
    }

    /// The pending events in removal order: the open CEBP's cargo first
    /// (it drains on the next delivery), then the stack, oldest first.
    /// This is the ground truth a recovery checkpoint snapshots and that
    /// WAL replay must reconstruct.
    pub fn pending_events(&self) -> Vec<EventRecord> {
        self.open.iter().chain(self.stack.iter()).copied().collect()
    }
}

/// Analytic throughput of the batching stage for a batch size, per the
/// calibrated model (regenerates Figure 12 without running a simulation).
pub fn throughput_model(cfg: &NetSeerConfig, batch_size: usize) -> (f64, f64) {
    let b = batch_size.max(1);
    let epp = cfg.events_per_pass.max(1) as usize;
    let frame = |events: usize| ETHERNET_HEADER_LEN + CEBP_HEADER_LEN + events * EVENT_RECORD_LEN;
    let pass = |events: usize| -> f64 {
        let ser = (frame(events) as f64 * 8.0) / cfg.capacity.internal_port_gbps / 4.0;
        ser.max(cfg.pass_latency_ns as f64)
    };
    // Fill passes.
    let mut t = 0.0;
    let mut filled = 0usize;
    while filled < b {
        filled = (filled + epp).min(b);
        t += pass(filled);
    }
    // Delivery pass.
    t += pass(b);
    let eps = b as f64 / (t * 1e-9);
    let gbps = eps * (EVENT_RECORD_LEN as f64) * 8.0 / 1e9;
    (eps / 1e6, gbps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::event::{EventDetail, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn ev(n: u16) -> EventRecord {
        EventRecord {
            ty: EventType::Congestion,
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 1]),
                n,
                Ipv4Addr::from_octets([10, 0, 0, 2]),
                80,
            ),
            detail: EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: n },
            counter: 1,
            hash: u32::from(n),
        }
    }

    fn cfg(batch: u16) -> NetSeerConfig {
        NetSeerConfig { batch_size: batch, ..NetSeerConfig::default() }
    }

    #[test]
    fn batches_form_at_batch_size() {
        let mut b = CebpBatcher::new(&cfg(10));
        for n in 0..25 {
            assert_eq!(b.push(0, ev(n)), PushOutcome::Stored);
        }
        let batches = b.poll(1_000_000);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].events.len(), 10);
        assert_eq!(batches[1].events.len(), 10);
        assert_eq!(b.backlog(), 5);
        // Order is preserved through the stack/CEBP path.
        assert_eq!(batches[0].events[0], ev(0));
        assert_eq!(batches[1].events[9], ev(19));
    }

    #[test]
    fn flush_emits_partial_batch() {
        let mut b = CebpBatcher::new(&cfg(50));
        for n in 0..7 {
            b.push(0, ev(n));
        }
        let batch = b.flush(10_000).expect("partial batch");
        assert_eq!(batch.events.len(), 7);
        assert!(batch.ready_ns >= 10_000);
        assert_eq!(b.backlog(), 0);
        assert!(b.flush(20_000).is_none());
    }

    #[test]
    fn flush_stride_widens_batch_intervals() {
        let mut b = CebpBatcher::new(&cfg(50));
        b.set_flush_stride(4);
        let mut flushed = 0;
        for tick in 1..=8u64 {
            b.push(tick * 1_000, ev(tick as u16));
            if b.flush(tick * 1_000).is_some() {
                flushed += 1;
            }
        }
        // Only ticks 4 and 8 flush; skipped ticks leave events batching.
        assert_eq!(flushed, 2);
        assert_eq!(b.flush_calls, 8);
        assert_eq!(b.flushes_skipped, 6);
        // Stride 1 restores flush-every-call.
        b.set_flush_stride(1);
        b.push(9_000, ev(9));
        assert!(b.flush(9_000).is_some());
        // Stride 0 is clamped, never a division by zero.
        b.set_flush_stride(0);
        assert_eq!(b.flush_stride(), 1);
    }

    #[test]
    fn stack_overflow_drops_events() {
        let mut c = cfg(50);
        c.stack_capacity = 4;
        let mut b = CebpBatcher::new(&c);
        for n in 0..10 {
            b.push(0, ev(n));
        }
        // No time has passed, so nothing drained: 4 accepted, 6 dropped.
        assert_eq!(b.accepted, 4);
        assert_eq!(b.dropped, 6);
        assert_eq!(b.shed_by_type[&EventType::Congestion], 6);
    }

    #[test]
    fn shedding_is_priority_aware() {
        use fet_packet::event::DropCode;
        let mut c = cfg(50);
        c.stack_capacity = 3;
        let mut b = CebpBatcher::new(&c);
        // Fill with path-change (lowest priority).
        for n in 0..3 {
            let mut e = ev(n);
            e.ty = EventType::PathChange;
            e.detail = EventDetail::PathChange { ingress_port: 0, egress_port: 1 };
            assert_eq!(b.push(0, e), PushOutcome::Stored);
        }
        // A congestion event outranks path-change: the oldest path-change
        // (pending position 0, nothing in the open CEBP) is evicted.
        assert_eq!(
            b.push(0, ev(100)),
            PushOutcome::ShedVictim { ty: EventType::PathChange, pending_pos: 0 }
        );
        // A drop event outranks congestion.
        let mut d = ev(101);
        d.ty = EventType::MmuDrop;
        d.detail =
            EventDetail::Drop { ingress_port: 0, egress_port: 1, code: DropCode::BufferFull };
        assert_eq!(
            b.push(0, d),
            PushOutcome::ShedVictim { ty: EventType::PathChange, pending_pos: 0 }
        );
        // Another path-change cannot displace anyone: it is shed itself.
        let mut p = ev(102);
        p.ty = EventType::PathChange;
        p.detail = EventDetail::PathChange { ingress_port: 0, egress_port: 1 };
        assert_eq!(b.push(0, p), PushOutcome::ShedIncoming);
        assert_eq!(b.dropped, 3);
        assert_eq!(b.shed_by_type[&EventType::PathChange], 3);
        // The high-priority drop event is still resident.
        assert!(b.backlog() == 3);
    }

    #[test]
    fn pending_order_is_open_cebp_then_stack() {
        let mut c = cfg(10);
        c.stack_capacity = 4;
        let mut b = CebpBatcher::new(&c);
        for n in 0..4 {
            b.push(0, ev(n));
        }
        // One circulation moves the 4 events into the open CEBP (below
        // batch size, so no delivery).
        assert!(b.poll(0).is_empty());
        assert_eq!(b.pending_events()[..4], [ev(0), ev(1), ev(2), ev(3)]);
        // Refill the stack behind the open CEBP.
        for n in 0..4 {
            let mut e = ev(100 + n);
            e.ty = EventType::PathChange;
            e.detail = EventDetail::PathChange { ingress_port: 0, egress_port: 1 };
            assert_eq!(b.push(0, e), PushOutcome::Stored);
        }
        assert_eq!(b.pending_events().len(), 8);
        // An eviction's position is global across open ++ stack: the
        // victim is the oldest path-change, behind the 4 open events.
        assert_eq!(
            b.push(0, ev(200)),
            PushOutcome::ShedVictim { ty: EventType::PathChange, pending_pos: 4 }
        );
        let pending = b.pending_events();
        assert_eq!(pending.len(), 8);
        assert_eq!(pending[7], ev(200), "arrival appended at the back");
    }

    #[test]
    fn cebp_stall_parks_circulation_then_resumes() {
        use crate::faults::Window;
        let mut c = cfg(10);
        c.faults.cebp_stalls = vec![Window { start_ns: 0, end_ns: 1_000_000 }];
        let mut b = CebpBatcher::new(&c);
        for n in 0..10 {
            b.push(0, ev(n));
        }
        // During the stall nothing circulates.
        assert!(b.poll(999_999).is_empty());
        assert_eq!(b.backlog(), 10);
        // After release the batch forms normally.
        let batches = b.poll(10_000_000);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].ready_ns >= 1_000_000);
        // No events lost across the stall.
        assert_eq!(b.dropped, 0);
        assert_eq!(b.delivered_events, 10);
    }

    #[test]
    fn batch_completion_takes_time() {
        let mut b = CebpBatcher::new(&cfg(10));
        for n in 0..10 {
            b.push(1_000, ev(n));
        }
        // Immediately after push nothing is ready.
        assert!(b.poll(1_000).is_empty());
        let batches = b.poll(10_000_000);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].ready_ns > 1_000);
    }

    #[test]
    fn wire_bytes_counts_framing() {
        let batch = Batch { ready_ns: 0, events: vec![ev(0); 50] };
        assert_eq!(batch.wire_bytes(), 14 + 4 + 50 * 24);
    }

    #[test]
    fn throughput_model_matches_paper_shape() {
        let c = NetSeerConfig::default();
        let (m10, g10) = throughput_model(&c, 10);
        let (m50, g50) = throughput_model(&c, 50);
        let (m70, _g70) = throughput_model(&c, 70);
        // Rising with batch size, saturating near the paper's 86 Meps /
        // 17.7 Gbps at batch 50.
        assert!(m10 < m50, "m10={m10} m50={m50}");
        assert!(m50 <= m70 * 1.2, "should saturate, not collapse");
        assert!((60.0..=120.0).contains(&m50), "Meps at 50: {m50}");
        assert!((12.0..=24.0).contains(&g50), "Gbps at 50: {g50}");
        assert!(g10 < g50);
    }

    #[test]
    fn sustained_throughput_matches_model() {
        // Feed events faster than the drain rate for 1 ms and check the
        // simulated drain tracks the analytic model.
        let c = cfg(50);
        let mut b = CebpBatcher::new(&c);
        let horizon = 1_000_000; // 1 ms
        let mut delivered = 0u64;
        let mut t = 0;
        let mut n = 0u16;
        while t < horizon {
            // Keep the stack topped up faster than the drain rate.
            while b.backlog() < 450 {
                b.push(t, ev(n));
                n = n.wrapping_add(1);
            }
            t += 1_000;
            delivered += b.poll(t).iter().map(|x| x.events.len() as u64).sum::<u64>();
        }
        let meps = delivered as f64 / (horizon as f64 * 1e-9) / 1e6;
        let (model_meps, _) = throughput_model(&c, 50);
        assert!((meps - model_meps).abs() / model_meps < 0.25, "sim {meps} vs model {model_meps}");
    }
}
