//! Durable spill buffer behind the collector: bounded disk before shed.
//!
//! The collector's admission order under burst overload is **memory →
//! spill → shed**: deliveries past the memory watermark are written to a
//! disk-backed segment store instead of being dropped, and shedding
//! happens only once the byte budget (`max_spill_bytes`) is exhausted.
//! The design follows the disk_v2 buffer shape (segment files, per-record
//! checksums, a durable reader cursor, delete-after-ack) on top of the
//! record framing the recovery WAL already uses:
//!
//! * **Segments**: records append to an open segment; when it reaches the
//!   rotation threshold it is closed — closing fsyncs it — and a fresh
//!   segment opens. Only the open segment can carry un-fsynced records,
//!   so a hard kill can tear at most one segment tail.
//! * **Records**: `[tag][payload][crc32c over tag+payload]`, the PR 5 WAL
//!   framing with a dedicated tag. The payload is the full
//!   [`StoredEvent`] — delivery stamp, `(device, epoch, seq)` identity,
//!   and the 24-byte event record — so replay re-enters the collector's
//!   exactly-once gates with the original identity intact.
//! * **Durable read cursor**: draining advances a *volatile* read
//!   position; [`SpillStore::commit`] (called from the collector's
//!   checkpoint) first fsyncs the data through the read position, then
//!   fsyncs the cursor itself. The cursor is therefore never ahead of the
//!   data it covers, and a crash rewinds the read position to the cursor:
//!   records applied after the last checkpoint are replayed, records
//!   applied before it never are — no delivered event reaches analytics
//!   twice, because replay re-offers through the epoch/seq gates that are
//!   reverted *together with* the store they guard.
//! * **Delete-after-ack**: commit drops segments wholly behind the
//!   durable cursor, bounding disk to the un-acked window.
//! * **Torn tails**: a hard kill mid-spill damages only the bytes past
//!   the open segment's sync watermark
//!   ([`CorruptionGen::corrupt_tail`] on the
//!   [`streams::SPILL_CORRUPT`](crate::faults::streams) stream); recovery
//!   keeps the longest record prefix whose CRCs verify. Losses are
//!   bounded by the un-fsynced tail and repaired by sender re-offer (the
//!   torn records never passed the gates, so retransmission re-admits
//!   them).
//!
//! [`CorruptionGen::corrupt_tail`]: CorruptionGen::corrupt_tail

use std::collections::VecDeque;

use crate::config::CollectorConfig;
use crate::faults::CorruptionGen;
use crate::recovery::WAL_RECORD_CRC_LEN;
use crate::storage::StoredEvent;
use fet_packet::checksum::crc32c;
use fet_packet::event::{EventRecord, EVENT_RECORD_LEN};

/// Record tag for a spilled [`StoredEvent`] (the recovery WAL owns 1–3).
pub const SPILL_RECORD_TAG: u8 = 4;

/// Serialized payload: delivery stamp (8) + device (4) + epoch (4) +
/// seq (8) + the event record.
pub const SPILL_PAYLOAD_LEN: usize = 24 + EVENT_RECORD_LEN;

/// Full on-disk record length: tag + payload + CRC-32C trailer. Fixed
/// size, so byte budgets and record counts convert exactly.
pub const SPILL_RECORD_LEN: usize = 1 + SPILL_PAYLOAD_LEN + WAL_RECORD_CRC_LEN;

/// Serialize one spilled event as `[tag][payload][crc32c]`.
pub fn encode_spill_record(ev: &StoredEvent, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(SPILL_RECORD_TAG);
    out.extend_from_slice(&ev.time_ns.to_be_bytes());
    out.extend_from_slice(&ev.device.to_be_bytes());
    out.extend_from_slice(&ev.epoch.to_be_bytes());
    out.extend_from_slice(&ev.seq.to_be_bytes());
    let mut rec = [0u8; EVENT_RECORD_LEN];
    ev.record.write_to(&mut rec);
    out.extend_from_slice(&rec);
    let crc = crc32c(&out[start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

/// Decode one spill record from the head of `buf`. Returns the event and
/// the bytes consumed, or `None` on a truncated tail, a wrong tag, a CRC
/// mismatch, or an unparseable event record — every way a torn write
/// manifests. Never panics on arbitrary bytes.
pub fn decode_spill_record(buf: &[u8]) -> Option<(StoredEvent, usize)> {
    if *buf.first()? != SPILL_RECORD_TAG {
        return None;
    }
    let body_len = 1 + SPILL_PAYLOAD_LEN;
    if buf.len() < SPILL_RECORD_LEN {
        return None;
    }
    let want = u32::from_be_bytes([
        buf[body_len],
        buf[body_len + 1],
        buf[body_len + 2],
        buf[body_len + 3],
    ]);
    if crc32c(&buf[..body_len]) != want {
        return None;
    }
    let time_ns = u64::from_be_bytes(buf[1..9].try_into().ok()?);
    let device = u32::from_be_bytes(buf[9..13].try_into().ok()?);
    let epoch = u32::from_be_bytes(buf[13..17].try_into().ok()?);
    let seq = u64::from_be_bytes(buf[17..25].try_into().ok()?);
    let record = EventRecord::parse(&buf[25..body_len]).ok()?;
    Some((StoredEvent { time_ns, device, epoch, seq, record }, SPILL_RECORD_LEN))
}

/// Decode the longest valid record prefix of a (possibly torn) segment
/// byte stream. Replay stops cleanly at the first bad record.
pub fn decode_spill_prefix(bytes: &[u8]) -> Vec<StoredEvent> {
    let mut out = Vec::new();
    let mut off = 0;
    while let Some((ev, used)) = decode_spill_record(&bytes[off..]) {
        out.push(ev);
        off += used;
    }
    out
}

/// One segment file: its decoded records plus the fsync watermark
/// (records at and past `synced` die in a hard kill).
#[derive(Debug, Clone, Default)]
struct Segment {
    records: Vec<StoredEvent>,
    synced: usize,
}

/// The bounded disk-backed event buffer (in-memory disk model, like the
/// recovery WAL): segment rotation, fsync watermarks, a durable read
/// cursor, and delete-after-ack. Record positions are logical indices in
/// the append order; `base ≤ durable ≤ read ≤ end` always holds.
#[derive(Debug, Clone, Default)]
pub struct SpillStore {
    segments: VecDeque<Segment>,
    /// Rotation threshold, records (derived from `spill_segment_bytes`).
    segment_records: usize,
    /// Byte budget, in whole records (derived from `max_spill_bytes`).
    max_records: usize,
    /// Logical index of the first retained record (segment deletion
    /// advances it).
    base: u64,
    /// Logical index of the next record to drain. Volatile: a crash
    /// rewinds it to `durable`.
    read: u64,
    /// The durable read cursor, fsynced on advance by [`commit`]. Never
    /// ahead of the fsynced data it covers.
    ///
    /// [`commit`]: Self::commit
    durable: u64,
    /// Logical index one past the last retained record.
    end: u64,
    /// Highest read position ever reached — drains below it count as
    /// replays.
    high_water_read: u64,
    torn: Option<CorruptionGen>,
    /// Records appended (admitted to the spill).
    pub appended: u64,
    /// Records handed out by [`drain_next`](Self::drain_next), replays
    /// included.
    pub drained: u64,
    /// Records re-drained after a crash rewound the read position.
    pub replayed: u64,
    /// Appends refused because the byte budget was exhausted (the
    /// collector's shed-of-last-resort signal).
    pub refused: u64,
    /// Records destroyed by torn tails across all crashes (bounded by the
    /// un-fsynced tail at each kill).
    pub torn_records: u64,
    /// fsync calls (segment data + the durable cursor).
    pub fsyncs: u64,
    /// [`commit`](Self::commit) calls.
    pub commits: u64,
    /// Segment rotations (each closes and fsyncs the filled segment).
    pub rotations: u64,
    /// Segments deleted after their records were acked by the cursor.
    pub acked_segments: u64,
    /// Hard kills survived.
    pub crashes: u64,
}

impl SpillStore {
    /// Create from a collector configuration.
    pub fn new(cfg: &CollectorConfig) -> Self {
        let rec = SPILL_RECORD_LEN as u64;
        SpillStore {
            segment_records: (cfg.spill_segment_bytes / rec).max(1) as usize,
            max_records: (cfg.max_spill_bytes / rec) as usize,
            ..SpillStore::default()
        }
    }

    /// Arm the torn-tail failure model for hard kills. Without it (or
    /// with an inactive spec) a crash cleanly truncates the un-fsynced
    /// tail.
    pub fn set_torn(&mut self, gen: CorruptionGen) {
        self.torn = Some(gen);
    }

    /// Append one event. `false` means the byte budget is exhausted and
    /// the caller must shed-and-count — the spill refuses, it never
    /// silently overwrites.
    pub fn append(&mut self, ev: StoredEvent) -> bool {
        if self.resident() >= self.max_records as u64 {
            self.refused += 1;
            return false;
        }
        let rotate = match self.segments.back() {
            None => true,
            Some(open) => open.records.len() >= self.segment_records,
        };
        if rotate {
            if let Some(open) = self.segments.back_mut() {
                // Closing a segment fsyncs it: only the open segment can
                // ever carry an un-fsynced tail.
                if open.synced < open.records.len() {
                    open.synced = open.records.len();
                    self.fsyncs += 1;
                }
                self.rotations += 1;
            }
            self.segments.push_back(Segment::default());
        }
        self.segments.back_mut().expect("open segment").records.push(ev);
        self.end += 1;
        self.appended += 1;
        true
    }

    /// Explicitly fsync the open segment (all retained records become
    /// durable). Rotation and commit call this as needed; exposed for the
    /// model test's crash/fsync interleavings.
    pub fn fsync(&mut self) {
        if let Some(open) = self.segments.back_mut() {
            if open.synced < open.records.len() {
                open.synced = open.records.len();
                self.fsyncs += 1;
            }
        }
    }

    /// Hand out the next undrained record and advance the volatile read
    /// position. The durable cursor does not move until
    /// [`commit`](Self::commit).
    pub fn drain_next(&mut self) -> Option<StoredEvent> {
        if self.read >= self.end {
            return None;
        }
        let ev = self.get(self.read)?;
        if self.read < self.high_water_read {
            self.replayed += 1;
        } else {
            self.high_water_read = self.read + 1;
        }
        self.read += 1;
        self.drained += 1;
        Some(ev)
    }

    /// Advance the durable cursor to the read position: fsync the data
    /// through it first (the cursor must never cover un-fsynced records),
    /// then fsync the cursor, then delete segments wholly behind it
    /// (delete-after-ack). Called from the collector's checkpoint, so the
    /// cursor moves exactly when the applied events become durable in the
    /// store it feeds.
    pub fn commit(&mut self) {
        let mut start = self.base;
        for seg in self.segments.iter_mut() {
            let len = seg.records.len() as u64;
            if self.read > start {
                let need = (self.read - start).min(len) as usize;
                if need > seg.synced {
                    seg.synced = need;
                    self.fsyncs += 1;
                }
            }
            start += len;
        }
        self.durable = self.read;
        self.fsyncs += 1; // the cursor record itself
        self.commits += 1;
        while let Some(front) = self.segments.front() {
            let len = front.records.len() as u64;
            if len == 0 || self.base + len > self.durable {
                break;
            }
            self.segments.pop_front();
            self.base += len;
            self.acked_segments += 1;
        }
    }

    /// A hard kill: the un-fsynced tail of the open segment is serialized,
    /// damaged past the sync watermark (when the torn model is armed;
    /// cleanly truncated otherwise), and recovered as the longest valid
    /// record prefix. The read position rewinds to the durable cursor, so
    /// the un-acked suffix replays. Returns how many records the kill
    /// destroyed.
    pub fn crash(&mut self) -> u64 {
        self.crashes += 1;
        let mut lost = 0u64;
        for seg in self.segments.iter_mut() {
            if seg.synced >= seg.records.len() {
                continue;
            }
            let total = seg.records.len();
            let keep_bytes = seg.synced * SPILL_RECORD_LEN;
            let mut bytes = Vec::with_capacity(total * SPILL_RECORD_LEN);
            for ev in &seg.records {
                encode_spill_record(ev, &mut bytes);
            }
            match &mut self.torn {
                Some(gen) if gen.spec.is_active() => {
                    gen.corrupt_tail(&mut bytes, keep_bytes);
                }
                _ => bytes.truncate(keep_bytes),
            }
            let survivors = decode_spill_prefix(&bytes);
            // Byte duplication can re-align into spurious extra records;
            // never recover more than were written.
            let survived = survivors.len().min(total);
            debug_assert!(survived >= seg.synced, "fsynced records must survive a kill");
            lost += (total - survived) as u64;
            seg.records = survivors;
            seg.records.truncate(survived);
            // What decoded off disk is durable by definition.
            seg.synced = survived;
        }
        self.end = self.base + self.segments.iter().map(|s| s.records.len() as u64).sum::<u64>();
        self.torn_records += lost;
        self.read = self.durable;
        self.high_water_read = self.high_water_read.min(self.end);
        debug_assert!(self.durable <= self.end, "the durable cursor only covers fsynced data");
        lost
    }

    fn get(&self, idx: u64) -> Option<StoredEvent> {
        let mut start = self.base;
        for seg in &self.segments {
            let len = seg.records.len() as u64;
            if idx < start + len {
                return Some(seg.records[(idx - start) as usize]);
            }
            start += len;
        }
        None
    }

    /// Records appended but not yet drained (the ledger's `buffered`
    /// term).
    pub fn pending(&self) -> u64 {
        self.end - self.read
    }

    /// Records retained on disk (drained-but-unacked records included).
    pub fn resident(&self) -> u64 {
        self.end - self.base
    }

    /// Disk bytes retained.
    pub fn bytes(&self) -> u64 {
        self.resident() * SPILL_RECORD_LEN as u64
    }

    /// True when every appended record has been drained.
    pub fn is_drained(&self) -> bool {
        self.read >= self.end
    }

    /// The durable read cursor (logical record index).
    pub fn durable_cursor(&self) -> u64 {
        self.durable
    }

    /// The volatile read position (logical record index).
    pub fn read_cursor(&self) -> u64 {
        self.read
    }

    /// Live segment count.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::CorruptionSpec;
    use fet_packet::event::{EventDetail, EventType};
    use fet_packet::ipv4::Ipv4Addr;
    use fet_packet::FlowKey;

    fn ev(n: u64) -> StoredEvent {
        StoredEvent {
            time_ns: 1_000 * n,
            device: 7,
            epoch: 1,
            seq: n,
            record: EventRecord {
                ty: EventType::Congestion,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_octets([10, 0, 0, 1]),
                    n as u16,
                    Ipv4Addr::from_octets([10, 0, 0, 2]),
                    80,
                ),
                detail: EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: n as u16 },
                counter: 1,
                hash: (n as u32).wrapping_mul(0x9e37_79b9),
            },
        }
    }

    fn small(cfg_records: usize, budget_records: usize) -> SpillStore {
        SpillStore::new(&CollectorConfig {
            spill_segment_bytes: (cfg_records * SPILL_RECORD_LEN) as u64,
            max_spill_bytes: (budget_records * SPILL_RECORD_LEN) as u64,
            ..CollectorConfig::default()
        })
    }

    #[test]
    fn record_round_trips() {
        let mut buf = Vec::new();
        encode_spill_record(&ev(42), &mut buf);
        assert_eq!(buf.len(), SPILL_RECORD_LEN);
        let (back, used) = decode_spill_record(&buf).expect("decodes");
        assert_eq!(back, ev(42));
        assert_eq!(used, SPILL_RECORD_LEN);
        // Every strict prefix is rejected, never a panic.
        for cut in 0..buf.len() {
            assert!(decode_spill_record(&buf[..cut]).is_none(), "prefix {cut} must reject");
        }
        // A flipped byte anywhere trips the CRC (or the tag check).
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(decode_spill_record(&bad).is_none(), "flip at {i} must reject");
        }
    }

    #[test]
    fn prefix_decode_stops_at_first_bad_record() {
        let mut buf = Vec::new();
        for n in 0..5 {
            encode_spill_record(&ev(n), &mut buf);
        }
        buf[2 * SPILL_RECORD_LEN + 3] ^= 0xff;
        let got = decode_spill_prefix(&buf);
        assert_eq!(got, vec![ev(0), ev(1)]);
    }

    #[test]
    fn rotation_fsyncs_closed_segments_and_commit_deletes_acked() {
        let mut s = small(4, 1000);
        for n in 0..10 {
            assert!(s.append(ev(n)));
        }
        // 4+4+2: two rotations, the closed segments are synced.
        assert_eq!(s.segment_count(), 3);
        assert_eq!(s.rotations, 2);
        assert_eq!(s.resident(), 10);
        // Drain 6, commit: the first segment (records 0..4) is wholly
        // behind the cursor and gets deleted; the second is not.
        for n in 0..6 {
            assert_eq!(s.drain_next(), Some(ev(n)));
        }
        s.commit();
        assert_eq!(s.durable_cursor(), 6);
        assert_eq!(s.segment_count(), 2);
        assert_eq!(s.acked_segments, 1);
        assert_eq!(s.resident(), 6);
        assert_eq!(s.pending(), 4);
        // Drain the rest; both remaining segments ack away.
        while s.drain_next().is_some() {}
        s.commit();
        assert_eq!(s.segment_count(), 0);
        assert_eq!(s.bytes(), 0);
        assert!(s.is_drained());
        // The store stays usable: appends reopen a segment.
        assert!(s.append(ev(99)));
        assert_eq!(s.drain_next(), Some(ev(99)));
    }

    #[test]
    fn budget_refuses_instead_of_overwriting() {
        let mut s = small(4, 6);
        for n in 0..6 {
            assert!(s.append(ev(n)));
        }
        assert!(!s.append(ev(6)), "budget exhausted must refuse");
        assert_eq!(s.refused, 1);
        // Ack-and-delete frees budget.
        for _ in 0..4 {
            s.drain_next();
        }
        s.commit();
        assert!(s.append(ev(6)));
    }

    #[test]
    fn hard_kill_loses_only_the_unsynced_tail_and_rewinds_to_durable() {
        let mut s = small(100, 1000);
        for n in 0..8 {
            s.append(ev(n));
        }
        // Drain 5, commit (durable = 5, data synced through 5), then
        // drain 2 more and append 2 more without fsync.
        for _ in 0..5 {
            s.drain_next();
        }
        s.commit();
        for _ in 0..2 {
            s.drain_next();
        }
        s.append(ev(8));
        s.append(ev(9));
        let lost = s.crash();
        // Records 5..10 were un-fsynced (commit synced through 5): all
        // five die in the clean-truncate model.
        assert_eq!(lost, 5);
        assert_eq!(s.read_cursor(), 5);
        assert_eq!(s.pending(), 0);
        // Fsynced records survive; the drained-but-unacked window replays.
        let mut s2 = small(100, 1000);
        for n in 0..8 {
            s2.append(ev(n));
        }
        s2.fsync();
        for _ in 0..5 {
            s2.drain_next();
        }
        s2.commit();
        for _ in 0..2 {
            s2.drain_next();
        }
        assert_eq!(s2.crash(), 0, "everything was fsynced");
        assert_eq!(s2.read_cursor(), 5);
        assert_eq!(s2.drain_next(), Some(ev(5)), "unacked suffix replays");
        assert_eq!(s2.replayed, 1);
        assert_eq!(s2.drain_next(), Some(ev(6)));
        assert_eq!(s2.replayed, 2);
        assert_eq!(s2.drain_next(), Some(ev(7)), "never-drained records are not replays");
        assert_eq!(s2.replayed, 2);
    }

    #[test]
    fn torn_tail_keeps_longest_valid_prefix() {
        let spec = CorruptionSpec { flip_per_byte: 0.02, truncate_prob: 0.5, duplicate_prob: 0.1 };
        for seed in 0..50u64 {
            let mut s = small(100, 1000);
            s.set_torn(CorruptionGen::new(spec, seed, crate::faults::streams::SPILL_CORRUPT));
            for n in 0..20 {
                s.append(ev(n));
            }
            s.fsync();
            for n in 20..30 {
                s.append(ev(n));
            }
            let lost = s.crash();
            assert!(lost <= 10, "loss bounded by the un-fsynced tail, lost {lost}");
            let survived = s.resident();
            assert!(survived >= 20, "fsynced prefix survives, kept {survived}");
            // Survivors replay in order with their identity intact.
            for n in 0..survived {
                assert_eq!(s.drain_next(), Some(ev(n)));
            }
            assert_eq!(s.drain_next(), None);
        }
    }

    #[test]
    fn same_seed_same_torn_outcome() {
        let spec = CorruptionSpec { flip_per_byte: 0.05, truncate_prob: 0.5, duplicate_prob: 0.2 };
        let run = |seed: u64| {
            let mut s = small(64, 1000);
            s.set_torn(CorruptionGen::new(spec, seed, crate::faults::streams::SPILL_CORRUPT));
            for n in 0..100 {
                s.append(ev(n));
                if n % 7 == 0 {
                    s.drain_next();
                }
                if n % 13 == 0 {
                    s.commit();
                }
                if n % 29 == 0 {
                    s.crash();
                }
            }
            let mut out = Vec::new();
            while let Some(e) = s.drain_next() {
                out.push(e);
            }
            (out, s.torn_records, s.fsyncs, s.acked_segments)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1, "different seeds should tear differently");
    }
}
