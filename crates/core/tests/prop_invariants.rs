// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for NetSeer's correctness invariants:
//!
//! * group caching has **zero false negatives** on arbitrary streams;
//! * the inter-switch ring buffer **never reports a wrong packet** and
//!   recovers every victim within its capacity window;
//! * the gap detector reports exactly the dropped sequence numbers;
//! * the batcher conserves events (accepted = delivered + backlog).

use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::batch::CebpBatcher;
use netseer::dedup::{DedupOutcome, GroupCache};
use netseer::detect::interswitch::{GapDetector, PortTagger};
use netseer::NetSeerConfig;
use proptest::prelude::*;
use std::collections::HashSet;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | n),
        (n % 60_000) as u16,
        Ipv4Addr::from_octets([10, 200, 0, 1]),
        80,
    )
}

proptest! {
    /// Algorithm 1 invariant: every flow that appears is reported at
    /// least once, whatever the stream and however small the table.
    #[test]
    fn dedup_zero_false_negatives(
        stream in proptest::collection::vec(0u32..64, 1..500),
        entries in 1usize..32,
        c in 1u32..64,
    ) {
        let mut gc = GroupCache::new("prop", entries, c, 1);
        let mut reported: HashSet<FlowKey> = HashSet::new();
        for &n in &stream {
            match gc.offer(flow(n)) {
                DedupOutcome::NewFlow => { reported.insert(flow(n)); }
                DedupOutcome::Evicted { old_flow, .. } => {
                    reported.insert(old_flow);
                    reported.insert(flow(n));
                }
                DedupOutcome::CounterReport { .. } | DedupOutcome::Suppressed { .. } => {}
            }
        }
        for &n in &stream {
            prop_assert!(reported.contains(&flow(n)), "flow {} never reported", n);
        }
    }

    /// Counter monotonicity: for a single flow, counter reports arrive in
    /// increasing counter order, spaced exactly C apart.
    #[test]
    fn dedup_counter_reports_are_periodic(c in 2u32..50, packets in 1usize..300) {
        let mut gc = GroupCache::new("prop", 64, c, 1);
        let mut last = 0u32;
        for _ in 0..packets {
            if let DedupOutcome::CounterReport { counter } = gc.offer(flow(1)) {
                if last > 0 {
                    prop_assert_eq!(counter - last, c);
                }
                last = counter;
            }
        }
    }

    /// Ring-buffer invariant: lookups never return a wrong flow, and any
    /// victim still within the ring window is recovered exactly.
    #[test]
    fn ring_never_reports_wrong_packet(
        slots in 1usize..128,
        sent in 1u32..600,
        probe in any::<u32>(),
    ) {
        let mut t = PortTagger::new(slots);
        for n in 0..sent {
            let seq = t.next(flow(n));
            prop_assert_eq!(seq, n);
        }
        let seq = probe % (sent * 2); // half the probes are beyond what was sent
        match t.lookup(seq) {
            Some(f) => {
                // Whatever is returned must be exactly the packet that
                // carried that sequence number...
                prop_assert_eq!(f, flow(seq));
                // ...and it must still be within the ring window.
                prop_assert!(seq >= sent.saturating_sub(slots as u32));
                prop_assert!(seq < sent);
            }
            None => {
                // Misses are only legal for overwritten or never-sent ids.
                let in_window = seq < sent && seq >= sent.saturating_sub(slots as u32);
                prop_assert!(!in_window, "seq {} in window but missed", seq);
            }
        }
    }

    /// Gap detector reports exactly the missing ranges for arbitrary
    /// loss patterns.
    #[test]
    fn gap_detector_exact(drop_mask in proptest::collection::vec(any::<bool>(), 2..400)) {
        let mut down = GapDetector::new();
        let mut missing_truth: Vec<u32> = Vec::new();
        let mut reported: Vec<u32> = Vec::new();
        let mut synced = false;
        for (seq, &dropped) in drop_mask.iter().enumerate() {
            let seq = seq as u32;
            if dropped {
                if synced {
                    missing_truth.push(seq);
                }
                continue;
            }
            if let Some((lo, hi)) = down.observe(seq) {
                for s in lo..=hi {
                    reported.push(s);
                }
            }
            synced = true;
        }
        // Trailing drops (after the last delivered packet) are undetectable
        // until more traffic flows — exclude them from the truth.
        let last_delivered = drop_mask.iter().rposition(|&d| !d).unwrap_or(0) as u32;
        missing_truth.retain(|&s| s < last_delivered);
        prop_assert_eq!(reported, missing_truth);
    }

    /// Batcher conservation: accepted events either leave in batches or
    /// remain in the backlog; nothing is duplicated or lost silently.
    #[test]
    fn batcher_conserves_events(
        pushes in proptest::collection::vec(0u64..100_000, 1..300),
        batch_size in 1u16..64,
    ) {
        let cfg = NetSeerConfig { batch_size, ..NetSeerConfig::default() };
        let mut b = CebpBatcher::new(&cfg);
        let mut t = 0u64;
        let mut delivered = 0u64;
        for (i, &gap) in pushes.iter().enumerate() {
            t += gap;
            b.push(t, netseer_test_event(i as u32));
            delivered += b.poll(t).iter().map(|x| x.events.len() as u64).sum::<u64>();
        }
        // Flush everything left.
        t += 10_000_000_000;
        delivered += b.poll(t).iter().map(|x| x.events.len() as u64).sum::<u64>();
        if let Some(batch) = b.flush(t) {
            delivered += batch.events.len() as u64;
        }
        prop_assert_eq!(b.accepted, delivered + b.backlog() as u64);
        prop_assert_eq!(b.accepted + b.dropped, pushes.len() as u64);
        prop_assert_eq!(b.backlog(), 0);
    }
}

proptest! {
    /// Crash-recovery invariant: WAL replay is deterministic and
    /// idempotent for arbitrary op streams and checkpoint placements, a
    /// clean stop loses nothing, and a hard kill loses at most the
    /// un-fsynced tail — `replayed + lost == pending` always.
    #[test]
    fn recovery_replay_is_idempotent_and_bounded(
        raw in proptest::collection::vec((0u8..4, 0u32..8), 1..200),
        hard in any::<bool>(),
    ) {
        use netseer::recovery::{RecoveryLog, Snapshot};
        use netseer::CrashKind;

        let mut log = RecoveryLog::new(1_000);
        let mut pending = 0usize; // ground truth the log must reconstruct
        let mut now = 0u64;
        let mut n = 0u32;
        for &(op, param) in &raw {
            now += 100;
            match op {
                0 => {
                    log.log_enq(netseer_test_event(n));
                    n += 1;
                    pending += 1;
                }
                1 if pending > 0 => {
                    log.log_evict(param as usize % pending);
                    pending -= 1;
                }
                2 if pending > 0 => {
                    let k = (param as usize % pending) + 1;
                    log.log_deq(k);
                    pending -= k;
                }
                3 => {
                    let snap = Snapshot { pending: log.replay(), ..Default::default() };
                    log.checkpoint(now, snap);
                }
                _ => {}
            }
        }
        let unsynced = log.unsynced_ops();
        let kind = if hard { CrashKind::Hard } else { CrashKind::Clean };
        log.record_kill(kind, now, pending as u64);
        let first = log.replay();
        let again = log.replay();
        prop_assert_eq!(&first, &again, "replay must be idempotent");
        let (_, _, lost) = log.complete_restart(first.len() as u64);
        prop_assert!(lost as usize <= unsynced, "lost {} > unsynced {}", lost, unsynced);
        if !hard {
            prop_assert_eq!(lost, 0, "a clean stop must be lossless");
        }
        prop_assert_eq!(first.len() as u64 + lost, pending as u64);
    }
}

fn netseer_test_event(n: u32) -> fet_packet::event::EventRecord {
    fet_packet::event::EventRecord {
        ty: fet_packet::event::EventType::Congestion,
        flow: flow(n),
        detail: fet_packet::event::EventDetail::Congestion {
            egress_port: 0,
            queue: 0,
            latency_us: 1,
        },
        counter: 1,
        hash: n,
    }
}

proptest! {
    /// EventStore queries return exactly what a naive scan returns, for
    /// arbitrary event sets and filters.
    #[test]
    fn store_query_matches_naive_scan(
        events in proptest::collection::vec(
            (0u64..1_000, 0u32..4, 0u32..8, 1u8..=6),
            0..100,
        ),
        q_flow in proptest::option::of(0u32..8),
        q_device in proptest::option::of(0u32..4),
        q_ty in proptest::option::of(1u8..=6),
        window in proptest::option::of((0u64..500, 500u64..1_000)),
    ) {
        use netseer::storage::{EventStore, Query, StoredEvent};
        use fet_packet::event::{EventDetail, EventRecord, EventType};

        let mk = |t: u64, dev: u32, fl: u32, ty_code: u8| StoredEvent {
            time_ns: t,
            device: dev,
            epoch: 0,
            seq: t,
            record: EventRecord {
                ty: EventType::from_code(ty_code).unwrap(),
                flow: flow(fl),
                detail: EventDetail::Pause { egress_port: 0, queue: 0 },
                counter: 1,
                hash: fl,
            },
        };
        let all: Vec<StoredEvent> =
            events.iter().map(|&(t, d, f, c)| mk(t, d, f, c)).collect();
        let mut store = EventStore::new();
        store.extend(all.iter().copied());

        let mut q = Query::any();
        if let Some(f) = q_flow {
            q = q.flow(flow(f));
        }
        if let Some(d) = q_device {
            q = q.device(d);
        }
        if let Some(c) = q_ty {
            q = q.ty(EventType::from_code(c).unwrap());
        }
        if let Some((a, b)) = window {
            q = q.window(a, b);
        }
        let got: Vec<StoredEvent> = store.query(&q).into_iter().copied().collect();
        let want: Vec<StoredEvent> = all
            .iter()
            .filter(|e| q_flow.is_none_or(|f| e.record.flow == flow(f)))
            .filter(|e| q_device.is_none_or(|d| e.device == d))
            .filter(|e| {
                q_ty.is_none_or(|c| e.record.ty == EventType::from_code(c).unwrap())
            })
            .filter(|e| window.is_none_or(|(a, b)| e.time_ns >= a && e.time_ns < b))
            .copied()
            .collect();
        // Same multiset; the indexed path may reorder.
        let norm = |mut v: Vec<StoredEvent>| {
            v.sort_by_key(|e| (e.time_ns, e.device, e.record.flow, e.record.ty.code()));
            v
        };
        prop_assert_eq!(norm(got), norm(want));
    }
}
