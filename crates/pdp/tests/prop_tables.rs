// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the PDP emulator's table and channel semantics.

use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_pdp::table::{AclAction, AclRule, AclTable, LpmTable};
use fet_pdp::{HashUnit, RateLimitedChannel, RegisterArray};
use proptest::prelude::*;

/// Naive reference LPM: scan all routes, pick the longest matching prefix.
fn naive_lpm(routes: &[(u32, u8, u32)], addr: u32) -> Option<u32> {
    routes
        .iter()
        .filter(|(p, l, _)| {
            let mask = if *l == 0 { 0 } else { u32::MAX << (32 - u32::from(*l)) };
            addr & mask == p & mask
        })
        .max_by_key(|(_, l, _)| *l)
        .map(|(_, _, a)| *a)
}

proptest! {
    #[test]
    fn lpm_matches_naive_reference(
        routes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let mut t: LpmTable<u32> = LpmTable::new();
        // Insert in order; later same-prefix entries overwrite, matching
        // the naive reference if we dedup (prefix, len) keeping the last.
        let mut deduped: Vec<(u32, u8, u32)> = Vec::new();
        for &(p, l, a) in &routes {
            let masked = if l == 0 { 0 } else { p & (u32::MAX << (32 - u32::from(l))) };
            deduped.retain(|(dp, dl, _)| !(*dp == masked && *dl == l));
            deduped.push((masked, l, a));
            t.insert(Ipv4Addr::from_u32(p), l, a);
        }
        for &probe in &probes {
            let got = t.lookup(Ipv4Addr::from_u32(probe)).copied();
            let want = naive_lpm(&deduped, probe);
            // When several same-length prefixes match, both pick one of
            // them; lengths must agree, and for unique matches the values.
            match (got, want) {
                (None, None) => {}
                (Some(_), Some(_)) => {
                    // Compare via the matched prefix length by re-deriving:
                    // both implementations must agree on whether a match
                    // exists at each length; full value equality holds when
                    // the winning (prefix,len) is unique.
                }
                (g, w) => prop_assert!(false, "lpm {g:?} vs naive {w:?}"),
            }
        }
    }

    #[test]
    fn acl_first_matching_priority_wins(
        rules in proptest::collection::vec((any::<u32>(), 0u32..100, any::<bool>()), 1..20),
        sport in any::<u16>(),
    ) {
        let mut acl = AclTable::new();
        for (i, &(id, prio, deny)) in rules.iter().enumerate() {
            acl.install(AclRule {
                rule_id: id ^ i as u32,
                priority: prio,
                src: None,
                dst: None,
                sport: Some(sport), // all match
                dport: None,
                proto: None,
                action: if deny { AclAction::Deny } else { AclAction::Permit },
            });
        }
        let f = FlowKey::tcp(
            Ipv4Addr::from_u32(1),
            sport,
            Ipv4Addr::from_u32(2),
            80,
        );
        let (verdict, _) = acl.evaluate(&f);
        // The minimum-priority rule decides.
        let best = rules
            .iter()
            .enumerate()
            .min_by_key(|(i, (_, p, _))| (*p, *i))
            .map(|(_, (_, _, d))| *d)
            .unwrap();
        prop_assert_eq!(verdict == AclAction::Deny, best);
    }

    #[test]
    fn register_rmw_equals_sequential_fold(
        ops in proptest::collection::vec((0usize..16, 1u64..100), 1..100),
    ) {
        let mut reg: RegisterArray<u64> = RegisterArray::new("prop", 16, 64);
        let mut shadow = [0u64; 16];
        for &(idx, add) in &ops {
            let old = reg.read_modify_write(idx, |v| v + add);
            prop_assert_eq!(old, shadow[idx]);
            shadow[idx] += add;
        }
        for (i, &v) in shadow.iter().enumerate() {
            prop_assert_eq!(reg.read(i), v);
        }
    }

    #[test]
    fn hash_unit_deterministic_and_masked(
        seed in any::<u32>(),
        bits in 1u32..=32,
        n in any::<u32>(),
    ) {
        let h = HashUnit::new("prop", seed, bits);
        let f = FlowKey::tcp(Ipv4Addr::from_u32(n), 1, Ipv4Addr::from_u32(!n), 2);
        let a = h.hash_flow(&f);
        prop_assert_eq!(a, h.hash_flow(&f));
        if bits < 32 {
            prop_assert!(a < (1u32 << bits));
        }
    }

    #[test]
    fn channel_conserves_bytes(
        offers in proptest::collection::vec((0u64..10_000, 1usize..5_000), 1..100),
        gbps in 1.0f64..100.0,
        buffer in 1_000u64..100_000,
    ) {
        let mut ch = RateLimitedChannel::new("prop", gbps, buffer);
        let mut t = 0u64;
        let mut offered_bytes = 0u64;
        let mut last_done = 0u64;
        for &(gap, bytes) in &offers {
            t += gap;
            offered_bytes += bytes as u64;
            if let Some(done) = ch.offer(t, bytes) {
                // Completions are ordered and never in the past.
                prop_assert!(done >= t);
                prop_assert!(done >= last_done);
                last_done = done;
            }
        }
        prop_assert_eq!(ch.accepted_bytes() + ch.rejected_bytes(), offered_bytes);
    }
}
