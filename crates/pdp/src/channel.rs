//! Rate-limited internal channels.
//!
//! The capacity ceilings in the paper's §4 are all bandwidth-shaped:
//! internal port 100 Gbps, MMU drop-redirect 40 Gbps, PCIe 18 Gbps,
//! switch-CPU ~13.4 Gbps. [`RateLimitedChannel`] models each as a byte
//! serializer: an admission decision at time `t` either returns the
//! completion time of the transfer or rejects (overflow) when the backlog
//! exceeds the configured buffer — exactly how a redirect path sheds load
//! when events arrive faster than the port drains.

/// A bandwidth-limited, finitely-buffered serializing channel.
#[derive(Debug, Clone)]
pub struct RateLimitedChannel {
    name: &'static str,
    /// Bits per nanosecond (== Gbps).
    gbps: f64,
    /// Maximum backlog the channel may hold, bytes.
    buffer_bytes: u64,
    /// Time the serializer frees up.
    next_free_ns: u64,
    /// Bytes accepted.
    accepted_bytes: u64,
    /// Bytes rejected due to overflow.
    rejected_bytes: u64,
    /// Messages accepted / rejected.
    accepted_msgs: u64,
    rejected_msgs: u64,
}

impl RateLimitedChannel {
    /// Create a channel with `gbps` bandwidth and `buffer_bytes` of backlog.
    pub fn new(name: &'static str, gbps: f64, buffer_bytes: u64) -> Self {
        assert!(gbps > 0.0, "channel must have positive bandwidth");
        RateLimitedChannel {
            name,
            gbps,
            buffer_bytes,
            next_free_ns: 0,
            accepted_bytes: 0,
            rejected_bytes: 0,
            accepted_msgs: 0,
            rejected_msgs: 0,
        }
    }

    /// Nanoseconds to serialize `bytes` at this bandwidth.
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        ((bytes as f64 * 8.0) / self.gbps).ceil() as u64
    }

    /// Offer `bytes` at time `now_ns`. Returns the completion time if
    /// admitted, or `None` if the implied backlog would exceed the buffer
    /// (the message is lost/dropped — the capacity limit of the paper).
    pub fn offer(&mut self, now_ns: u64, bytes: usize) -> Option<u64> {
        let start = self.next_free_ns.max(now_ns);
        // Current backlog expressed in bytes still to serialize.
        let backlog_ns = start.saturating_sub(now_ns);
        let backlog_bytes = (backlog_ns as f64 * self.gbps / 8.0) as u64;
        if backlog_bytes + bytes as u64 > self.buffer_bytes {
            self.rejected_bytes += bytes as u64;
            self.rejected_msgs += 1;
            return None;
        }
        let done = start + self.serialize_ns(bytes);
        self.next_free_ns = done;
        self.accepted_bytes += bytes as u64;
        self.accepted_msgs += 1;
        Some(done)
    }

    /// Bandwidth in Gbps.
    pub fn gbps(&self) -> f64 {
        self.gbps
    }

    /// Bytes admitted so far.
    pub fn accepted_bytes(&self) -> u64 {
        self.accepted_bytes
    }

    /// Bytes rejected so far.
    pub fn rejected_bytes(&self) -> u64 {
        self.rejected_bytes
    }

    /// Messages admitted so far.
    pub fn accepted_msgs(&self) -> u64 {
        self.accepted_msgs
    }

    /// Messages rejected so far.
    pub fn rejected_msgs(&self) -> u64 {
        self.rejected_msgs
    }

    /// Loss fraction by messages.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.accepted_msgs + self.rejected_msgs;
        if total == 0 {
            0.0
        } else {
            self.rejected_msgs as f64 / total as f64
        }
    }

    /// Channel name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reset counters and serializer state.
    pub fn reset(&mut self) {
        self.next_free_ns = 0;
        self.accepted_bytes = 0;
        self.rejected_bytes = 0;
        self.accepted_msgs = 0;
        self.rejected_msgs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_at_100g() {
        let ch = RateLimitedChannel::new("int", 100.0, 1 << 20);
        // 1250 bytes at 100 Gbps = 100 ns.
        assert_eq!(ch.serialize_ns(1250), 100);
    }

    #[test]
    fn back_to_back_serializes_in_order() {
        let mut ch = RateLimitedChannel::new("int", 100.0, 1 << 20);
        let t1 = ch.offer(0, 1250).unwrap();
        let t2 = ch.offer(0, 1250).unwrap();
        assert_eq!(t1, 100);
        assert_eq!(t2, 200);
        // After the channel drains, a new message starts immediately.
        let t3 = ch.offer(1_000, 1250).unwrap();
        assert_eq!(t3, 1_100);
    }

    #[test]
    fn overflow_rejects() {
        // 10 Gbps channel with a tiny 100-byte buffer.
        let mut ch = RateLimitedChannel::new("x", 10.0, 100);
        assert!(ch.offer(0, 100).is_some());
        // Immediately offering more exceeds the backlog budget.
        assert!(ch.offer(0, 100).is_none());
        assert_eq!(ch.rejected_msgs(), 1);
        assert!(ch.loss_fraction() > 0.0);
        // Once drained, it accepts again.
        let drain = ch.serialize_ns(100);
        assert!(ch.offer(drain, 100).is_some());
    }

    #[test]
    fn counters_track_bytes() {
        let mut ch = RateLimitedChannel::new("x", 100.0, 1 << 30);
        ch.offer(0, 64).unwrap();
        ch.offer(0, 1500).unwrap();
        assert_eq!(ch.accepted_bytes(), 1564);
        assert_eq!(ch.accepted_msgs(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut ch = RateLimitedChannel::new("x", 1.0, 10);
        ch.offer(0, 10).unwrap();
        assert!(ch.offer(0, 10).is_none());
        ch.reset();
        assert_eq!(ch.accepted_msgs(), 0);
        assert!(ch.offer(0, 10).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = RateLimitedChannel::new("bad", 0.0, 1);
    }
}
