//! Programmable data plane (PDP) emulator.
//!
//! There is no P4/Tofino ecosystem in Rust, so this crate emulates the
//! *constraints* that shaped NetSeer's design rather than the silicon
//! itself (see DESIGN.md, substitution table):
//!
//! * **match-action tables** — exact, longest-prefix, and ternary (ACL)
//!   tables with entry/bit accounting ([`table`]);
//! * **stateful register arrays** — per-stage memories with bounded cell
//!   width and single read-modify-write semantics per packet, the model of
//!   Tofino's stateful ALUs ([`register`]);
//! * **hash units** — CRC-based hash engines with hash-bit accounting
//!   ([`hash`]);
//! * **packet header vector** — the metadata bundle that accompanies a
//!   packet through the pipeline ([`phv`]);
//! * **rate-limited internal channels** — the internal ports / recirculation
//!   paths / PCIe link whose finite bandwidth caps NetSeer's event capacity
//!   ([`channel`]);
//! * **resource ledger** — aggregates SRAM/TCAM/stateful-ALU/hash-bit/PHV
//!   usage per module to regenerate the paper's Figure 7 ([`resources`]).

#![warn(missing_docs)]

pub mod channel;
pub mod hash;
pub mod layout;
pub mod phv;
pub mod register;
pub mod resources;
pub mod table;

pub use channel::RateLimitedChannel;
pub use hash::HashUnit;
pub use layout::{place, PipelineProfile, Placement, TOFINO_PIPELINE};
pub use phv::{PacketMeta, PipelinePoint};
pub use register::RegisterArray;
pub use resources::{ResourceKind, ResourceLedger, TOFINO_32D};
pub use table::{AclAction, AclTable, ExactTable, LpmTable};
