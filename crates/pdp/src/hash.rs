//! Hash units — CRC-based hash engines as found in switch ASICs.
//!
//! Programmable ASICs compute hashes with CRC polynomials, not software
//! hashers; NetSeer exploits this by pre-computing the flow hash in the
//! data plane and shipping it to the CPU inside the event record (the 2.5×
//! CPU speedup of §3.6). We use CRC-32 with per-unit seeds so different
//! tables (dedup table per event type, path-change table, …) index
//! independently.

use crate::resources::{ResourceKind, ResourceLedger};
use fet_packet::checksum::crc32;
use fet_packet::flow::{FlowKey, FLOW_KEY_LEN};

/// A single hash engine with a fixed seed and output width.
#[derive(Debug, Clone)]
pub struct HashUnit {
    name: &'static str,
    seed: u32,
    output_bits: u32,
}

impl HashUnit {
    /// Create a hash unit. `output_bits` ≤ 32; outputs are masked to it.
    pub fn new(name: &'static str, seed: u32, output_bits: u32) -> Self {
        assert!((1..=32).contains(&output_bits), "hash output must be 1..=32 bits");
        HashUnit { name, seed, output_bits }
    }

    /// Hash arbitrary bytes.
    pub fn hash_bytes(&self, data: &[u8]) -> u32 {
        let mut seeded = Vec::with_capacity(data.len() + 4);
        seeded.extend_from_slice(&self.seed.to_be_bytes());
        seeded.extend_from_slice(data);
        let h = crc32(&seeded);
        if self.output_bits == 32 {
            h
        } else {
            h & ((1u32 << self.output_bits) - 1)
        }
    }

    /// Hash a flow key (the dominant NetSeer use).
    pub fn hash_flow(&self, flow: &FlowKey) -> u32 {
        let mut buf = [0u8; FLOW_KEY_LEN];
        flow.write_to(&mut buf);
        self.hash_bytes(&buf)
    }

    /// Index into a table of `size` slots.
    pub fn index(&self, flow: &FlowKey, size: usize) -> usize {
        if size == 0 {
            return 0;
        }
        self.hash_flow(flow) as usize % size
    }

    /// Output width in bits.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// Charge hash-bit usage to the ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        ledger.charge(module, ResourceKind::HashBits, u64::from(self.output_bits));
    }

    /// Unit name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(sport: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            sport,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    #[test]
    fn deterministic() {
        let h = HashUnit::new("h", 0xabc, 32);
        assert_eq!(h.hash_flow(&flow(1)), h.hash_flow(&flow(1)));
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashUnit::new("a", 1, 32);
        let b = HashUnit::new("b", 2, 32);
        assert_ne!(a.hash_flow(&flow(1)), b.hash_flow(&flow(1)));
    }

    #[test]
    fn output_masking() {
        let h = HashUnit::new("h", 7, 10);
        for sport in 0..200 {
            assert!(h.hash_flow(&flow(sport)) < 1024);
        }
    }

    #[test]
    fn index_bounds() {
        let h = HashUnit::new("h", 7, 32);
        for sport in 0..100 {
            assert!(h.index(&flow(sport), 37) < 37);
        }
        assert_eq!(h.index(&flow(0), 0), 0);
    }

    #[test]
    fn spreads_across_slots() {
        // 1000 flows into 128 slots should touch most slots.
        let h = HashUnit::new("h", 9, 32);
        let mut hit = [false; 128];
        for sport in 0..1000 {
            hit[h.index(&flow(sport), 128)] = true;
        }
        let used = hit.iter().filter(|&&b| b).count();
        assert!(used > 100, "only {used}/128 slots used — bad dispersion");
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let _ = HashUnit::new("bad", 0, 0);
    }
}
