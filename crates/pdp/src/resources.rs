//! PDP resource accounting — regenerates the paper's Figure 7.
//!
//! Every emulated primitive (table, register array, hash unit, action)
//! charges its usage here under a module label, so the bench harness can
//! print both the overall resource picture (Fig. 7a) and the per-NetSeer-
//! module breakdown (Fig. 7b).

use std::collections::BTreeMap;

/// Resource classes of a Tofino-like ASIC (the y-axis of Figure 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// Exact-match crossbar input bits.
    ExactXbar,
    /// Ternary crossbar input bits.
    TernaryXbar,
    /// Hash generator output bits.
    HashBits,
    /// SRAM storage bits.
    SramBits,
    /// TCAM storage bits.
    TcamBits,
    /// Very-long-instruction-word action slots.
    VliwActions,
    /// Stateful ALU instances.
    StatefulAlu,
    /// Packet-header-vector bits.
    PhvBits,
}

/// All resource kinds, for iteration.
pub const ALL_RESOURCE_KINDS: [ResourceKind; 8] = [
    ResourceKind::ExactXbar,
    ResourceKind::TernaryXbar,
    ResourceKind::HashBits,
    ResourceKind::SramBits,
    ResourceKind::TcamBits,
    ResourceKind::VliwActions,
    ResourceKind::StatefulAlu,
    ResourceKind::PhvBits,
];

impl ResourceKind {
    /// Human-readable name matching the paper's axis labels.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::ExactXbar => "Exact xbar",
            ResourceKind::TernaryXbar => "Ternary xbar",
            ResourceKind::HashBits => "Hash bits",
            ResourceKind::SramBits => "SRAM",
            ResourceKind::TcamBits => "TCAM",
            ResourceKind::VliwActions => "VLIW actions",
            ResourceKind::StatefulAlu => "Stateful ALU",
            ResourceKind::PhvBits => "PHV",
        }
    }
}

/// Capacity profile of a device.
#[derive(Debug, Clone, Copy)]
pub struct CapacityProfile {
    /// Device name.
    pub name: &'static str,
    /// Capacity per resource kind, indexed in `ALL_RESOURCE_KINDS` order.
    pub capacity: [u64; 8],
}

/// A Tofino-32D-like budget. Absolute numbers are approximations from
/// public Tofino literature (12 stages × per-stage resources); what matters
/// for Figure 7 is the *fraction* each module consumes, which our charges
/// are calibrated against.
pub const TOFINO_32D: CapacityProfile = CapacityProfile {
    name: "tofino-32d",
    capacity: [
        12 * 128 * 8,             // ExactXbar: 128 bytes/stage
        12 * 66 * 8,              // TernaryXbar: 66 bytes/stage
        12 * 5184,                // HashBits
        12 * 80 * 128 * 1024 * 8, // SramBits: 80 blocks x 128KB... (see note)
        12 * 24 * 44 * 512,       // TcamBits: 24 TCAM blocks of 44b x 512
        12 * 32,                  // VliwActions: 32 slots/stage
        12 * 4,                   // StatefulAlu: 4 meter/stateful ALUs per stage
        4096 * 8,                 // PhvBits: 4KB PHV
    ],
};

fn kind_index(kind: ResourceKind) -> usize {
    ALL_RESOURCE_KINDS.iter().position(|&k| k == kind).expect("kind in table")
}

/// Aggregates charges per (module, resource kind).
#[derive(Debug, Clone)]
pub struct ResourceLedger {
    profile: CapacityProfile,
    used: BTreeMap<(&'static str, ResourceKind), u64>,
}

impl ResourceLedger {
    /// Create a ledger against a device profile.
    pub fn new(profile: CapacityProfile) -> Self {
        ResourceLedger { profile, used: BTreeMap::new() }
    }

    /// Charge `amount` units of `kind` to `module`.
    pub fn charge(&mut self, module: &'static str, kind: ResourceKind, amount: u64) {
        *self.used.entry((module, kind)).or_insert(0) += amount;
    }

    /// Total usage of one resource kind across modules.
    pub fn used(&self, kind: ResourceKind) -> u64 {
        self.used.iter().filter(|((_, k), _)| *k == kind).map(|(_, v)| *v).sum()
    }

    /// Usage of one resource kind by one module.
    pub fn used_by(&self, module: &str, kind: ResourceKind) -> u64 {
        self.used.iter().filter(|((m, k), _)| *m == module && *k == kind).map(|(_, v)| *v).sum()
    }

    /// Fraction (0..=1+) of the device capacity consumed for `kind`.
    pub fn usage_fraction(&self, kind: ResourceKind) -> f64 {
        let cap = self.profile.capacity[kind_index(kind)];
        if cap == 0 {
            return 0.0;
        }
        self.used(kind) as f64 / cap as f64
    }

    /// Fraction of device capacity consumed by one module for `kind`.
    pub fn usage_fraction_by(&self, module: &str, kind: ResourceKind) -> f64 {
        let cap = self.profile.capacity[kind_index(kind)];
        if cap == 0 {
            return 0.0;
        }
        self.used_by(module, kind) as f64 / cap as f64
    }

    /// All module labels that charged anything.
    pub fn modules(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.used.keys().map(|(m, _)| *m).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The device profile.
    pub fn profile(&self) -> &CapacityProfile {
        &self.profile
    }

    /// True if any resource kind is over 100% of capacity — the emulator's
    /// equivalent of "does not fit on the chip".
    pub fn over_budget(&self) -> bool {
        ALL_RESOURCE_KINDS.iter().any(|&k| self.usage_fraction(k) > 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_module() {
        let mut l = ResourceLedger::new(TOFINO_32D);
        l.charge("dedup", ResourceKind::SramBits, 100);
        l.charge("dedup", ResourceKind::SramBits, 50);
        l.charge("batch", ResourceKind::SramBits, 25);
        assert_eq!(l.used(ResourceKind::SramBits), 175);
        assert_eq!(l.used_by("dedup", ResourceKind::SramBits), 150);
        assert_eq!(l.used_by("batch", ResourceKind::SramBits), 25);
        assert_eq!(l.used_by("nothing", ResourceKind::SramBits), 0);
    }

    #[test]
    fn fractions_respect_capacity() {
        let mut l = ResourceLedger::new(TOFINO_32D);
        let cap = TOFINO_32D.capacity[kind_index(ResourceKind::StatefulAlu)];
        l.charge("x", ResourceKind::StatefulAlu, cap / 2);
        assert!((l.usage_fraction(ResourceKind::StatefulAlu) - 0.5).abs() < 1e-9);
        assert!(!l.over_budget());
        l.charge("x", ResourceKind::StatefulAlu, cap);
        assert!(l.over_budget());
    }

    #[test]
    fn modules_listing() {
        let mut l = ResourceLedger::new(TOFINO_32D);
        l.charge("b", ResourceKind::SramBits, 1);
        l.charge("a", ResourceKind::TcamBits, 1);
        l.charge("a", ResourceKind::SramBits, 1);
        assert_eq!(l.modules(), vec!["a", "b"]);
    }

    #[test]
    fn labels_cover_all_kinds() {
        for k in ALL_RESOURCE_KINDS {
            assert!(!k.label().is_empty());
        }
    }
}
