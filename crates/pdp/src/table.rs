//! Match-action tables: exact match, longest-prefix match, and ternary
//! (ACL) tables with resource accounting.

use crate::resources::{ResourceKind, ResourceLedger};
use fet_packet::ipv4::Ipv4Addr;
use std::collections::HashMap;

/// Error returned when an exact table is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("table at capacity")
    }
}

impl std::error::Error for TableFull {}

/// An exact-match table mapping fixed keys to actions.
///
/// Hardware realizes these in SRAM with a hash scheme; the emulator uses a
/// `HashMap` but charges SRAM for `capacity` entries of the declared key and
/// action width, and refuses inserts beyond capacity — the control plane
/// would get the same error from the driver.
#[derive(Debug, Clone)]
pub struct ExactTable<K: Eq + std::hash::Hash + Clone, A: Clone> {
    name: &'static str,
    map: HashMap<K, A>,
    capacity: usize,
    key_bits: u32,
    action_bits: u32,
}

impl<K: Eq + std::hash::Hash + Clone, A: Clone> ExactTable<K, A> {
    /// Create a table with an entry budget.
    pub fn new(name: &'static str, capacity: usize, key_bits: u32, action_bits: u32) -> Self {
        ExactTable { name, map: HashMap::new(), capacity, key_bits, action_bits }
    }

    /// Insert an entry; `Err(TableFull)` when the table is full.
    pub fn insert(&mut self, key: K, action: A) -> Result<(), TableFull> {
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            return Err(TableFull);
        }
        self.map.insert(key, action);
        Ok(())
    }

    /// Look up an entry.
    pub fn lookup(&self, key: &K) -> Option<&A> {
        self.map.get(key)
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.map.remove(key)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Charge SRAM + exact crossbar to the ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        let bits = u64::from(self.key_bits + self.action_bits) * self.capacity as u64;
        ledger.charge(module, ResourceKind::SramBits, bits);
        ledger.charge(module, ResourceKind::ExactXbar, u64::from(self.key_bits));
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Longest-prefix-match routing table over IPv4 destinations.
#[derive(Debug, Clone, Default)]
pub struct LpmTable<A: Clone> {
    /// (prefix, prefix_len, action), kept sorted by descending prefix_len so
    /// the first match wins.
    entries: Vec<(u32, u8, A)>,
}

impl<A: Clone> LpmTable<A> {
    /// Empty table.
    pub fn new() -> Self {
        LpmTable { entries: Vec::new() }
    }

    /// Insert a route `addr/len -> action`. Replaces an identical prefix.
    pub fn insert(&mut self, addr: Ipv4Addr, len: u8, action: A) {
        assert!(len <= 32);
        let masked = mask(addr.as_u32(), len);
        if let Some(e) = self.entries.iter_mut().find(|(p, l, _)| *p == masked && *l == len) {
            e.2 = action;
            return;
        }
        self.entries.push((masked, len, action));
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.1));
    }

    /// Remove a route, returning its action.
    pub fn remove(&mut self, addr: Ipv4Addr, len: u8) -> Option<A> {
        let masked = mask(addr.as_u32(), len);
        let pos = self.entries.iter().position(|(p, l, _)| *p == masked && *l == len)?;
        Some(self.entries.remove(pos).2)
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&A> {
        let a = addr.as_u32();
        self.entries.iter().find(|(p, l, _)| mask(a, *l) == *p).map(|(_, _, act)| act)
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Charge TCAM usage (32-bit key + action) to the ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        ledger.charge(module, ResourceKind::TcamBits, 64 * self.entries.len() as u64);
        ledger.charge(module, ResourceKind::TernaryXbar, 32);
    }
}

fn mask(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - u32::from(len)))
    }
}

/// ACL verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclAction {
    /// Pass the packet on.
    Permit,
    /// Drop it; the rule id feeds NetSeer's per-ACL-rule aggregation.
    Deny,
}

/// One ternary ACL rule over the 5-tuple. `None` fields are wildcards.
#[derive(Debug, Clone)]
pub struct AclRule {
    /// Rule identifier used for drop aggregation (paper §3.4).
    pub rule_id: u32,
    /// Priority: lower value = higher priority.
    pub priority: u32,
    /// Source prefix (addr, len).
    pub src: Option<(Ipv4Addr, u8)>,
    /// Destination prefix (addr, len).
    pub dst: Option<(Ipv4Addr, u8)>,
    /// Exact source port.
    pub sport: Option<u16>,
    /// Exact destination port.
    pub dport: Option<u16>,
    /// Exact protocol number.
    pub proto: Option<u8>,
    /// Verdict.
    pub action: AclAction,
}

impl AclRule {
    /// A permit-everything rule.
    pub fn permit_all(rule_id: u32, priority: u32) -> Self {
        AclRule {
            rule_id,
            priority,
            src: None,
            dst: None,
            sport: None,
            dport: None,
            proto: None,
            action: AclAction::Permit,
        }
    }

    fn matches(&self, flow: &fet_packet::FlowKey) -> bool {
        let pfx = |want: &Option<(Ipv4Addr, u8)>, have: Ipv4Addr| match want {
            None => true,
            Some((a, l)) => mask(have.as_u32(), *l) == mask(a.as_u32(), *l),
        };
        pfx(&self.src, flow.src)
            && pfx(&self.dst, flow.dst)
            && self.sport.is_none_or(|p| p == flow.sport)
            && self.dport.is_none_or(|p| p == flow.dport)
            && self.proto.is_none_or(|p| p == flow.proto.number())
    }
}

/// Priority-ordered ternary ACL table.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    rules: Vec<AclRule>,
}

impl AclTable {
    /// Empty table.
    pub fn new() -> Self {
        AclTable { rules: Vec::new() }
    }

    /// Install a rule (stable sort by priority).
    pub fn install(&mut self, rule: AclRule) {
        self.rules.push(rule);
        self.rules.sort_by_key(|r| r.priority);
    }

    /// Remove a rule by id.
    pub fn remove(&mut self, rule_id: u32) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.rule_id != rule_id);
        self.rules.len() != before
    }

    /// Evaluate a flow; returns the matching rule's (verdict, rule_id).
    /// No match ⇒ implicit permit with rule id 0.
    pub fn evaluate(&self, flow: &fet_packet::FlowKey) -> (AclAction, u32) {
        for r in &self.rules {
            if r.matches(flow) {
                return (r.action, r.rule_id);
            }
        }
        (AclAction::Permit, 0)
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Charge TCAM usage (104-bit 5-tuple key) to the ledger.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        ledger.charge(module, ResourceKind::TcamBits, 104 * self.rules.len() as u64);
        ledger.charge(module, ResourceKind::TernaryXbar, 104);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::FlowKey;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::from_octets([a, b, c, d])
    }

    #[test]
    fn exact_table_capacity_enforced() {
        let mut t: ExactTable<u32, u32> = ExactTable::new("t", 2, 32, 8);
        t.insert(1, 10).unwrap();
        t.insert(2, 20).unwrap();
        assert!(t.insert(3, 30).is_err());
        // Replacing an existing key is fine at capacity.
        t.insert(1, 11).unwrap();
        assert_eq!(t.lookup(&1), Some(&11));
        assert_eq!(t.remove(&2), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t: LpmTable<&str> = LpmTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "coarse");
        t.insert(ip(10, 1, 0, 0), 16, "fine");
        t.insert(ip(0, 0, 0, 0), 0, "default");
        assert_eq!(t.lookup(ip(10, 1, 2, 3)), Some(&"fine"));
        assert_eq!(t.lookup(ip(10, 9, 2, 3)), Some(&"coarse"));
        assert_eq!(t.lookup(ip(192, 168, 0, 1)), Some(&"default"));
    }

    #[test]
    fn lpm_remove_creates_blackhole() {
        let mut t: LpmTable<&str> = LpmTable::new();
        t.insert(ip(10, 0, 0, 0), 8, "r");
        assert_eq!(t.remove(ip(10, 0, 0, 0), 8), Some("r"));
        assert_eq!(t.lookup(ip(10, 1, 2, 3)), None);
    }

    #[test]
    fn lpm_replace_same_prefix() {
        let mut t: LpmTable<u8> = LpmTable::new();
        t.insert(ip(10, 0, 0, 0), 8, 1);
        t.insert(ip(10, 0, 0, 0), 8, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(10, 5, 5, 5)), Some(&2));
    }

    #[test]
    fn acl_priority_and_wildcards() {
        let mut acl = AclTable::new();
        acl.install(AclRule {
            rule_id: 7,
            priority: 10,
            src: Some((ip(10, 0, 0, 0), 24)),
            dst: None,
            sport: None,
            dport: Some(22),
            proto: None,
            action: AclAction::Deny,
        });
        acl.install(AclRule::permit_all(1, 100));

        let ssh = FlowKey::tcp(ip(10, 0, 0, 5), 999, ip(10, 9, 9, 9), 22);
        let web = FlowKey::tcp(ip(10, 0, 0, 5), 999, ip(10, 9, 9, 9), 80);
        let other = FlowKey::tcp(ip(10, 0, 1, 5), 999, ip(10, 9, 9, 9), 22);
        assert_eq!(acl.evaluate(&ssh), (AclAction::Deny, 7));
        assert_eq!(acl.evaluate(&web), (AclAction::Permit, 1));
        assert_eq!(acl.evaluate(&other), (AclAction::Permit, 1));
    }

    #[test]
    fn acl_empty_permits() {
        let acl = AclTable::new();
        let f = FlowKey::tcp(ip(1, 1, 1, 1), 1, ip(2, 2, 2, 2), 2);
        assert_eq!(acl.evaluate(&f), (AclAction::Permit, 0));
    }

    #[test]
    fn acl_remove() {
        let mut acl = AclTable::new();
        acl.install(AclRule::permit_all(5, 1));
        assert!(acl.remove(5));
        assert!(!acl.remove(5));
        assert!(acl.is_empty());
    }

    #[test]
    fn mask_zero_len() {
        assert_eq!(mask(0xdead_beef, 0), 0);
        assert_eq!(mask(0xdead_beef, 32), 0xdead_beef);
        assert_eq!(mask(0xdead_beef, 16), 0xdead_0000);
    }
}
