//! Packet header vector and intrinsic metadata.
//!
//! In a real programmable ASIC the parser produces a PHV that travels with
//! the packet through every stage; intrinsic metadata (ports, queue,
//! timestamps) is added by fixed hardware. The simulator attaches a
//! [`PacketMeta`] to every in-flight packet to model the same information.

use fet_packet::FlowKey;

/// Where inside a device a packet currently is (used for drop attribution
/// and for the ground-truth tracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelinePoint {
    /// Ingress MAC / parser.
    IngressMac,
    /// Ingress match-action pipeline.
    IngressPipe,
    /// Memory management unit / traffic manager.
    Mmu,
    /// Egress match-action pipeline.
    EgressPipe,
    /// Egress MAC (serializer).
    EgressMac,
    /// On the wire between devices.
    Wire,
}

/// Intrinsic + user metadata accompanying a packet through one device.
#[derive(Debug, Clone)]
pub struct PacketMeta {
    /// Port the packet arrived on.
    pub ingress_port: u8,
    /// Resolved egress port (`None` until routing runs; stays `None` on a
    /// pipeline drop before route resolution).
    pub egress_port: Option<u8>,
    /// Egress priority queue (from DSCP).
    pub queue: u8,
    /// Ingress timestamp, ns (set by the ingress MAC).
    pub ingress_ts_ns: u64,
    /// Egress timestamp, ns (set at egress dequeue; 0 until then).
    pub egress_ts_ns: u64,
    /// Cached flow key extracted by the parser (None for non-IP).
    pub flow: Option<FlowKey>,
    /// Frame length in bytes (with any NetSeer tag).
    pub frame_len: usize,
    /// True when the frame failed FCS at the ingress MAC (corrupted on the
    /// wire); such frames are dropped at MAC as the paper notes.
    pub fcs_error: bool,
    /// How many times the packet recirculated (CEBPs only).
    pub recirculations: u32,
}

impl PacketMeta {
    /// Metadata for a freshly received packet.
    pub fn arriving(ingress_port: u8, now_ns: u64, frame_len: usize) -> Self {
        PacketMeta {
            ingress_port,
            egress_port: None,
            queue: 0,
            ingress_ts_ns: now_ns,
            egress_ts_ns: 0,
            flow: None,
            frame_len,
            fcs_error: false,
            recirculations: 0,
        }
    }

    /// Queuing delay = egress − ingress timestamp (the congestion signal the
    /// paper measures). Zero until the egress timestamp is set.
    pub fn queuing_delay_ns(&self) -> u64 {
        self.egress_ts_ns.saturating_sub(self.ingress_ts_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arriving_defaults() {
        let m = PacketMeta::arriving(3, 1_000, 64);
        assert_eq!(m.ingress_port, 3);
        assert_eq!(m.egress_port, None);
        assert_eq!(m.ingress_ts_ns, 1_000);
        assert_eq!(m.frame_len, 64);
        assert!(!m.fcs_error);
        assert_eq!(m.queuing_delay_ns(), 0);
    }

    #[test]
    fn queuing_delay_is_difference() {
        let mut m = PacketMeta::arriving(0, 5_000, 64);
        m.egress_ts_ns = 12_500;
        assert_eq!(m.queuing_delay_ns(), 7_500);
    }

    #[test]
    fn queuing_delay_saturates() {
        let mut m = PacketMeta::arriving(0, 5_000, 64);
        m.egress_ts_ns = 4_000; // clock skew should not underflow
        assert_eq!(m.queuing_delay_ns(), 0);
    }
}
