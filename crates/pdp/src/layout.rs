//! Pipeline stage placement: match-action programs must fit a fixed
//! number of physical stages, and any stateful structure wider than one
//! stage's register budget must be sliced across consecutive stages —
//! the constraint behind the paper's observation that "one event cannot
//! be entirely accommodated in one stage, let alone 50" (§3.5), which
//! forced the circulating-CEBP design.

use crate::register::MAX_CELL_BITS_PER_STAGE;

/// A named structure to place, with its width requirement.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// Structure name (diagnostics).
    pub name: &'static str,
    /// Logical cell width, bits.
    pub cell_bits: u32,
    /// Stateful ALUs the structure needs per occupied stage.
    pub alus_per_stage: u32,
}

impl Placement {
    /// Stages this structure spans.
    pub fn stages(&self) -> u32 {
        self.cell_bits.div_ceil(MAX_CELL_BITS_PER_STAGE).max(1)
    }
}

/// A physical pipeline profile.
#[derive(Debug, Clone, Copy)]
pub struct PipelineProfile {
    /// Physical match-action stages (Tofino-class: 12).
    pub stages: u32,
    /// Stateful ALUs available per stage.
    pub alus_per_stage: u32,
}

/// The Tofino-like profile matching [`crate::resources::TOFINO_32D`].
pub const TOFINO_PIPELINE: PipelineProfile = PipelineProfile { stages: 12, alus_per_stage: 4 };

/// Result of placing structures into stages.
#[derive(Debug, Clone)]
pub struct LayoutResult {
    /// (structure name, first stage index, stages occupied).
    pub placed: Vec<(&'static str, u32, u32)>,
    /// ALUs used per stage after placement.
    pub alu_usage: Vec<u32>,
}

impl LayoutResult {
    /// Highest stage index used + 1 (i.e. pipeline depth consumed).
    pub fn depth(&self) -> u32 {
        self.placed.iter().map(|(_, first, n)| first + n).max().unwrap_or(0)
    }
}

/// Error when a program cannot fit the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoesNotFit {
    /// The structure that failed to place.
    pub name: &'static str,
}

impl std::fmt::Display for DoesNotFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "structure '{}' does not fit the pipeline", self.name)
    }
}

impl std::error::Error for DoesNotFit {}

/// First-fit placement of structures into consecutive stages, respecting
/// per-stage ALU budgets. Structures are placed in the given order (the
/// program's logical order — a dependency chain: each structure starts no
/// earlier than where the previous one started).
pub fn place(
    profile: PipelineProfile,
    structures: &[Placement],
) -> Result<LayoutResult, DoesNotFit> {
    let mut alu_usage = vec![0u32; profile.stages as usize];
    let mut placed = Vec::with_capacity(structures.len());
    let mut min_start = 0u32;
    for s in structures {
        let span = s.stages();
        let mut start = min_start;
        loop {
            if start + span > profile.stages {
                return Err(DoesNotFit { name: s.name });
            }
            let fits = (start..start + span)
                .all(|i| alu_usage[i as usize] + s.alus_per_stage <= profile.alus_per_stage);
            if fits {
                break;
            }
            start += 1;
        }
        for i in start..start + span {
            alu_usage[i as usize] += s.alus_per_stage;
        }
        placed.push((s.name, start, span));
        min_start = start; // dependencies flow forward
    }
    Ok(LayoutResult { placed, alu_usage })
}

/// The NetSeer program's stateful structures, in pipeline order, for a
/// fit check against a profile (the Figure 7 companion).
pub fn netseer_structures() -> Vec<Placement> {
    vec![
        // Ingress: gap detector (expected seq per port) + pause bits.
        Placement { name: "gap-expected-seq", cell_bits: 32, alus_per_stage: 1 },
        Placement { name: "pause-status", cell_bits: 1, alus_per_stage: 1 },
        // Path-change flow table: 121-bit entries => 1 stage at 128b.
        Placement { name: "path-table", cell_bits: 121, alus_per_stage: 1 },
        // Six dedup group caches: 176-bit entries => 2 stages each.
        Placement { name: "dedup-congestion", cell_bits: 176, alus_per_stage: 1 },
        Placement { name: "dedup-pipedrop", cell_bits: 176, alus_per_stage: 1 },
        Placement { name: "dedup-mmudrop", cell_bits: 176, alus_per_stage: 1 },
        Placement { name: "dedup-iswdrop", cell_bits: 176, alus_per_stage: 1 },
        Placement { name: "dedup-path", cell_bits: 176, alus_per_stage: 1 },
        Placement { name: "dedup-pause", cell_bits: 176, alus_per_stage: 1 },
        // Egress: seq counter + ring buffer (137-bit slots => 2 stages).
        Placement { name: "seq-counter", cell_bits: 32, alus_per_stage: 1 },
        Placement { name: "isw-ring", cell_bits: 137, alus_per_stage: 1 },
        // Event stack: six slices, each holding one 24 B (192-bit) event —
        // a single slice already exceeds one stage's register width, which
        // is exactly the §3.5 constraint that motivates CEBPs.
        Placement { name: "stack-slice-0", cell_bits: 192, alus_per_stage: 1 },
        Placement { name: "stack-slice-1", cell_bits: 192, alus_per_stage: 1 },
        Placement { name: "stack-slice-2", cell_bits: 192, alus_per_stage: 1 },
        Placement { name: "stack-slice-3", cell_bits: 192, alus_per_stage: 1 },
        Placement { name: "stack-slice-4", cell_bits: 192, alus_per_stage: 1 },
        Placement { name: "stack-slice-5", cell_bits: 192, alus_per_stage: 1 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_structures_pack_together() {
        let r = place(
            TOFINO_PIPELINE,
            &[
                Placement { name: "a", cell_bits: 32, alus_per_stage: 1 },
                Placement { name: "b", cell_bits: 64, alus_per_stage: 1 },
                Placement { name: "c", cell_bits: 128, alus_per_stage: 1 },
            ],
        )
        .unwrap();
        // All fit in stage 0 (4 ALUs available).
        assert!(r.placed.iter().all(|&(_, first, n)| first == 0 && n == 1));
        assert_eq!(r.alu_usage[0], 3);
        assert_eq!(r.depth(), 1);
    }

    #[test]
    fn wide_structure_spans_stages() {
        let r = place(
            TOFINO_PIPELINE,
            &[Placement { name: "wide", cell_bits: 300, alus_per_stage: 1 }],
        )
        .unwrap();
        assert_eq!(r.placed[0], ("wide", 0, 3));
        assert_eq!(r.depth(), 3);
    }

    #[test]
    fn alu_exhaustion_pushes_to_later_stages() {
        let structures: Vec<Placement> =
            (0..6).map(|_| Placement { name: "x", cell_bits: 32, alus_per_stage: 4 }).collect();
        let r = place(TOFINO_PIPELINE, &structures).unwrap();
        // Each takes a whole stage's ALUs: six consecutive stages.
        let firsts: Vec<u32> = r.placed.iter().map(|&(_, f, _)| f).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_program_rejected() {
        let structures: Vec<Placement> =
            (0..13).map(|_| Placement { name: "hog", cell_bits: 32, alus_per_stage: 4 }).collect();
        assert_eq!(place(TOFINO_PIPELINE, &structures).unwrap_err(), DoesNotFit { name: "hog" });
    }

    #[test]
    fn a_50_event_register_would_not_fit_one_stage() {
        // The §3.5 motivation: 50 events x 24B = 9600 bits needs 75 stages
        // as a single register — impossible; hence CEBPs.
        let naive = Placement { name: "batch-50", cell_bits: 50 * 24 * 8, alus_per_stage: 1 };
        assert_eq!(naive.stages(), 75);
        assert!(place(TOFINO_PIPELINE, &[naive]).is_err());
    }

    #[test]
    fn netseer_program_fits_tofino() {
        let r = place(TOFINO_PIPELINE, &netseer_structures()).unwrap();
        assert!(
            r.depth() <= TOFINO_PIPELINE.stages,
            "NetSeer must fit 12 stages, used {}",
            r.depth()
        );
        // Every stack slice needs two stages (192 > 128 bits) — the very
        // width limit that §3.5 cites.
        for (name, _, span) in r.placed.iter().filter(|(n, _, _)| n.starts_with("stack-")) {
            assert_eq!(*span, 2, "{name}");
        }
    }

    #[test]
    fn dependencies_flow_forward() {
        let r = place(
            TOFINO_PIPELINE,
            &[
                Placement { name: "first", cell_bits: 256, alus_per_stage: 4 },
                Placement { name: "second", cell_bits: 32, alus_per_stage: 1 },
            ],
        )
        .unwrap();
        let f = r.placed[0];
        let s = r.placed[1];
        assert!(s.1 >= f.1, "later structures never placed before earlier ones");
    }
}
