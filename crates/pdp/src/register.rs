//! Stateful register arrays — the emulated stateful ALU memories.
//!
//! Tofino-class ASICs expose per-stage register arrays: each packet may
//! perform at most one read-modify-write on one index of one array per
//! stage, and a cell is at most two 32/64-bit words wide. Wider state (like
//! NetSeer's 17-byte ring-buffer slots of 13 B flow + 4 B packet ID) must be
//! **sliced across stages**. [`RegisterArray`] models a single array and
//! reports the stage count a given cell width implies, so the resource
//! ledger charges the honest cost.

use crate::resources::{ResourceKind, ResourceLedger};

/// Maximum register cell width a single stage can hold (two 64-bit words,
/// the dual-width stateful ALU configuration).
pub const MAX_CELL_BITS_PER_STAGE: u32 = 128;

/// A stateful register array of `N`-byte cells.
///
/// The emulator stores cells as plain Rust values but *accounts* for them as
/// hardware would: SRAM bits, one stateful ALU per touched stage, and
/// `stages_spanned()` pipeline stages.
#[derive(Debug, Clone)]
pub struct RegisterArray<V: Copy + Default> {
    name: &'static str,
    cells: Vec<V>,
    cell_bits: u32,
    /// Total read-modify-write operations performed (for ALU pressure
    /// statistics).
    rmw_ops: u64,
}

impl<V: Copy + Default> RegisterArray<V> {
    /// Allocate an array of `size` cells of `cell_bits` logical width.
    pub fn new(name: &'static str, size: usize, cell_bits: u32) -> Self {
        RegisterArray { name, cells: vec![V::default(); size], cell_bits, rmw_ops: 0 }
    }

    /// Array length.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Logical cell width in bits.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// How many pipeline stages this array occupies: a cell wider than the
    /// per-stage limit is sliced across consecutive stages.
    pub fn stages_spanned(&self) -> u32 {
        self.cell_bits.div_ceil(MAX_CELL_BITS_PER_STAGE).max(1)
    }

    /// Read a cell (no ALU charge; reads ride the RMW). Empty arrays return
    /// the default value.
    pub fn read(&self, index: usize) -> V {
        if self.cells.is_empty() {
            return V::default();
        }
        self.cells[index % self.cells.len()]
    }

    /// The single per-packet read-modify-write: applies `f` to the cell and
    /// returns the *previous* value, mirroring the ALU's "output old value"
    /// mode that NetSeer's eviction logic relies on. A no-op on empty arrays.
    pub fn read_modify_write(&mut self, index: usize, f: impl FnOnce(V) -> V) -> V {
        if self.cells.is_empty() {
            return V::default();
        }
        let len = self.cells.len();
        let slot = &mut self.cells[index % len];
        let old = *slot;
        *slot = f(old);
        self.rmw_ops += 1;
        old
    }

    /// Overwrite a cell unconditionally (control-plane style write).
    pub fn write(&mut self, index: usize, v: V) {
        if self.cells.is_empty() {
            return;
        }
        let len = self.cells.len();
        self.cells[index % len] = v;
    }

    /// Reset every cell to default (control-plane table clear).
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            *c = V::default();
        }
    }

    /// Total RMW operations performed so far.
    pub fn rmw_ops(&self) -> u64 {
        self.rmw_ops
    }

    /// SRAM bits this array occupies.
    pub fn sram_bits(&self) -> u64 {
        u64::from(self.cell_bits) * self.cells.len() as u64
    }

    /// Charge this array to a resource ledger under `module`.
    pub fn account(&self, ledger: &mut ResourceLedger, module: &'static str) {
        ledger.charge(module, ResourceKind::SramBits, self.sram_bits());
        ledger.charge(module, ResourceKind::StatefulAlu, u64::from(self.stages_spanned()));
    }

    /// Array name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::TOFINO_32D;

    #[test]
    fn rmw_returns_old_value() {
        let mut r: RegisterArray<u64> = RegisterArray::new("ctr", 16, 64);
        assert_eq!(r.read_modify_write(3, |v| v + 1), 0);
        assert_eq!(r.read_modify_write(3, |v| v + 1), 1);
        assert_eq!(r.read(3), 2);
        assert_eq!(r.rmw_ops(), 2);
    }

    #[test]
    fn index_wraps_like_hash_indexing() {
        let mut r: RegisterArray<u32> = RegisterArray::new("ctr", 8, 32);
        r.write(8, 7); // wraps to 0
        assert_eq!(r.read(0), 7);
        assert_eq!(r.read(16), 7);
    }

    #[test]
    fn stage_spanning() {
        let narrow: RegisterArray<u32> = RegisterArray::new("a", 1, 32);
        assert_eq!(narrow.stages_spanned(), 1);
        let exactly: RegisterArray<u128> = RegisterArray::new("b", 1, 128);
        assert_eq!(exactly.stages_spanned(), 1);
        // A 17-byte ring-buffer slot (136 bits) needs two stages.
        let ring: RegisterArray<[u8; 17]> = RegisterArray::new("ring", 1, 136);
        assert_eq!(ring.stages_spanned(), 2);
    }

    #[test]
    fn sram_accounting() {
        let r: RegisterArray<u64> = RegisterArray::new("ctr", 1024, 64);
        assert_eq!(r.sram_bits(), 65_536);
        let mut ledger = ResourceLedger::new(TOFINO_32D);
        r.account(&mut ledger, "dedup");
        assert_eq!(ledger.used(ResourceKind::SramBits), 65_536);
        assert_eq!(ledger.used(ResourceKind::StatefulAlu), 1);
    }

    #[test]
    fn clear_resets() {
        let mut r: RegisterArray<u32> = RegisterArray::new("x", 4, 32);
        r.write(1, 9);
        r.clear();
        assert_eq!(r.read(1), 0);
    }

    #[test]
    fn default_array_handles_zero_len() {
        let mut r: RegisterArray<u32> = RegisterArray::new("z", 0, 32);
        assert!(r.is_empty());
        // Must not panic even with no cells.
        let _ = r.read_modify_write(0, |v| v);
    }
}
