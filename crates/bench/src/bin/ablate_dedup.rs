//! Ablation: group caching (Algorithm 1) vs bloom filter vs no
//! deduplication — the design argument of §3.4. Measures, on identical
//! event-packet streams: report volume, false negatives (flows never
//! reported), and false positives (repeated initial reports).

use fet_netsim::rng::Pcg32;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::dedup::{BloomDedup, DedupOutcome, GroupCache};
use std::collections::{HashMap, HashSet};

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | n),
        (n % 40_000) as u16,
        Ipv4Addr::from_octets([10, 99, 0, 1]),
        80,
    )
}

/// A congestion-like stream: `flows` distinct flows, Zipf-ish packet
/// counts, interleaved.
fn stream(flows: u32, total: usize, seed: u64) -> Vec<FlowKey> {
    let mut rng = Pcg32::new(seed, 3);
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        // Favor low flow ids (heavy hitters) ~ 1/sqrt(u).
        let u = rng.next_f64().max(1e-9);
        let n = ((u * u * f64::from(flows)) as u32).min(flows - 1);
        out.push(flow(n));
    }
    out
}

fn main() {
    println!("=== Ablation: event deduplication strategies (SS3.4) ===");
    println!(
        "  {:<24} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "strategy", "packets", "reports", "FN", "FP", "suppression"
    );
    for (flows, total) in [(1_000u32, 200_000usize), (10_000, 400_000)] {
        let pkts = stream(flows, total, 42);
        let appearing: HashSet<FlowKey> = pkts.iter().copied().collect();

        // No dedup: every event packet is a report.
        println!(
            "  {:<24} {total:>10} {total:>10} {:>8} {:>8} {:>11.1}%  ({flows} flows)",
            "none", 0, 0, 0.0
        );

        // Group caching (4096 entries, C=128).
        let mut gc = GroupCache::new("ablate", 4096, 128, 7);
        let mut first_reports: HashMap<FlowKey, u32> = HashMap::new();
        for &p in &pkts {
            match gc.offer(p) {
                DedupOutcome::NewFlow => {
                    *first_reports.entry(p).or_insert(0) += 1;
                }
                DedupOutcome::Evicted { old_flow, .. } => {
                    // Old flow's final counter is a refresher, the new
                    // flow's is an initial report.
                    let _ = old_flow;
                    *first_reports.entry(p).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        let gc_fn = appearing.iter().filter(|f| !first_reports.contains_key(*f)).count();
        let gc_fp: u32 = first_reports.values().map(|&c| c.saturating_sub(1)).sum();
        println!(
            "  {:<24} {:>10} {:>10} {:>8} {:>8} {:>11.1}%",
            "group caching (paper)",
            gc.offered,
            gc.reports,
            gc_fn,
            gc_fp,
            gc.suppression_ratio() * 100.0
        );

        // Bloom filter (same memory budget as the group cache:
        // 4096 entries x 176 bits = 720,896 bits).
        let mut bloom = BloomDedup::new(4096 * 176, 7);
        let mut bloom_reported: HashSet<FlowKey> = HashSet::new();
        for &p in &pkts {
            if bloom.offer(p) {
                bloom_reported.insert(p);
            }
        }
        let bloom_fn = appearing.iter().filter(|f| !bloom_reported.contains(*f)).count();
        println!(
            "  {:<24} {:>10} {:>10} {:>8} {:>8} {:>11.1}%",
            "bloom filter",
            bloom.offered,
            bloom.reports,
            bloom_fn,
            0,
            (1.0 - bloom.reports as f64 / bloom.offered as f64) * 100.0
        );

        // A saturated bloom filter (1/100th memory) to show the failure
        // mode at scale.
        let mut tiny = BloomDedup::new(4096 * 176 / 100, 7);
        let mut tiny_reported: HashSet<FlowKey> = HashSet::new();
        for &p in &pkts {
            if tiny.offer(p) {
                tiny_reported.insert(p);
            }
        }
        let tiny_fn = appearing.iter().filter(|f| !tiny_reported.contains(*f)).count();
        println!(
            "  {:<24} {:>10} {:>10} {:>8} {:>8} {:>11.1}%",
            "bloom filter (1% mem)",
            tiny.offered,
            tiny.reports,
            tiny_fn,
            0,
            (1.0 - tiny.reports as f64 / tiny.offered as f64) * 100.0
        );
        println!();
    }
    println!("  FN = flows never reported (fatal for exoneration; group caching: always 0)");
    println!("  FP = repeated initial reports (group caching's cost; removed by the CPU)");
}
