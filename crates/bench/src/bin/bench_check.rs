//! CI bench-smoke gate: compare freshly produced `BENCH_<name>.json`
//! reports against a committed baseline and fail on a throughput
//! regression beyond the tolerance.
//!
//! ```text
//! bench_check <baseline_dir> [current_dir]   (current_dir defaults to .)
//! ```
//!
//! Only throughput-style metrics (keys containing `_per_s` or starting
//! with `sim_meps`) gate the run, and only in the slow direction — new
//! hardware being faster is never an error. Tolerance defaults to 20%
//! and can be overridden with `BENCH_TOLERANCE` (e.g. `0.3`).
//!
//! The check is symmetric: a current `BENCH_*.json` with no matching
//! baseline fails loudly too, so a newly added bench cannot ship
//! unguarded — commit its baseline alongside the bench.

use fet_bench::BenchReport;
use std::path::Path;
use std::process::ExitCode;

fn is_throughput(key: &str) -> bool {
    key.contains("_per_s")
        || key == "events_per_s"
        || key == "pkts_per_s"
        || key.starts_with("sim_meps")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(baseline_dir) = args.get(1) else {
        eprintln!("usage: bench_check <baseline_dir> [current_dir]");
        return ExitCode::FAILURE;
    };
    let current_dir = args.get(2).map(String::as_str).unwrap_or(".");
    let tolerance: f64 =
        std::env::var("BENCH_TOLERANCE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.20);

    let mut baselines: Vec<std::path::PathBuf> = std::fs::read_dir(baseline_dir)
        .expect("read baseline dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        eprintln!("bench_check: no BENCH_*.json baselines in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut failures = 0u32;
    let mut compared = 0u32;
    let mut skipped = 0u32;
    for base_path in &baselines {
        let Some(base) = BenchReport::read(base_path) else {
            eprintln!("bench_check: unparseable baseline {}", base_path.display());
            failures += 1;
            continue;
        };
        let cur_path = Path::new(current_dir).join(base_path.file_name().unwrap());
        let Some(cur) = BenchReport::read(&cur_path) else {
            eprintln!("bench_check: missing current report {}", cur_path.display());
            failures += 1;
            continue;
        };
        // Wall-clock throughput only compares like-for-like hardware:
        // when the baseline was measured on a different core count, the
        // gate is skipped LOUDLY (counted and summarized below) rather
        // than producing a meaningless pass/fail.
        if let (Some(b), Some(c)) = (base.get("cores"), cur.get("cores")) {
            if b != c {
                eprintln!(
                    "bench_check: SKIP {}: baseline measured on {b:.0} core(s) but this host \
                     has {c:.0} — throughput not comparable, re-baseline on matching hardware",
                    base.name
                );
                skipped += 1;
                continue;
            }
        } else {
            eprintln!(
                "bench_check: WARN {}: report lacks a `cores` metric; comparing throughput \
                 without verifying the hardware matches",
                base.name
            );
        }
        for (key, want) in base.metrics.iter().filter(|(k, _)| is_throughput(k)) {
            let Some(got) = cur.get(key) else {
                eprintln!("bench_check: {}: metric {key} missing from current run", base.name);
                failures += 1;
                continue;
            };
            compared += 1;
            let floor = want * (1.0 - tolerance);
            let delta = 100.0 * (got - want) / want.max(f64::MIN_POSITIVE);
            if got < floor {
                eprintln!(
                    "bench_check: REGRESSION {}::{key}: {got:.0} vs baseline {want:.0} ({delta:+.1}%, tolerance -{:.0}%)",
                    base.name,
                    tolerance * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "bench_check: ok {}::{key}: {got:.0} vs baseline {want:.0} ({delta:+.1}%)",
                    base.name
                );
            }
        }
    }

    // Reverse check: every current report must have a committed baseline,
    // otherwise a newly added bench silently runs ungated.
    let baseline_names: Vec<&std::ffi::OsStr> =
        baselines.iter().filter_map(|p| p.file_name()).collect();
    let mut currents: Vec<std::path::PathBuf> = std::fs::read_dir(current_dir)
        .expect("read current dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    currents.sort();
    for cur_path in &currents {
        let name = cur_path.file_name().unwrap();
        if !baseline_names.contains(&name) {
            eprintln!(
                "bench_check: NO BASELINE for {} — commit its BENCH_*.json baseline \
                 so the new bench is gated",
                cur_path.display()
            );
            failures += 1;
        }
    }

    println!(
        "bench_check: {compared} throughput metrics compared across {} reports, \
         {skipped} skipped (cores mismatch), {failures} failure(s)",
        baselines.len()
    );
    if skipped > 0 && compared == 0 {
        eprintln!(
            "bench_check: every report was skipped for a cores mismatch — nothing was \
             actually gated; re-baseline on this hardware"
        );
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
