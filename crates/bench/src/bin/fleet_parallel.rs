//! Fleet-simulation throughput: serial vs the deterministic parallel
//! executor at 1/2/4/8 shards, on a fleet large enough that sharding has
//! real work to spread (4 pods, 64 hosts, every device running NetSeer).
//!
//! Two things are measured and committed to `BENCH_fleet_parallel.json`:
//!
//! * **correctness** — every parallel run's observable fingerprint
//!   (delivered events, ledgers, ground truth, management bytes) must be
//!   bit-identical to the serial run, or the bench aborts;
//! * **throughput** — simulated packets per wall-second per shard count;
//!   `speedup_4x` (4 shards vs serial) is the acceptance headline.

use fet_netsim::host::FlowSpec;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MICROS, MILLIS};
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::FlowKey;
use netseer::deploy::{delivered_history, deploy, monitor_of, DeployOptions};
use netseer::{DeliveryLedger, NetSeerConfig, StoredEvent};
use std::time::Instant;

const HORIZON: u64 = 6 * MILLIS;

/// A fleet big enough to parallelize: 4 pods (36 switches, 64 hosts) with
/// long-haul links (5 µs propagation), giving the conservative executor a
/// wide cross-shard lookahead window per epoch.
fn params() -> FatTreeParams {
    FatTreeParams {
        pods: 4,
        cores: 4,
        hosts_per_edge: 8,
        prop_ns: 5 * MICROS,
        ..FatTreeParams::default()
    }
}

fn build() -> (Simulator, FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg: NetSeerConfig::default(), on_nics: true });
    // All-to-all-ish load: every host sends to its mirror host in the
    // opposite pod, plus lossy uplinks so events flow fleet-wide.
    let n = ft.hosts.len();
    for s in 0..n {
        let d = n - 1 - s;
        if s == d {
            continue;
        }
        let key = FlowKey::tcp(ft.host_ips[s], 2_000 + s as u16, ft.host_ips[d], 80);
        let h = ft.hosts[s];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 2_000_000,
            pkt_payload: 1000,
            rate_gbps: 5.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    for pod in 0..4 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.002;
        }
    }
    (sim, ft)
}

struct Outcome {
    delivered: Vec<StoredEvent>,
    ledger: DeliveryLedger,
    gt_len: usize,
    mgmt_bytes: u64,
    pkts: u64,
    secs: f64,
    sync: fet_netsim::SyncStats,
}

fn fleet_ledger(sim: &Simulator) -> DeliveryLedger {
    let mut total = DeliveryLedger::default();
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    for id in ids {
        let l = monitor_of(sim, id).ledger();
        l.assert_balanced();
        total.generated += l.generated;
        total.delivered += l.delivered;
        total.shed_stack += l.shed_stack;
        total.shed_pcie += l.shed_pcie;
        total.shed_cpu_overload += l.shed_cpu_overload;
        total.shed_false_positive += l.shed_false_positive;
        total.shed_transport += l.shed_transport;
        total.pending += l.pending;
        total.buffered += l.buffered;
        total.lost_to_crash += l.lost_to_crash;
        total.corrupted += l.corrupted;
    }
    total
}

fn run(shards: usize) -> Outcome {
    let (mut sim, _ft) = build();
    let start = Instant::now();
    if shards == 0 {
        sim.run_until(HORIZON);
    } else {
        sim.run_until_parallel(HORIZON, shards);
    }
    let secs = start.elapsed().as_secs_f64();
    let pkts: u64 =
        sim.switch_ids().into_iter().map(|id| monitor_of(&sim, id).stats.packets_seen).sum();
    Outcome {
        delivered: delivered_history(&sim),
        ledger: fleet_ledger(&sim),
        gt_len: sim.gt.events().len(),
        mgmt_bytes: sim.mgmt.total_bytes(),
        pkts,
        secs,
        sync: sim.sync_stats(),
    }
}

fn main() {
    println!("=== Fleet simulation: serial vs deterministic parallel execution ===");
    println!("  ({} switches+hosts, 6 ms horizon)", {
        let (sim, _) = build();
        sim.switch_ids().len() + sim.host_ids().len()
    });

    let serial = run(0);
    println!(
        "\n  {:>8} {:>12} {:>14} {:>10} {:>10}",
        "mode", "wall_s", "sim pkts/s", "delivered", "identical"
    );
    println!(
        "  {:>8} {:>12.3} {:>14.0} {:>10} {:>10}",
        "serial",
        serial.secs,
        serial.pkts as f64 / serial.secs,
        serial.delivered.len(),
        "-"
    );

    let cores = fet_bench::host_cores();
    let mut report = fet_bench::BenchReport::new("fleet_parallel");
    report
        .metric("cores", cores as f64)
        .metric("pkts_per_s_serial", serial.pkts as f64 / serial.secs)
        .metric("events_per_s", serial.delivered.len() as f64 / serial.secs)
        .metric("fleet_pkts", serial.pkts as f64);

    let mut speedup_4x = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let par = run(shards);
        let identical = par.delivered == serial.delivered
            && par.ledger == serial.ledger
            && par.gt_len == serial.gt_len
            && par.mgmt_bytes == serial.mgmt_bytes
            && par.pkts == serial.pkts;
        println!(
            "  {:>8} {:>12.3} {:>14.0} {:>10} {:>10}",
            format!("{shards}-shard"),
            par.secs,
            par.pkts as f64 / par.secs,
            par.delivered.len(),
            identical
        );
        assert!(identical, "parallel run at {shards} shards diverged from serial");
        let speedup = serial.secs / par.secs;
        report.metric(&format!("pkts_per_s_shards{shards}"), par.pkts as f64 / par.secs);
        report.metric(&format!("speedup_{shards}x"), speedup);
        if shards == 4 {
            speedup_4x = speedup;
            // Cross-shard synchronization counters from the 4-shard run:
            // not throughput-gated (no `_per_s`), but committed so the
            // batching win and ring pressure are visible over time.
            report
                .metric("sync_segments", par.sync.segments as f64)
                .metric("sync_epochs_executed", par.sync.epochs_executed as f64)
                .metric("sync_epochs_batched", par.sync.epochs_batched as f64)
                .metric("sync_ring_messages", par.sync.ring_messages as f64)
                .metric("sync_ring_stalls", par.sync.ring_stalls as f64);
        }
    }
    report.metric("pkts_per_s", serial.pkts as f64 / serial.secs);

    println!("\n  speedup at 4 shards: {speedup_4x:.2}x on {cores} core(s)");
    println!("  (wall speedup is bounded by the core count; the determinism");
    println!("   contract above is verified at every shard count regardless)");
    if cores >= 4 {
        assert!(
            speedup_4x > 2.0,
            "4-shard speedup {speedup_4x:.2}x is below the 2.0x acceptance bar on a \
             {cores}-core host"
        );
    } else {
        println!("  (skipping the >2.0x 4-shard assertion: host has only {cores} core(s))");
    }
    report.write().expect("write BENCH_fleet_parallel.json");
}
