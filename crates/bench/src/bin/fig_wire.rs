//! `fig_wire` — wire-ingestion throughput: untrusted NetFlow/IPFIX
//! datagrams decoded into the 24-byte FET event model and admitted
//! through the collector's normal path.
//!
//! Three legs:
//!
//! * **v5 decode** — fixed-layout NetFlow v5 datagrams (30 records each)
//!   through a [`WireSession`]: the cheapest honest exporter.
//! * **templated decode** — NetFlow v9 + IPFIX data sets against an
//!   installed template: the layout-indirected hot path.
//! * **hostile storm end-to-end** — the seeded hostile exporter (attacks
//!   plus byte corruption) through [`WireIngest`] + [`Collector`]: every
//!   datagram parsed, translated, admitted or quarantined, with the
//!   extended ledger identity asserted at the end.
//!
//! Acceptance bar (deliberately conservative — the decode paths run in
//! the millions of records per second): >= 100k records/s on both decode
//! legs and >= 10k datagrams/s through the storm.

use fet_netsim::rng::Pcg32;
use fet_netsim::{HostileExporter, HostileExporterConfig};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_wire::builder::{v5_datagram, IpfixBuilder, V9Builder};
use fet_wire::fields::base_flow_fields;
use fet_wire::{FlowSample, WireSession, WireSessionConfig};
use netseer::{Collector, CollectorConfig, CorruptionSpec, WireConfig, WireIngest};
use std::time::Instant;

/// v5 carries at most 30 records per datagram.
const V5_DGRAMS: usize = 20_000;
const V5_RECORDS: usize = 30;
const TEMPLATED_DGRAMS: usize = 20_000;
const TEMPLATED_RECORDS: usize = 20;
const STORM_TICKS: usize = 200_000;

fn sample(rng: &mut Pcg32) -> FlowSample {
    let f = rng.next_below(50_000);
    FlowSample {
        flow: FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0000 | (f & 0x00FF_FFFF)),
            (1024 + f % 50_000) as u16,
            Ipv4Addr::from_octets([10, 250, 0, 1]),
            443,
        ),
        in_port: rng.next_below(48) as u16,
        out_port: rng.next_below(48) as u16,
        packets: 1 + rng.next_below(1000) as u64,
        bytes: 64 + rng.next_below(100_000) as u64,
        tcp_flags: 0x10,
        forwarding_status: Some(0x40),
        first_ms: 0,
        last_ms: 0,
    }
}

fn samples(rng: &mut Pcg32, n: usize) -> Vec<FlowSample> {
    (0..n).map(|_| sample(rng)).collect()
}

fn main() {
    println!(
        "fig_wire: wire ingestion — {V5_DGRAMS} v5 + {TEMPLATED_DGRAMS} templated datagrams, \
         {STORM_TICKS} hostile ticks"
    );
    let mut report = fet_bench::BenchReport::new("fig_wire");
    report.metric("cores", fet_bench::host_cores() as f64);

    // (a) v5: the fixed-layout fast path.
    let mut rng = Pcg32::new(0xF16_31BE, 1);
    let v5: Vec<Vec<u8>> = (0..V5_DGRAMS)
        .map(|i| v5_datagram((i * V5_RECORDS) as u32, 0, 1, &samples(&mut rng, V5_RECORDS)))
        .collect();
    let mut session = WireSession::new(WireSessionConfig::default());
    let t0 = Instant::now();
    for (i, dg) in v5.iter().enumerate() {
        let r = session.ingest(dg, i as u64);
        debug_assert_eq!(r.decoded as usize, V5_RECORDS);
    }
    let v5_dt = t0.elapsed();
    assert_eq!(session.stats().decoded as usize, V5_DGRAMS * V5_RECORDS);
    assert_eq!(session.stats().rejected, 0);
    let v5_rps = (V5_DGRAMS * V5_RECORDS) as f64 / v5_dt.as_secs_f64();
    report.metric("v5_records_per_s", v5_rps);
    println!("\n(a) v5 decode: {:>12.0} records/s  ({:.1} ms)", v5_rps, v5_dt.as_secs_f64() * 1e3);

    // (b) templated: v9 and IPFIX data sets resolved through the cache.
    let mut rng = Pcg32::new(0xF16_31BE, 2);
    let mut templated: Vec<Vec<u8>> = Vec::with_capacity(TEMPLATED_DGRAMS + 2);
    templated.push(V9Builder::new(7, 0).template(256, &base_flow_fields()).build());
    templated.push(IpfixBuilder::new(9, 0).template(256, &base_flow_fields()).build());
    for i in 0..TEMPLATED_DGRAMS {
        let rows = samples(&mut rng, TEMPLATED_RECORDS);
        templated.push(if i % 2 == 0 {
            V9Builder::new(7, 1 + (i / 2) as u32).data_samples(256, &rows).build()
        } else {
            IpfixBuilder::new(9, (TEMPLATED_RECORDS * (i / 2)) as u32)
                .data_samples(256, &rows)
                .build()
        });
    }
    let mut session = WireSession::new(WireSessionConfig::default());
    let t0 = Instant::now();
    for (i, dg) in templated.iter().enumerate() {
        session.ingest(dg, i as u64);
    }
    let tpl_dt = t0.elapsed();
    assert_eq!(session.stats().decoded as usize, TEMPLATED_DGRAMS * TEMPLATED_RECORDS);
    assert_eq!(session.stats().rejected, 0);
    assert_eq!(session.stats().malformed, 0);
    let tpl_rps = (TEMPLATED_DGRAMS * TEMPLATED_RECORDS) as f64 / tpl_dt.as_secs_f64();
    report.metric("templated_records_per_s", tpl_rps);
    println!(
        "(b) v9/IPFIX decode: {:>6.0} records/s  ({:.1} ms)",
        tpl_rps,
        tpl_dt.as_secs_f64() * 1e3
    );

    // (c) hostile storm end-to-end: parse + translate + collector
    // admission, with attacks and byte corruption in the mix.
    let mut exporter = HostileExporter::new(HostileExporterConfig {
        seed: 0xF16_31BE,
        hostility: 0.3,
        corruption: CorruptionSpec {
            flip_per_byte: 1e-3,
            truncate_prob: 0.02,
            duplicate_prob: 0.01,
        },
        ..HostileExporterConfig::default()
    });
    let storm: Vec<Vec<u8>> = (0..STORM_TICKS).filter_map(|_| exporter.emit()).collect();
    let mut collector = Collector::with_config(CollectorConfig::default());
    let sub = collector.subscribe();
    let mut wire = WireIngest::new(WireConfig::default());
    let t0 = Instant::now();
    for (i, dg) in storm.iter().enumerate() {
        wire.ingest_datagram(&mut collector, dg, i as u64);
        if i % 1024 == 0 {
            collector.drain_ordered(sub);
        }
    }
    collector.drain_ordered(sub);
    let storm_dt = t0.elapsed();
    let storm_dps = storm.len() as f64 / storm_dt.as_secs_f64();
    report.metric("storm_datagrams_per_s", storm_dps);
    let ledger = wire.ledger(&collector);
    ledger.assert_balanced();
    assert!(ledger.malformed > 0 && wire.rejected_datagrams() > 0, "the storm must bite");
    println!(
        "(c) hostile storm: {:>9.0} datagrams/s  ({:.1} ms, {} delivered, {} malformed, \
         {} rejected)",
        storm_dps,
        storm_dt.as_secs_f64() * 1e3,
        ledger.delivered,
        ledger.malformed,
        wire.rejected_datagrams()
    );

    assert!(v5_rps >= 100_000.0, "v5 decode {v5_rps:.0} records/s below the 100k bar");
    assert!(tpl_rps >= 100_000.0, "templated decode {tpl_rps:.0} records/s below the 100k bar");
    assert!(storm_dps >= 10_000.0, "storm {storm_dps:.0} datagrams/s below the 10k bar");
    println!(
        "\nfig_wire acceptance: v5 {v5_rps:.0} rec/s, templated {tpl_rps:.0} rec/s, \
         storm {storm_dps:.0} dgram/s (bars: 100k / 100k / 10k)"
    );
    report.write().expect("write BENCH_fig_wire.json");
}
