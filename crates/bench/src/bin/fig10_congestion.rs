//! Figure 10 — congestion event coverage per workload × monitor
//! (log-scale in the paper; we print ratios).

use fet_bench::{filter_gt, packet_coverage_of, run_experiment, InjectSpec, MonitorKind};
use fet_netsim::time::MILLIS;
use fet_packet::event::EventType;
use fet_workloads::distributions::ALL_WORKLOADS;

fn main() {
    // Congestion arises naturally from the 70% load + incast; no other
    // faults needed.
    let inject = InjectSpec {
        interswitch_burst: 0,
        blackhole: false,
        reroute: false,
        incast: true,
        ..Default::default()
    };
    let monitors = [
        MonitorKind::NetSeer,
        MonitorKind::NetSight,
        MonitorKind::Sampling(10),
        MonitorKind::Sampling(100),
        MonitorKind::Sampling(1000),
        MonitorKind::Pingmesh,
    ];
    println!("=== Figure 10: congestion event coverage ratio ===");
    print!("  {:<10}", "workload");
    for m in monitors {
        print!(" {:>10}", m.label());
    }
    println!();
    for dist in ALL_WORKLOADS {
        print!("  {:<10}", dist.name);
        for kind in monitors {
            let mut out = run_experiment(dist, kind, &inject, 0xC0DE, 12 * MILLIS);
            let gt = filter_gt(&out.sim.gt, |e| e.ty == EventType::Congestion);
            let (c, t) = packet_coverage_of(&mut out.sim, kind, &gt, EventType::Congestion);
            let r = if t == 0 { 0.0 } else { c as f64 / t as f64 };
            print!(" {:>10}", format!("{:.2e}", r.max(1e-9)));
        }
        println!();
    }
    println!("\n  (paper: NetSeer/NetSight = 1.0; sampling ~1/k; Pingmesh ~2e-4)");
}
