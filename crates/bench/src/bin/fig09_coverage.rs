//! Figure 9 — event coverage ratios for injected path-change, MMU-drop,
//! inter-switch-drop, and pipeline-drop events, per monitor. Congestion is
//! Figure 10's subject.
//!
//! Path-change coverage is scored on mid-flight changes (events after the
//! reroute for flows that already existed), matching the paper's injected
//! events; crediting SYN mirroring for "new flow" path reports would
//! flatter EverFlow.

use fet_bench::{coverage_of, filter_gt, pct, run_experiment, InjectSpec, MonitorKind};
use fet_netsim::time::MILLIS;
use fet_packet::event::EventType;
use fet_workloads::distributions::DCTCP;

fn main() {
    let inject = InjectSpec::default();
    let types = [
        EventType::PathChange,
        EventType::MmuDrop,
        EventType::InterSwitchDrop,
        EventType::PipelineDrop,
    ];
    println!("=== Figure 9: event coverage ratios (DCTCP workload, injected faults) ===");
    print!("  {:<10}", "monitor");
    for ty in types {
        print!(" {:>18}", ty.to_string());
    }
    println!();

    for kind in MonitorKind::figure_set() {
        let mut out = run_experiment(&DCTCP, kind, &inject, 0xF19, 15 * MILLIS);
        print!("  {:<10}", kind.label());
        for ty in types {
            let gt = if ty == EventType::PathChange {
                // Mid-flight changes only.
                let fault = out.fault_at_ns;
                let pre_existing =
                    filter_gt(&out.sim.gt, |e| e.ty == EventType::PathChange && e.time_ns < fault);
                let old_flows = pre_existing.flow_events(EventType::PathChange);
                filter_gt(&out.sim.gt, |e| {
                    e.ty == EventType::PathChange
                        && e.time_ns >= fault
                        && e.flow.is_some_and(|f| old_flows.contains(&(e.device, f)))
                })
            } else {
                filter_gt(&out.sim.gt, |e| e.ty == ty)
            };
            let (c, t) = coverage_of(&mut out.sim, kind, &gt, ty);
            print!(" {:>18}", format!("{} ({c}/{t})", pct(c, t)));
        }
        println!();
    }
    println!("\n  (paper: only NetSeer and NetSight reach full coverage; EverFlow <1%,");
    println!("   sampling cannot capture drops, Pingmesh detects existence only)");
}
