//! `fig_export` — telemetry-egress cost: registry update throughput and
//! full-snapshot render latency at scrape-scale cardinality.
//!
//! Three legs:
//!
//! * **registry updates** — counter/gauge/histogram writes spread over
//!   10k live series across 20 families: the per-event bookkeeping cost
//!   a pull exporter adds to the hot path.
//! * **Prometheus render** — full text-exposition snapshots of those 10k
//!   series (HELP/TYPE, escaping, cumulative histogram ladders).
//! * **OTel render** — the same registry as OTLP-shaped JSON, validated
//!   once for structure.
//!
//! Acceptance bar (conservative; the registry is a BTreeMap, not a
//! lock-free hot path): >= 1M updates/s and >= 20 full renders/s of
//! either encoding at 10k series.

use fet_export::{
    parse_exposition, render_otel, render_prometheus, validate_json, MetricRegistry, RegistryConfig,
};
use fet_netsim::rng::Pcg32;
use std::time::Instant;

/// Live series target: 20 families x 500 series.
const FAMILIES: usize = 20;
const SERIES_PER_FAMILY: usize = 500;
const UPDATES: usize = 2_000_000;
const RENDERS: usize = 20;
const BOUNDS: [f64; 6] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

fn family_name(f: usize) -> String {
    match f % 3 {
        0 => format!("fet_bench_counter_{f}_total"),
        1 => format!("fet_bench_gauge_{f}"),
        _ => format!("fet_bench_hist_{f}_ns"),
    }
}

fn main() {
    println!(
        "fig_export: {FAMILIES} families x {SERIES_PER_FAMILY} series, \
         {UPDATES} updates, {RENDERS} full renders"
    );
    let mut report = fet_bench::BenchReport::new("fig_export");
    report.metric("cores", fet_bench::host_cores() as f64);

    let mut reg = MetricRegistry::new(RegistryConfig {
        max_families: FAMILIES + 8, // headroom for the meta families
        max_series_per_family: SERIES_PER_FAMILY,
    });
    let names: Vec<String> = (0..FAMILIES).map(family_name).collect();
    let labels: Vec<String> = (0..SERIES_PER_FAMILY).map(|s| format!("dev{s}")).collect();

    // (a) update throughput over a uniformly random series schedule.
    let mut rng = Pcg32::new(0xF16_E690, 1);
    let schedule: Vec<(u32, u32, u32)> = (0..UPDATES)
        .map(|_| {
            (
                rng.next_below(FAMILIES as u32),
                rng.next_below(SERIES_PER_FAMILY as u32),
                rng.next_below(1_000_000),
            )
        })
        .collect();
    let t0 = Instant::now();
    for &(f, s, v) in &schedule {
        let name = &names[f as usize];
        let lbls = [("device", labels[s as usize].as_str())];
        match f % 3 {
            0 => reg.counter_add(name, "Bench counter.", &lbls, u64::from(v)),
            1 => reg.gauge_set(name, "Bench gauge.", &lbls, f64::from(v)),
            _ => reg.histogram_observe(name, "Bench histogram.", &BOUNDS, &lbls, f64::from(v)),
        }
    }
    let upd_dt = t0.elapsed();
    assert_eq!(reg.series_count(), FAMILIES * SERIES_PER_FAMILY, "every series must be live");
    assert_eq!(reg.series_rejected, 0, "the schedule must stay inside the caps");
    let upd_per_s = UPDATES as f64 / upd_dt.as_secs_f64();
    report.metric("updates_per_s", upd_per_s);
    println!(
        "\n(a) registry updates: {:>12.0} updates/s  ({:.1} ms, {} live series)",
        upd_per_s,
        upd_dt.as_secs_f64() * 1e3,
        reg.series_count()
    );

    // (b) full Prometheus text renders.
    let t0 = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..RENDERS {
        bytes += render_prometheus(&reg).len();
    }
    let prom_dt = t0.elapsed();
    let prom_per_s = RENDERS as f64 / prom_dt.as_secs_f64();
    report.metric("prom_renders_per_s", prom_per_s);
    let text = render_prometheus(&reg);
    assert!(parse_exposition(&text).is_some(), "rendered text must parse");
    println!(
        "(b) Prometheus render: {:>10.1} renders/s  ({:.2} ms/render, {} KiB/render)",
        prom_per_s,
        prom_dt.as_secs_f64() * 1e3 / RENDERS as f64,
        bytes / RENDERS / 1024
    );

    // (c) full OTel JSON renders.
    let t0 = Instant::now();
    let mut bytes = 0usize;
    for i in 0..RENDERS {
        bytes += render_otel(&reg, 0, i as u64).len();
    }
    let otel_dt = t0.elapsed();
    let otel_per_s = RENDERS as f64 / otel_dt.as_secs_f64();
    report.metric("otel_renders_per_s", otel_per_s);
    assert!(validate_json(&render_otel(&reg, 0, 1)), "rendered JSON must validate");
    println!(
        "(c) OTel render:       {:>10.1} renders/s  ({:.2} ms/render, {} KiB/render)",
        otel_per_s,
        otel_dt.as_secs_f64() * 1e3 / RENDERS as f64,
        bytes / RENDERS / 1024
    );

    assert!(upd_per_s >= 1e6, "update throughput regressed below 1M/s: {upd_per_s:.0}");
    assert!(prom_per_s >= 20.0, "Prometheus render slower than 20/s: {prom_per_s:.1}");
    assert!(otel_per_s >= 20.0, "OTel render slower than 20/s: {otel_per_s:.1}");
    report.write().expect("write BENCH_fig_export.json");
    println!("\nfig_export: wrote BENCH_fig_export.json");
}
