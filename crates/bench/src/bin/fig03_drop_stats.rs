//! Figure 3 — packet drops that cause NPAs: overall drop-class fractions
//! and the breakdown of drop classes per failure-location-time bucket
//! (synthetic tickets matching the paper's marginals).

use fet_workloads::tickets::{synthesize_tickets, DropClass};

const CLASSES: [(DropClass, &str); 6] = [
    (DropClass::Pipeline, "Pipeline drop"),
    (DropClass::MmuCongestion, "MMU congestion"),
    (DropClass::InterSwitch, "Inter-switch drop"),
    (DropClass::InterCard, "Inter-card drop"),
    (DropClass::AsicFailure, "Switch ASIC failure"),
    (DropClass::MmuFailure, "MMU failure"),
];

fn main() {
    let tickets = synthesize_tickets(50_000, 0xD20);
    let drops: Vec<_> = tickets.iter().filter(|t| t.drop_class.is_some()).collect();

    println!("=== Figure 3 (left): drop classes among drop-caused NPAs ===");
    for (class, label) in CLASSES {
        let n = drops.iter().filter(|t| t.drop_class == Some(class)).count();
        println!("  {label:<22} {:5.1}%", 100.0 * n as f64 / drops.len() as f64);
    }
    let drop_caused = drops.len() as f64
        / tickets
            .iter()
            .filter(|t| t.source == fet_workloads::tickets::CauseSource::Network)
            .count() as f64;
    println!("  (drop-caused share of network NPAs: {:.0}%; paper: 86%)", drop_caused * 100.0);

    println!("\n=== Figure 3 (right): drop classes per location-time bucket ===");
    let buckets = [(31.0, 60.0), (61.0, 120.0), (121.0, 180.0), (181.0, f64::MAX)];
    println!("  bucket(min)    pipeline  mmu-cong  inter-sw  inter-card  asic  mmu-fail");
    for (lo, hi) in buckets {
        let in_b: Vec<_> =
            drops.iter().filter(|t| t.location_minutes >= lo && t.location_minutes <= hi).collect();
        if in_b.is_empty() {
            continue;
        }
        let f = |c: DropClass| {
            100.0 * in_b.iter().filter(|t| t.drop_class == Some(c)).count() as f64
                / in_b.len() as f64
        };
        let hi_s = if hi == f64::MAX { ">180".into() } else { format!("{lo:.0}-{hi:.0}") };
        println!(
            "  {:<12} {:7.1}% {:8.1}% {:8.1}% {:9.1}% {:6.1}% {:7.1}%",
            hi_s,
            f(DropClass::Pipeline),
            f(DropClass::MmuCongestion),
            f(DropClass::InterSwitch),
            f(DropClass::InterCard),
            f(DropClass::AsicFailure),
            f(DropClass::MmuFailure),
        );
    }
    // The paper's headline: inter-switch/card drops dominate the >180 min
    // bucket (~50%) and average ~161 min to locate.
    let isw: Vec<f64> = drops
        .iter()
        .filter(|t| {
            matches!(t.drop_class, Some(DropClass::InterSwitch) | Some(DropClass::InterCard))
        })
        .map(|t| t.location_minutes)
        .collect();
    println!(
        "\n  inter-switch/card mean location time: {:.0} min (paper: ~161 min)",
        isw.iter().sum::<f64>() / isw.len() as f64
    );
}
