//! Figure 16 — streaming analytics engine: ingest throughput vs shard
//! count on a synthetic skewed event stream, plus top-k accuracy (recall
//! of the true heaviest flows and the Space-Saving error-bound audit).
//!
//! Acceptance bar: >= 1M events/s ingest on 4 shards.

use fet_analytics::{AnalyticsConfig, AnalyticsEngine, LinkMap};
use fet_netsim::clockfault::{ClockSpec, DeviceClock};
use fet_netsim::rng::Pcg32;
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::StoredEvent;
use std::collections::HashMap;
use std::time::Instant;

const EVENTS: usize = 2_000_000;
const FLOWS: u32 = 50_000;
const HEAVY_FLOWS: u32 = 24;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | (n & 0x00FF_FFFF)),
        (n % 50_000) as u16,
        Ipv4Addr::from_octets([10, 250, 0, 1]),
        443,
    )
}

/// A skewed stream: ~30% of loss events hit one of `HEAVY_FLOWS` heavy
/// hitters, the rest spread over `FLOWS` light flows; 70% drops (with a
/// seeded drop code), 20% congestion, 10% path changes.
fn synth_stream(seed: u64) -> Vec<StoredEvent> {
    let mut rng = Pcg32::new(seed, 0xF16);
    let mut out = Vec::with_capacity(EVENTS);
    for i in 0..EVENTS {
        let heavy = rng.chance(0.3);
        let f =
            if heavy { rng.next_below(HEAVY_FLOWS) } else { HEAVY_FLOWS + rng.next_below(FLOWS) };
        let roll = rng.next_below(10);
        let (ty, detail) = if roll < 7 {
            let code = if rng.chance(0.5) { DropCode::TableMiss } else { DropCode::LinkLoss };
            (
                EventType::PipelineDrop,
                EventDetail::Drop {
                    ingress_port: (rng.next_below(8)) as u8,
                    egress_port: (rng.next_below(8)) as u8,
                    code,
                },
            )
        } else if roll < 9 {
            (
                EventType::Congestion,
                EventDetail::Congestion {
                    egress_port: (rng.next_below(8)) as u8,
                    queue: 0,
                    latency_us: 50 + (rng.next_below(500)) as u16,
                },
            )
        } else {
            (
                EventType::PathChange,
                EventDetail::PathChange {
                    ingress_port: (rng.next_below(8)) as u8,
                    egress_port: (rng.next_below(8)) as u8,
                },
            )
        };
        let device = rng.next_below(32);
        out.push(StoredEvent {
            time_ns: (i as u64) * 200, // 5M events/s of simulated time
            device,
            epoch: 0,
            seq: i as u64,
            record: EventRecord {
                ty,
                flow: flow(f),
                detail,
                counter: 1 + (rng.next_below(4)) as u16,
                hash: rng.next_u32(),
            },
        });
    }
    out
}

fn main() {
    let stream = synth_stream(0xF16_5EED);
    println!(
        "fig16: streaming analytics — {} events, {} distinct flows, {} heavy",
        EVENTS,
        FLOWS + HEAVY_FLOWS,
        HEAVY_FLOWS
    );

    // (a) ingest throughput vs shard count.
    println!("\n(a) ingest throughput (events/s) vs shards");
    println!("{:>8} {:>14} {:>12}", "shards", "events/s", "elapsed_ms");
    let mut meps_4 = 0.0;
    let mut report = fet_bench::BenchReport::new("fig16_analytics");
    report.metric("cores", fet_bench::host_cores() as f64);
    for shards in [1usize, 2, 4, 8] {
        let cfg = AnalyticsConfig { shards, ..AnalyticsConfig::default() };
        let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
        let t0 = Instant::now();
        engine.ingest_slice(&stream);
        let dt = t0.elapsed();
        let eps = EVENTS as f64 / dt.as_secs_f64();
        if shards == 4 {
            meps_4 = eps;
        }
        report.metric(&format!("events_per_s_shards{shards}"), eps);
        println!("{:>8} {:>14.0} {:>12.1}", shards, eps, dt.as_secs_f64() * 1e3);
        engine.ledger().assert_balanced();
        assert_eq!(engine.ledger().ingested, EVENTS as u64);
    }
    report.metric("events_per_s", meps_4);

    // (b) top-k accuracy on 4 shards: recall of the true top-8 and the
    // per-entry error-bound audit against exact per-flow weights.
    let cfg = AnalyticsConfig { shards: 4, ..AnalyticsConfig::default() };
    let mut engine = AnalyticsEngine::new(cfg, LinkMap::default());
    engine.ingest_slice(&stream);

    let mut exact: HashMap<FlowKey, u64> = HashMap::new();
    for e in &stream {
        if e.record.ty.is_drop() || e.record.ty == EventType::Congestion {
            *exact.entry(e.record.flow).or_default() += u64::from(e.record.counter.max(1));
        }
    }
    let mut truth: Vec<(FlowKey, u64)> = exact.iter().map(|(&f, &w)| (f, w)).collect();
    truth.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let reported = engine.top_flows(32);
    let top8: Vec<FlowKey> = truth.iter().take(8).map(|&(f, _)| f).collect();
    let hit = top8.iter().filter(|f| reported.iter().any(|e| e.flow == **f)).count();
    let recall = hit as f64 / top8.len() as f64;

    println!("\n(b) top-k accuracy (k=32 per shard, 4 shards)");
    println!("{:>6} {:>12} {:>12} {:>12} {:>8}", "rank", "estimate", "lower_bnd", "true", "ok");
    let mut bounds_ok = true;
    for (i, e) in reported.iter().take(8).enumerate() {
        let t = exact.get(&e.flow).copied().unwrap_or(0);
        let ok = e.guaranteed() <= t && t <= e.count;
        bounds_ok &= ok;
        println!("{:>6} {:>12} {:>12} {:>12} {:>8}", i + 1, e.count, e.guaranteed(), t, ok);
    }
    println!("recall of true top-8 in reported top-32: {recall:.2}");

    assert!(bounds_ok, "Space-Saving error bounds must hold on every reported entry");
    assert!(recall >= 0.95, "top-8 recall {recall} below the 0.95 bar");
    assert!(meps_4 >= 1_000_000.0, "4-shard ingest {meps_4:.0} events/s below the 1M events/s bar");
    println!("\nfig16 acceptance: 4-shard ingest {meps_4:.0} events/s (>= 1M), recall {recall:.2} (>= 0.95)");
    report.metric("top8_recall", recall);

    // (c) event-time watermark overhead: the same stream stamped through
    // seeded per-device skewed clocks, ingested via the watermark +
    // reorder-buffer path, must converge to the zero-skew aggregates and
    // keep >= 0.8x of the arrival-time ingest rate.
    // NTP-grade skew: ±200 µs offset plus 500 ppm drift (~200 µs over the
    // 400 ms horizon). Clock *steps* are a chaos-suite concern; here the
    // question is the steady-state cost of the watermark front end.
    let spec = ClockSpec { offset_ns: 200_000, drift_ppm: 500, ..ClockSpec::none() };
    let clocks: Vec<DeviceClock> =
        (0..32).map(|d| DeviceClock::new(&spec, 0xF16_5EED, d)).collect();
    let mut skewed = stream.clone();
    for e in &mut skewed {
        e.time_ns = clocks[e.device as usize].local_time(e.time_ns);
    }
    let horizon = EVENTS as u64 * 200;
    let bound = 2 * spec.max_abs_skew_ns(horizon) + 1_000;
    // Interleaved best-of-3 on both legs: the ratio, not the absolute
    // rate, is the acceptance bar, so measure the arrival-time reference
    // adjacent in time to the watermark leg.
    let mut eps_ref = 0.0f64;
    let mut eps_skewed = 0.0f64;
    let mut skew_engine = AnalyticsEngine::new(
        AnalyticsConfig {
            shards: 4,
            lateness_bound_ns: bound,
            reorder_cap: 8192,
            ..AnalyticsConfig::default()
        },
        LinkMap::default(),
    );
    for _ in 0..3 {
        let mut r = AnalyticsEngine::new(
            AnalyticsConfig { shards: 4, ..AnalyticsConfig::default() },
            LinkMap::default(),
        );
        let t0 = Instant::now();
        r.ingest_slice(&stream);
        eps_ref = eps_ref.max(EVENTS as f64 / t0.elapsed().as_secs_f64());
        skew_engine = AnalyticsEngine::new(
            AnalyticsConfig {
                shards: 4,
                lateness_bound_ns: bound,
                reorder_cap: 8192,
                ..AnalyticsConfig::default()
            },
            LinkMap::default(),
        );
        let t1 = Instant::now();
        skew_engine.ingest_slice(&skewed);
        skew_engine.flush();
        eps_skewed = eps_skewed.max(EVENTS as f64 / t1.elapsed().as_secs_f64());
    }
    let l = skew_engine.ledger();
    l.assert_balanced();
    assert_eq!(l.late_shed, 0, "the watermark bound must cover the injected skew");
    assert_eq!(l.pending_reorder, 0, "flush must drain every reorder buffer");
    assert_eq!(
        skew_engine.totals(),
        engine.totals(),
        "event-time aggregates must converge to the zero-skew reference"
    );
    let ratio = eps_skewed / eps_ref;
    println!("\n(c) event-time watermarks under clock skew (bound {bound} ns, cap 8192)");
    println!(
        "skewed ingest {eps_skewed:.0} events/s vs zero-skew {eps_ref:.0} ({ratio:.2}x, >= 0.8x bar)"
    );
    assert!(ratio >= 0.8, "watermark path {ratio:.2}x below the 0.8x overhead bar");
    report.metric("events_per_s_skewed", eps_skewed);
    report.metric("skew_overhead_ratio", ratio);

    report.write().expect("write BENCH_fig16_analytics.json");
}
