//! Ablation: loss-notification redundancy. §3.3 sends **three** copies of
//! each notification on a high-priority queue "to avoid this notification
//! packet from being dropped again on the link". This harness makes the
//! reverse direction of the faulty link lossy too and sweeps the copy
//! count: with one copy, a lost notification silently loses whole
//! drop-event batches; with three, detection survives heavy reverse loss.

use fet_netsim::host::FlowSpec;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MILLIS, SECONDS};
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer::NetSeerConfig;

/// One run: forward direction drops randomly; reverse direction (carrying
/// the notifications) drops with `reverse_loss`. Returns (covered, total)
/// inter-switch drop flow events.
fn run(copies: u8, reverse_loss: f64, seed: u64) -> (usize, usize) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams { seed, ..FatTreeParams::default() });
    install_ecmp_routes(&mut sim);
    let cfg = NetSeerConfig { notification_copies: copies, ..NetSeerConfig::default() };
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });

    // Spread flows so drops hit many distinct flows.
    for sport in 0..32u16 {
        let key = FlowKey::tcp(ft.host_ips[0], 20_000 + sport, ft.host_ips[7], 80);
        let h = ft.hosts[0];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 500_000,
            pkt_payload: 1000,
            rate_gbps: 0.7,
            start_ns: u64::from(sport) * 10_000,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    // Faulty uplink: 1% forward silent drop; the SAME link's reverse
    // direction (where notifications travel) drops at `reverse_loss`.
    let tor = ft.edges[0][0];
    for port in 0..2 {
        sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.01;
        let (agg, agg_port) = sim.peer_of(tor, port).unwrap();
        sim.link_direction_mut(agg, agg_port).unwrap().faults.drop_prob = reverse_loss;
    }
    sim.run_until(SECONDS + 100 * MILLIS);

    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    let covered = gt.iter().filter(|fe| seen.contains(fe)).count();
    (covered, gt.len())
}

fn main() {
    println!("=== Ablation: notification redundancy vs reverse-path loss ===");
    println!("  (forward direction: 1% silent drop; reverse carries notifications)");
    println!(
        "\n  {:>8} {:>14} {:>14} {:>14}",
        "copies", "rev loss 5%", "rev loss 20%", "rev loss 40%"
    );
    for copies in [1u8, 2, 3, 4] {
        print!("  {copies:>8}");
        for loss in [0.05, 0.20, 0.40] {
            let mut covered = 0;
            let mut total = 0;
            for seed in 0..3u64 {
                let (c, t) = run(copies, loss, 0xAB1E + seed);
                covered += c;
                total += t;
            }
            print!(" {:>13.1}%", 100.0 * covered as f64 / total.max(1) as f64);
        }
        println!();
    }
    println!("\n  (the paper's 3 copies hold coverage near 100% even when the reverse");
    println!("   path loses 40% of frames; a single copy degrades visibly)");
}
