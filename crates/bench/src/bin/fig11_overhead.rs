//! Figure 11 — overall monitoring bandwidth overhead per workload ×
//! monitor: management-plane bytes ÷ per-hop traffic bytes (log scale in
//! the paper).

use fet_bench::{overhead_of, run_experiment, InjectSpec, MonitorKind};
use fet_netsim::time::MILLIS;
use fet_workloads::distributions::ALL_WORKLOADS;

fn main() {
    let inject = InjectSpec::default();
    let monitors = [
        MonitorKind::NetSight,
        MonitorKind::EverFlow,
        MonitorKind::Sampling(10),
        MonitorKind::Sampling(100),
        MonitorKind::Sampling(1000),
        MonitorKind::NetSeer,
    ];
    println!("=== Figure 11: monitoring bandwidth overhead (fraction of traffic) ===");
    print!("  {:<10}", "workload");
    for m in monitors {
        print!(" {:>10}", m.label());
    }
    println!();
    for dist in ALL_WORKLOADS {
        print!("  {:<10}", dist.name);
        for kind in monitors {
            let out = run_experiment(dist, kind, &inject, 0x0EAD, 12 * MILLIS);
            print!(" {:>10}", format!("{:.2e}", overhead_of(&out.sim)));
        }
        println!();
    }
    println!("\n  (paper: NetSight ~18%; EverFlow / 1:1000 sampling ~1e-4..1e-3;");
    println!("   NetSeer <1e-4 — three orders of magnitude below NetSight.");
    println!("   NetSeer's overhead is event-driven: it rises with injected faults");
    println!("   and falls toward ~0 on a healthy fabric.)");
}
