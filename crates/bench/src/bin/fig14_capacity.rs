//! Figure 14 — (a) PCIe capacity between pipeline and switch CPU vs batch
//! size and core count; (b) switch-CPU event processing capacity vs
//! concurrent flows, with and without data-plane hash offload.

use netseer::config::CapacityModel;
use netseer::cpu::{cpu_capacity_eps, pcie_throughput};

fn main() {
    println!("=== Figure 14(a): PCIe capacity vs batch size ===");
    println!(
        "  {:>6} {:>14} {:>14} {:>14} {:>14}",
        "batch", "1core Meps", "1core Gbps", "2core Meps", "2core Gbps"
    );
    let one = CapacityModel { cpu_cores: 1, ..CapacityModel::default() };
    let two = CapacityModel { cpu_cores: 2, ..CapacityModel::default() };
    for batch in [1usize, 5, 10, 20, 30, 40, 50, 60, 70] {
        let (m1, g1) = pcie_throughput(&one, batch);
        let (m2, g2) = pcie_throughput(&two, batch);
        println!("  {batch:>6} {m1:>14.1} {g1:>14.2} {m2:>14.1} {g2:>14.2}");
    }
    println!("  (paper: ≥20 batch → 9.5 Gbps / 57 Meps @1 core, 18 Gbps / 110 Meps @2)");

    println!("\n=== Figure 14(b): switch CPU capacity vs concurrent flows (2 cores) ===");
    println!("  {:>10} {:>16} {:>16} {:>8}", "flows", "offload Meps", "no-offload Meps", "gain");
    for flows in [1_000usize, 10_000, 100_000, 250_000, 500_000, 750_000, 1_000_000] {
        let with = cpu_capacity_eps(&two, flows, true) / 1e6;
        let without = cpu_capacity_eps(&two, flows, false) / 1e6;
        println!("  {flows:>10} {with:>16.1} {without:>16.1} {:>7.1}x", with / without);
    }
    println!("  (paper: 82 Meps @1K flows → 4.5 Meps @1M; hash offload 2.5x, 71.4% cycles saved)");
}
