//! Figure 7 — PDP resource usage: (a) overall usage of the combined
//! switch.p4 + NetSeer program per resource kind; (b) NetSeer's own usage
//! split by module (event detection, inter-switch, dedup, batching).

use fet_netsim::monitor::{Actions, EgressCtx, SwitchMonitor};
use fet_packet::builder::build_data_packet;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_pdp::resources::ALL_RESOURCE_KINDS;
use fet_pdp::PacketMeta;
use netseer::{NetSeerConfig, NetSeerMonitor, Role};

fn main() {
    let mut m = NetSeerMonitor::new(0, Role::Switch, NetSeerConfig::default());
    // Touch the fabric ports a deployed ToR would use, so per-port ring
    // buffers exist (32 tagged ports).
    let meta = PacketMeta::arriving(0, 0, 64);
    for port in 0..32u8 {
        let flow = FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            u16::from(port),
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        );
        let mut f = build_data_packet(&flow, 100, 0, 0, 64);
        let ctx = EgressCtx { now_ns: 0, node: 0, port, queue: 0, peer_tagged: true, meta: &meta };
        let mut out = Actions::new();
        m.on_egress(&ctx, &mut f, &mut out);
    }
    let ledger = m.resource_usage();

    println!("=== Figure 7(a): overall PDP resource usage (switch.p4 + NetSeer) ===");
    println!("  {:<14} {:>8}  (paper: all <60%, stateful ALU highest ~40%+)", "resource", "usage");
    for kind in ALL_RESOURCE_KINDS {
        println!("  {:<14} {:7.1}%", kind.label(), ledger.usage_fraction(kind) * 100.0);
    }
    assert!(!ledger.over_budget(), "deployment must fit the chip");

    println!("\n=== Figure 7(b): NetSeer per-module usage ===");
    let modules = ["event-detection", "inter-switch", "dedup", "batching"];
    println!("  {:<16} per-resource % of chip", "module");
    for module in modules {
        print!("  {module:<16}");
        for kind in ALL_RESOURCE_KINDS {
            let f = ledger.usage_fraction_by(module, kind) * 100.0;
            if f > 0.05 {
                print!(" {}={:.1}%", kind.label(), f);
            }
        }
        println!();
    }
    let netseer_alu: f64 = modules
        .iter()
        .map(|m| ledger.usage_fraction_by(m, fet_pdp::ResourceKind::StatefulAlu))
        .sum();
    println!(
        "\n  NetSeer stateful-ALU total: {:.0}% (paper: ~40%, batching+inter-switch ~28%)",
        netseer_alu * 100.0
    );

    // Stage placement: the whole stateful program must fit 12 stages.
    let layout =
        fet_pdp::layout::place(fet_pdp::TOFINO_PIPELINE, &fet_pdp::layout::netseer_structures())
            .expect("NetSeer fits the pipeline");
    println!(
        "\n  stage placement: {} structures across {} of {} stages (ALUs/stage: {:?})",
        layout.placed.len(),
        layout.depth(),
        fet_pdp::TOFINO_PIPELINE.stages,
        layout.alu_usage
    );
}
