//! Figure 12 — circulating event batching capacity vs batch size:
//! Meps and Gbps from the calibrated analytic model, cross-checked with a
//! saturating simulation of the batcher.

use fet_packet::event::{EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::batch::{throughput_model, CebpBatcher};
use netseer::NetSeerConfig;

fn ev(n: u16) -> EventRecord {
    EventRecord {
        ty: EventType::Congestion,
        flow: FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        ),
        detail: EventDetail::Congestion { egress_port: 0, queue: 0, latency_us: n },
        counter: 1,
        hash: u32::from(n),
    }
}

fn simulate(batch: u16) -> (f64, f64) {
    let cfg = NetSeerConfig { batch_size: batch, ..NetSeerConfig::default() };
    let mut b = CebpBatcher::new(&cfg);
    let horizon = 2_000_000u64; // 2 ms saturated
    let mut delivered = 0u64;
    let mut t = 0u64;
    let mut n = 0u16;
    while t < horizon {
        while b.backlog() < cfg.stack_capacity - 10 {
            b.push(t, ev(n));
            n = n.wrapping_add(1);
        }
        t += 1_000;
        delivered += b.poll(t).iter().map(|x| x.events.len() as u64).sum::<u64>();
    }
    let meps = delivered as f64 / (horizon as f64 * 1e-9) / 1e6;
    let gbps = meps * 1e6 * 24.0 * 8.0 / 1e9;
    (meps, gbps)
}

fn main() {
    let cfg = NetSeerConfig::default();
    println!("=== Figure 12: event batching capacity vs batch size ===");
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>12}",
        "batch", "model Meps", "model Gbps", "sim Meps", "sim Gbps"
    );
    let mut report = fet_bench::BenchReport::new("fig12_batching");
    report.metric("cores", fet_bench::host_cores() as f64);
    let mut wall_events = 0u64;
    let wall = std::time::Instant::now();
    for batch in [1u16, 10, 20, 30, 40, 50, 60, 70] {
        let (mm, mg) = throughput_model(&cfg, usize::from(batch));
        let (sm, sg) = simulate(batch);
        println!("  {batch:>6} {mm:>12.1} {mg:>12.2} {sm:>12.1} {sg:>12.2}");
        // The simulated batcher pushes + polls ~sm Meps over 2 ms of
        // simulated time per batch size; count them for wall throughput.
        wall_events += (sm * 1e6 * 0.002) as u64;
        if batch == 50 {
            report.metric("sim_meps_batch50", sm).metric("sim_gbps_batch50", sg);
        }
    }
    let secs = wall.elapsed().as_secs_f64();
    report.metric("events_per_s", wall_events as f64 / secs);
    println!("\n  (paper: rises with batch size, ~86 Meps / 17.7 Gbps at batch 50 —");
    println!("   enough for the ~4 Meps worst case of a 6.4 Tbps switch)");
    report.write().expect("write BENCH_fig12_batching.json");
}
