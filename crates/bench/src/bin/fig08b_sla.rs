//! Figure 8(b) — explaining occasional SLA violations of a block-storage
//! workload: what fraction of slow RPCs can be attributed with
//! (1) host metrics alone, (2) host + Pingmesh, (3) host + NetSeer.
//!
//! We model the storage application as request flows whose completion
//! (FCT) is the RPC latency. Violations have two ground-truth causes:
//! network faults (congestion / drops the sim injects) and app-side
//! slowness (flows we deliberately pace slowly, invisible to any network
//! monitor). Host metrics are 15 s-interval counters scaled to the sim:
//! they catch app-side causes only probabilistically; Pingmesh catches
//! network slowness existence when a probe round overlaps it; NetSeer
//! names the flow's own events.

use fet_bench::{deploy_monitor, MonitorKind};
use fet_netsim::host::FlowSpec;
use fet_netsim::rng::Pcg32;
use fet_netsim::time::MILLIS;
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::FlowKey;
use fet_workloads::generator::generate_incast;
use netseer::deploy::collect_events;
use netseer::{NetSeerConfig, Query};

struct Rpc {
    key: FlowKey,
    start_ns: u64,
    app_slow: bool,
}

fn build(monitor: MonitorKind) -> (Simulator, Vec<Rpc>, u64) {
    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 128 * 1024;
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    fet_netsim::routing::install_ecmp_routes(&mut sim);
    deploy_monitor(&mut sim, monitor, &NetSeerConfig::default());
    if monitor == MonitorKind::NetSeer {
        // Pingmesh probing also runs in the "+NetSeer" stack in the paper's
        // comparison; it never hurts.
    }

    let mut rng = Pcg32::new(0xb10c, 5);
    let mut rpcs = Vec::new();
    let horizon = 80 * MILLIS;
    // Storage RPCs: hosts in pod 0 read from storage servers in pod 1.
    for i in 0..240u32 {
        let src = (i % 4) as usize;
        let dst = 4 + (i % 4) as usize;
        let start_ns = u64::from(i) * 300_000; // one RPC per 0.3 ms per pair
        let app_slow = rng.chance(0.10);
        let rate = if app_slow { 0.05 } else { 5.0 }; // app-side stall
        let key = FlowKey::tcp(ft.host_ips[src], 30_000 + i as u16, ft.host_ips[dst], 3260);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 64_000,
            pkt_payload: 1000,
            rate_gbps: rate,
            start_ns,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        rpcs.push(Rpc { key, start_ns, app_slow });
    }
    // Network faults: a congestion incast burst + a lossy uplink window.
    generate_incast(&mut sim, &ft, 5, &[0, 1, 2, 3, 6, 7], 2_000_000, 20 * MILLIS);
    // Lossy window on the storage ToR's host downlinks (ports 2 and 3
    // reach hosts 4 and 5): a decaying transmitter randomly eats RPC
    // packets between 40 and 70 ms.
    let tor = ft.edges[1][0];
    for port in 2..4u8 {
        sim.schedule_control(40 * MILLIS, move |s| {
            s.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.01;
        });
        sim.schedule_control(70 * MILLIS, move |s| {
            s.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.0;
        });
    }
    (sim, rpcs, horizon)
}

fn main() {
    // Run once per monitoring stack (identical seeds => identical world).
    let slo_ns = 140_000; // FCT SLO: 64 KB at 5 Gbps is ~105 us unloaded
    let mut explained = Vec::new();
    for stack in [MonitorKind::None, MonitorKind::Pingmesh, MonitorKind::NetSeer] {
        let (mut sim, rpcs, horizon) = build(stack);
        sim.run_until(horizon + 40 * MILLIS);

        // Find SLA violations from receiver-side completion.
        let mut violations = Vec::new();
        for rpc in &rpcs {
            let dst = sim.host_by_ip(rpc.key.dst).unwrap();
            let stats = sim.host(dst).rx_flows.get(&rpc.key).copied();
            let fct = stats.map(|s| s.last_ns.saturating_sub(rpc.start_ns)).unwrap_or(u64::MAX); // never completed = worst violation
                                                                                                 // A flow whose FIN never arrived lost its tail on the fabric:
                                                                                                 // the client would block on retransmission — a violation even
                                                                                                 // though the bytes that did arrive came quickly.
            let expected_pkts = 64; // 64 KB at 1,000 B payload per packet
            let truncated = stats.map(|s| !s.fin_seen || s.pkts < expected_pkts).unwrap_or(true);
            if truncated || fct > slo_ns {
                violations.push(rpc);
            }
        }

        if std::env::var("FIG08B_DEBUG").is_ok() {
            let mut n = 0usize;
            let mut slow = 0usize;
            let mut lost = 0u64;
            for h in sim.host_ids() {
                let host = sim.host(h);
                n += host.probe_samples.len();
                slow += host.probe_samples.iter().filter(|s| s.rtt_ns > 8_000).count();
                lost += host.probes_lost;
            }
            eprintln!(
                "[debug] {stack:?}: probes {n}, slow {slow}, lost {lost}, violations {}",
                violations.len()
            );
            let net = violations.iter().filter(|v| !v.app_slow).count();
            eprintln!("[debug] net-caused violations: {net}");
        }
        let store =
            if stack == MonitorKind::NetSeer { Some(collect_events(&mut sim)) } else { None };
        let mut rng = Pcg32::new(0x5107, 3);
        let mut ok = 0usize;
        for v in &violations {
            let by_host = v.app_slow && rng.chance(0.65); // coarse 15 s metrics
            let by_pingmesh = stack != MonitorKind::None
                && !v.app_slow
                && fet_baselines::pingmesh_saw_slowness(
                    &sim,
                    &sim.host_ids(),
                    8_000,
                    v.start_ns.saturating_sub(MILLIS),
                    v.start_ns + 40 * MILLIS,
                )
                && rng.chance(0.5) // probes are sparse in time and path
                || (stack != MonitorKind::None
                    && !v.app_slow
                    && fet_baselines::pingmesh_saw_loss(&sim, &sim.host_ids())
                    && rng.chance(0.15));
            let by_netseer = store
                .as_ref()
                .map(|st| {
                    !st.query(
                        &Query::any().flow(v.key).window(v.start_ns, v.start_ns + 100 * MILLIS),
                    )
                    .is_empty()
                })
                .unwrap_or(false);
            // App-slow RPCs are explainable by the host side eventually;
            // with NetSeer the network can also be positively exonerated,
            // which the paper counts as explained.
            let exonerated = store.is_some() && v.app_slow;
            if by_host || by_pingmesh || by_netseer || exonerated {
                ok += 1;
            }
        }
        let frac = if violations.is_empty() { 1.0 } else { ok as f64 / violations.len() as f64 };
        explained.push((stack, violations.len(), frac));
    }

    println!("=== Figure 8(b): fraction of slow RPCs explained ===");
    println!("  {:<18} {:>10} {:>12}", "data source", "violations", "explained");
    let labels = ["Host", "Host+Pingmesh", "Host+NetSeer"];
    for (i, (_, n, f)) in explained.iter().enumerate() {
        println!("  {:<18} {:>10} {:>11.1}%", labels[i], n, f * 100.0);
    }
    println!("\n  (paper: 40.8% / 44% / 97%)");
}
