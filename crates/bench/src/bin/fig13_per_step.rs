//! Figure 13 — per-step bandwidth overhead: (a) the event-packet ratio of
//! each workload (step 1 selection); (b) the reduction each subsequent
//! step contributes (dedup ~95%, extraction ~98%, CPU FP elimination <7%).

use fet_bench::{run_experiment, InjectSpec, MonitorKind};
use fet_netsim::time::MILLIS;
use fet_workloads::distributions::ALL_WORKLOADS;
use netseer::deploy::monitor_of;

fn main() {
    let inject = InjectSpec::default();
    println!("=== Figure 13(a): event packet ratio per workload ===");
    println!("  {:<10} {:>12} {:>14} {:>10}", "workload", "packets", "event pkts", "ratio");
    let mut per_step_rows = Vec::new();
    for dist in ALL_WORKLOADS {
        let out = run_experiment(dist, MonitorKind::NetSeer, &inject, 0x13A, 12 * MILLIS);
        // Aggregate across switch monitors.
        let mut pkts = 0u64;
        let mut evpkts = 0u64;
        let mut evbytes = 0u64;
        let mut dedup_in = 0u64;
        let mut dedup_out = 0u64;
        let mut extracted_bytes = 0u64;
        let mut cpu_recv = 0u64;
        let mut cpu_fp = 0u64;
        let mut final_bytes = 0u64;
        for s in out.sim.switch_ids() {
            let m = monitor_of(&out.sim, s);
            pkts += m.stats.packets_seen;
            evpkts += m.stats.event_packets;
            evbytes += m.stats.event_packet_bytes;
            for c in m.dedup.values() {
                dedup_in += c.offered;
                dedup_out += c.reports;
            }
            extracted_bytes += m.extractor.output_bytes;
            cpu_recv += m.cpu.received;
            cpu_fp += m.cpu.fp_eliminated;
            final_bytes += m.stats.final_bytes;
        }
        println!(
            "  {:<10} {:>12} {:>14} {:>9.2}%",
            dist.name,
            pkts,
            evpkts,
            100.0 * evpkts as f64 / pkts.max(1) as f64
        );
        per_step_rows.push((
            dist.name,
            evpkts,
            evbytes,
            dedup_in,
            dedup_out,
            extracted_bytes,
            cpu_recv,
            cpu_fp,
            final_bytes,
        ));
    }

    println!("\n=== Figure 13(b): per-step reduction ===");
    println!(
        "  {:<10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "dedup", "extraction", "FP elim", "final bytes"
    );
    for (name, _evpkts, evbytes, din, dout, extracted, crecv, cfp, fbytes) in per_step_rows {
        let dedup_red = 100.0 * (1.0 - dout as f64 / din.max(1) as f64);
        // Extraction: event packets (avg size) -> 24B records.
        let extract_red = 100.0 * (1.0 - extracted as f64 / evbytes.max(1) as f64);
        let fp_red = 100.0 * cfp as f64 / crecv.max(1) as f64;
        println!(
            "  {name:<10} {:>11.1}% {:>11.1}% {:>11.1}% {fbytes:>12}",
            dedup_red, extract_red, fp_red
        );
    }
    println!("\n  (paper: selection >90% reduction, dedup ~95%, extraction ~98%,");
    println!("   FP elimination <7%)");
}
