//! Figure 15 — inter-switch drop detection capacity: (a) minimal ring
//! slots per port to retrieve at least one dropped packet, vs packet size;
//! (b) SRAM needed vs the number of consecutive drops to survive.
//! Both the analytic model and an empirical sweep of the actual
//! ring-buffer implementation.

use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::capacity::{
    min_ring_slots, ring_sram_bytes, slots_for_consecutive_drops, SLOT_BYTES_EXACT,
    SLOT_BYTES_PACKED,
};
use netseer::detect::interswitch::{GapDetector, PortTagger};

/// Empirically find the minimal slots that recover ≥1 packet of a burst
/// of `burst` drops, with `feedback_pkts` packets transmitted before the
/// notification arrives (the in-flight overwrites).
fn empirical_min_slots(burst: u32, feedback_pkts: u32) -> usize {
    let flow = |n: u32| {
        FlowKey::tcp(
            Ipv4Addr::from_u32(0x0a00_0000 + n),
            1,
            Ipv4Addr::from_octets([10, 255, 0, 1]),
            80,
        )
    };
    'outer: for slots in 1..100_000usize {
        let mut up = PortTagger::new(slots);
        let mut down = GapDetector::new();
        let mut gap = None;
        let mut n = 0u32;
        // Warmup packet so the detector is synced.
        let s = up.next(flow(n));
        down.observe(s);
        n += 1;
        // The burst drops.
        for _ in 0..burst {
            up.next(flow(n));
            n += 1;
        }
        // The revealing packet + feedback-latency packets.
        for _ in 0..=feedback_pkts {
            let s = up.next(flow(n));
            n += 1;
            if gap.is_none() {
                gap = down.observe(s);
            }
        }
        let (lo, hi) = gap.expect("burst must be detected");
        for seq in lo..=hi {
            if up.lookup(seq).is_some() {
                // Found at least one victim with this ring size.
                if slots > 1 {
                    // verify slots-1 would fail is implied by sweep order
                }
                return slots;
            }
        }
        continue 'outer;
    }
    unreachable!("sweep bound too low")
}

fn main() {
    let rtt = 2_000; // notification feedback latency, ns
    println!("=== Figure 15(a): minimal ring slots per port vs packet size ===");
    println!("  {:>10} {:>12} {:>12}", "pkt bytes", "model slots", "empirical");
    for pkt in [64usize, 128, 256, 512, 1024, 1280, 1500] {
        let model = min_ring_slots(pkt, 100.0, rtt);
        // Feedback packets = overwrites during the feedback interval.
        let feedback_pkts = (model - 1) as u32;
        let emp = empirical_min_slots(1, feedback_pkts);
        println!("  {pkt:>10} {model:>12} {emp:>12}");
    }
    println!("  (paper: >25 slots for a 1024-byte packet)");

    println!("\n=== Figure 15(b): SRAM vs consecutive detectable drops (64x100G ports) ===");
    println!("  {:>8} {:>10} {:>14} {:>14}", "drops", "slots/port", "packed KB", "exact-17B KB");
    for drops in [0usize, 200, 400, 600, 800, 1_000] {
        let slots = slots_for_consecutive_drops(drops, 1024, 100.0, rtt);
        let packed = ring_sram_bytes(64, slots, SLOT_BYTES_PACKED) / 1024.0;
        let exact = ring_sram_bytes(64, slots, SLOT_BYTES_EXACT as f64) / 1024.0;
        println!("  {drops:>8} {slots:>10} {packed:>14.0} {exact:>14.0}");
    }
    println!("  (paper: ~800 KB for 1,000 consecutive 1024 B drops across 64 ports)");

    // Empirical consecutive-drop capacity of a 1024-slot ring.
    println!("\n  empirical: a 1024-slot ring with 26 in-flight packets recovers");
    let mut worst = 0u32;
    for burst in [100u32, 500, 900, 998, 1100] {
        let slots = 1024;
        let flow = |n: u32| {
            FlowKey::tcp(
                Ipv4Addr::from_u32(0x0a00_0000 + n),
                1,
                Ipv4Addr::from_octets([10, 255, 0, 1]),
                80,
            )
        };
        let mut up = PortTagger::new(slots);
        let mut down = GapDetector::new();
        let mut n = 0u32;
        let s = up.next(flow(n));
        down.observe(s);
        n += 1;
        for _ in 0..burst {
            up.next(flow(n));
            n += 1;
        }
        let mut gap = None;
        for _ in 0..26 {
            let s = up.next(flow(n));
            n += 1;
            if gap.is_none() {
                gap = down.observe(s);
            }
        }
        let (lo, hi) = gap.unwrap();
        let recovered = (lo..=hi).filter(|&s| up.lookup(s).is_some()).count();
        println!("    burst {burst:>5}: recovered {recovered}/{burst} victims");
        if recovered as u32 == burst {
            worst = worst.max(burst);
        }
    }
    println!("    (full recovery up to ~{worst} consecutive drops, as sized)");
}
