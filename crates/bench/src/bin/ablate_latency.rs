//! Ablation: event response latency vs batch size. §3.5 notes that
//! "circulating event batching could prolong the event response latency
//! by a few microseconds"; the control-plane timer bounds the tail for
//! half-full CEBPs. This harness measures detection → backend latency
//! percentiles at several batch sizes and event rates.

use fet_netsim::monitor::{Actions, IngressCtx, SwitchMonitor};
use fet_packet::event::DropCode;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::{NetSeerConfig, NetSeerMonitor, Role};
use std::collections::HashMap;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 + n),
        (n % 60_000) as u16,
        Ipv4Addr::from_octets([10, 250, 0, 1]),
        80,
    )
}

/// Drive one monitor with `n_events` distinct-flow drop events spaced
/// `gap_ns` apart; return per-event latencies (ns).
fn measure(batch_size: u16, gap_ns: u64, n_events: u32) -> Vec<u64> {
    let cfg = NetSeerConfig { batch_size, ..NetSeerConfig::default() };
    let timer = cfg.timer_interval_ns;
    let mut m = NetSeerMonitor::new(0, Role::Switch, cfg);
    let mut inject_time: HashMap<FlowKey, u64> = HashMap::new();
    let mut out = Actions::new();
    let frame = fet_packet::builder::build_data_packet(&flow(0), 100, 0, 0, 64);
    let mut t = 0u64;
    let mut next_timer = timer;
    for n in 0..n_events {
        t += gap_ns;
        while next_timer <= t {
            m.on_timer(next_timer, &[], &mut out);
            next_timer += timer;
        }
        let f = flow(n);
        inject_time.insert(f, t);
        let ictx = IngressCtx { now_ns: t, node: 0, port: 1, peer_tagged: false };
        m.on_pipeline_drop(&ictx, &frame, Some(f), DropCode::TableMiss, Some(2), 0, &mut out);
    }
    // Run timers until everything flushes.
    for _ in 0..200 {
        next_timer += timer;
        m.on_timer(next_timer, &[], &mut out);
    }
    m.delivered
        .iter()
        .filter_map(|e| inject_time.get(&e.record.flow).map(|&ti| e.time_ns.saturating_sub(ti)))
        .collect()
}

fn pct(lat: &mut [u64], q: f64) -> f64 {
    lat.sort_unstable();
    if lat.is_empty() {
        return f64::NAN;
    }
    lat[((lat.len() - 1) as f64 * q) as usize] as f64 / 1_000.0
}

fn main() {
    println!("=== Ablation: event response latency (detection -> backend) ===");
    println!("  (includes the reliable-transport RTT/2 of 25 us; the batching");
    println!("   contribution is the spread across batch sizes and rates)");
    println!(
        "\n  {:>6} {:>14} {:>12} {:>12} {:>12}",
        "batch", "event rate", "p50 (us)", "p90 (us)", "p99 (us)"
    );
    for &batch in &[1u16, 10, 50] {
        for &(gap, label) in &[(200u64, "5 Meps"), (10_000, "100 Keps"), (1_000_000, "1 Keps")] {
            let mut lat = measure(batch, gap, 2_000);
            println!(
                "  {batch:>6} {label:>14} {:>12.1} {:>12.1} {:>12.1}",
                pct(&mut lat, 0.5),
                pct(&mut lat, 0.9),
                pct(&mut lat, 0.99)
            );
        }
    }
    println!("\n  At high event rates CEBPs fill in microseconds (the paper's 'a few");
    println!("  microseconds'); at low rates the 100 us control-plane flush bounds");
    println!("  the tail instead of letting events age in a half-full CEBP.");
}
