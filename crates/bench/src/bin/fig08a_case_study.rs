//! Figure 8(a) — the five real Alibaba incidents (§5.1), reproduced on the
//! simulated testbed. For each case we deploy NetSeer, run the scripted
//! fault, and measure how long after fault activation the backend can
//! answer the operator's query (detection + delivery latency), then add
//! the paper's irreducible human phases. The "without NetSeer" bars are
//! the paper's measured values — they are what the original operators
//! actually spent with conventional tooling.

use fet_netsim::time::SECONDS;
use fet_workloads::scenarios::{build_case, ALL_CASES};
use netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer::Query;

fn main() {
    println!("=== Figure 8(a): NPA cause-location time, with vs without NetSeer ===");
    println!("  {:<24} {:>14} {:>14} {:>10}", "case", "w/ NetSeer", "w/o NetSeer", "reduction");
    for case in ALL_CASES {
        let paper = case.paper();
        let mut built = build_case(case, 0x5EED);
        deploy(&mut built.sim, &DeployOptions::default());
        built.sim.run_until(built.horizon_ns);

        let store = collect_events(&mut built.sim);
        // The operator queries by the affected flows (or by the suspicious
        // device) and looks for the case's key event type.
        let first_hit_ns = built
            .victim_flows
            .iter()
            .flat_map(|f| {
                store
                    .query(&Query::any().flow(*f).ty(paper.key_event))
                    .into_iter()
                    .map(|e| e.time_ns)
                    .collect::<Vec<_>>()
            })
            .chain(
                // ACL drops aggregate per rule, not per flow: a device
                // query still surfaces them.
                store
                    .query(&Query::any().device(built.fault_device).ty(paper.key_event))
                    .into_iter()
                    .map(|e| e.time_ns),
            )
            .min();

        let Some(first_hit_ns) = first_hit_ns else {
            println!("  {:<24} NO EVENT FOUND (reproduction failure)", paper.label);
            continue;
        };
        let detect_s = first_hit_ns.saturating_sub(built.fault_at_ns) as f64 / SECONDS as f64;
        // Operator interaction with the query frontend: seconds (paper's
        // "within 30 seconds" / "14 seconds" style numbers).
        let query_s = 10.0;
        let with_min = paper.human_minutes + (detect_s + query_s) / 60.0;
        let reduction = 100.0 * (1.0 - with_min / paper.minutes_without);
        println!(
            "  {:<24} {:>11.2} min {:>11.1} min {:>9.1}%   (detect {:.3}s after fault)",
            paper.label, with_min, paper.minutes_without, reduction, detect_s
        );
    }
    println!("\n  (paper: reductions of 61%-99% across the five cases)");
}
