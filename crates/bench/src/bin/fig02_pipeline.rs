//! Figure 2 — the architecture's staged volume reduction, measured: the
//! paper annotates its workflow "100% raw packets → 10% event packets →
//! 0.5% after dedup → 0.01% delivered". This harness runs a fault-heavy
//! workload and prints the measured fraction surviving each stage.

use fet_bench::{run_experiment, InjectSpec, MonitorKind};
use fet_netsim::time::MILLIS;
use fet_workloads::distributions::DCTCP;
use netseer::deploy::monitor_of;

fn main() {
    let inject = InjectSpec::default();
    let out = run_experiment(&DCTCP, MonitorKind::NetSeer, &inject, 0xF16, 15 * MILLIS);

    let mut pkts = 0u64;
    let mut pkt_bytes = 0u64;
    let mut evpkts = 0u64;
    let mut evpkt_bytes = 0u64;
    let mut dedup_out = 0u64;
    let mut extracted_bytes = 0u64;
    let mut final_reports = 0u64;
    let mut final_bytes = 0u64;
    let mut fp_eliminated = 0u64;
    for s in out.sim.switch_ids() {
        let m = monitor_of(&out.sim, s);
        pkts += m.stats.packets_seen;
        pkt_bytes += m.stats.packets_bytes;
        evpkts += m.stats.event_packets;
        evpkt_bytes += m.stats.event_packet_bytes;
        dedup_out += m.dedup.values().map(|c| c.reports).sum::<u64>();
        extracted_bytes += m.extractor.output_bytes;
        final_reports += m.stats.final_reports;
        final_bytes += m.stats.final_bytes;
        fp_eliminated += m.cpu.fp_eliminated;
    }

    let pb = pkt_bytes.max(1) as f64;
    println!("=== Figure 2: staged volume reduction, measured ===");
    println!("  stage                          packets/records          bytes     % of raw");
    println!("  raw packets                  {pkts:>17} {pkt_bytes:>14} {:>11.4}%", 100.0);
    println!(
        "  1. event packet selection    {evpkts:>17} {evpkt_bytes:>14} {:>11.4}%",
        100.0 * evpkt_bytes as f64 / pb
    );
    println!(
        "  2. group-caching dedup       {dedup_out:>17} {:>14} {:>11.4}%",
        dedup_out * evpkt_bytes / evpkts.max(1), // records still full-size here
        100.0 * (dedup_out * evpkt_bytes / evpkts.max(1)) as f64 / pb
    );
    println!(
        "  3. 24-byte extraction        {:>17} {extracted_bytes:>14} {:>11.4}%",
        extracted_bytes / 24,
        100.0 * extracted_bytes as f64 / pb
    );
    println!(
        "  4. CPU FP elim + delivery    {final_reports:>17} {final_bytes:>14} {:>11.4}%",
        100.0 * final_bytes as f64 / pb
    );
    println!(
        "\n  (paper annotation: 100% -> ~10% -> ~0.5% -> ~0.01%; FP eliminated: {fp_eliminated})"
    );
}
