//! Figure 2 — the architecture's staged volume reduction, measured: the
//! paper annotates its workflow "100% raw packets → 10% event packets →
//! 0.5% after dedup → 0.01% delivered". This harness runs a fault-heavy
//! workload and prints the measured fraction surviving each stage.

use fet_bench::counting_alloc::{allocations, CountingAlloc};
use fet_bench::{run_experiment, BenchReport, InjectSpec, MonitorKind};
use fet_netsim::monitor::{Actions, EgressCtx, IngressCtx, SwitchMonitor};
use fet_netsim::time::MILLIS;
use fet_packet::builder::build_data_packet;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_pdp::PacketMeta;
use fet_workloads::distributions::DCTCP;
use netseer::deploy::monitor_of;
use netseer::{NetSeerConfig, NetSeerMonitor, Role};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Drive the steady-state per-packet path directly — upstream egress
/// (tag + ring record) into downstream ingress (strip + gap check) — and
/// measure wall-clock throughput and heap allocations per packet after
/// warm-up. The zero-allocation contract of `DESIGN.md` §11 is asserted
/// here, so a regression fails the bench job, not just a code review.
fn hot_path_bench() -> (f64, f64) {
    let cfg = NetSeerConfig::default();
    let mut upstream = NetSeerMonitor::new(1, Role::Switch, cfg.clone());
    let mut downstream = NetSeerMonitor::new(2, Role::Switch, cfg);
    let flow = FlowKey::tcp(
        Ipv4Addr::from_octets([10, 0, 0, 1]),
        7_000,
        Ipv4Addr::from_octets([10, 0, 0, 2]),
        80,
    );
    let mut frame = build_data_packet(&flow, 1000, 0, 0, 64);
    // Room for the 6-byte sequence tag: after the first insertion the
    // buffer's capacity absorbs the growth forever.
    frame.reserve(8);
    let mut out = Actions::new();
    let mut run = |n: u64, t0: u64, frame: &mut Vec<u8>| {
        for i in 0..n {
            let now = t0 + i * 1_000;
            let mut meta = PacketMeta::arriving(0, now, frame.len());
            meta.flow = Some(flow);
            meta.egress_ts_ns = now; // zero queuing delay: no event
            let ectx = EgressCtx {
                now_ns: now,
                node: 1,
                port: 0,
                queue: 0,
                peer_tagged: true,
                meta: &meta,
            };
            upstream.on_egress(&ectx, frame, &mut out);
            let ictx = IngressCtx { now_ns: now, node: 2, port: 0, peer_tagged: true };
            downstream.on_ingress(&ictx, frame, &mut out);
            out.emit.clear();
            out.reports.clear();
        }
    };
    // Warm-up: first-touch allocations (port tables, ring buffers, the
    // one-time frame growth for the tag) are expected and excluded.
    run(10_000, 0, &mut frame);
    let before = allocations();
    let start = Instant::now();
    const PKTS: u64 = 1_000_000;
    run(PKTS, 10_000_000_000, &mut frame);
    let secs = start.elapsed().as_secs_f64();
    let allocs = allocations() - before;
    let per_pkt = allocs as f64 / PKTS as f64;
    (PKTS as f64 / secs, per_pkt)
}

fn main() {
    let inject = InjectSpec::default();
    let out = run_experiment(&DCTCP, MonitorKind::NetSeer, &inject, 0xF16, 15 * MILLIS);

    let mut pkts = 0u64;
    let mut pkt_bytes = 0u64;
    let mut evpkts = 0u64;
    let mut evpkt_bytes = 0u64;
    let mut dedup_out = 0u64;
    let mut extracted_bytes = 0u64;
    let mut final_reports = 0u64;
    let mut final_bytes = 0u64;
    let mut fp_eliminated = 0u64;
    for s in out.sim.switch_ids() {
        let m = monitor_of(&out.sim, s);
        pkts += m.stats.packets_seen;
        pkt_bytes += m.stats.packets_bytes;
        evpkts += m.stats.event_packets;
        evpkt_bytes += m.stats.event_packet_bytes;
        dedup_out += m.dedup.values().map(|c| c.reports).sum::<u64>();
        extracted_bytes += m.extractor.output_bytes;
        final_reports += m.stats.final_reports;
        final_bytes += m.stats.final_bytes;
        fp_eliminated += m.cpu.fp_eliminated;
    }

    let pb = pkt_bytes.max(1) as f64;
    println!("=== Figure 2: staged volume reduction, measured ===");
    println!("  stage                          packets/records          bytes     % of raw");
    println!("  raw packets                  {pkts:>17} {pkt_bytes:>14} {:>11.4}%", 100.0);
    println!(
        "  1. event packet selection    {evpkts:>17} {evpkt_bytes:>14} {:>11.4}%",
        100.0 * evpkt_bytes as f64 / pb
    );
    println!(
        "  2. group-caching dedup       {dedup_out:>17} {:>14} {:>11.4}%",
        dedup_out * evpkt_bytes / evpkts.max(1), // records still full-size here
        100.0 * (dedup_out * evpkt_bytes / evpkts.max(1)) as f64 / pb
    );
    println!(
        "  3. 24-byte extraction        {:>17} {extracted_bytes:>14} {:>11.4}%",
        extracted_bytes / 24,
        100.0 * extracted_bytes as f64 / pb
    );
    println!(
        "  4. CPU FP elim + delivery    {final_reports:>17} {final_bytes:>14} {:>11.4}%",
        100.0 * final_bytes as f64 / pb
    );
    println!(
        "\n  (paper annotation: 100% -> ~10% -> ~0.5% -> ~0.01%; FP eliminated: {fp_eliminated})"
    );

    let (pkts_per_s, allocs_per_pkt) = hot_path_bench();
    println!("\n=== Monitor hot path (tag -> strip cycle, steady state) ===");
    println!("  throughput        {pkts_per_s:>14.0} pkts/s");
    println!("  heap allocations  {allocs_per_pkt:>14.4} per packet");
    assert_eq!(allocs_per_pkt, 0.0, "steady-state packet path must not allocate");

    let sim_secs = (15 * MILLIS) as f64 * 1e-9;
    let mut report = BenchReport::new("fig02_pipeline");
    report.metric("cores", fet_bench::host_cores() as f64);
    report
        .metric("pkts_per_s", pkts_per_s)
        .metric("allocs_per_pkt", allocs_per_pkt)
        .metric("events_per_s", final_reports as f64 / sim_secs)
        .metric("raw_packets", pkts as f64)
        .metric("final_reports", final_reports as f64);
    report.write().expect("write BENCH_fig02_pipeline.json");
}
