//! `fig_spill` — durable spill buffer throughput: the cost of parking a
//! delivery burst on bounded disk instead of shedding it.
//!
//! Three legs over a synthetic event stream:
//!
//! * **append** — encode + segment-append rate (the ingest hot path when
//!   the collector is past its memory watermark);
//! * **drain+commit** — read-back + durable-cursor-advance rate (the
//!   recovery-drain path), committing every 4096 records;
//! * **end-to-end collector** — one 2M-event burst ingested then drained
//!   to quiescence, memory-only versus a tight-watermark [`Collector`]
//!   that detours all but the first window through disk. The spill path
//!   applies in watermark-sized windows, which tends to be *faster* than
//!   holding the whole burst resident — the point is that it is at least
//!   in the same league, not an order of magnitude behind.
//!
//! Acceptance bar: >= 1M events/s on append and drain — the spill must
//! never be the bottleneck in front of a collector that ingests millions
//! of events per second.

use fet_netsim::rng::Pcg32;
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::spill::{SpillStore, SPILL_RECORD_LEN};
use netseer::{Collector, CollectorConfig, StoredEvent};
use std::time::Instant;

const EVENTS: usize = 2_000_000;

fn synth_stream(seed: u64) -> Vec<StoredEvent> {
    let mut rng = Pcg32::new(seed, 0x5B1F);
    let mut out = Vec::with_capacity(EVENTS);
    for i in 0..EVENTS {
        let f = rng.next_below(50_000);
        out.push(StoredEvent {
            time_ns: (i as u64) * 200,
            device: rng.next_below(32),
            epoch: 0,
            seq: i as u64,
            record: EventRecord {
                ty: EventType::PipelineDrop,
                flow: FlowKey::tcp(
                    Ipv4Addr::from_u32(0x0a00_0000 | (f & 0x00FF_FFFF)),
                    (f % 50_000) as u16,
                    Ipv4Addr::from_octets([10, 250, 0, 1]),
                    443,
                ),
                detail: EventDetail::Drop {
                    ingress_port: rng.next_below(8) as u8,
                    egress_port: rng.next_below(8) as u8,
                    code: DropCode::TableMiss,
                },
                counter: 1,
                hash: rng.next_u32(),
            },
        });
    }
    out
}

fn spill_cfg() -> CollectorConfig {
    CollectorConfig {
        // Room for the whole stream; 1 MiB segments (the default).
        max_spill_bytes: (EVENTS + 1) as u64 * SPILL_RECORD_LEN as u64,
        ..CollectorConfig::default()
    }
}

fn main() {
    let stream = synth_stream(0x5B1F_5EED);
    println!("fig_spill: durable spill buffer — {EVENTS} events, {SPILL_RECORD_LEN} B/record");
    let mut report = fet_bench::BenchReport::new("fig_spill");
    report.metric("cores", fet_bench::host_cores() as f64);

    // (a) append: encode + segment-append + rotation fsyncs.
    let mut spill = SpillStore::new(&spill_cfg());
    let t0 = Instant::now();
    for e in &stream {
        assert!(spill.append(*e), "budget sized for the whole stream");
    }
    let append_dt = t0.elapsed();
    let append_eps = EVENTS as f64 / append_dt.as_secs_f64();
    report.metric("append_per_s", append_eps);
    println!(
        "\n(a) append: {:>12.0} events/s  ({:.1} ms, {} segments, {} fsyncs)",
        append_eps,
        append_dt.as_secs_f64() * 1e3,
        spill.segment_count(),
        spill.fsyncs
    );

    // (b) drain + periodic commit: the recovery-drain path.
    let t0 = Instant::now();
    let mut drained = 0u64;
    while let Some(e) = spill.drain_next() {
        std::hint::black_box(&e);
        drained += 1;
        if drained.is_multiple_of(4096) {
            spill.commit();
        }
    }
    spill.commit();
    let drain_dt = t0.elapsed();
    let drain_eps = drained as f64 / drain_dt.as_secs_f64();
    report.metric("drain_per_s", drain_eps);
    println!(
        "(b) drain+commit: {:>7.0} events/s  ({:.1} ms, {} commits, {} acked segments)",
        drain_eps,
        drain_dt.as_secs_f64() * 1e3,
        spill.commits,
        spill.acked_segments
    );
    assert_eq!(drained as usize, EVENTS, "every appended event drains exactly once");
    assert!(spill.is_drained() && spill.resident() == 0, "ack must reclaim all segments");

    // (c) end-to-end: memory-only collector vs a tight-watermark collector
    // that routes all but the first window of the burst through the disk
    // detour, both drained by a subscriber to quiescence.
    const WATERMARK: usize = 4096;
    let run = |cfg: CollectorConfig| {
        let mut collector = Collector::with_config(cfg);
        let sub = collector.subscribe();
        let t0 = Instant::now();
        collector.ingest(&stream);
        let mut total = collector.drain_ordered(sub).len();
        while collector.pump_spill() > 0 {
            total += collector.drain_ordered(sub).len();
        }
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(total, EVENTS, "exactly-once end to end");
        assert_eq!(collector.buffered(), 0);
        (EVENTS as f64 / dt, collector.spilled)
    };
    let (mem_eps, mem_spilled) = run(CollectorConfig::default());
    assert_eq!(mem_spilled, 0, "the default watermark must never spill");
    let (spill_eps, spilled) = run(CollectorConfig { memory_watermark: WATERMARK, ..spill_cfg() });
    assert_eq!(
        spilled as usize,
        EVENTS - WATERMARK,
        "everything past the first watermark window must take the disk detour"
    );
    let ratio = spill_eps / mem_eps;
    report.metric("collector_memory_per_s", mem_eps);
    report.metric("collector_spill_per_s", spill_eps);
    println!(
        "(c) collector burst-to-quiescence: memory {:>10.0} events/s, \
         spill detour {:>10.0} events/s ({ratio:.2}x)",
        mem_eps, spill_eps
    );

    assert!(append_eps >= 1_000_000.0, "append {append_eps:.0} events/s below the 1M bar");
    assert!(drain_eps >= 1_000_000.0, "drain {drain_eps:.0} events/s below the 1M bar");
    println!(
        "\nfig_spill acceptance: append {append_eps:.0} events/s, drain {drain_eps:.0} \
         events/s (both >= 1M)"
    );
    report.write().expect("write BENCH_fig_spill.json");
}
