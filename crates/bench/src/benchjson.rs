//! Machine-readable benchmark reports.
//!
//! Each per-figure binary can emit a flat `BENCH_<name>.json` next to its
//! human-readable stdout so CI can diff throughput against a committed
//! baseline. The format is deliberately trivial — one object with a
//! `name` and a flat `metrics` map of floats — and is written/parsed by
//! hand because the workspace builds fully offline (no serde).
//!
//! ```json
//! {
//!   "name": "fig12_batching",
//!   "metrics": {
//!     "events_per_s": 86000000.0,
//!     "gbps": 17.7
//!   }
//! }
//! ```

use std::io::Write;
use std::path::{Path, PathBuf};

/// One benchmark run's metrics, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// Flat metric map in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Empty report for `name`.
    pub fn new(name: &str) -> Self {
        BenchReport { name: name.to_string(), metrics: Vec::new() }
    }

    /// Add (or overwrite) one metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key.to_string(), value));
        }
        self
    }

    /// Value of a metric, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Serialize to the flat JSON format above.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", self.name));
        s.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            // Plain decimal (never exponent) so the parser stays trivial.
            s.push_str(&format!("    \"{k}\": {v:.6}{comma}\n"));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Write into `$BENCH_OUT_DIR` (default: current directory), print
    /// where it went.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let path = self.write_to(Path::new(&dir))?;
        println!("\n  wrote {}", path.display());
        Ok(path)
    }

    /// Parse a report previously produced by [`Self::to_json`]. Returns
    /// `None` on anything that doesn't look like our own output.
    pub fn parse(json: &str) -> Option<Self> {
        let name = extract_string(json, "name")?;
        let metrics_start = json.find("\"metrics\"")?;
        let body = &json[metrics_start..];
        let open = body.find('{')?;
        let close = body.find('}')?;
        let inner = &body[open + 1..close];
        let mut metrics = Vec::new();
        for entry in inner.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry.split_once(':')?;
            let key = key.trim().trim_matches('"').to_string();
            let value: f64 = value.trim().parse().ok()?;
            metrics.push((key, value));
        }
        Some(BenchReport { name, metrics })
    }

    /// Read and parse `path`.
    pub fn read(path: &Path) -> Option<Self> {
        Self::parse(&std::fs::read_to_string(path).ok()?)
    }
}

/// Core count of the host the benchmark ran on. Emitted as the `cores`
/// metric by every report so baselines are comparable across machines
/// (bench_check gates only `*_per_s` / `sim_meps*` keys, never this one).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn extract_string(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut r = BenchReport::new("fig_test");
        r.metric("pkts_per_s", 1_234_567.5).metric("allocs_per_pkt", 0.0);
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.name, "fig_test");
        assert_eq!(parsed.get("pkts_per_s"), Some(1_234_567.5));
        assert_eq!(parsed.get("allocs_per_pkt"), Some(0.0));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn metric_overwrites() {
        let mut r = BenchReport::new("x");
        r.metric("a", 1.0).metric("a", 2.0);
        assert_eq!(r.metrics.len(), 1);
        assert_eq!(r.get("a"), Some(2.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("not json").is_none());
        assert!(BenchReport::parse("{\"name\": \"x\"}").is_none());
    }
}
