//! A counting global allocator for alloc-per-packet measurements.
//!
//! The zero-allocation claim in `DESIGN.md` §11 is checked empirically:
//! a bench binary installs [`CountingAlloc`] as its `#[global_allocator]`,
//! warms the hot path up (first-touch allocations — port tables, ring
//! buffers, the first tag insertion growing a frame — are expected and
//! excluded), then drives N packets and reads the allocation-count delta.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fet_bench::counting_alloc::CountingAlloc =
//!     fet_bench::counting_alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every allocation.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves is an allocation for our purposes: the hot
        // path must not grow buffers either.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocations observed so far (monotonic; diff two snapshots).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested so far (monotonic).
pub fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
