//! Shared experiment harness for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/figXX_*.rs` regenerates one figure of the
//! paper's evaluation; this library provides the common machinery: deploy
//! a monitor fleet, run a workload with injected faults, and score
//! coverage / overhead per monitor with identical semantics across
//! monitors.

pub mod benchjson;
pub mod counting_alloc;

pub use benchjson::{host_cores, BenchReport};

use fet_baselines::{
    coverage, EverFlowMonitor, NetSightMonitor, ObservationLog, SamplingMonitor, SnmpMonitor,
};
use fet_netsim::engine::Node;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::override_route;
use fet_netsim::time::{MICROS, MILLIS};
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::tracer::{GroundTruth, GtEvent};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_workloads::distributions::FlowSizeDist;
use fet_workloads::generator::{generate_incast, generate_traffic, TrafficParams};
use netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer::NetSeerConfig;

/// Which monitor a run evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// NetSeer (this paper).
    NetSeer,
    /// NetSight per-packet postcards.
    NetSight,
    /// 1:k packet sampling.
    Sampling(u64),
    /// EverFlow SYN/FIN + on-demand traces.
    EverFlow,
    /// SNMP counters.
    Snmp,
    /// Pingmesh probing (host-based; no switch monitor).
    Pingmesh,
    /// No monitor (baseline for perturbation checks).
    None,
}

impl MonitorKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            MonitorKind::NetSeer => "NetSeer".into(),
            MonitorKind::NetSight => "NetSight".into(),
            MonitorKind::Sampling(k) => format!("1:{k}"),
            MonitorKind::EverFlow => "EverFlow".into(),
            MonitorKind::Snmp => "SNMP".into(),
            MonitorKind::Pingmesh => "Pingmesh".into(),
            MonitorKind::None => "none".into(),
        }
    }

    /// The set the coverage/overhead figures sweep.
    pub fn figure_set() -> Vec<MonitorKind> {
        vec![
            MonitorKind::NetSeer,
            MonitorKind::NetSight,
            MonitorKind::EverFlow,
            MonitorKind::Sampling(10),
            MonitorKind::Sampling(100),
            MonitorKind::Sampling(1000),
            MonitorKind::Pingmesh,
        ]
    }
}

/// Attach the chosen monitor to every switch (and NetSeer to NICs).
pub fn deploy_monitor(sim: &mut Simulator, kind: MonitorKind, cfg: &NetSeerConfig) {
    match kind {
        MonitorKind::NetSeer => {
            deploy(sim, &DeployOptions { cfg: cfg.clone(), on_nics: true });
        }
        MonitorKind::NetSight => {
            for s in sim.switch_ids() {
                sim.switch_mut(s).set_monitor(Box::new(NetSightMonitor::new()));
            }
        }
        MonitorKind::Sampling(k) => {
            for s in sim.switch_ids() {
                sim.switch_mut(s).set_monitor(Box::new(SamplingMonitor::new(k)));
            }
        }
        MonitorKind::EverFlow => {
            for s in sim.switch_ids() {
                // Rotate every 10 ms (scaled from 1 min to simulation scale).
                // The paper traces 1,000 of its ~800K flows; scale the
                // set to our ~4K-flow runs to keep the same traced
                // fraction (~0.1-0.2%).
                sim.switch_mut(s).set_monitor(Box::new(EverFlowMonitor::with_params(
                    u64::from(s) + 1,
                    8,
                    10 * MILLIS,
                )));
            }
        }
        MonitorKind::Snmp => {
            for s in sim.switch_ids() {
                // 5 ms polls, scaled down from production's 30-60 s the
                // same way probe rounds are scaled.
                sim.switch_mut(s).set_monitor(Box::new(SnmpMonitor::new(5 * MILLIS)));
            }
        }
        MonitorKind::Pingmesh => {
            // Probing at 1 ms rounds (scaled from Pingmesh's 1 s).
            for h in sim.host_ids() {
                sim.schedule_probing(h, 0, MILLIS, 20 * MILLIS);
            }
        }
        MonitorKind::None => {}
    }
}

/// A filtered copy of the ground truth (e.g. "only events after the fault
/// for flows that existed before it" — how the paper scores injected path
/// changes without crediting SYN mirroring for them).
pub fn filter_gt(gt: &GroundTruth, keep: impl Fn(&GtEvent) -> bool) -> GroundTruth {
    let mut out = GroundTruth::new();
    for e in gt.events() {
        if keep(e) {
            out.record(e.clone());
        }
    }
    out
}

/// Merge all baseline observation logs across switches into one.
pub fn merged_log(sim: &mut Simulator, kind: MonitorKind) -> ObservationLog {
    let mut log = ObservationLog::new();
    for id in sim.switch_ids() {
        let Node::Switch(sw) = &mut sim.nodes[id as usize] else { continue };
        let Some(m) = sw.monitor.as_mut() else { continue };
        let obs: Option<&ObservationLog> = match kind {
            MonitorKind::NetSight => m.as_any().downcast_ref::<NetSightMonitor>().map(|x| &x.log),
            MonitorKind::Sampling(_) => {
                m.as_any().downcast_ref::<SamplingMonitor>().map(|x| &x.log)
            }
            MonitorKind::EverFlow => m.as_any().downcast_ref::<EverFlowMonitor>().map(|x| &x.log),
            _ => None,
        };
        if let Some(o) = obs {
            log.obs.extend(o.obs.iter().copied());
        }
    }
    log
}

/// Coverage of `ty` for a monitor against (possibly filtered) ground
/// truth: returns (covered, total).
pub fn coverage_of(
    sim: &mut Simulator,
    kind: MonitorKind,
    gt: &GroundTruth,
    ty: EventType,
) -> (usize, usize) {
    match kind {
        MonitorKind::NetSeer => {
            let store = collect_events(sim);
            let seen = store.flow_events(ty);
            let want = gt.flow_events(ty);
            let covered = want.iter().filter(|fe| seen.contains(fe)).count();
            (covered, want.len())
        }
        MonitorKind::Pingmesh => {
            if ty == EventType::Congestion {
                fet_baselines::pingmesh_congestion_coverage(gt)
            } else {
                (0, gt.flow_events(ty).len())
            }
        }
        MonitorKind::Snmp | MonitorKind::None => (0, gt.flow_events(ty).len()),
        _ => {
            let log = merged_log(sim, kind);
            coverage(gt, &log, ty)
        }
    }
}

/// Packet-granularity coverage: of all ground-truth event *packets* of
/// `ty`, how many did the monitor capture? Fine-timescale events like
/// microbursts make this the discriminating metric (Figure 10): a 1:k
/// sampler catches ~1/k of the event packets even when it eventually sees
/// every flow. NetSeer's group-caching counters account for every event
/// packet of a reported flow event, so it scores the packets of each
/// (device, flow) it reported.
pub fn packet_coverage_of(
    sim: &mut Simulator,
    kind: MonitorKind,
    gt: &GroundTruth,
    ty: EventType,
) -> (usize, usize) {
    let pkt_events: Vec<_> =
        gt.events().iter().filter(|e| e.ty == ty && e.flow.is_some()).collect();
    let total = pkt_events.len();
    if total == 0 {
        return (0, 0);
    }
    match kind {
        MonitorKind::NetSeer => {
            let store = collect_events(sim);
            let seen = store.flow_events(ty);
            let covered =
                pkt_events.iter().filter(|e| seen.contains(&(e.device, e.flow.unwrap()))).count();
            (covered, total)
        }
        MonitorKind::Pingmesh => {
            let covered = pkt_events
                .iter()
                .filter(|e| {
                    let f = e.flow.unwrap();
                    f.proto == fet_packet::IpProtocol::Udp
                        && (f.dport == fet_netsim::host::PROBE_ECHO_PORT
                            || f.sport == fet_netsim::host::PROBE_ECHO_PORT)
                })
                .count();
            (covered, total)
        }
        MonitorKind::Snmp | MonitorKind::None => (0, total),
        _ => {
            let log = merged_log(sim, kind);
            use std::collections::HashSet;
            let mut times: HashSet<(u32, fet_packet::FlowKey, u64)> = HashSet::new();
            for o in &log.obs {
                times.insert((o.device, o.flow, o.t_egress));
                times.insert((o.device, o.flow, o.t_ingress));
            }
            let covered = pkt_events
                .iter()
                .filter(|e| times.contains(&(e.device, e.flow.unwrap(), e.time_ns)))
                .count();
            (covered, total)
        }
    }
}

/// Monitoring bandwidth overhead: management bytes ÷ per-hop traffic bytes.
pub fn overhead_of(sim: &Simulator) -> f64 {
    let denom = sim.switch_tx_bytes().max(1);
    sim.mgmt.total_bytes() as f64 / denom as f64
}

/// What faults a standard evaluation run injects (paper §5.2: congestion
/// and MMU drops arise naturally; inter-switch drop, pipeline drop, and
/// path change are injected).
#[derive(Debug, Clone, Copy)]
pub struct InjectSpec {
    /// Burst-drop this many frames on a ToR uplink.
    pub interswitch_burst: u32,
    /// Also corrupt (vs silently drop).
    pub corrupt: bool,
    /// Blackhole one destination at one ToR.
    pub blackhole: bool,
    /// Reroute one destination mid-run (path change).
    pub reroute: bool,
    /// Add an incast to force congestion + MMU drops.
    pub incast: bool,
    /// Fault activation time, ns.
    pub at_ns: u64,
}

impl Default for InjectSpec {
    fn default() -> Self {
        InjectSpec {
            interswitch_burst: 16,
            corrupt: false,
            blackhole: true,
            reroute: true,
            incast: true,
            at_ns: 5 * MILLIS,
        }
    }
}

/// One standard evaluation run.
pub struct RunOutcome {
    /// The simulator after the run (monitors still attached).
    pub sim: Simulator,
    /// Topology handles.
    pub ft: FatTree,
    /// When faults activated.
    pub fault_at_ns: u64,
}

/// Build + run a standard §5.2-style experiment with one monitor.
pub fn run_experiment(
    dist: &FlowSizeDist,
    kind: MonitorKind,
    inject: &InjectSpec,
    seed: u64,
    duration_ns: u64,
) -> RunOutcome {
    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 256 * 1024;
    params.switch_config.congestion_threshold_ns = 20 * MICROS;
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    fet_netsim::routing::install_ecmp_routes(&mut sim);
    deploy_monitor(&mut sim, kind, &NetSeerConfig::default());

    let tp = TrafficParams {
        utilization: 0.7,
        duration_ns,
        seed,
        max_flows: 4_000,
        ..Default::default()
    };
    let _keys = generate_traffic(&mut sim, &ft, dist, &tp);

    if inject.interswitch_burst > 0 {
        let tor = ft.edges[0][0];
        let burst = inject.interswitch_burst;
        let corrupt = inject.corrupt;
        let at = inject.at_ns;
        for port in 0..2 {
            if let Some(dir) = sim.link_direction_mut(tor, port) {
                dir.faults.burst_drop = Some(BurstDrop { at_ns: at, count: burst, corrupt });
            }
        }
    }
    if inject.blackhole {
        let tor = ft.edges[1][0];
        let vip = ft.host_ips[0];
        sim.schedule_control(inject.at_ns, move |s| {
            fet_netsim::routing::remove_route(s, tor, vip);
        });
    }
    if inject.reroute {
        // A long-lived victim flow from a host under tor0_1 to pod 1, plus
        // a two-step reroute (pin to port 0, then port 1) that guarantees
        // its ECMP choice changes mid-flight whatever it hashed to.
        let tor = ft.edges[0][1];
        let vip = ft.host_ips[7];
        let victim = fet_packet::FlowKey::tcp(ft.host_ips[2], 61_000, vip, 443);
        let h = ft.hosts[2];
        let idx = sim.host_mut(h).add_flow(fet_netsim::host::FlowSpec {
            key: victim,
            total_bytes: 40_000_000,
            pkt_payload: 1000,
            rate_gbps: 4.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        sim.schedule_control(inject.at_ns, move |s| {
            override_route(s, tor, vip, vec![0]);
        });
        sim.schedule_control(inject.at_ns + 2 * MILLIS, move |s| {
            override_route(s, tor, vip, vec![1]);
        });
    }
    if inject.incast {
        let sources: Vec<usize> = (0..7).collect();
        generate_incast(&mut sim, &ft, 7, &sources, 1_500_000, inject.at_ns);
    }

    sim.run_until(duration_ns + 20 * MILLIS);
    RunOutcome { sim, ft, fault_at_ns: inject.at_ns }
}

/// Render a percentage for figure tables.
pub fn pct(covered: usize, total: usize) -> String {
    if total == 0 {
        return "  n/a ".into();
    }
    format!("{:5.1}%", 100.0 * covered as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_workloads::distributions::WEB;

    #[test]
    fn netseer_run_covers_everything_netsight_too() {
        let inject = InjectSpec::default();
        for kind in [MonitorKind::NetSeer, MonitorKind::NetSight] {
            let mut out = run_experiment(&WEB, kind, &inject, 42, 10 * MILLIS);
            let gt = filter_gt(&out.sim.gt, |_| true);
            for ty in [EventType::PipelineDrop, EventType::InterSwitchDrop] {
                let (c, t) = coverage_of(&mut out.sim, kind, &gt, ty);
                assert!(t > 0, "{kind:?}/{ty}: no ground truth");
                assert_eq!(c, t, "{kind:?}/{ty}: {c}/{t}");
            }
            // The full-blast incast drops faster than the 40 Gbps MMU
            // redirect path (the capacity caveat of §4), so MMU coverage is
            // near- but not always exactly-full here.
            let (c, t) = coverage_of(&mut out.sim, kind, &gt, EventType::MmuDrop);
            assert!(t > 0);
            assert!(c as f64 >= 0.95 * t as f64, "{kind:?}/mmu-drop: {c}/{t}");
        }
    }

    #[test]
    fn sampling_covers_little_and_no_drops() {
        let inject = InjectSpec::default();
        let mut out = run_experiment(&WEB, MonitorKind::Sampling(100), &inject, 42, 10 * MILLIS);
        let gt = filter_gt(&out.sim.gt, |_| true);
        let (c, t) =
            coverage_of(&mut out.sim, MonitorKind::Sampling(100), &gt, EventType::PipelineDrop);
        assert!(t > 0);
        assert_eq!(c, 0, "sampling cannot see drops");
        let (cc, ct) =
            coverage_of(&mut out.sim, MonitorKind::Sampling(100), &gt, EventType::Congestion);
        assert!(ct > 0);
        assert!(cc < ct / 2, "sampling congestion coverage too high: {cc}/{ct}");
    }

    #[test]
    fn netseer_overhead_is_orders_below_netsight() {
        let inject = InjectSpec::default();
        let ns = run_experiment(&WEB, MonitorKind::NetSeer, &inject, 42, 10 * MILLIS);
        let nsight = run_experiment(&WEB, MonitorKind::NetSight, &inject, 42, 10 * MILLIS);
        let o_ns = overhead_of(&ns.sim);
        let o_sight = overhead_of(&nsight.sim);
        assert!(o_ns < o_sight / 50.0, "netseer {o_ns} vs netsight {o_sight}");
        assert!(o_sight > 0.01, "netsight should be heavy: {o_sight}");
    }
}
