//! Criterion micro-benchmarks for NetSeer's per-packet primitives — the
//! operations that must run at line rate in the emulated pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fet_packet::builder::{build_data_packet, extract_flow, insert_seqtag, strip_seqtag};
use fet_packet::event::{EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_pdp::HashUnit;
use netseer::batch::CebpBatcher;
use netseer::cpu::SwitchCpu;
use netseer::dedup::{BloomDedup, GroupCache};
use netseer::detect::interswitch::{GapDetector, PortTagger};
use netseer::detect::path_change::PathTable;
use netseer::NetSeerConfig;
use std::hint::black_box;
use std::time::Duration;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | (n & 0xffff)),
        (n % 50_000) as u16,
        Ipv4Addr::from_octets([10, 99, 0, 1]),
        80,
    )
}

fn ev(n: u32) -> EventRecord {
    EventRecord {
        ty: EventType::Congestion,
        flow: flow(n),
        detail: EventDetail::Congestion { egress_port: 1, queue: 0, latency_us: 100 },
        counter: 1,
        hash: n,
    }
}

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    g.throughput(Throughput::Elements(1));
    g.bench_function("group_cache_offer_hot", |b| {
        let mut gc = GroupCache::new("bench", 4096, 128, 1);
        let f = flow(1);
        b.iter(|| black_box(gc.offer(black_box(f))));
    });
    g.bench_function("group_cache_offer_churn", |b| {
        let mut gc = GroupCache::new("bench", 4096, 128, 1);
        let mut n = 0u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(gc.offer(flow(n)))
        });
    });
    g.bench_function("bloom_offer_churn", |b| {
        let mut bloom = BloomDedup::new(1 << 16, 1);
        let mut n = 0u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(bloom.offer(flow(n)))
        });
    });
    g.finish();
}

fn bench_interswitch(c: &mut Criterion) {
    let mut g = c.benchmark_group("interswitch");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    g.throughput(Throughput::Elements(1));
    g.bench_function("tagger_next", |b| {
        let mut t = PortTagger::new(1024);
        let f = flow(7);
        b.iter(|| black_box(t.next(black_box(f))));
    });
    g.bench_function("tagger_lookup", |b| {
        let mut t = PortTagger::new(1024);
        for n in 0..1024 {
            t.next(flow(n));
        }
        let mut seq = 0u32;
        b.iter(|| {
            seq = (seq + 1) % 1024;
            black_box(t.lookup(black_box(seq)))
        });
    });
    g.bench_function("gap_observe", |b| {
        let mut gd = GapDetector::new();
        let mut seq = 0u32;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            black_box(gd.observe(black_box(seq)))
        });
    });
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("batching");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_poll_cycle", |b| {
        let mut batcher = CebpBatcher::new(&NetSeerConfig::default());
        let mut n = 0u32;
        let mut t = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            t += 100;
            batcher.push(t, ev(n));
            black_box(batcher.poll(t).len())
        });
    });
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_cpu");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    let batch: Vec<EventRecord> = (0..50).map(ev).collect();
    g.throughput(Throughput::Elements(50));
    g.bench_function("process_batch_50", |b| {
        b.iter_batched(
            || SwitchCpu::new(&NetSeerConfig::default()),
            |mut cpu| black_box(cpu.process_batch(0, &batch, 1_264).len()),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    let pkt = build_data_packet(&flow(1), 1000, 0, 0, 64);
    g.throughput(Throughput::Bytes(pkt.len() as u64));
    g.bench_function("extract_flow", |b| {
        b.iter(|| black_box(extract_flow(black_box(&pkt))));
    });
    g.bench_function("seqtag_insert_strip", |b| {
        b.iter(|| {
            let tagged = insert_seqtag(black_box(&pkt), 42).unwrap();
            black_box(strip_seqtag(&tagged).unwrap())
        });
    });
    let rec = ev(9);
    g.bench_function("event_encode_decode", |b| {
        b.iter(|| {
            let bytes = black_box(&rec).to_bytes();
            black_box(EventRecord::read_from(&bytes).unwrap())
        });
    });
    g.bench_function("crc_hash_flow", |b| {
        let h = HashUnit::new("bench", 7, 32);
        let f = flow(3);
        b.iter(|| black_box(h.hash_flow(black_box(&f))));
    });
    g.finish();
}

fn bench_path_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_table");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    g.throughput(Throughput::Elements(1));
    g.bench_function("offer_churn", |b| {
        let mut t = PathTable::new(8192, 1);
        let mut n = 0u32;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(t.offer(flow(n), 1, 2))
        });
    });
    g.finish();
}

fn bench_full_monitor_path(c: &mut Criterion) {
    use fet_netsim::monitor::{Actions, EgressCtx, RoutedCtx, SwitchMonitor};
    use fet_pdp::PacketMeta;
    use netseer::{NetSeerMonitor, Role};

    let mut g = c.benchmark_group("monitor_path");
    g.sample_size(30).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    g.throughput(Throughput::Elements(1));
    // The per-packet hot path of a healthy switch: routed + egress hooks
    // with tagging enabled and no events firing.
    g.bench_function("healthy_packet", |b| {
        let mut m = NetSeerMonitor::new(0, Role::Switch, NetSeerConfig::default());
        let pkt = build_data_packet(&flow(1), 1000, 0, 0, 64);
        let mut meta = PacketMeta::arriving(1, 0, pkt.len());
        meta.flow = Some(flow(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 100;
            let rctx = RoutedCtx {
                now_ns: n,
                node: 0,
                ingress_port: 1,
                egress_port: 2,
                queue: 0,
                queue_paused: false,
                flow: flow((n % 1000) as u32),
            };
            let mut out = Actions::new();
            let mut f = pkt.clone();
            m.on_routed(&rctx, &f, &mut out);
            meta.egress_ts_ns = n + 500;
            let ectx = EgressCtx {
                now_ns: n + 500,
                node: 0,
                port: 2,
                queue: 0,
                peer_tagged: true,
                meta: &meta,
            };
            m.on_egress(&ectx, &mut f, &mut out);
            black_box(out.is_empty())
        });
    });
    // The event-storm path: every packet is a congestion event packet.
    g.bench_function("event_packet", |b| {
        let mut m = NetSeerMonitor::new(0, Role::Switch, NetSeerConfig::default());
        let pkt = build_data_packet(&flow(1), 1000, 0, 0, 64);
        let mut meta = PacketMeta::arriving(1, 0, pkt.len());
        meta.flow = Some(flow(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 100;
            meta.ingress_ts_ns = n;
            meta.egress_ts_ns = n + 100_000; // 100 us queuing delay
            let ectx = EgressCtx {
                now_ns: n + 100_000,
                node: 0,
                port: 2,
                queue: 0,
                peer_tagged: false,
                meta: &meta,
            };
            let mut out = Actions::new();
            let mut f = pkt.clone();
            m.on_egress(&ectx, &mut f, &mut out);
            black_box(m.stats.event_packets)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dedup,
    bench_interswitch,
    bench_batching,
    bench_cpu,
    bench_packets,
    bench_path_table,
    bench_full_monitor_path
);
criterion_main!(benches);
