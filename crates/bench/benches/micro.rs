//! Micro-benchmarks for NetSeer's per-packet primitives — the operations
//! that must run at line rate in the emulated pipeline.
//!
//! Uses a small std-only timing harness (median of batched runs) instead of
//! Criterion so the workspace carries no external registry dependencies and
//! builds fully offline. Run with `cargo bench -p fet-bench`.

use fet_packet::builder::{build_data_packet, extract_flow, insert_seqtag, strip_seqtag};
use fet_packet::event::{EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use fet_pdp::HashUnit;
use netseer::batch::CebpBatcher;
use netseer::cpu::SwitchCpu;
use netseer::dedup::{BloomDedup, GroupCache};
use netseer::detect::interswitch::{GapDetector, PortTagger};
use netseer::detect::path_change::PathTable;
use netseer::NetSeerConfig;
use std::hint::black_box;
use std::time::Instant;

fn flow(n: u32) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_u32(0x0a00_0000 | (n & 0xffff)),
        (n % 50_000) as u16,
        Ipv4Addr::from_octets([10, 99, 0, 1]),
        80,
    )
}

fn ev(n: u32) -> EventRecord {
    EventRecord {
        ty: EventType::Congestion,
        flow: flow(n),
        detail: EventDetail::Congestion { egress_port: 1, queue: 0, latency_us: 100 },
        counter: 1,
        hash: n,
    }
}

/// Time `iters` calls of `f`, repeated over `samples` batches; report the
/// median per-op latency so outliers (scheduler noise) don't skew results.
fn bench<F: FnMut()>(group: &str, name: &str, ops_per_iter: u64, mut f: F) {
    const SAMPLES: usize = 11;
    const ITERS: u64 = 20_000;
    // Warm-up.
    for _ in 0..ITERS / 4 {
        f();
    }
    let mut per_op = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64;
        per_op.push(ns / (ITERS * ops_per_iter) as f64);
    }
    per_op.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = per_op[SAMPLES / 2];
    let mops = 1e3 / median;
    println!("{group}/{name:<24} {median:>9.1} ns/op  ({mops:>8.2} Mops/s)");
}

fn bench_dedup() {
    let mut gc = GroupCache::new("bench", 4096, 128, 1);
    let f = flow(1);
    bench("dedup", "group_cache_offer_hot", 1, || {
        black_box(gc.offer(black_box(f)));
    });
    let mut gc = GroupCache::new("bench", 4096, 128, 1);
    let mut n = 0u32;
    bench("dedup", "group_cache_offer_churn", 1, || {
        n = n.wrapping_add(1);
        black_box(gc.offer(flow(n)));
    });
    let mut bloom = BloomDedup::new(1 << 16, 1);
    let mut n = 0u32;
    bench("dedup", "bloom_offer_churn", 1, || {
        n = n.wrapping_add(1);
        black_box(bloom.offer(flow(n)));
    });
}

fn bench_interswitch() {
    let mut t = PortTagger::new(1024);
    let f = flow(7);
    bench("interswitch", "tagger_next", 1, || {
        black_box(t.next(black_box(f)));
    });
    let mut t = PortTagger::new(1024);
    for n in 0..1024 {
        t.next(flow(n));
    }
    let mut seq = 0u32;
    bench("interswitch", "tagger_lookup", 1, || {
        seq = (seq + 1) % 1024;
        black_box(t.lookup(black_box(seq)));
    });
    let mut gd = GapDetector::new();
    let mut seq = 0u32;
    bench("interswitch", "gap_observe", 1, || {
        seq = seq.wrapping_add(1);
        black_box(gd.observe(black_box(seq)));
    });
}

fn bench_batching() {
    let mut batcher = CebpBatcher::new(&NetSeerConfig::default());
    let mut n = 0u32;
    let mut t = 0u64;
    bench("batching", "push_poll_cycle", 1, || {
        n = n.wrapping_add(1);
        t += 100;
        batcher.push(t, ev(n));
        black_box(batcher.poll(t).len());
    });
}

fn bench_cpu() {
    let batch: Vec<EventRecord> = (0..50).map(ev).collect();
    let mut cpu = SwitchCpu::new(&NetSeerConfig::default());
    let mut calls = 0u64;
    bench("switch_cpu", "process_batch_50", 50, || {
        calls += 1;
        if calls.is_multiple_of(1024) {
            cpu = SwitchCpu::new(&NetSeerConfig::default());
        }
        black_box(cpu.process_batch(0, &batch, 1_264).len());
    });
}

fn bench_packets() {
    let pkt = build_data_packet(&flow(1), 1000, 0, 0, 64);
    bench("packet", "extract_flow", 1, || {
        black_box(extract_flow(black_box(&pkt)));
    });
    bench("packet", "seqtag_insert_strip", 1, || {
        let tagged = insert_seqtag(black_box(&pkt), 42).unwrap();
        black_box(strip_seqtag(&tagged).unwrap());
    });
    let rec = ev(9);
    bench("packet", "event_encode_decode", 1, || {
        let bytes = black_box(&rec).to_bytes();
        black_box(EventRecord::read_from(&bytes).unwrap());
    });
    let h = HashUnit::new("bench", 7, 32);
    let f = flow(3);
    bench("packet", "crc_hash_flow", 1, || {
        black_box(h.hash_flow(black_box(&f)));
    });
}

fn bench_path_table() {
    let mut t = PathTable::new(8192, 1);
    let mut n = 0u32;
    bench("path_table", "offer_churn", 1, || {
        n = n.wrapping_add(1);
        black_box(t.offer(flow(n), 1, 2));
    });
}

fn bench_full_monitor_path() {
    use fet_netsim::monitor::{Actions, EgressCtx, RoutedCtx, SwitchMonitor};
    use fet_pdp::PacketMeta;
    use netseer::{NetSeerMonitor, Role};

    // The per-packet hot path of a healthy switch: routed + egress hooks
    // with tagging enabled and no events firing.
    let mut m = NetSeerMonitor::new(0, Role::Switch, NetSeerConfig::default());
    let pkt = build_data_packet(&flow(1), 1000, 0, 0, 64);
    let mut meta = PacketMeta::arriving(1, 0, pkt.len());
    meta.flow = Some(flow(1));
    let mut n = 0u64;
    bench("monitor_path", "healthy_packet", 1, || {
        n += 100;
        let rctx = RoutedCtx {
            now_ns: n,
            node: 0,
            ingress_port: 1,
            egress_port: 2,
            queue: 0,
            queue_paused: false,
            flow: flow((n % 1000) as u32),
        };
        let mut out = Actions::new();
        let mut f = pkt.clone();
        m.on_routed(&rctx, &f, &mut out);
        meta.egress_ts_ns = n + 500;
        let ectx = EgressCtx {
            now_ns: n + 500,
            node: 0,
            port: 2,
            queue: 0,
            peer_tagged: true,
            meta: &meta,
        };
        m.on_egress(&ectx, &mut f, &mut out);
        black_box(out.is_empty());
    });
    // The event-storm path: every packet is a congestion event packet.
    let mut m = NetSeerMonitor::new(0, Role::Switch, NetSeerConfig::default());
    let mut meta = PacketMeta::arriving(1, 0, pkt.len());
    meta.flow = Some(flow(1));
    let mut n = 0u64;
    bench("monitor_path", "event_packet", 1, || {
        n += 100;
        meta.ingress_ts_ns = n;
        meta.egress_ts_ns = n + 100_000; // 100 us queuing delay
        let ectx = EgressCtx {
            now_ns: n + 100_000,
            node: 0,
            port: 2,
            queue: 0,
            peer_tagged: false,
            meta: &meta,
        };
        let mut out = Actions::new();
        let mut f = pkt.clone();
        m.on_egress(&ectx, &mut f, &mut out);
        black_box(m.stats.event_packets);
    });
}

fn main() {
    bench_dedup();
    bench_interswitch();
    bench_batching();
    bench_cpu();
    bench_packets();
    bench_path_table();
    bench_full_monitor_path();
}
