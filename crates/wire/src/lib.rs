//! Panic-free NetFlow v5 / v9 / IPFIX ingestion for the NetSeer collector.
//!
//! The simulator exercises the collector with events born in-process;
//! this crate is the hostile-input edge (ROADMAP open item 1): untrusted
//! UDP payloads from real exporters, decoded into the same 24-byte FET
//! event model and handed to the collector's normal admission path.
//!
//! Design rules, in order:
//!
//! 1. **Never panic.** Every parser is total over arbitrary bytes; the
//!    fuzz harness (`tests/fuzz_parsers.rs`) enforces it.
//! 2. **Nothing is dropped silently.** Every refusal lands under one
//!    [`reason::RejectReason`]; every record an exporter claimed but we
//!    could not decode is booked as *malformed*, feeding the collector
//!    ledger identity
//!    `generated == delivered + shed + pending + buffered + lost_to_crash
//!    + corrupted + malformed`.
//! 3. **The exporter cannot grow our state.** Template caches are bounded
//!    per observation domain *and* across domains
//!    ([`template::TemplateCacheConfig`]), with deterministic LRU eviction
//!    and stale-template expiry.
//! 4. **Loss before our doorstep is visible.** Export sequence numbers are
//!    reconciled per stream; gaps surface as an upstream-loss signal
//!    ([`session::UpstreamLossReport`]) for the analytics layer.
//! 5. **Exporter clocks are never trusted.** Header export times are
//!    plausibility-clamped against the collector's receive time, frozen
//!    sysuptimes and implausible flow durations are booked under a
//!    [`clock::ClockLie`], and sysuptime arithmetic is wrap-aware
//!    ([`clock::uptime_delta_ms`]) across the ~49.7-day u32 wrap.
//!
//! Layering: this crate depends only on `fet-packet`. The simulator's
//! hostile-exporter model (`fet_netsim::exporter`) and the collector
//! adapter (`netseer::wire`) build on top.

#![warn(missing_docs)]

pub mod builder;
pub mod clock;
pub mod fields;
pub mod ipfix;
pub mod reason;
mod sets;
pub mod template;
pub mod translate;
pub mod v5;
pub mod v9;

mod session;

pub use clock::{uptime_delta_ms, ClockLie, ALL_CLOCK_LIES, CLOCK_LIE_COUNT};
pub use reason::{RejectReason, ALL_REASONS, REASON_COUNT};
pub use session::{
    IngestReport, UpstreamLossReport, WireProtocol, WireSession, WireSessionConfig,
    WireSessionStats, MAX_PLAUSIBLE_GAP,
};
pub use template::{
    InstallOutcome, Template, TemplateCache, TemplateCacheConfig, TemplateCacheStats,
    TemplateField, VARLEN,
};
pub use translate::{flow_hash, translate, FlowSample};

#[cfg(test)]
pub(crate) mod test_support {
    use crate::translate::FlowSample;
    use fet_packet::flow::FlowKey;
    use fet_packet::Ipv4Addr;

    /// A distinct, deterministic flow sample per index.
    pub fn sample(n: u8) -> FlowSample {
        FlowSample {
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, n]),
                1000 + n as u16,
                Ipv4Addr::from_octets([10, 1, 0, n]),
                443,
            ),
            in_port: 2,
            out_port: 4,
            packets: 10 + n as u64,
            bytes: 1000 + n as u64 * 10,
            tcp_flags: 0x10,
            forwarding_status: Some(0x40),
            first_ms: 0,
            last_ms: 0,
        }
    }
}
