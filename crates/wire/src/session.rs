//! Per-exporter ingest session: version sniffing, stateful template
//! decoding, per-reason accounting, and sequence-gap (upstream loss)
//! detection — everything between "a UDP payload arrived" and "FET events
//! plus honest counters".

use crate::clock::{ClockState, ClockVerdict, CLOCK_LIE_COUNT};
use crate::ipfix;
use crate::reason::{RejectReason, REASON_COUNT};
use crate::template::{TemplateCache, TemplateCacheConfig};
use crate::translate::FlowSample;
use crate::v5;
use crate::v9;
use std::collections::BTreeMap;

/// Which export protocol a datagram spoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireProtocol {
    /// NetFlow v5.
    V5,
    /// NetFlow v9.
    V9,
    /// IPFIX (v10).
    Ipfix,
}

impl WireProtocol {
    /// Version tag on the wire.
    pub fn version(self) -> u16 {
        match self {
            WireProtocol::V5 => 5,
            WireProtocol::V9 => 9,
            WireProtocol::Ipfix => 10,
        }
    }

    /// Human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            WireProtocol::V5 => "netflow-v5",
            WireProtocol::V9 => "netflow-v9",
            WireProtocol::Ipfix => "ipfix",
        }
    }
}

/// Session bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSessionConfig {
    /// Template-cache bounds (the headline `max_templates` knob).
    pub template: TemplateCacheConfig,
    /// Largest datagram accepted; longer input is rejected outright.
    pub max_datagram: usize,
    /// Maximum (protocol, domain) sequence streams tracked. Domains are
    /// attacker-controlled 32-bit values, so loss tracking must be bounded
    /// like the template cache; beyond the cap the least recently seen
    /// stream is forgotten (its accumulated loss stays in the session
    /// totals).
    pub max_streams: usize,
}

impl Default for WireSessionConfig {
    fn default() -> Self {
        WireSessionConfig {
            template: TemplateCacheConfig::default(),
            max_datagram: 65535,
            max_streams: 256,
        }
    }
}

/// What one datagram produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Protocol, once the version field was readable.
    pub protocol: Option<WireProtocol>,
    /// Observation domain / engine the datagram belonged to (0 when the
    /// datagram died before the header decoded).
    pub domain: u32,
    /// Decoded flow records, in wire order.
    pub samples: Vec<FlowSample>,
    /// Flow records successfully decoded (== `samples.len()`).
    pub decoded: u64,
    /// Records claimed or started but not decodable.
    pub malformed: u64,
    /// Datagram-fatal rejection, if the framing could not be trusted.
    pub rejected: Option<RejectReason>,
    /// Soft (localized) reject counts by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Records the exporter's sequence numbers say we never received
    /// (datagrams for v9, whose sequence counts datagrams).
    pub lost_upstream: u64,
    /// 1 if this datagram revealed a fresh sequence gap.
    pub gap_events: u64,
    /// The authoritative event time for this datagram's records, ns: the
    /// exporter's export time when plausible, else the collector receive
    /// time (`now_ns`). 0 only on rejected datagrams.
    pub event_time_ns: u64,
    /// Clock lies found, by [`ClockLie::index`](crate::ClockLie::index).
    pub clock_lies: [u64; CLOCK_LIE_COUNT],
    /// 1 if the export time was present but distrusted (clamped).
    pub clamped_stamps: u64,
}

impl IngestReport {
    fn rejected(reason: RejectReason, protocol: Option<WireProtocol>) -> Self {
        IngestReport {
            protocol,
            domain: 0,
            samples: Vec::new(),
            decoded: 0,
            malformed: 0,
            rejected: Some(reason),
            soft: [0; REASON_COUNT],
            lost_upstream: 0,
            gap_events: 0,
            event_time_ns: 0,
            clock_lies: [0; CLOCK_LIE_COUNT],
            clamped_stamps: 0,
        }
    }

    /// Ledger contribution of this datagram: every record that enters the
    /// `generated` term.
    pub fn claimed(&self) -> u64 {
        self.decoded + self.malformed
    }
}

/// Running totals across a session's lifetime; all monotonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSessionStats {
    /// Datagrams offered.
    pub datagrams: u64,
    /// Datagrams that decoded (possibly with soft defects).
    pub accepted: u64,
    /// Datagrams rejected outright.
    pub rejected: u64,
    /// Fatal rejections by [`RejectReason::index`].
    pub rejects: [u64; REASON_COUNT],
    /// Soft rejections by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Flow records decoded.
    pub decoded: u64,
    /// Records booked as malformed.
    pub malformed: u64,
    /// Upstream loss units (records; datagrams for v9).
    pub lost_upstream: u64,
    /// Distinct sequence gaps observed.
    pub gap_events: u64,
    /// Clock lies by [`ClockLie::index`](crate::ClockLie::index).
    pub clock_lies: [u64; CLOCK_LIE_COUNT],
    /// Datagrams whose export time was present but distrusted.
    pub clamped_stamps: u64,
}

impl Default for WireSessionStats {
    fn default() -> Self {
        WireSessionStats {
            datagrams: 0,
            accepted: 0,
            rejected: 0,
            rejects: [0; REASON_COUNT],
            soft: [0; REASON_COUNT],
            decoded: 0,
            malformed: 0,
            lost_upstream: 0,
            gap_events: 0,
            clock_lies: [0; CLOCK_LIE_COUNT],
            clamped_stamps: 0,
        }
    }
}

/// Accumulated upstream loss for one (protocol, domain) stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpstreamLossReport {
    /// Export protocol of the stream.
    pub protocol: WireProtocol,
    /// Observation domain / engine id.
    pub domain: u32,
    /// Loss units (flow records for v5/IPFIX; datagrams for v9).
    pub lost: u64,
    /// Distinct gaps.
    pub gaps: u64,
}

/// Largest single sequence jump still believed to be real upstream loss;
/// larger jumps are treated as an exporter restart.
pub const MAX_PLAUSIBLE_GAP: u32 = 1 << 24;

#[derive(Debug, Clone, Copy)]
struct SeqState {
    expected: u32,
    lost: u64,
    gaps: u64,
    touch: u64,
    clock: ClockState,
}

/// A stateful ingest session (one per exporter peer, or one shared — the
/// observation domain keys all internal state).
#[derive(Debug)]
pub struct WireSession {
    cfg: WireSessionConfig,
    cache: TemplateCache,
    seq: BTreeMap<(u16, u32), SeqState>,
    seq_tick: u64,
    stats: WireSessionStats,
}

impl WireSession {
    /// New session with the given bounds.
    pub fn new(cfg: WireSessionConfig) -> Self {
        WireSession {
            cache: TemplateCache::new(cfg.template),
            cfg,
            seq: BTreeMap::new(),
            seq_tick: 0,
            stats: WireSessionStats::default(),
        }
    }

    /// The template cache (bounded; inspect occupancy and stats here).
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// Session totals.
    pub fn stats(&self) -> &WireSessionStats {
        &self.stats
    }

    /// Expire stale templates; returns how many were dropped.
    pub fn sweep_templates(&mut self, now_ns: u64) -> u64 {
        self.cache.sweep(now_ns)
    }

    /// Per-stream upstream-loss accumulators, in deterministic key order.
    pub fn upstream_losses(&self) -> Vec<UpstreamLossReport> {
        self.seq
            .iter()
            .filter(|(_, s)| s.gaps > 0)
            .map(|(&(ver, domain), s)| UpstreamLossReport {
                protocol: match ver {
                    5 => WireProtocol::V5,
                    9 => WireProtocol::V9,
                    _ => WireProtocol::Ipfix,
                },
                domain,
                lost: s.lost,
                gaps: s.gaps,
            })
            .collect()
    }

    /// Track a stream's sequence number. `advance` is how far this
    /// datagram moves the counter (records or datagrams, per protocol).
    ///
    /// A forward jump up to [`MAX_PLAUSIBLE_GAP`] is loss; anything larger
    /// is indistinguishable from an exporter restart (sequence collapsing
    /// through the u32 wraparound) and re-bases silently — the cap keeps a
    /// restart from being booked as hundreds of millions of lost records.
    fn track_sequence(&mut self, ver: u16, domain: u32, seq: u32, advance: u32) -> (u64, u64) {
        self.seq_tick += 1;
        let tick = self.seq_tick;
        if !self.seq.contains_key(&(ver, domain)) && self.seq.len() >= self.cfg.max_streams.max(1) {
            // Forget the least recently seen stream; its loss totals were
            // already folded into the session stats as they accrued.
            if let Some((&victim, _)) = self.seq.iter().min_by_key(|(k, s)| (s.touch, **k)) {
                self.seq.remove(&victim);
            }
        }
        let entry = self.seq.entry((ver, domain)).or_insert(SeqState {
            expected: seq,
            lost: 0,
            gaps: 0,
            touch: tick,
            clock: ClockState::default(),
        });
        entry.touch = tick;
        let diff = seq.wrapping_sub(entry.expected);
        let (lost, gaps) = if diff == 0 || diff > MAX_PLAUSIBLE_GAP {
            (0, 0) // in order, or reorder/restart — re-base without loss
        } else {
            entry.lost += diff as u64;
            entry.gaps += 1;
            (diff as u64, 1)
        };
        entry.expected = seq.wrapping_add(advance);
        (lost, gaps)
    }

    /// Vet one datagram's clock claims against its stream's history: the
    /// header's export time and sysuptime, plus every record's
    /// first/last-switched pair. Called after [`Self::track_sequence`] so
    /// the stream entry exists; if the stream was just LRU-evicted, a
    /// fresh history still produces a sound (if lenient) verdict.
    fn vet_clock(
        &mut self,
        ver: u16,
        domain: u32,
        export_secs: u32,
        sysuptime_ms: u32,
        samples: &[FlowSample],
        now_ns: u64,
    ) -> ClockVerdict {
        let mut fresh = ClockState::default();
        let clock = match self.seq.get_mut(&(ver, domain)) {
            Some(s) => &mut s.clock,
            None => &mut fresh,
        };
        let mut verdict = clock.vet(export_secs, sysuptime_ms, now_ns);
        for s in samples {
            ClockState::vet_record(s.first_ms, s.last_ms, &mut verdict.lies);
        }
        verdict
    }

    /// Ingest one datagram. Never panics on any input.
    pub fn ingest(&mut self, datagram: &[u8], now_ns: u64) -> IngestReport {
        self.stats.datagrams += 1;
        let mut report = self.ingest_inner(datagram, now_ns);
        if let Some(reason) = report.rejected {
            self.stats.rejected += 1;
            self.stats.rejects[reason.index()] += 1;
        } else {
            self.stats.accepted += 1;
        }
        for i in 0..REASON_COUNT {
            self.stats.soft[i] += report.soft[i];
        }
        for i in 0..CLOCK_LIE_COUNT {
            self.stats.clock_lies[i] += report.clock_lies[i];
        }
        self.stats.clamped_stamps += report.clamped_stamps;
        report.decoded = report.samples.len() as u64;
        self.stats.decoded += report.decoded;
        self.stats.malformed += report.malformed;
        self.stats.lost_upstream += report.lost_upstream;
        self.stats.gap_events += report.gap_events;
        report
    }

    fn ingest_inner(&mut self, datagram: &[u8], now_ns: u64) -> IngestReport {
        if datagram.len() > self.cfg.max_datagram {
            return IngestReport::rejected(RejectReason::Oversize, None);
        }
        if datagram.len() < 2 {
            return IngestReport::rejected(RejectReason::TruncatedHeader, None);
        }
        let version = u16::from_be_bytes([datagram[0], datagram[1]]);
        match version {
            5 => match v5::parse(datagram) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::V5)),
                Ok(dg) => {
                    let domain = ((dg.engine_type as u32) << 8) | dg.engine_id as u32;
                    // v5 flow_sequence counts records exported so far.
                    let (lost, gaps) =
                        self.track_sequence(5, domain, dg.flow_sequence, dg.count as u32);
                    let verdict =
                        self.vet_clock(5, domain, dg.unix_secs, dg.sys_uptime, &dg.samples, now_ns);
                    IngestReport {
                        protocol: Some(WireProtocol::V5),
                        domain,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                        event_time_ns: verdict.event_time_ns,
                        clock_lies: verdict.lies,
                        clamped_stamps: verdict.clamped,
                    }
                }
            },
            9 => match v9::parse(datagram, &mut self.cache, now_ns) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::V9)),
                Ok(dg) => {
                    // v9 sequence counts datagrams, not records.
                    let (lost, gaps) = self.track_sequence(9, dg.source_id, dg.sequence, 1);
                    let verdict = self.vet_clock(
                        9,
                        dg.source_id,
                        dg.unix_secs,
                        dg.sys_uptime,
                        &dg.samples,
                        now_ns,
                    );
                    IngestReport {
                        protocol: Some(WireProtocol::V9),
                        domain: dg.source_id,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                        event_time_ns: verdict.event_time_ns,
                        clock_lies: verdict.lies,
                        clamped_stamps: verdict.clamped,
                    }
                }
            },
            10 => match ipfix::parse(datagram, &mut self.cache, now_ns) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::Ipfix)),
                Ok(dg) => {
                    // IPFIX sequence counts data records; advance by our
                    // best estimate of this message's record count.
                    let advance = (dg.data_records + dg.malformed).min(u32::MAX as u64) as u32;
                    let (lost, gaps) = self.track_sequence(10, dg.domain, dg.sequence, advance);
                    // IPFIX has no sysuptime; only the export time is
                    // vetted at the header level.
                    let verdict =
                        self.vet_clock(10, dg.domain, dg.export_time, 0, &dg.samples, now_ns);
                    IngestReport {
                        protocol: Some(WireProtocol::Ipfix),
                        domain: dg.domain,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                        event_time_ns: verdict.event_time_ns,
                        clock_lies: verdict.lies,
                        clamped_stamps: verdict.clamped,
                    }
                }
            },
            _ => IngestReport::rejected(RejectReason::BadVersion, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{v5_datagram, IpfixBuilder, V9Builder};
    use crate::fields::base_flow_fields;
    use crate::test_support::sample;

    fn session() -> WireSession {
        WireSession::new(WireSessionConfig::default())
    }

    #[test]
    fn mixed_protocols_share_a_session() {
        let mut s = session();
        let r = s.ingest(&v5_datagram(0, 0, 1, &[sample(1)]), 0);
        assert_eq!(r.protocol, Some(WireProtocol::V5));
        assert_eq!(r.decoded, 1);
        let dg = V9Builder::new(7, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(2)])
            .build();
        assert_eq!(s.ingest(&dg, 0).decoded, 1);
        let dg = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(3)])
            .build();
        assert_eq!(s.ingest(&dg, 0).decoded, 1);
        assert_eq!(s.stats().datagrams, 3);
        assert_eq!(s.stats().accepted, 3);
        assert_eq!(s.stats().decoded, 3);
    }

    #[test]
    fn v5_sequence_gap_counts_lost_records() {
        let mut s = session();
        s.ingest(&v5_datagram(100, 0, 1, &[sample(1), sample(2)]), 0);
        // Next expected 102; jump to 110 = 8 records lost upstream.
        let r = s.ingest(&v5_datagram(110, 0, 1, &[sample(3)]), 0);
        assert_eq!(r.lost_upstream, 8);
        assert_eq!(r.gap_events, 1);
        let losses = s.upstream_losses();
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].protocol, WireProtocol::V5);
        assert_eq!(losses[0].lost, 8);
    }

    #[test]
    fn v9_sequence_gap_counts_lost_datagrams() {
        let mut s = session();
        let d = |seq| V9Builder::new(7, seq).template(256, &base_flow_fields()).build();
        s.ingest(&d(5), 0);
        let r = s.ingest(&d(9), 0); // skipped 6,7,8
        assert_eq!(r.lost_upstream, 3);
        assert_eq!(s.upstream_losses()[0].domain, 7);
    }

    #[test]
    fn ipfix_sequence_gap_counts_lost_records() {
        let mut s = session();
        let d = |seq, n: usize| {
            let rows: Vec<FlowSample> = (0..n).map(|i| sample(i as u8)).collect();
            IpfixBuilder::new(3, seq)
                .template(256, &base_flow_fields())
                .data_samples(256, &rows)
                .build()
        };
        s.ingest(&d(0, 2), 0);
        // Next expected 2; claiming 7 means records 2..7 vanished.
        let r = s.ingest(&d(7, 1), 0);
        assert_eq!(r.lost_upstream, 5);
    }

    #[test]
    fn restart_rebases_without_loss() {
        let mut s = session();
        s.ingest(&v5_datagram(4_000_000_000, 0, 1, &[sample(1)]), 0);
        // Exporter restarted: sequence collapses backwards.
        let r = s.ingest(&v5_datagram(3, 0, 1, &[sample(2)]), 0);
        assert_eq!(r.lost_upstream, 0);
        assert_eq!(r.gap_events, 0);
        assert!(s.upstream_losses().is_empty());
    }

    #[test]
    fn wraparound_is_not_loss() {
        let mut s = session();
        s.ingest(&v5_datagram(u32::MAX, 0, 1, &[sample(1)]), 0);
        // 0xffff_ffff + 1 wraps to 0: in order.
        let r = s.ingest(&v5_datagram(0, 0, 1, &[sample(2)]), 0);
        assert_eq!(r.lost_upstream, 0);
    }

    #[test]
    fn streams_are_tracked_independently() {
        let mut s = session();
        s.ingest(&v5_datagram(10, 0, 1, &[sample(1)]), 0);
        s.ingest(&v5_datagram(50, 0, 2, &[sample(1)]), 0);
        let r = s.ingest(&v5_datagram(11, 0, 1, &[sample(1)]), 0);
        assert_eq!(r.lost_upstream, 0, "engine 2's sequence must not bleed into engine 1");
    }

    #[test]
    fn oversize_and_garbage_are_counted_by_reason() {
        let mut s = WireSession::new(WireSessionConfig { max_datagram: 64, ..Default::default() });
        s.ingest(&[0u8; 65], 0);
        s.ingest(&[1], 0);
        s.ingest(&[0, 77, 1, 2], 0);
        let st = s.stats();
        assert_eq!(st.rejected, 3);
        assert_eq!(st.rejects[RejectReason::Oversize.index()], 1);
        assert_eq!(st.rejects[RejectReason::TruncatedHeader.index()], 1);
        assert_eq!(st.rejects[RejectReason::BadVersion.index()], 1);
        assert_eq!(st.accepted, 0);
    }

    #[test]
    fn stream_tracking_is_bounded() {
        let mut s = WireSession::new(WireSessionConfig { max_streams: 8, ..Default::default() });
        for engine in 0..100u8 {
            s.ingest(&v5_datagram(10, 0, engine, &[sample(engine)]), 0);
        }
        // A hostile exporter spraying domains cannot grow the seq map.
        assert!(s.upstream_losses().len() <= 8);
        // Losses already accrued stay in session totals even after the
        // stream itself is forgotten.
        s.ingest(&v5_datagram(0, 1, 1, &[sample(1)]), 0);
        s.ingest(&v5_datagram(6, 1, 1, &[sample(2)]), 0);
        let lost_before = s.stats().lost_upstream;
        assert!(lost_before >= 5);
        for engine in 0..100u8 {
            s.ingest(&v5_datagram(10, 0, engine, &[sample(engine)]), 0);
        }
        assert_eq!(s.stats().lost_upstream, lost_before, "totals survive eviction");
    }

    #[test]
    fn zero_clock_datagrams_take_receive_time_without_lies() {
        let mut s = session();
        let now = 42_000_000_000;
        let r = s.ingest(&v5_datagram(0, 0, 1, &[sample(1)]), now);
        assert_eq!(r.event_time_ns, now);
        assert_eq!(r.clock_lies, [0; crate::CLOCK_LIE_COUNT]);
        assert_eq!(r.clamped_stamps, 0);
        assert_eq!(s.stats().clamped_stamps, 0);
    }

    #[test]
    fn plausible_export_time_becomes_the_event_time() {
        let mut s = session();
        let dg = crate::builder::v5_datagram_with_times(0, 0, 1, &[sample(1)], 1, 5_000, 1_000_000);
        let r = s.ingest(&dg, 1_000_001_000_000_000);
        assert_eq!(r.event_time_ns, 1_000_000_000_000_000);
        assert_eq!(r.clamped_stamps, 0);
    }

    #[test]
    fn future_export_time_is_clamped_and_counted() {
        let mut s = session();
        let dg = crate::builder::v5_datagram_with_times(0, 0, 1, &[sample(1)], 1, 5_000, 9_999);
        let now = 100_000_000_000; // 100 s << 9_999 s claim
        let r = s.ingest(&dg, now);
        assert_eq!(r.event_time_ns, now, "clamped to receive time");
        assert_eq!(r.clock_lies[crate::ClockLie::FutureExport.index()], 1);
        assert_eq!(r.clamped_stamps, 1);
        assert_eq!(s.stats().clock_lies[crate::ClockLie::FutureExport.index()], 1);
        assert_eq!(s.stats().clamped_stamps, 1);
    }

    #[test]
    fn frozen_sysuptime_surfaces_after_a_run() {
        let mut s = session();
        let mut total = 0;
        for i in 0..5u32 {
            let dg = V9Builder::new(7, i).times(777, 0).template(256, &base_flow_fields()).build();
            let r = s.ingest(&dg, u64::from(i) * 1_000_000_000);
            total += r.clock_lies[crate::ClockLie::FrozenSysuptime.index()];
        }
        assert!(total > 0, "a dead tick source must surface");
        assert_eq!(s.stats().clock_lies[crate::ClockLie::FrozenSysuptime.index()], total);
    }

    #[test]
    fn wrap_straddling_flow_is_not_a_lie() {
        let mut s = session();
        let mut ok = sample(1);
        ok.first_ms = u32::MAX - 100;
        ok.last_ms = 400; // 501 ms across the wrap: plausible
        let r = s.ingest(&v5_datagram(0, 0, 1, &[ok]), 0);
        assert_eq!(r.clock_lies, [0; crate::CLOCK_LIE_COUNT]);
        // A genuinely backwards pair IS a lie.
        let mut bad = sample(2);
        bad.first_ms = 9_000;
        bad.last_ms = 4_000;
        let r = s.ingest(&v5_datagram(1, 0, 1, &[bad]), 0);
        assert_eq!(r.clock_lies[crate::ClockLie::ImplausibleDuration.index()], 1);
        assert_eq!(r.decoded, 1, "clock lies are soft: the record still decodes");
    }

    #[test]
    fn ipfix_export_time_is_vetted() {
        let mut s = session();
        let dg = IpfixBuilder::new(9, 0)
            .export_time(50_000)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(3)])
            .build();
        let now = 100_000_000_000; // 100 s: claim of 50_000 s is future
        let r = s.ingest(&dg, now);
        assert_eq!(r.clock_lies[crate::ClockLie::FutureExport.index()], 1);
        assert_eq!(r.event_time_ns, now);
        assert_eq!(r.decoded, 1);
    }

    #[test]
    fn claimed_is_decoded_plus_malformed() {
        let mut s = session();
        let dg = crate::builder::v5_datagram_with_count(0, 0, 1, &[sample(1)], 4);
        let r = s.ingest(&dg, 0);
        assert_eq!(r.decoded, 1);
        assert_eq!(r.malformed, 3);
        assert_eq!(r.claimed(), 4);
    }
}
