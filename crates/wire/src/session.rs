//! Per-exporter ingest session: version sniffing, stateful template
//! decoding, per-reason accounting, and sequence-gap (upstream loss)
//! detection — everything between "a UDP payload arrived" and "FET events
//! plus honest counters".

use crate::ipfix;
use crate::reason::{RejectReason, REASON_COUNT};
use crate::template::{TemplateCache, TemplateCacheConfig};
use crate::translate::FlowSample;
use crate::v5;
use crate::v9;
use std::collections::BTreeMap;

/// Which export protocol a datagram spoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireProtocol {
    /// NetFlow v5.
    V5,
    /// NetFlow v9.
    V9,
    /// IPFIX (v10).
    Ipfix,
}

impl WireProtocol {
    /// Version tag on the wire.
    pub fn version(self) -> u16 {
        match self {
            WireProtocol::V5 => 5,
            WireProtocol::V9 => 9,
            WireProtocol::Ipfix => 10,
        }
    }

    /// Human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            WireProtocol::V5 => "netflow-v5",
            WireProtocol::V9 => "netflow-v9",
            WireProtocol::Ipfix => "ipfix",
        }
    }
}

/// Session bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSessionConfig {
    /// Template-cache bounds (the headline `max_templates` knob).
    pub template: TemplateCacheConfig,
    /// Largest datagram accepted; longer input is rejected outright.
    pub max_datagram: usize,
    /// Maximum (protocol, domain) sequence streams tracked. Domains are
    /// attacker-controlled 32-bit values, so loss tracking must be bounded
    /// like the template cache; beyond the cap the least recently seen
    /// stream is forgotten (its accumulated loss stays in the session
    /// totals).
    pub max_streams: usize,
}

impl Default for WireSessionConfig {
    fn default() -> Self {
        WireSessionConfig {
            template: TemplateCacheConfig::default(),
            max_datagram: 65535,
            max_streams: 256,
        }
    }
}

/// What one datagram produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Protocol, once the version field was readable.
    pub protocol: Option<WireProtocol>,
    /// Observation domain / engine the datagram belonged to (0 when the
    /// datagram died before the header decoded).
    pub domain: u32,
    /// Decoded flow records, in wire order.
    pub samples: Vec<FlowSample>,
    /// Flow records successfully decoded (== `samples.len()`).
    pub decoded: u64,
    /// Records claimed or started but not decodable.
    pub malformed: u64,
    /// Datagram-fatal rejection, if the framing could not be trusted.
    pub rejected: Option<RejectReason>,
    /// Soft (localized) reject counts by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Records the exporter's sequence numbers say we never received
    /// (datagrams for v9, whose sequence counts datagrams).
    pub lost_upstream: u64,
    /// 1 if this datagram revealed a fresh sequence gap.
    pub gap_events: u64,
}

impl IngestReport {
    fn rejected(reason: RejectReason, protocol: Option<WireProtocol>) -> Self {
        IngestReport {
            protocol,
            domain: 0,
            samples: Vec::new(),
            decoded: 0,
            malformed: 0,
            rejected: Some(reason),
            soft: [0; REASON_COUNT],
            lost_upstream: 0,
            gap_events: 0,
        }
    }

    /// Ledger contribution of this datagram: every record that enters the
    /// `generated` term.
    pub fn claimed(&self) -> u64 {
        self.decoded + self.malformed
    }
}

/// Running totals across a session's lifetime; all monotonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSessionStats {
    /// Datagrams offered.
    pub datagrams: u64,
    /// Datagrams that decoded (possibly with soft defects).
    pub accepted: u64,
    /// Datagrams rejected outright.
    pub rejected: u64,
    /// Fatal rejections by [`RejectReason::index`].
    pub rejects: [u64; REASON_COUNT],
    /// Soft rejections by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Flow records decoded.
    pub decoded: u64,
    /// Records booked as malformed.
    pub malformed: u64,
    /// Upstream loss units (records; datagrams for v9).
    pub lost_upstream: u64,
    /// Distinct sequence gaps observed.
    pub gap_events: u64,
}

impl Default for WireSessionStats {
    fn default() -> Self {
        WireSessionStats {
            datagrams: 0,
            accepted: 0,
            rejected: 0,
            rejects: [0; REASON_COUNT],
            soft: [0; REASON_COUNT],
            decoded: 0,
            malformed: 0,
            lost_upstream: 0,
            gap_events: 0,
        }
    }
}

/// Accumulated upstream loss for one (protocol, domain) stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpstreamLossReport {
    /// Export protocol of the stream.
    pub protocol: WireProtocol,
    /// Observation domain / engine id.
    pub domain: u32,
    /// Loss units (flow records for v5/IPFIX; datagrams for v9).
    pub lost: u64,
    /// Distinct gaps.
    pub gaps: u64,
}

/// Largest single sequence jump still believed to be real upstream loss;
/// larger jumps are treated as an exporter restart.
pub const MAX_PLAUSIBLE_GAP: u32 = 1 << 24;

#[derive(Debug, Clone, Copy)]
struct SeqState {
    expected: u32,
    lost: u64,
    gaps: u64,
    touch: u64,
}

/// A stateful ingest session (one per exporter peer, or one shared — the
/// observation domain keys all internal state).
#[derive(Debug)]
pub struct WireSession {
    cfg: WireSessionConfig,
    cache: TemplateCache,
    seq: BTreeMap<(u16, u32), SeqState>,
    seq_tick: u64,
    stats: WireSessionStats,
}

impl WireSession {
    /// New session with the given bounds.
    pub fn new(cfg: WireSessionConfig) -> Self {
        WireSession {
            cache: TemplateCache::new(cfg.template),
            cfg,
            seq: BTreeMap::new(),
            seq_tick: 0,
            stats: WireSessionStats::default(),
        }
    }

    /// The template cache (bounded; inspect occupancy and stats here).
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// Session totals.
    pub fn stats(&self) -> &WireSessionStats {
        &self.stats
    }

    /// Expire stale templates; returns how many were dropped.
    pub fn sweep_templates(&mut self, now_ns: u64) -> u64 {
        self.cache.sweep(now_ns)
    }

    /// Per-stream upstream-loss accumulators, in deterministic key order.
    pub fn upstream_losses(&self) -> Vec<UpstreamLossReport> {
        self.seq
            .iter()
            .filter(|(_, s)| s.gaps > 0)
            .map(|(&(ver, domain), s)| UpstreamLossReport {
                protocol: match ver {
                    5 => WireProtocol::V5,
                    9 => WireProtocol::V9,
                    _ => WireProtocol::Ipfix,
                },
                domain,
                lost: s.lost,
                gaps: s.gaps,
            })
            .collect()
    }

    /// Track a stream's sequence number. `advance` is how far this
    /// datagram moves the counter (records or datagrams, per protocol).
    ///
    /// A forward jump up to [`MAX_PLAUSIBLE_GAP`] is loss; anything larger
    /// is indistinguishable from an exporter restart (sequence collapsing
    /// through the u32 wraparound) and re-bases silently — the cap keeps a
    /// restart from being booked as hundreds of millions of lost records.
    fn track_sequence(&mut self, ver: u16, domain: u32, seq: u32, advance: u32) -> (u64, u64) {
        self.seq_tick += 1;
        let tick = self.seq_tick;
        if !self.seq.contains_key(&(ver, domain)) && self.seq.len() >= self.cfg.max_streams.max(1) {
            // Forget the least recently seen stream; its loss totals were
            // already folded into the session stats as they accrued.
            if let Some((&victim, _)) = self.seq.iter().min_by_key(|(k, s)| (s.touch, **k)) {
                self.seq.remove(&victim);
            }
        }
        let entry = self.seq.entry((ver, domain)).or_insert(SeqState {
            expected: seq,
            lost: 0,
            gaps: 0,
            touch: tick,
        });
        entry.touch = tick;
        let diff = seq.wrapping_sub(entry.expected);
        let (lost, gaps) = if diff == 0 || diff > MAX_PLAUSIBLE_GAP {
            (0, 0) // in order, or reorder/restart — re-base without loss
        } else {
            entry.lost += diff as u64;
            entry.gaps += 1;
            (diff as u64, 1)
        };
        entry.expected = seq.wrapping_add(advance);
        (lost, gaps)
    }

    /// Ingest one datagram. Never panics on any input.
    pub fn ingest(&mut self, datagram: &[u8], now_ns: u64) -> IngestReport {
        self.stats.datagrams += 1;
        let mut report = self.ingest_inner(datagram, now_ns);
        if let Some(reason) = report.rejected {
            self.stats.rejected += 1;
            self.stats.rejects[reason.index()] += 1;
        } else {
            self.stats.accepted += 1;
        }
        for i in 0..REASON_COUNT {
            self.stats.soft[i] += report.soft[i];
        }
        report.decoded = report.samples.len() as u64;
        self.stats.decoded += report.decoded;
        self.stats.malformed += report.malformed;
        self.stats.lost_upstream += report.lost_upstream;
        self.stats.gap_events += report.gap_events;
        report
    }

    fn ingest_inner(&mut self, datagram: &[u8], now_ns: u64) -> IngestReport {
        if datagram.len() > self.cfg.max_datagram {
            return IngestReport::rejected(RejectReason::Oversize, None);
        }
        if datagram.len() < 2 {
            return IngestReport::rejected(RejectReason::TruncatedHeader, None);
        }
        let version = u16::from_be_bytes([datagram[0], datagram[1]]);
        match version {
            5 => match v5::parse(datagram) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::V5)),
                Ok(dg) => {
                    let domain = ((dg.engine_type as u32) << 8) | dg.engine_id as u32;
                    // v5 flow_sequence counts records exported so far.
                    let (lost, gaps) =
                        self.track_sequence(5, domain, dg.flow_sequence, dg.count as u32);
                    IngestReport {
                        protocol: Some(WireProtocol::V5),
                        domain,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                    }
                }
            },
            9 => match v9::parse(datagram, &mut self.cache, now_ns) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::V9)),
                Ok(dg) => {
                    // v9 sequence counts datagrams, not records.
                    let (lost, gaps) = self.track_sequence(9, dg.source_id, dg.sequence, 1);
                    IngestReport {
                        protocol: Some(WireProtocol::V9),
                        domain: dg.source_id,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                    }
                }
            },
            10 => match ipfix::parse(datagram, &mut self.cache, now_ns) {
                Err(r) => IngestReport::rejected(r, Some(WireProtocol::Ipfix)),
                Ok(dg) => {
                    // IPFIX sequence counts data records; advance by our
                    // best estimate of this message's record count.
                    let advance = (dg.data_records + dg.malformed).min(u32::MAX as u64) as u32;
                    let (lost, gaps) = self.track_sequence(10, dg.domain, dg.sequence, advance);
                    IngestReport {
                        protocol: Some(WireProtocol::Ipfix),
                        domain: dg.domain,
                        decoded: dg.samples.len() as u64,
                        samples: dg.samples,
                        malformed: dg.malformed,
                        rejected: None,
                        soft: dg.soft,
                        lost_upstream: lost,
                        gap_events: gaps,
                    }
                }
            },
            _ => IngestReport::rejected(RejectReason::BadVersion, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{v5_datagram, IpfixBuilder, V9Builder};
    use crate::fields::base_flow_fields;
    use crate::test_support::sample;

    fn session() -> WireSession {
        WireSession::new(WireSessionConfig::default())
    }

    #[test]
    fn mixed_protocols_share_a_session() {
        let mut s = session();
        let r = s.ingest(&v5_datagram(0, 0, 1, &[sample(1)]), 0);
        assert_eq!(r.protocol, Some(WireProtocol::V5));
        assert_eq!(r.decoded, 1);
        let dg = V9Builder::new(7, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(2)])
            .build();
        assert_eq!(s.ingest(&dg, 0).decoded, 1);
        let dg = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(3)])
            .build();
        assert_eq!(s.ingest(&dg, 0).decoded, 1);
        assert_eq!(s.stats().datagrams, 3);
        assert_eq!(s.stats().accepted, 3);
        assert_eq!(s.stats().decoded, 3);
    }

    #[test]
    fn v5_sequence_gap_counts_lost_records() {
        let mut s = session();
        s.ingest(&v5_datagram(100, 0, 1, &[sample(1), sample(2)]), 0);
        // Next expected 102; jump to 110 = 8 records lost upstream.
        let r = s.ingest(&v5_datagram(110, 0, 1, &[sample(3)]), 0);
        assert_eq!(r.lost_upstream, 8);
        assert_eq!(r.gap_events, 1);
        let losses = s.upstream_losses();
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].protocol, WireProtocol::V5);
        assert_eq!(losses[0].lost, 8);
    }

    #[test]
    fn v9_sequence_gap_counts_lost_datagrams() {
        let mut s = session();
        let d = |seq| V9Builder::new(7, seq).template(256, &base_flow_fields()).build();
        s.ingest(&d(5), 0);
        let r = s.ingest(&d(9), 0); // skipped 6,7,8
        assert_eq!(r.lost_upstream, 3);
        assert_eq!(s.upstream_losses()[0].domain, 7);
    }

    #[test]
    fn ipfix_sequence_gap_counts_lost_records() {
        let mut s = session();
        let d = |seq, n: usize| {
            let rows: Vec<FlowSample> = (0..n).map(|i| sample(i as u8)).collect();
            IpfixBuilder::new(3, seq)
                .template(256, &base_flow_fields())
                .data_samples(256, &rows)
                .build()
        };
        s.ingest(&d(0, 2), 0);
        // Next expected 2; claiming 7 means records 2..7 vanished.
        let r = s.ingest(&d(7, 1), 0);
        assert_eq!(r.lost_upstream, 5);
    }

    #[test]
    fn restart_rebases_without_loss() {
        let mut s = session();
        s.ingest(&v5_datagram(4_000_000_000, 0, 1, &[sample(1)]), 0);
        // Exporter restarted: sequence collapses backwards.
        let r = s.ingest(&v5_datagram(3, 0, 1, &[sample(2)]), 0);
        assert_eq!(r.lost_upstream, 0);
        assert_eq!(r.gap_events, 0);
        assert!(s.upstream_losses().is_empty());
    }

    #[test]
    fn wraparound_is_not_loss() {
        let mut s = session();
        s.ingest(&v5_datagram(u32::MAX, 0, 1, &[sample(1)]), 0);
        // 0xffff_ffff + 1 wraps to 0: in order.
        let r = s.ingest(&v5_datagram(0, 0, 1, &[sample(2)]), 0);
        assert_eq!(r.lost_upstream, 0);
    }

    #[test]
    fn streams_are_tracked_independently() {
        let mut s = session();
        s.ingest(&v5_datagram(10, 0, 1, &[sample(1)]), 0);
        s.ingest(&v5_datagram(50, 0, 2, &[sample(1)]), 0);
        let r = s.ingest(&v5_datagram(11, 0, 1, &[sample(1)]), 0);
        assert_eq!(r.lost_upstream, 0, "engine 2's sequence must not bleed into engine 1");
    }

    #[test]
    fn oversize_and_garbage_are_counted_by_reason() {
        let mut s = WireSession::new(WireSessionConfig { max_datagram: 64, ..Default::default() });
        s.ingest(&[0u8; 65], 0);
        s.ingest(&[1], 0);
        s.ingest(&[0, 77, 1, 2], 0);
        let st = s.stats();
        assert_eq!(st.rejected, 3);
        assert_eq!(st.rejects[RejectReason::Oversize.index()], 1);
        assert_eq!(st.rejects[RejectReason::TruncatedHeader.index()], 1);
        assert_eq!(st.rejects[RejectReason::BadVersion.index()], 1);
        assert_eq!(st.accepted, 0);
    }

    #[test]
    fn stream_tracking_is_bounded() {
        let mut s = WireSession::new(WireSessionConfig { max_streams: 8, ..Default::default() });
        for engine in 0..100u8 {
            s.ingest(&v5_datagram(10, 0, engine, &[sample(engine)]), 0);
        }
        // A hostile exporter spraying domains cannot grow the seq map.
        assert!(s.upstream_losses().len() <= 8);
        // Losses already accrued stay in session totals even after the
        // stream itself is forgotten.
        s.ingest(&v5_datagram(0, 1, 1, &[sample(1)]), 0);
        s.ingest(&v5_datagram(6, 1, 1, &[sample(2)]), 0);
        let lost_before = s.stats().lost_upstream;
        assert!(lost_before >= 5);
        for engine in 0..100u8 {
            s.ingest(&v5_datagram(10, 0, engine, &[sample(engine)]), 0);
        }
        assert_eq!(s.stats().lost_upstream, lost_before, "totals survive eviction");
    }

    #[test]
    fn claimed_is_decoded_plus_malformed() {
        let mut s = session();
        let dg = crate::builder::v5_datagram_with_count(0, 0, 1, &[sample(1)], 4);
        let r = s.ingest(&dg, 0);
        assert_eq!(r.decoded, 1);
        assert_eq!(r.malformed, 3);
        assert_eq!(r.claimed(), 4);
    }
}
