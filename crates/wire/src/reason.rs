//! The closed taxonomy of reasons a wire datagram (or part of one) is
//! refused. Every rejection on the ingest path is counted under exactly one
//! of these, so "how hostile is this exporter?" is always answerable from
//! counters — nothing is dropped silently.

use core::fmt;

/// Why a datagram, set, or record was refused.
///
/// Reasons split into two severities, decided by the parser:
///
/// * **datagram-fatal** — the framing itself cannot be trusted past this
///   point (bad version, truncated header, a set length that walks off the
///   buffer). The whole datagram is quarantined and contributes nothing to
///   `generated`.
/// * **soft** — a localized defect inside an otherwise well-framed datagram
///   (one bad template record, one unknown template id, a truncated record
///   tail). The surrounding datagram still decodes; the defect is counted
///   and the affected records land in the `malformed` ledger term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectReason {
    /// Buffer shorter than the fixed protocol header.
    TruncatedHeader,
    /// Version field is not 5, 9, or 10.
    BadVersion,
    /// Datagram longer than the configured maximum.
    Oversize,
    /// The header's record count is impossible (0, above the protocol
    /// maximum, or above what the buffer could physically hold).
    CountLie,
    /// A set/flowset length field is shorter than its own header or walks
    /// past the end of the datagram.
    LengthLie,
    /// A record tail shorter than one full record (beyond the 4-byte
    /// alignment padding the specs allow).
    TruncatedRecord,
    /// A template record with an invalid id, zero/absurd field count, or a
    /// record length beyond the configured bound.
    BadTemplate,
    /// A data set referencing a template id this session has never seen
    /// (or that was evicted / expired).
    MissingTemplate,
    /// A set id in the reserved range (v9: 2–255 excluding 0/1;
    /// IPFIX: 4–255).
    ReservedSet,
}

/// Number of distinct reasons; sizes per-reason counter arrays.
pub const REASON_COUNT: usize = 9;

/// Every reason, in `index()` order.
pub const ALL_REASONS: [RejectReason; REASON_COUNT] = [
    RejectReason::TruncatedHeader,
    RejectReason::BadVersion,
    RejectReason::Oversize,
    RejectReason::CountLie,
    RejectReason::LengthLie,
    RejectReason::TruncatedRecord,
    RejectReason::BadTemplate,
    RejectReason::MissingTemplate,
    RejectReason::ReservedSet,
];

impl RejectReason {
    /// Stable dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            RejectReason::TruncatedHeader => 0,
            RejectReason::BadVersion => 1,
            RejectReason::Oversize => 2,
            RejectReason::CountLie => 3,
            RejectReason::LengthLie => 4,
            RejectReason::TruncatedRecord => 5,
            RejectReason::BadTemplate => 6,
            RejectReason::MissingTemplate => 7,
            RejectReason::ReservedSet => 8,
        }
    }

    /// Human-readable label, used in quarantine records and printed
    /// counters.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::TruncatedHeader => "truncated-header",
            RejectReason::BadVersion => "bad-version",
            RejectReason::Oversize => "oversize",
            RejectReason::CountLie => "count-lie",
            RejectReason::LengthLie => "length-lie",
            RejectReason::TruncatedRecord => "truncated-record",
            RejectReason::BadTemplate => "bad-template",
            RejectReason::MissingTemplate => "missing-template",
            RejectReason::ReservedSet => "reserved-set",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, r) in ALL_REASONS.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        for a in ALL_REASONS {
            for b in ALL_REASONS {
                if a != b {
                    assert_ne!(a.as_str(), b.as_str());
                }
            }
        }
    }
}
