//! NetFlow v5: the fixed-layout legacy export format.
//!
//! A v5 datagram is a 24-byte header followed by `count` 48-byte records,
//! `count` ≤ 30. There are no templates, so the only hostile levers are the
//! count field and truncation — both are accounted for here: an impossible
//! count rejects the datagram, a truncated tail turns the missing records
//! into `malformed`.

use crate::reason::{RejectReason, REASON_COUNT};
use crate::translate::FlowSample;
use fet_packet::flow::{FlowKey, IpProtocol};
use fet_packet::Ipv4Addr;

/// Fixed v5 header length.
pub const V5_HEADER_LEN: usize = 24;
/// Fixed v5 record length.
pub const V5_RECORD_LEN: usize = 48;
/// Protocol maximum records per datagram.
pub const V5_MAX_RECORDS: usize = 30;

/// A decoded v5 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V5Datagram {
    /// Exporter uptime at export, ms (u32: wraps every ~49.7 days); 0 =
    /// not set.
    pub sys_uptime: u32,
    /// Exporter wall-clock at export, unix seconds; 0 = not set.
    pub unix_secs: u32,
    /// Total flows the exporter claims to have sent before this datagram.
    pub flow_sequence: u32,
    /// Exporter engine type (slot).
    pub engine_type: u8,
    /// Exporter engine id.
    pub engine_id: u8,
    /// The header's record count (already validated ≤ 30).
    pub count: u16,
    /// Successfully decoded records.
    pub samples: Vec<FlowSample>,
    /// Records the header claimed but the buffer did not contain.
    pub malformed: u64,
    /// Soft reject counters by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
}

fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn be32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn record(buf: &[u8]) -> FlowSample {
    FlowSample {
        flow: FlowKey {
            src: Ipv4Addr::from_octets([buf[0], buf[1], buf[2], buf[3]]),
            dst: Ipv4Addr::from_octets([buf[4], buf[5], buf[6], buf[7]]),
            sport: be16(buf, 32),
            dport: be16(buf, 34),
            proto: IpProtocol::from_number(buf[38]),
        },
        in_port: be16(buf, 12),
        out_port: be16(buf, 14),
        packets: be32(buf, 16) as u64,
        bytes: be32(buf, 20) as u64,
        tcp_flags: buf[37],
        forwarding_status: None,
        first_ms: be32(buf, 24),
        last_ms: be32(buf, 28),
    }
}

/// Parse a v5 datagram. Never panics; a datagram-fatal defect returns the
/// reason, local defects are counted inside the returned datagram.
pub fn parse(buf: &[u8]) -> Result<V5Datagram, RejectReason> {
    if buf.len() < 2 {
        return Err(RejectReason::TruncatedHeader);
    }
    if be16(buf, 0) != 5 {
        return Err(RejectReason::BadVersion);
    }
    if buf.len() < V5_HEADER_LEN {
        return Err(RejectReason::TruncatedHeader);
    }
    let count = be16(buf, 2);
    if count == 0 || count as usize > V5_MAX_RECORDS {
        return Err(RejectReason::CountLie);
    }
    let sys_uptime = be32(buf, 4);
    let unix_secs = be32(buf, 8);
    let flow_sequence = be32(buf, 16);
    let engine_type = buf[20];
    let engine_id = buf[21];

    let available = (buf.len() - V5_HEADER_LEN) / V5_RECORD_LEN;
    let decoded = (count as usize).min(available);
    let mut samples = Vec::with_capacity(decoded);
    for i in 0..decoded {
        let off = V5_HEADER_LEN + i * V5_RECORD_LEN;
        samples.push(record(&buf[off..off + V5_RECORD_LEN]));
    }
    let malformed = (count as usize - decoded) as u64;
    let mut soft = [0u64; REASON_COUNT];
    soft[RejectReason::TruncatedRecord.index()] = malformed;
    Ok(V5Datagram {
        sys_uptime,
        unix_secs,
        flow_sequence,
        engine_type,
        engine_id,
        count,
        samples,
        malformed,
        soft,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;

    fn samples(n: usize) -> Vec<FlowSample> {
        (0..n)
            .map(|i| FlowSample {
                flow: FlowKey::udp(
                    Ipv4Addr::from_octets([10, 0, 0, i as u8]),
                    5000 + i as u16,
                    Ipv4Addr::from_octets([10, 0, 1, i as u8]),
                    53,
                ),
                in_port: 1,
                out_port: 2,
                packets: 10 + i as u64,
                bytes: 1000,
                tcp_flags: 0,
                forwarding_status: None,
                first_ms: 0,
                last_ms: 0,
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_builder() {
        let want = samples(5);
        let dg = builder::v5_datagram(100, 1, 7, &want);
        let got = parse(&dg).expect("parses");
        assert_eq!(got.samples, want);
        assert_eq!(got.flow_sequence, 100);
        assert_eq!(got.engine_id, 7);
        assert_eq!(got.malformed, 0);
    }

    #[test]
    fn fatal_rejects() {
        assert_eq!(parse(&[]), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0]), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0, 9, 0, 0]), Err(RejectReason::BadVersion));
        let short_header = builder::v5_datagram(0, 0, 0, &samples(1));
        assert_eq!(parse(&short_header[..20]), Err(RejectReason::TruncatedHeader));
        // count = 0 and count > 30 are both lies.
        let dg = builder::v5_datagram_with_count(0, 0, 0, &samples(1), 0);
        assert_eq!(parse(&dg), Err(RejectReason::CountLie));
        let dg = builder::v5_datagram_with_count(0, 0, 0, &samples(1), 31);
        assert_eq!(parse(&dg), Err(RejectReason::CountLie));
    }

    #[test]
    fn truncated_tail_becomes_malformed() {
        let dg = builder::v5_datagram(0, 0, 0, &samples(4));
        // Cut mid-way through the third record.
        let cut = V5_HEADER_LEN + 2 * V5_RECORD_LEN + 10;
        let got = parse(&dg[..cut]).expect("header is intact");
        assert_eq!(got.samples.len(), 2);
        assert_eq!(got.malformed, 2);
        assert_eq!(got.soft[RejectReason::TruncatedRecord.index()], 2);
    }

    #[test]
    fn count_lie_within_bounds_becomes_malformed() {
        // Claims 8 records, carries 3: the missing 5 are malformed.
        let dg = builder::v5_datagram_with_count(0, 0, 0, &samples(3), 8);
        let got = parse(&dg).expect("parses");
        assert_eq!(got.samples.len(), 3);
        assert_eq!(got.malformed, 5);
    }

    #[test]
    fn trailing_garbage_is_ignored() {
        let mut dg = builder::v5_datagram(0, 0, 0, &samples(2));
        dg.extend_from_slice(&[0xde, 0xad]);
        let got = parse(&dg).expect("parses");
        assert_eq!(got.samples.len(), 2);
        assert_eq!(got.malformed, 0);
    }
}
