//! NetFlow v9 (RFC 3954): template-driven export.
//!
//! A v9 datagram is a 20-byte header followed by flowsets. Flowset id 0
//! carries template records, id 1 options-template records, ids ≥ 256 data
//! records decoded under a previously announced template. Ids 2–255 are
//! reserved. The header `count` claims how many records (of any kind) the
//! datagram carries — a favorite place for exporters to lie, so the parser
//! reconciles it against what it actually walked and books the difference
//! as `malformed`.

use crate::reason::{RejectReason, REASON_COUNT};
use crate::sets::{decode_data_set, MAX_PAD};
use crate::template::{InstallOutcome, Template, TemplateCache, TemplateField};
use crate::translate::FlowSample;

/// Fixed v9 header length.
pub const V9_HEADER_LEN: usize = 20;
/// Template flowset id.
pub const V9_SET_TEMPLATE: u16 = 0;
/// Options-template flowset id.
pub const V9_SET_OPTIONS: u16 = 1;
/// Smallest data flowset id.
pub const V9_SET_DATA_MIN: u16 = 256;

/// A decoded v9 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V9Datagram {
    /// Observation domain (`source_id`).
    pub source_id: u32,
    /// Datagram sequence number (increments per datagram, per source).
    pub sequence: u32,
    /// Exporter uptime at export, ms (u32: wraps every ~49.7 days); 0 =
    /// not set.
    pub sys_uptime: u32,
    /// Exporter wall-clock at export, unix seconds; 0 = not set.
    pub unix_secs: u32,
    /// The header's claimed record count.
    pub count: u16,
    /// Records of any kind actually walked (flow + option + template).
    pub records_seen: u64,
    /// Decoded flow records.
    pub samples: Vec<FlowSample>,
    /// Claimed-but-absent or truncated records.
    pub malformed: u64,
    /// Soft reject counters by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Templates accepted (installed or refreshed) from this datagram.
    pub templates_installed: u64,
}

fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn be32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Walk a v9 template flowset body: `(tid, field_count, field_count × 4B)`
/// records back to back.
fn parse_template_set(
    body: &[u8],
    cache: &mut TemplateCache,
    domain: u32,
    now_ns: u64,
    soft: &mut [u64; REASON_COUNT],
    records: &mut u64,
    installed: &mut u64,
) {
    let mut off = 0usize;
    while body.len() - off > MAX_PAD {
        if body.len() - off < 4 {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let tid = be16(body, off);
        let field_count = be16(body, off + 2) as usize;
        off += 4;
        if field_count == 0 || body.len() - off < field_count * 4 {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let mut fields = Vec::with_capacity(field_count);
        for i in 0..field_count {
            fields.push(TemplateField::std(be16(body, off + i * 4), be16(body, off + i * 4 + 2)));
        }
        off += field_count * 4;
        *records += 1;
        match cache.install(domain, Template::new(tid, fields, 0), now_ns) {
            InstallOutcome::Rejected => soft[RejectReason::BadTemplate.index()] += 1,
            _ => *installed += 1,
        }
    }
}

/// Walk a v9 options-template flowset body:
/// `(tid, scope_len_bytes, option_len_bytes, specs…)`.
fn parse_options_set(
    body: &[u8],
    cache: &mut TemplateCache,
    domain: u32,
    now_ns: u64,
    soft: &mut [u64; REASON_COUNT],
    records: &mut u64,
    installed: &mut u64,
) {
    let mut off = 0usize;
    while body.len() - off > MAX_PAD {
        if body.len() - off < 6 {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let tid = be16(body, off);
        let scope_len = be16(body, off + 2) as usize;
        let option_len = be16(body, off + 4) as usize;
        off += 6;
        let spec_len = scope_len + option_len;
        if !scope_len.is_multiple_of(4)
            || !option_len.is_multiple_of(4)
            || spec_len == 0
            || body.len() - off < spec_len
        {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let field_count = spec_len / 4;
        let mut fields = Vec::with_capacity(field_count);
        for i in 0..field_count {
            fields.push(TemplateField::std(be16(body, off + i * 4), be16(body, off + i * 4 + 2)));
        }
        off += spec_len;
        *records += 1;
        let tpl = Template::new(tid, fields, (scope_len / 4) as u16);
        match cache.install(domain, tpl, now_ns) {
            InstallOutcome::Rejected => soft[RejectReason::BadTemplate.index()] += 1,
            _ => *installed += 1,
        }
    }
}

/// Parse a v9 datagram against (and updating) the session template cache.
pub fn parse(
    buf: &[u8],
    cache: &mut TemplateCache,
    now_ns: u64,
) -> Result<V9Datagram, RejectReason> {
    if buf.len() < 2 {
        return Err(RejectReason::TruncatedHeader);
    }
    if be16(buf, 0) != 9 {
        return Err(RejectReason::BadVersion);
    }
    if buf.len() < V9_HEADER_LEN {
        return Err(RejectReason::TruncatedHeader);
    }
    let count = be16(buf, 2);
    // A record needs at least 1 byte; a count beyond the datagram's byte
    // length is physically impossible and would let a hostile exporter
    // inflate the ledger for free.
    if count as usize > buf.len() {
        return Err(RejectReason::CountLie);
    }
    let sequence = be32(buf, 12);
    let source_id = be32(buf, 16);

    let mut dg = V9Datagram {
        source_id,
        sequence,
        sys_uptime: be32(buf, 4),
        unix_secs: be32(buf, 8),
        count,
        records_seen: 0,
        samples: Vec::new(),
        malformed: 0,
        soft: [0; REASON_COUNT],
        templates_installed: 0,
    };

    let mut off = V9_HEADER_LEN;
    while off < buf.len() {
        if buf.len() - off <= MAX_PAD {
            break; // trailing alignment padding
        }
        if buf.len() - off < 4 {
            dg.soft[RejectReason::TruncatedRecord.index()] += 1;
            break;
        }
        let set_id = be16(buf, off);
        let set_len = be16(buf, off + 2) as usize;
        if set_len < 4 || off + set_len > buf.len() {
            // The framing itself lies; nothing past this point is
            // trustworthy.
            return Err(RejectReason::LengthLie);
        }
        let body = &buf[off + 4..off + set_len];
        match set_id {
            V9_SET_TEMPLATE => parse_template_set(
                body,
                cache,
                source_id,
                now_ns,
                &mut dg.soft,
                &mut dg.records_seen,
                &mut dg.templates_installed,
            ),
            V9_SET_OPTIONS => parse_options_set(
                body,
                cache,
                source_id,
                now_ns,
                &mut dg.soft,
                &mut dg.records_seen,
                &mut dg.templates_installed,
            ),
            id if id < V9_SET_DATA_MIN => {
                dg.soft[RejectReason::ReservedSet.index()] += 1;
            }
            tid => match cache.get(source_id, tid, now_ns) {
                Some(tpl) => {
                    let tpl = tpl.clone();
                    let o = decode_data_set(&tpl, body, &mut dg.samples, &mut dg.soft);
                    dg.records_seen += o.records;
                    dg.malformed += o.malformed;
                }
                None => {
                    // Records under an unknown template can't even be
                    // counted directly; the count reconciliation below
                    // books them as malformed.
                    dg.soft[RejectReason::MissingTemplate.index()] += 1;
                }
            },
        }
        off += set_len;
    }

    // Reconcile the claimed count: records the exporter claimed but we
    // never walked (count lies, unknown-template sets, truncated sets)
    // are malformed. An *under*-claiming exporter is not penalized.
    dg.malformed += (dg.count as u64).saturating_sub(dg.records_seen + dg.malformed);
    Ok(dg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::V9Builder;
    use crate::fields::base_flow_fields;
    use crate::template::TemplateCacheConfig;
    use crate::test_support::sample;

    fn cache() -> TemplateCache {
        TemplateCache::new(TemplateCacheConfig::default())
    }

    #[test]
    fn template_then_data_decodes() {
        let mut c = cache();
        let dg = V9Builder::new(7, 1)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(1), sample(2)])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.samples, vec![sample(1), sample(2)]);
        assert_eq!(got.records_seen, 3, "1 template + 2 data");
        assert_eq!(got.malformed, 0);
        assert_eq!(got.templates_installed, 1);
        assert_eq!(c.domain_len(7), 1);
    }

    #[test]
    fn data_before_template_is_missing_template() {
        let mut c = cache();
        let dg = V9Builder::new(7, 1).data_samples(256, &[sample(1)]).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert!(got.samples.is_empty());
        assert_eq!(got.soft[RejectReason::MissingTemplate.index()], 1);
        // The claimed record surfaces as malformed via count reconciliation.
        assert_eq!(got.malformed, 1);
    }

    #[test]
    fn templates_survive_across_datagrams() {
        let mut c = cache();
        let t = V9Builder::new(7, 1).template(256, &base_flow_fields()).build();
        parse(&t, &mut c, 0).expect("template datagram");
        let d = V9Builder::new(7, 2).data_samples(256, &[sample(3)]).build();
        let got = parse(&d, &mut c, 0).expect("data datagram");
        assert_eq!(got.samples, vec![sample(3)]);
    }

    #[test]
    fn fatal_rejects() {
        let mut c = cache();
        assert_eq!(parse(&[], &mut c, 0), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0, 9, 0], &mut c, 0), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0, 8, 0, 0], &mut c, 0), Err(RejectReason::BadVersion));
        // Claimed count beyond the datagram's physical capacity.
        let dg = V9Builder::new(7, 1).build_with_count(9999);
        assert_eq!(parse(&dg, &mut c, 0), Err(RejectReason::CountLie));
        // Flowset length walking off the buffer.
        let dg = V9Builder::new(7, 1).raw_flowset(256, &[0u8; 8]).build();
        let mut lying = dg.clone();
        lying[V9_HEADER_LEN + 2] = 0xff; // set_len low byte → far past end
        lying[V9_HEADER_LEN + 3] = 0xff;
        assert_eq!(parse(&lying, &mut c, 0), Err(RejectReason::LengthLie));
        // Flowset length below its own header.
        let mut tiny = dg;
        tiny[V9_HEADER_LEN + 2] = 0;
        tiny[V9_HEADER_LEN + 3] = 3;
        assert_eq!(parse(&tiny, &mut c, 0), Err(RejectReason::LengthLie));
    }

    #[test]
    fn reserved_flowset_ids_are_skipped() {
        let mut c = cache();
        let dg = V9Builder::new(7, 1)
            .raw_flowset(100, &[1, 2, 3, 4])
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(1)])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.soft[RejectReason::ReservedSet.index()], 1);
        assert_eq!(got.samples.len(), 1);
    }

    #[test]
    fn bad_template_is_soft() {
        let mut c = cache();
        // field_count = 0
        let dg = V9Builder::new(7, 1).raw_flowset(V9_SET_TEMPLATE, &[1, 0, 0, 0]).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.soft[RejectReason::BadTemplate.index()], 1);
        assert_eq!(c.total_len(), 0);
        // Template id below 256 is refused by the cache.
        let dg = V9Builder::new(7, 2).template(42, &base_flow_fields()).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.soft[RejectReason::BadTemplate.index()], 1);
        assert_eq!(c.total_len(), 0);
    }

    #[test]
    fn options_template_data_counts_but_yields_no_samples() {
        let mut c = cache();
        let scope = [TemplateField::std(1, 4)]; // "system" scope
        let opts = [TemplateField::std(41, 2)];
        let dg = V9Builder::new(7, 1)
            .options_template(300, &scope, &opts)
            .data(300, &[vec![0, 0, 0, 1, 0, 5]])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert!(got.samples.is_empty());
        assert_eq!(got.records_seen, 2, "1 options template + 1 option record");
        assert_eq!(got.malformed, 0);
    }

    #[test]
    fn truncated_data_tail_is_malformed() {
        let mut c = cache();
        let t = V9Builder::new(7, 1).template(256, &base_flow_fields()).build();
        parse(&t, &mut c, 0).expect("template");
        // One complete record plus 7 stray bytes (more than padding).
        let mut row = crate::fields::encode_record(&base_flow_fields(), &sample(1));
        row.extend_from_slice(&[9, 9, 9, 9, 9, 9, 9]);
        let dg = V9Builder::new(7, 2).data(256, &[row]).build_with_count(2);
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.samples.len(), 1);
        assert_eq!(got.malformed, 1);
        assert_eq!(got.soft[RejectReason::TruncatedRecord.index()], 1);
    }
}
